//! Parser corpus: SkyServer-style statements that must parse and
//! round-trip (`parse(display(ast)) == ast`), an extraction corpus that
//! pins the exact access-area predicate set per query, plus property
//! tests over generated predicate grammars.

use aa_core::extract::{Extractor, NoSchema};
use aa_prop::{check, Config, Source};
use aa_sql::{parse_select, ParseErrorKind};

/// Queries modelled on real SkyServer log idioms.
const CORPUS: &[&str] = &[
    "SELECT TOP 10 * FROM PhotoObjAll",
    "SELECT objID, ra, dec FROM PhotoObjAll WHERE ra BETWEEN 179.5 AND 182.3 AND dec BETWEEN -1.0 AND 1.8",
    "select top 100 p.objid, p.ra, p.dec, p.u, p.g, p.r, p.i, p.z from photoobjall p where p.u - p.g < 0.4 and p.g - p.r < 0.7",
    "SELECT s.specobjid, s.plate, s.mjd FROM SpecObjAll s WHERE s.class = 'QSO' AND s.z BETWEEN 0.3 AND 0.4",
    "SELECT * FROM SpecObjAll WHERE plate=751 AND mjd=52251",
    "SELECT COUNT(*) FROM PhotoObjAll WHERE type = 6",
    "SELECT class, COUNT(*) AS n FROM SpecObjAll GROUP BY class HAVING COUNT(*) > 1000 ORDER BY n DESC",
    "SELECT p.ra, p.dec FROM PhotoObjAll AS p INNER JOIN SpecObjAll AS s ON s.specobjid = p.objid WHERE s.class = 'galaxy'",
    "SELECT * FROM T FULL OUTER JOIN S ON (T.u = S.u)",
    "SELECT * FROM zooSpec WHERE dec >= -100 AND dec <= -15",
    "SELECT objid FROM Galaxies LIMIT 10",
    "SELECT g.objid FROM Galaxies g WHERE g.ra > 100 LIMIT 25",
    "SELECT DISTINCT class FROM SpecObjAll WHERE z IS NOT NULL",
    "SELECT * FROM T WHERE u IN (1, 2, 3) AND v NOT IN (4, 5)",
    "SELECT * FROM T WHERE u IN (SELECT u FROM S WHERE w > 2)",
    "SELECT * FROM T WHERE EXISTS (SELECT * FROM S WHERE S.u = T.u) AND NOT EXISTS (SELECT * FROM R WHERE R.u = T.u)",
    "SELECT * FROM T WHERE u > ANY (SELECT u FROM S) OR u <= ALL (SELECT w FROM S)",
    "SELECT name FROM [DBObjects] WHERE [access] = 'U'",
    "SELECT * FROM BESTDR9..PhotoObjAll WHERE ra < 10",
    "SELECT CASE WHEN z < 0.1 THEN 'near' WHEN z < 1 THEN 'mid' ELSE 'far' END AS bucket, COUNT(*) FROM Photoz GROUP BY CASE WHEN z < 0.1 THEN 'near' WHEN z < 1 THEN 'mid' ELSE 'far' END",
    "SELECT CAST(z AS numeric(6,3)) FROM Photoz WHERE z > 0",
    "SELECT TOP 50 PERCENT * FROM sppLines ORDER BY specobjid",
    "SELECT * FROM (SELECT plate, mjd FROM SpecObjAll WHERE class = 'star') AS stars WHERE stars.plate > 300",
    "SELECT * FROM T WHERE NOT (u > 5 AND v <= 10)",
    "SELECT 1 + 2 * 3",
    "SELECT * FROM sppLines spp, sppParams par WHERE spp.specobjid = par.specobjid AND par.fehadop BETWEEN -0.3 AND 0.5",
    "-- leading comment\nSELECT * FROM T /* block */ WHERE u = 1",
    "SELECT * INTO #mytable FROM SpecObjAll WHERE z > 2",
];

#[test]
fn corpus_parses_and_round_trips() {
    for sql in CORPUS {
        let ast = parse_select(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let printed = ast.to_string();
        let reparsed = parse_select(&printed)
            .unwrap_or_else(|e| panic!("printed `{printed}` does not reparse: {e}"));
        assert_eq!(ast, reparsed, "round trip changed `{sql}` -> `{printed}`");
    }
}

#[test]
fn rejection_corpus_is_classified() {
    for (sql, kind) in [
        ("CREATE TABLE x (y int)", ParseErrorKind::NotSelect),
        ("DECLARE @x int", ParseErrorKind::NotSelect),
        ("INSERT INTO t VALUES (1)", ParseErrorKind::NotSelect),
        ("SELEC * FORM T", ParseErrorKind::Syntax),
        ("SELECT * FROM", ParseErrorKind::Syntax),
        ("SELECT * FROM T WHERE", ParseErrorKind::Syntax),
        ("SELECT * FROM T WHERE u >> 1", ParseErrorKind::Syntax),
        ("SELECT u FROM T UNION SELECT u FROM S", ParseErrorKind::Unsupported),
        (
            "SELECT * FROM dbo.fGetNearbyObjEq(180.0, 0.0, 1.0)",
            ParseErrorKind::Unsupported,
        ),
    ] {
        let err = parse_select(sql).unwrap_err();
        assert_eq!(err.kind, kind, "{sql}: {err}");
    }
}

// ---- extraction corpus ------------------------------------------------------
//
// Each entry pins the exact predicate set of the extracted access area
// (atom Display strings, sorted) and the universal-relation tables, for
// SkyServer dialect features: TOP (with PERCENT), bracketed identifiers,
// nested EXISTS / IN subqueries, IN lists, and MySQL-style LIMIT.

struct ExtractionCase {
    sql: &'static str,
    tables: &'static [&'static str],
    atoms: &'static [&'static str],
}

const EXTRACTION_CORPUS: &[ExtractionCase] = &[
    // TOP n with BETWEEN expansion.
    ExtractionCase {
        sql: "SELECT TOP 500 objID FROM PhotoObjAll WHERE ra BETWEEN 150 AND 200 AND dec > -5",
        tables: &["PhotoObjAll"],
        atoms: &[
            "PhotoObjAll.dec > -5",
            "PhotoObjAll.ra <= 200",
            "PhotoObjAll.ra >= 150",
        ],
    },
    // TOP n PERCENT.
    ExtractionCase {
        sql: "SELECT TOP 10 PERCENT plate FROM SpecObjAll WHERE class = 'GALAXY' AND z < 0.05",
        tables: &["SpecObjAll"],
        atoms: &["SpecObjAll.class = 'GALAXY'", "SpecObjAll.z < 0.05"],
    },
    // Bracketed identifiers everywhere (Cluster 9's columns).
    ExtractionCase {
        sql: "SELECT [plate], [mjd] FROM [SpecObjAll] WHERE [plate] <= 3200 AND [mjd] >= 51578",
        tables: &["SpecObjAll"],
        atoms: &["SpecObjAll.mjd >= 51578", "SpecObjAll.plate <= 3200"],
    },
    // Cluster 10's shape: brackets around reserved-looking names plus OR.
    ExtractionCase {
        sql: "SELECT name FROM [DBObjects] WHERE [access] = 'U' AND ([type] = 'V' OR [type] = 'U')",
        tables: &["DBObjects"],
        atoms: &[
            "DBObjects.access = 'U'",
            "DBObjects.type = 'U'",
            "DBObjects.type = 'V'",
        ],
    },
    // TOP + brackets combined.
    ExtractionCase {
        sql: "SELECT TOP 5 [name] FROM [DBViewCols] WHERE [viewname] = 'SpecObj'",
        tables: &["DBViewCols"],
        atoms: &["DBViewCols.viewname = 'SpecObj'"],
    },
    // EXISTS with alias resolution into real table names.
    ExtractionCase {
        sql: "SELECT s.plate FROM SpecObjAll s WHERE s.z > 2 AND EXISTS \
              (SELECT * FROM Photoz p WHERE p.objid = s.bestobjid AND p.z < 1)",
        tables: &["Photoz", "SpecObjAll"],
        atoms: &[
            "Photoz.objid = SpecObjAll.bestobjid",
            "Photoz.z < 1",
            "SpecObjAll.z > 2",
        ],
    },
    // Doubly-nested EXISTS (Lemma 4 applied twice).
    ExtractionCase {
        sql: "SELECT * FROM T WHERE T.u > 7 AND EXISTS \
              (SELECT * FROM S WHERE S.u = T.u AND EXISTS \
               (SELECT * FROM R WHERE R.v = S.v AND R.x < 9))",
        tables: &["R", "S", "T"],
        atoms: &["R.v = S.v", "R.x < 9", "S.u = T.u", "T.u > 7"],
    },
    // IN <subquery> becomes a join atom plus the inner constraint. The
    // i64 constant rounds through f64 — pinned as the extractor prints it.
    ExtractionCase {
        sql: "SELECT * FROM galSpecInfo WHERE specobjid IN \
              (SELECT specobjid FROM galSpecLine WHERE specobjid >= 1345591721622267904)",
        tables: &["galSpecInfo", "galSpecLine"],
        atoms: &[
            "galSpecInfo.specobjid = galSpecLine.specobjid",
            "galSpecLine.specobjid >= 1345591721622268000",
        ],
    },
    // IN list over strings expands to an equality disjunction.
    ExtractionCase {
        sql: "SELECT * FROM SpecObjAll WHERE class IN ('star', 'qso')",
        tables: &["SpecObjAll"],
        atoms: &["SpecObjAll.class = 'qso'", "SpecObjAll.class = 'star'"],
    },
    // IN list over numbers.
    ExtractionCase {
        sql: "SELECT * FROM SpecObjAll WHERE plate IN (751, 752, 753)",
        tables: &["SpecObjAll"],
        atoms: &[
            "SpecObjAll.plate = 751",
            "SpecObjAll.plate = 752",
            "SpecObjAll.plate = 753",
        ],
    },
    // NOT IN pushes the negation through to <> conjuncts.
    ExtractionCase {
        sql: "SELECT * FROM SpecObjAll WHERE plate NOT IN (751, 752)",
        tables: &["SpecObjAll"],
        atoms: &["SpecObjAll.plate <> 751", "SpecObjAll.plate <> 752"],
    },
    // MySQL LIMIT does not perturb the constraint.
    ExtractionCase {
        sql: "SELECT objid FROM Galaxies WHERE ra > 185.5 LIMIT 30",
        tables: &["Galaxies"],
        atoms: &["Galaxies.ra > 185.5"],
    },
    // LIMIT with no WHERE: unconstrained area.
    ExtractionCase {
        sql: "SELECT objid FROM Galaxies LIMIT 100",
        tables: &["Galaxies"],
        atoms: &[],
    },
    // TOP over an aliased INNER JOIN: ON becomes a join atom.
    ExtractionCase {
        sql: "SELECT TOP 50 p.ra FROM PhotoObjAll p INNER JOIN SpecObjAll s \
              ON s.bestobjid = p.objid WHERE s.class = 'qso'",
        tables: &["PhotoObjAll", "SpecObjAll"],
        atoms: &[
            "SpecObjAll.bestobjid = PhotoObjAll.objid",
            "SpecObjAll.class = 'qso'",
        ],
    },
    // TOP + BETWEEN (Cluster 15's box).
    ExtractionCase {
        sql: "SELECT TOP 1000 * FROM Photoz WHERE z BETWEEN 0 AND 0.1",
        tables: &["Photoz"],
        atoms: &["Photoz.z <= 0.1", "Photoz.z >= 0"],
    },
    // IN subquery with BETWEEN inside plus an outer conjunct (Cluster 17).
    ExtractionCase {
        sql: "SELECT * FROM sppLines WHERE specobjid IN \
              (SELECT specobjid FROM sppParams WHERE fehadop BETWEEN -0.3 AND 0.5) \
              AND gwholemask = 0",
        tables: &["sppLines", "sppParams"],
        atoms: &[
            "sppLines.gwholemask = 0",
            "sppLines.specobjid = sppParams.specobjid",
            "sppParams.fehadop <= 0.5",
            "sppParams.fehadop >= -0.3",
        ],
    },
    // Database-qualified bracketed table: only the base name survives.
    ExtractionCase {
        sql: "SELECT TOP 20 * FROM [BESTDR9]..[PhotoObjAll] WHERE [ra] < 10 AND [dec] >= -1.5",
        tables: &["PhotoObjAll"],
        atoms: &["PhotoObjAll.dec >= -1.5", "PhotoObjAll.ra < 10"],
    },
];

#[test]
fn extraction_corpus_pins_predicate_sets() {
    for case in EXTRACTION_CORPUS {
        let area = Extractor::new(&NoSchema)
            .extract_sql(case.sql)
            .unwrap_or_else(|e| panic!("{}: {e}", case.sql));
        let tables: Vec<&str> = area.table_names().collect();
        assert_eq!(tables, case.tables, "tables of {}", case.sql);
        let mut atoms: Vec<String> =
            area.constraint.atoms().map(|a| a.to_string()).collect();
        atoms.sort();
        assert_eq!(atoms, case.atoms, "atoms of {}", case.sql);
        assert!(area.exact, "{} should extract exactly", case.sql);
    }
}

#[test]
fn extraction_corpus_round_trips_through_parser() {
    // The intermediate form of every extraction-corpus query is itself
    // parseable SQL (the paper's q̄ is a well-formed SELECT).
    for case in EXTRACTION_CORPUS {
        let area = Extractor::new(&NoSchema).extract_sql(case.sql).unwrap();
        let rendered = area.to_intermediate_sql();
        parse_select(&rendered)
            .unwrap_or_else(|e| panic!("`{rendered}` unparseable: {e}"));
    }
}

// ---- fingerprint round-trip -----------------------------------------------
//
// The serving layer caches extractions under `aa_sql::fingerprint`, so the
// soundness property it relies on is pinned here: equal fingerprints imply
// equal predicate sets. Each extraction-corpus query is re-rendered with
// randomized keyword casing, whitespace, and injected comments; the mangled
// text must fingerprint identically and extract the identical area.

/// Re-renders `sql` token by token with mangled trivia and keyword casing.
fn mangle_sql(sql: &str, src: &mut Source) -> String {
    let tokens = aa_sql::lexer::Lexer::tokenize(sql).expect("corpus lexes");
    let mut out = String::new();
    for st in &tokens {
        if st.token == aa_sql::token::Token::Eof {
            break;
        }
        if !out.is_empty() {
            match src.usize_in(0, 6) {
                0 => out.push_str("  "),
                1 => out.push('\n'),
                2 => out.push('\t'),
                3 => out.push_str(" /* noise */ "),
                4 => out.push_str(" -- tail noise\n"),
                _ => out.push(' '),
            }
        }
        match &st.token {
            aa_sql::token::Token::Keyword(kw) => {
                for ch in kw.as_str().chars() {
                    if src.bool(0.5) {
                        out.extend(ch.to_lowercase());
                    } else {
                        out.push(ch);
                    }
                }
            }
            tok => {
                use std::fmt::Write as _;
                let _ = write!(out, "{tok}");
            }
        }
    }
    out
}

#[test]
fn equal_fingerprints_imply_equal_predicate_sets() {
    use aa_sql::fingerprint;
    check(Config::cases(96), |src| {
        let case = &EXTRACTION_CORPUS[src.usize_in(0, EXTRACTION_CORPUS.len())];
        let mangled = mangle_sql(case.sql, src);
        assert_eq!(
            fingerprint(case.sql),
            fingerprint(&mangled),
            "mangling changed the fingerprint of {}",
            case.sql
        );
        let area = Extractor::new(&NoSchema).extract_sql(&mangled).unwrap();
        let tables: Vec<&str> = area.table_names().collect();
        assert_eq!(tables, case.tables, "tables of mangled {}", case.sql);
        let mut atoms: Vec<String> = area.constraint.atoms().map(|a| a.to_string()).collect();
        atoms.sort();
        assert_eq!(atoms, case.atoms, "atoms of mangled {}", case.sql);
    });
}

#[test]
fn corpus_fingerprints_are_pairwise_distinct() {
    use aa_sql::fingerprint;
    use std::collections::HashMap;
    let mut seen: HashMap<String, &str> = HashMap::new();
    for case in EXTRACTION_CORPUS {
        if let Some(prev) = seen.insert(fingerprint(case.sql), case.sql) {
            panic!("fingerprint collision: {} vs {}", prev, case.sql);
        }
    }
}

// ---- semantically broken corpus -------------------------------------------
//
// Queries that parse — and mostly even extract — but are wrong against the
// DR9 schema. Each entry pins the exact Error-severity diagnostic codes the
// analyzer must produce (warnings may ride along; only errors gate Strict).

struct BrokenCase {
    sql: &'static str,
    /// Expected `Error`-severity codes, sorted.
    errors: &'static [&'static str],
}

const BROKEN_CORPUS: &[BrokenCase] = &[
    // Unknown column, in projection and predicate.
    BrokenCase {
        sql: "SELECT colr FROM PhotoObjAll WHERE colr > 0.3",
        errors: &["E002", "E002"],
    },
    // Unknown column behind a resolved alias.
    BrokenCase {
        sql: "SELECT p.magnitude FROM PhotoObjAll p WHERE p.ra > 100",
        errors: &["E002"],
    },
    // `objid` exists on both sides of the join.
    BrokenCase {
        sql: "SELECT objid FROM PhotoObjAll p, Galaxies g WHERE p.objid = g.objid",
        errors: &["E003"],
    },
    // Redshift compared with a string.
    BrokenCase {
        sql: "SELECT z FROM SpecObjAll WHERE z > 'high'",
        errors: &["E004"],
    },
    // `DBObjects.type` is text; 7 is not.
    BrokenCase {
        sql: "SELECT name FROM DBObjects WHERE type = 7",
        errors: &["E004"],
    },
    // `LIKE` over a numeric column.
    BrokenCase {
        sql: "SELECT plate FROM SpecObjAll WHERE plate LIKE '29%'",
        errors: &["E004"],
    },
    // `SUM(*)` is not SQL.
    BrokenCase {
        sql: "SELECT SUM(*) FROM SpecObjAll WHERE plate = 296",
        errors: &["E005"],
    },
    // Averaging a classification string.
    BrokenCase {
        sql: "SELECT AVG(class) FROM SpecObjAll WHERE z > 2",
        errors: &["E005"],
    },
    // A numeric column is not a condition.
    BrokenCase {
        sql: "SELECT ra FROM PhotoObjAll WHERE ra",
        errors: &["E006"],
    },
    // ... nor is a string literal conjunct.
    BrokenCase {
        sql: "SELECT ra FROM PhotoObjAll WHERE ra > 1 AND 'yes'",
        errors: &["E006"],
    },
];

#[test]
fn broken_corpus_pins_error_codes() {
    let schema = aa_skyserver::Dr9Schema::new();
    let analyzer = aa_analyze::Analyzer::new(&schema);
    for case in BROKEN_CORPUS {
        let diags = analyzer
            .check_sql(case.sql)
            .unwrap_or_else(|e| panic!("{}: {e}", case.sql));
        let mut errors: Vec<&str> = diags
            .iter()
            .filter(|d| d.severity == aa_core::Severity::Error)
            .map(|d| d.code)
            .collect();
        errors.sort_unstable();
        assert_eq!(errors, case.errors, "error codes of {}", case.sql);
    }
}

#[test]
fn strict_gate_rejects_broken_and_accepts_extraction_corpus() {
    let schema = aa_skyserver::Dr9Schema::new();
    let analyzer = aa_analyze::Analyzer::new(&schema);
    let pipeline = aa_core::Pipeline::new(&NoSchema)
        .with_analyzer(&analyzer, aa_core::AnalyzeMode::Strict);
    for case in BROKEN_CORPUS {
        let err = pipeline
            .process(0, case.sql)
            .expect_err(&format!("strict should reject {}", case.sql));
        assert_eq!(err.kind, aa_core::FailureKind::SemanticError, "{}", case.sql);
    }
    for case in EXTRACTION_CORPUS {
        pipeline
            .process(0, case.sql)
            .unwrap_or_else(|e| panic!("strict rejected {}: {}", case.sql, e.message));
    }
}

// ---- property tests -------------------------------------------------------

/// `[a-z][a-z0-9_]{0,8}`, never a keyword.
fn ident(src: &mut Source) -> String {
    loop {
        let s = src.ident(8);
        if aa_sql::token::Keyword::from_word(&s).is_none() {
            return s;
        }
    }
}

fn literal(src: &mut Source) -> String {
    match src.usize_in(0, 3) {
        0 => src.int_in(-1000, 1000).to_string(),
        1 => format!("{:.3}", src.f64_in(-100.0, 100.0)),
        _ => {
            let n = src.usize_in(1, 7);
            let s: String = (0..n)
                .map(|_| (b'a' + src.usize_in(0, 26) as u8) as char)
                .collect();
            format!("'{s}'")
        }
    }
}

fn predicate(src: &mut Source) -> String {
    let c = ident(src);
    let op = *src.choice(&["=", "<>", "<", "<=", ">", ">="]);
    let l = literal(src);
    format!("{c} {op} {l}")
}

fn bool_expr(src: &mut Source, depth: u32) -> String {
    if depth == 0 || !src.bool(0.6) {
        return predicate(src);
    }
    match src.usize_in(0, 3) {
        0 => format!(
            "({} AND {})",
            bool_expr(src, depth - 1),
            bool_expr(src, depth - 1)
        ),
        1 => format!(
            "({} OR {})",
            bool_expr(src, depth - 1),
            bool_expr(src, depth - 1)
        ),
        _ => format!("NOT ({})", bool_expr(src, depth - 1)),
    }
}

#[test]
fn generated_where_clauses_round_trip() {
    check(Config::cases(192), |src| {
        let table = ident(src);
        let clause = bool_expr(src, 4);
        let sql = format!("SELECT * FROM {table} WHERE {clause}");
        let ast = parse_select(&sql).unwrap();
        let printed = ast.to_string();
        let reparsed = parse_select(&printed).unwrap();
        assert_eq!(ast, reparsed);
    });
}

#[test]
fn extractable_queries_have_no_semantic_errors_open_world() {
    // Open-world soundness of the analyzer: a generated query over tables
    // the DR9 catalog does not know can warn (W001) but must never produce
    // an Error-severity diagnostic — the binder has nothing to contradict,
    // so anything the extractor accepts must pass the strict gate too.
    let schema = aa_skyserver::Dr9Schema::new();
    let analyzer = aa_analyze::Analyzer::new(&schema);
    let extractor = Extractor::new(&NoSchema);
    let dr9: Vec<String> = schema
        .table_names()
        .iter()
        .map(|t| t.to_lowercase())
        .collect();
    check(Config::cases(192), |src| {
        // A table name the catalog has never heard of.
        let table = loop {
            let t = ident(src);
            if !dr9.contains(&t) {
                break t;
            }
        };
        let clause = bool_expr(src, 3);
        let sql = format!("SELECT * FROM {table} WHERE {clause}");
        let select = parse_select(&sql).unwrap();
        if extractor.extract(&select).is_err() {
            return;
        }
        let diags = analyzer.check(&select);
        assert!(
            diags
                .iter()
                .all(|d| d.severity != aa_core::Severity::Error),
            "{sql} produced semantic errors: {diags:?}"
        );
    });
}

#[test]
fn lexer_never_panics_on_arbitrary_input() {
    check(Config::cases(192), |src| {
        // Arbitrary printable (non-control) unicode, up to 120 chars.
        let n = src.usize_in(0, 121);
        let input: String = (0..n)
            .map(|_| loop {
                // Bias toward ASCII so SQL-adjacent shapes appear often.
                let cp = if src.bool(0.7) {
                    src.int_in(0x20, 0x7F) as u32
                } else {
                    src.int_in(0x20, 0x11_0000) as u32
                };
                if let Some(c) = char::from_u32(cp) {
                    if !c.is_control() {
                        break c;
                    }
                }
            })
            .collect();
        // Errors are fine; panics are not.
        let _ = parse_select(&input);
    });
}

#[test]
fn projection_lists_round_trip() {
    check(Config::cases(192), |src| {
        let cols = src.vec_of(1, 6, ident);
        let sql = format!("SELECT {} FROM T", cols.join(", "));
        let ast = parse_select(&sql).unwrap();
        let reparsed = parse_select(&ast.to_string()).unwrap();
        assert_eq!(ast, reparsed);
    });
}

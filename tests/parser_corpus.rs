//! Parser corpus: SkyServer-style statements that must parse and
//! round-trip (`parse(display(ast)) == ast`), plus property tests over
//! generated predicate grammars.

use aa_sql::{parse_select, ParseErrorKind};
use proptest::prelude::*;

/// Queries modelled on real SkyServer log idioms.
const CORPUS: &[&str] = &[
    "SELECT TOP 10 * FROM PhotoObjAll",
    "SELECT objID, ra, dec FROM PhotoObjAll WHERE ra BETWEEN 179.5 AND 182.3 AND dec BETWEEN -1.0 AND 1.8",
    "select top 100 p.objid, p.ra, p.dec, p.u, p.g, p.r, p.i, p.z from photoobjall p where p.u - p.g < 0.4 and p.g - p.r < 0.7",
    "SELECT s.specobjid, s.plate, s.mjd FROM SpecObjAll s WHERE s.class = 'QSO' AND s.z BETWEEN 0.3 AND 0.4",
    "SELECT * FROM SpecObjAll WHERE plate=751 AND mjd=52251",
    "SELECT COUNT(*) FROM PhotoObjAll WHERE type = 6",
    "SELECT class, COUNT(*) AS n FROM SpecObjAll GROUP BY class HAVING COUNT(*) > 1000 ORDER BY n DESC",
    "SELECT p.ra, p.dec FROM PhotoObjAll AS p INNER JOIN SpecObjAll AS s ON s.specobjid = p.objid WHERE s.class = 'galaxy'",
    "SELECT * FROM T FULL OUTER JOIN S ON (T.u = S.u)",
    "SELECT * FROM zooSpec WHERE dec >= -100 AND dec <= -15",
    "SELECT objid FROM Galaxies LIMIT 10",
    "SELECT g.objid FROM Galaxies g WHERE g.ra > 100 LIMIT 25",
    "SELECT DISTINCT class FROM SpecObjAll WHERE z IS NOT NULL",
    "SELECT * FROM T WHERE u IN (1, 2, 3) AND v NOT IN (4, 5)",
    "SELECT * FROM T WHERE u IN (SELECT u FROM S WHERE w > 2)",
    "SELECT * FROM T WHERE EXISTS (SELECT * FROM S WHERE S.u = T.u) AND NOT EXISTS (SELECT * FROM R WHERE R.u = T.u)",
    "SELECT * FROM T WHERE u > ANY (SELECT u FROM S) OR u <= ALL (SELECT w FROM S)",
    "SELECT name FROM [DBObjects] WHERE [access] = 'U'",
    "SELECT * FROM BESTDR9..PhotoObjAll WHERE ra < 10",
    "SELECT CASE WHEN z < 0.1 THEN 'near' WHEN z < 1 THEN 'mid' ELSE 'far' END AS bucket, COUNT(*) FROM Photoz GROUP BY CASE WHEN z < 0.1 THEN 'near' WHEN z < 1 THEN 'mid' ELSE 'far' END",
    "SELECT CAST(z AS numeric(6,3)) FROM Photoz WHERE z > 0",
    "SELECT TOP 50 PERCENT * FROM sppLines ORDER BY specobjid",
    "SELECT * FROM (SELECT plate, mjd FROM SpecObjAll WHERE class = 'star') AS stars WHERE stars.plate > 300",
    "SELECT * FROM T WHERE NOT (u > 5 AND v <= 10)",
    "SELECT 1 + 2 * 3",
    "SELECT * FROM sppLines spp, sppParams par WHERE spp.specobjid = par.specobjid AND par.fehadop BETWEEN -0.3 AND 0.5",
    "-- leading comment\nSELECT * FROM T /* block */ WHERE u = 1",
    "SELECT * INTO #mytable FROM SpecObjAll WHERE z > 2",
];

#[test]
fn corpus_parses_and_round_trips() {
    for sql in CORPUS {
        let ast = parse_select(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let printed = ast.to_string();
        let reparsed = parse_select(&printed)
            .unwrap_or_else(|e| panic!("printed `{printed}` does not reparse: {e}"));
        assert_eq!(ast, reparsed, "round trip changed `{sql}` -> `{printed}`");
    }
}

#[test]
fn rejection_corpus_is_classified() {
    for (sql, kind) in [
        ("CREATE TABLE x (y int)", ParseErrorKind::NotSelect),
        ("DECLARE @x int", ParseErrorKind::NotSelect),
        ("INSERT INTO t VALUES (1)", ParseErrorKind::NotSelect),
        ("SELEC * FORM T", ParseErrorKind::Syntax),
        ("SELECT * FROM", ParseErrorKind::Syntax),
        ("SELECT * FROM T WHERE", ParseErrorKind::Syntax),
        ("SELECT * FROM T WHERE u >> 1", ParseErrorKind::Syntax),
        ("SELECT u FROM T UNION SELECT u FROM S", ParseErrorKind::Unsupported),
        (
            "SELECT * FROM dbo.fGetNearbyObjEq(180.0, 0.0, 1.0)",
            ParseErrorKind::Unsupported,
        ),
    ] {
        let err = parse_select(sql).unwrap_err();
        assert_eq!(err.kind, kind, "{sql}: {err}");
    }
}

// ---- property tests -------------------------------------------------------

fn ident() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_]{0,8}".prop_filter("not a keyword", |s| {
        aa_sql::token::Keyword::from_word(s).is_none()
    })
}

fn literal() -> impl Strategy<Value = String> {
    prop_oneof![
        (-1000i64..1000).prop_map(|i| i.to_string()),
        (-100.0..100.0f64).prop_map(|f| format!("{f:.3}")),
        "[a-z]{1,6}".prop_map(|s| format!("'{s}'")),
    ]
}

fn predicate() -> impl Strategy<Value = String> {
    (
        ident(),
        prop_oneof![Just("="), Just("<>"), Just("<"), Just("<="), Just(">"), Just(">=")],
        literal(),
    )
        .prop_map(|(c, op, l)| format!("{c} {op} {l}"))
}

fn bool_expr() -> impl Strategy<Value = String> {
    predicate().prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} AND {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} OR {b})")),
            inner.prop_map(|a| format!("NOT ({a})")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn generated_where_clauses_round_trip(table in ident(), clause in bool_expr()) {
        let sql = format!("SELECT * FROM {table} WHERE {clause}");
        let ast = parse_select(&sql).unwrap();
        let printed = ast.to_string();
        let reparsed = parse_select(&printed).unwrap();
        prop_assert_eq!(ast, reparsed);
    }

    #[test]
    fn lexer_never_panics_on_arbitrary_input(input in "\\PC{0,120}") {
        // Errors are fine; panics are not.
        let _ = parse_select(&input);
    }

    #[test]
    fn projection_lists_round_trip(cols in proptest::collection::vec(ident(), 1..6)) {
        let sql = format!("SELECT {} FROM T", cols.join(", "));
        let ast = parse_select(&sql).unwrap();
        let reparsed = parse_select(&ast.to_string()).unwrap();
        prop_assert_eq!(ast, reparsed);
    }
}

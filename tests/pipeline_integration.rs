//! End-to-end pipeline integration: log → extraction → ranges →
//! clustering → aggregation → coverage, at test scale.

use aa_bench::{aggregate_cluster, cluster_areas, coverage, prepare, ExperimentConfig};
use aa_core::AccessArea;
use aa_skyserver::{evaluate, GroundTruth, LogConfig, TABLE1};

fn config() -> ExperimentConfig {
    ExperimentConfig {
        log: LogConfig::small(2_500, 21),
        catalog_scale: 0.03,
        ..ExperimentConfig::default()
    }
}

#[test]
fn full_pipeline_recovers_table1_structure() {
    let cfg = config();
    let data = prepare(&cfg);

    // Section 6.1 shape: >99% extraction.
    assert!(
        data.stats.extraction_rate() > 0.99,
        "extraction rate {:.4}",
        data.stats.extraction_rate()
    );

    let areas: Vec<AccessArea> = data.extracted.iter().map(|q| q.area.clone()).collect();
    let result = cluster_areas(&areas, &data.ranges, &cfg.dbscan, cfg.distance_mode, 2);
    let report = evaluate(&data.truths, &result.labels, result.cluster_count);

    // At this small scale every planted cluster must still be recovered.
    assert_eq!(
        report.recovered_count(),
        24,
        "recovered {}/24: {:?}",
        report.recovered_count(),
        report
            .per_cluster
            .iter()
            .filter(|c| !c.is_recovered())
            .map(|c| (c.planted, c.recall, c.precision))
            .collect::<Vec<_>>()
    );

    // Aggregate each planted cluster and check coverage signs.
    let clusters = result.clusters();
    for spec in TABLE1 {
        let rec = report
            .per_cluster
            .iter()
            .find(|c| c.planted == spec.id)
            .unwrap();
        let dbscan_id = rec.found_cluster.unwrap();
        let members: Vec<&AccessArea> =
            clusters[dbscan_id].iter().map(|&i| &areas[i]).collect();
        let agg = aggregate_cluster(dbscan_id, &members);
        let cov = coverage(&agg, &data.catalog);
        if spec.empty_area {
            assert!(
                cov.area < 0.02,
                "cluster {} should be (nearly) empty, area coverage {}",
                spec.id,
                cov.area
            );
            assert!(
                cov.object < 0.02,
                "cluster {} object coverage {}",
                spec.id,
                cov.object
            );
        } else if spec.id != 16 {
            // Cluster 16's integer-range box over a 6-value column is a
            // known coverage overestimate (documented in EXPERIMENTS.md).
            assert!(
                (cov.area - spec.area_coverage).abs() < 0.12,
                "cluster {}: paper area {} vs ours {}",
                spec.id,
                spec.area_coverage,
                cov.area
            );
        }
    }
}

#[test]
fn mysql_dialect_queries_flow_through_the_pipeline() {
    let data = prepare(&config());
    let planted = data
        .log
        .iter()
        .filter(|e| e.truth == GroundTruth::MySqlDialect)
        .count();
    assert!(planted > 0);
    assert_eq!(data.stats.mysql_dialect, planted, "all dialect queries extracted");
}

#[test]
fn failures_are_exactly_the_pathological_entries() {
    let data = prepare(&config());
    for failure in &data.failed {
        assert!(
            matches!(
                data.log[failure.log_index].truth,
                GroundTruth::Pathological(_)
            ),
            "unexpected failure on {:?}: {}",
            data.log[failure.log_index].truth,
            data.log[failure.log_index].sql
        );
    }
    let pathological = data
        .log
        .iter()
        .filter(|e| matches!(e.truth, GroundTruth::Pathological(_)))
        .count();
    assert_eq!(data.failed.len(), pathological);
}

#[test]
fn empty_area_queries_extract_but_lie_outside_content() {
    let data = prepare(&config());
    // Every cluster-23 query (Photoz.z in [-0.98, -0.1]) extracts an area
    // disjoint from the content (z >= 0).
    let mut checked = 0;
    for q in &data.extracted {
        if data.truths[q.log_index.min(data.truths.len() - 1)] != GroundTruth::Cluster(23) {
            continue;
        }
    }
    for (q, truth) in data.extracted.iter().zip(&data.truths) {
        if *truth != GroundTruth::Cluster(23) {
            continue;
        }
        let intervals = q.area.conjunctive_intervals();
        let (_, iv) = intervals
            .iter()
            .find(|(c, _)| c.column.eq_ignore_ascii_case("z"))
            .expect("z constrained");
        assert!(iv.hi < 0.0, "area should sit below content: {}", q.area);
        checked += 1;
    }
    assert!(checked > 0);
}

//! Clustering-recovery robustness: the Table 1 structure must survive
//! different seeds, and the DBSCAN invariants must hold on the real
//! access-area metric (not just synthetic points).

use aa_bench::{cluster_areas, prepare, ExperimentConfig};
use aa_core::{AccessArea, DistanceMode, QueryDistance};
use aa_dbscan::Label;
use aa_skyserver::{evaluate, LogConfig};

fn run(seed: u64) -> (Vec<AccessArea>, aa_core::AccessRanges, Vec<aa_skyserver::GroundTruth>, aa_dbscan::DbscanResult, aa_dbscan::DbscanParams)
{
    let cfg = ExperimentConfig {
        log: LogConfig::small(2_000, seed),
        catalog_scale: 0.02,
        catalog_seed: seed + 1,
        ..ExperimentConfig::default()
    };
    let data = prepare(&cfg);
    let areas: Vec<AccessArea> = data.extracted.iter().map(|q| q.area.clone()).collect();
    let result = cluster_areas(&areas, &data.ranges, &cfg.dbscan, cfg.distance_mode, 2);
    (areas, data.ranges, data.truths, result, cfg.dbscan)
}

#[test]
fn recovery_is_stable_across_seeds() {
    for seed in [3u64, 11, 29] {
        let (_, _, truths, result, _) = run(seed);
        let report = evaluate(&truths, &result.labels, result.cluster_count);
        assert!(
            report.recovered_count() >= 22,
            "seed {seed}: only {}/24 recovered",
            report.recovered_count()
        );
    }
}

#[test]
fn dbscan_invariants_hold_on_access_area_metric() {
    let (areas, ranges, _, result, params) = run(5);
    let metric = QueryDistance::with_mode(&ranges, DistanceMode::Dissimilarity);

    // Invariant 1: every noise point has fewer than min_pts neighbours.
    let neighbours = |i: usize| -> usize {
        areas
            .iter()
            .filter(|b| metric.distance(&areas[i], b) <= params.eps)
            .count()
    };
    let noise: Vec<usize> = result
        .labels
        .iter()
        .enumerate()
        .filter(|(_, l)| **l == Label::Noise)
        .map(|(i, _)| i)
        .take(20)
        .collect();
    for i in noise {
        assert!(
            neighbours(i) < params.min_pts,
            "noise point {i} has a dense neighbourhood"
        );
    }

    // Invariant 2: core points' neighbourhoods are fully assigned to the
    // same cluster (spot-check a sample).
    let mut checked = 0;
    for i in (0..areas.len()).step_by(97) {
        let Label::Cluster(cid) = result.labels[i] else {
            continue;
        };
        let neigh: Vec<usize> = areas
            .iter()
            .enumerate()
            .filter(|(_, b)| metric.distance(&areas[i], b) <= params.eps)
            .map(|(j, _)| j)
            .collect();
        if neigh.len() >= params.min_pts {
            for j in neigh {
                assert!(
                    result.labels[j].cluster().is_some(),
                    "neighbour {j} of core point {i} is noise"
                );
                // Two *core* points within eps are density-connected and
                // must share a cluster. (A border neighbour may instead be
                // claimed by another cluster that reached it first — that
                // is legitimate DBSCAN behaviour, not an invariant breach.)
                let j_is_core = areas
                    .iter()
                    .filter(|b| metric.distance(&areas[j], b) <= params.eps)
                    .count()
                    >= params.min_pts;
                if j_is_core {
                    assert_eq!(result.labels[j], Label::Cluster(cid));
                }
            }
            checked += 1;
        }
        if checked >= 10 {
            break;
        }
    }
    assert!(checked > 0, "no core points sampled");
}

#[test]
fn distance_function_is_a_well_behaved_dissimilarity() {
    let (areas, ranges, _, _, _) = run(7);
    let metric = QueryDistance::with_mode(&ranges, DistanceMode::Dissimilarity);
    let step = (areas.len() / 40).max(1);
    let sample: Vec<&AccessArea> = areas.iter().step_by(step).collect();
    for (i, a) in sample.iter().enumerate() {
        // Identity: d(a, a) == 0.
        assert_eq!(metric.distance(a, a), 0.0);
        for b in sample.iter().skip(i + 1) {
            let d1 = metric.distance(a, b);
            let d2 = metric.distance(b, a);
            // Symmetry and non-negativity.
            assert!(d1 >= 0.0);
            assert!((d1 - d2).abs() < 1e-12, "asymmetric: {d1} vs {d2}");
            // Bounded by d_tables + 1 (both parts are normalised).
            assert!(d1 <= 2.0 + 1e-9, "distance {d1} out of range");
        }
    }
}

#[test]
fn optics_extraction_recovers_like_dbscan() {
    // The paper's future work: a different clustering algorithm over the
    // same access areas. OPTICS with an eps-cut extraction should recover
    // the planted structure just as DBSCAN does.
    let (areas, ranges, truths, _, params) = run(17);
    let metric = QueryDistance::with_mode(&ranges, DistanceMode::Dissimilarity);
    let distance = |a: &AccessArea, b: &AccessArea| metric.distance(a, b);
    let ordering = aa_dbscan::optics(&areas, &params, distance);
    let result = ordering.extract_clustering(params.eps, params.min_pts);
    let report = evaluate(&truths, &result.labels, result.cluster_count);
    assert!(
        report.recovered_count() >= 22,
        "OPTICS recovered only {}/24",
        report.recovered_count()
    );
}

//! Chaos and resilience suite for the hardened log runner.
//!
//! Three contracts from the robustness milestone, proven end to end over
//! the synthetic DR9 log:
//!
//! 1. **Chaos acceptance** — a fault-injected run over ≥1,000 queries
//!    completes without crashing, every injected fault is recorded under
//!    the [`FailureKind`] its [`FaultKind`] maps to, and the non-faulted
//!    queries produce byte-identical areas to a clean run.
//! 2. **Checkpoint/resume determinism** — a run killed mid-log (via
//!    `max_chunks`) and then resumed produces exactly the same areas
//!    sidecar and deterministic stats (including the analyzer's
//!    diagnostic histogram) as a one-shot run.
//! 3. **Quarantine round-trip** — the quarantine sidecar re-reads into
//!    the same records, and replaying each quarantined query under the
//!    same budget config reproduces the same failure-kind histogram.

use aa_analyze::Analyzer;
use aa_core::{
    areas_sidecar, failure_histogram, read_quarantine, AnalyzeMode, ExtractedQuery, FailureKind,
    FaultKind, FaultPlan, LogRunner, NoSchema, Pipeline, RunnerConfig,
};
use aa_skyserver::{generate_log, Dr9Schema, LogConfig};
use aa_util::ToJson;
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

fn synthetic_log(total: usize, seed: u64) -> Vec<String> {
    generate_log(&LogConfig {
        total,
        seed,
        ..LogConfig::default()
    })
    .into_iter()
    .map(|e| e.sql)
    .collect()
}

/// Per-process unique temp path so parallel test binaries never collide.
fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("aa_runner_chaos_{}_{name}", std::process::id()));
    p
}

/// The byte-comparable identity of an extracted query: everything the
/// downstream analysis consumes, rendered deterministically (timings are
/// excluded by design — they vary run to run).
fn area_key(q: &ExtractedQuery) -> String {
    format!(
        "{}|{}|{}",
        q.log_index,
        q.mysql_dialect,
        q.area.to_json().to_string_compact()
    )
}

#[test]
fn chaos_run_survives_and_accounts_for_every_fault() {
    let log = synthetic_log(1_200, 7);
    assert!(log.len() >= 1_000);
    let provider = NoSchema;
    let pipeline = Pipeline::new(&provider);

    // Clean baseline.
    let clean = LogRunner::new(&pipeline, RunnerConfig::new())
        .run(&log)
        .unwrap();
    assert_eq!(clean.stats.total, log.len());
    let clean_by_index: BTreeMap<usize, String> = clean
        .extracted
        .iter()
        .map(|q| (q.log_index, area_key(q)))
        .collect();

    // Restrict the plan to cleanly-extracting indices: those queries
    // reach every stage, so each planned fault is *guaranteed* to fire
    // and the "every fault accounted for" assertion is exact.
    let plan = FaultPlan::seeded_over(99, clean_by_index.keys().copied(), 0.08);
    let planned: Vec<(usize, FaultKind)> = plan.iter().collect();
    assert!(planned.len() >= 40, "want a meaningful plan, got {}", planned.len());

    let config = RunnerConfig {
        fault_plan: Some(plan),
        ..RunnerConfig::new()
    };
    let chaos = LogRunner::new(&pipeline, config).run(&log).unwrap();

    // The run survived and nothing was dropped.
    assert_eq!(chaos.stats.total, log.len());
    assert_eq!(chaos.extracted.len() + chaos.failed.len(), log.len());
    assert_eq!(chaos.faults_fired, planned.len());
    assert_eq!(
        chaos.extracted.len(),
        clean.extracted.len() - planned.len()
    );

    // Every injected fault surfaced under its taxonomy entry.
    for (idx, kind) in &planned {
        let f = chaos
            .failed
            .iter()
            .find(|f| f.log_index == *idx)
            .unwrap_or_else(|| panic!("fault at index {idx} not recorded"));
        assert_eq!(
            f.kind,
            kind.expected_failure(),
            "index {idx}, fault {kind:?}, message {:?}",
            f.message
        );
    }
    let injected_internal = planned
        .iter()
        .filter(|(_, k)| k.expected_failure() == FailureKind::Internal)
        .count();
    let injected_budget = planned.len() - injected_internal;
    assert_eq!(chaos.stats.internal_errors, injected_internal);
    assert_eq!(chaos.stats.budget_exceeded, injected_budget);

    // Non-faulted queries are byte-identical to the clean run.
    let faulted: BTreeSet<usize> = planned.iter().map(|(i, _)| *i).collect();
    for q in &chaos.extracted {
        assert!(!faulted.contains(&q.log_index));
        assert_eq!(area_key(q), clean_by_index[&q.log_index]);
    }
}

#[test]
fn killed_and_resumed_run_equals_one_shot() {
    let mut log = synthetic_log(600, 11);
    // Cartesian joins make the analyzer's diagnostic histogram (W002)
    // non-empty, so its checkpoint round-trip is exercised too.
    for i in 0..5 {
        log.push(format!(
            "SELECT * FROM PhotoObjAll, SpecObjAll WHERE PhotoObjAll.ra > {i}"
        ));
    }
    let provider = NoSchema;
    let schema = Dr9Schema::new();
    let analyzer = Analyzer::new(&schema);
    let pipeline = Pipeline::new(&provider).with_analyzer(&analyzer, AnalyzeMode::Warn);

    let ckpt_one = temp_path("oneshot.ckpt.json");
    let ckpt_two = temp_path("resumed.ckpt.json");

    let one = LogRunner::new(
        &pipeline,
        RunnerConfig {
            checkpoint: Some(ckpt_one.clone()),
            chunk_size: 128,
            ..RunnerConfig::new()
        },
    )
    .run(&log)
    .unwrap();
    assert_eq!(one.end_offset, log.len());
    assert!(
        !one.stats.diagnostic_counts.is_empty(),
        "test needs a non-empty diagnostic histogram to be meaningful"
    );

    // "Kill" the second run after two chunks (the checkpoint survives),
    // then resume it to completion.
    let killed = LogRunner::new(
        &pipeline,
        RunnerConfig {
            checkpoint: Some(ckpt_two.clone()),
            chunk_size: 128,
            max_chunks: Some(2),
            ..RunnerConfig::new()
        },
    )
    .run(&log)
    .unwrap();
    assert_eq!(killed.end_offset, 256);

    let resumed = LogRunner::new(
        &pipeline,
        RunnerConfig {
            checkpoint: Some(ckpt_two.clone()),
            chunk_size: 128,
            resume: true,
            ..RunnerConfig::new()
        },
    )
    .run(&log)
    .unwrap();
    assert_eq!(resumed.start_offset, 256);
    assert_eq!(resumed.end_offset, log.len());

    // Deterministic stats — totals, the full failure taxonomy, and the
    // per-code diagnostic histogram — identical to the one-shot run.
    assert_eq!(resumed.stats.to_json(), one.stats.to_json());

    // The areas sidecar (the run's actual output) is byte-identical.
    let a = std::fs::read(areas_sidecar(&ckpt_one)).unwrap();
    let b = std::fs::read(areas_sidecar(&ckpt_two)).unwrap();
    assert!(!a.is_empty());
    assert_eq!(a, b);

    for p in [&ckpt_one, &ckpt_two] {
        let _ = std::fs::remove_file(areas_sidecar(p));
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn quarantine_sidecar_replays_to_the_same_histogram() {
    // A hostile mix: syntax errors, non-SELECT, UDF calls, plus a fuel
    // budget tight enough to reject the longer (still valid) queries.
    let log: Vec<String> = vec![
        "SELECT * FROM T WHERE u > 1".to_string(),
        "SELEC * FORM T".to_string(),
        "DROP TABLE Students".to_string(),
        "SELECT dbo.fGetNearbyObjEq(185.0, 0.0, 2.0) FROM PhotoObjAll".to_string(),
        "SELECT * FROM SpecObjAll WHERE plate BETWEEN 296 AND 3200 AND fiberid < 400".to_string(),
        "SELECT * FROM PhotoObjAll WHERE ra > 180 AND ra < 200 AND dec > 0 AND dec < 10".to_string(),
        "SELECT objid FROM Galaxies".to_string(),
        "INSERT INTO T VALUES (1)".to_string(),
        "SELECT * FROM T WHERE".to_string(),
    ];
    let provider = NoSchema;
    let pipeline = Pipeline::new(&provider);
    let qpath = temp_path("quarantine.jsonl");
    let config = RunnerConfig {
        fuel: Some(60),
        quarantine: Some(qpath.clone()),
        ..RunnerConfig::new()
    };
    let report = LogRunner::new(&pipeline, config).run(&log).unwrap();
    assert!(report.failed.len() >= 5, "{}", report.failed.len());

    // Round-trip: the sidecar re-reads into exactly the failures we saw.
    let records = read_quarantine(&qpath).unwrap();
    assert_eq!(records.len(), report.failed.len());
    for (r, f) in records.iter().zip(&report.failed) {
        assert_eq!(r.log_index, f.log_index);
        assert_eq!(r.kind, f.kind);
        assert_eq!(r.message, f.message);
        assert_eq!(r.sql, log[f.log_index]);
    }
    let hist = failure_histogram(&records);
    assert!(
        hist.len() >= 3,
        "want several distinct failure kinds, got {hist:?}"
    );
    assert!(hist.contains_key(&FailureKind::BudgetExceeded), "{hist:?}");

    // Replay every quarantined query under the same budget config: each
    // fails again, and the histogram is reproduced exactly.
    let replay_cfg = RunnerConfig {
        fuel: Some(60),
        ..RunnerConfig::new()
    };
    let mut replay_hist: BTreeMap<FailureKind, usize> = BTreeMap::new();
    for r in &records {
        let rep = LogRunner::new(&pipeline, replay_cfg.clone())
            .run(&[r.sql.as_str()])
            .unwrap();
        assert_eq!(rep.failed.len(), 1, "replay of {:?} must fail", r.sql);
        *replay_hist.entry(rep.failed[0].kind).or_insert(0) += 1;
    }
    assert_eq!(replay_hist, hist);

    let _ = std::fs::remove_file(&qpath);
}

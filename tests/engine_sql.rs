//! Cross-crate engine conformance: execute template-generated queries on
//! the synthetic catalog, and check consistency between the executor and
//! the extractor on content-only queries (for queries whose area lies in
//! populated space, rows returned must be exactly the rows inside the
//! extracted area).

use aa_core::{Constant, Extractor, QualifiedColumn};
use aa_engine::{Executor, Value};
use aa_skyserver::{build_catalog, cluster_query, Dr9Schema};
use aa_util::SeededRng;

#[test]
fn all_cluster_template_queries_execute() {
    let catalog = build_catalog(0.02, 77);
    let executor = Executor::new(&catalog);
    let mut rng = SeededRng::seed_from_u64(5);
    for id in 1..=24u8 {
        for _ in 0..5 {
            let sql = cluster_query(id, &mut rng);
            executor
                .execute_sql(&sql)
                .unwrap_or_else(|e| panic!("cluster {id}: {sql}: {e}"));
        }
    }
}

#[test]
fn empty_area_cluster_queries_return_no_rows() {
    // Clusters 18-24 probe empty areas: on the synthetic content they must
    // come back empty — that is what makes them invisible to re-querying.
    let catalog = build_catalog(0.02, 78);
    let executor = Executor::new(&catalog);
    let mut rng = SeededRng::seed_from_u64(6);
    for id in [18u8, 19, 20, 21, 22, 23, 24] {
        for _ in 0..5 {
            let sql = cluster_query(id, &mut rng);
            if sql.contains("HAVING") {
                continue; // aggregate variants return empty groups anyway
            }
            let result = executor.execute_sql(&sql).unwrap();
            assert!(result.is_empty(), "cluster {id} query returned rows: {sql}");
        }
    }
}

#[test]
fn populated_cluster_queries_return_rows() {
    // Clusters over content (1, 5, 7) should actually hit data.
    let catalog = build_catalog(0.1, 79);
    let executor = Executor::new(&catalog);
    let mut rng = SeededRng::seed_from_u64(7);
    let mut hits = 0;
    let mut total = 0;
    for id in [5u8, 7] {
        for _ in 0..10 {
            let sql = cluster_query(id, &mut rng);
            if sql.contains("HAVING") {
                continue;
            }
            total += 1;
            if !executor.execute_sql(&sql).unwrap().is_empty() {
                hits += 1;
            }
        }
    }
    assert!(hits * 2 > total, "only {hits}/{total} populated queries returned rows");
}

#[test]
fn executor_rows_match_extractor_area_membership() {
    // For single-table WHERE-only queries: the executor's result rows are
    // exactly the table rows inside the extracted access area.
    let catalog = build_catalog(0.05, 80);
    let executor = Executor::new(&catalog);
    let provider = Dr9Schema::new();
    let extractor = Extractor::new(&provider);

    for sql in [
        "SELECT * FROM SpecObjAll WHERE plate >= 296 AND plate <= 3200 AND mjd < 52178",
        "SELECT * FROM Photoz WHERE z BETWEEN 0.2 AND 0.6",
        "SELECT * FROM PhotoObjAll WHERE (ra < 100 OR ra > 300) AND dec <= 10",
        "SELECT * FROM SpecObjAll WHERE NOT (z > 1 AND class = 'galaxy')",
        "SELECT * FROM zooSpec WHERE p_el >= 0.25 AND p_el <= 0.75 AND dec > 0",
    ] {
        let result = executor.execute_sql(sql).unwrap();
        let area = extractor.extract_sql(sql).unwrap();
        let table_name = area.table_names().next().unwrap().to_string();
        let table = catalog.table(&table_name).unwrap();

        let expected = table
            .rows
            .iter()
            .filter(|row| {
                let lookup = |col: &QualifiedColumn| -> Option<Constant> {
                    if !col.table.eq_ignore_ascii_case(&table_name) {
                        return None;
                    }
                    let idx = table.schema.column_index(&col.column)?;
                    match &row[idx] {
                        Value::Int(i) => Some(Constant::Num(*i as f64)),
                        Value::Float(f) => Some(Constant::Num(*f)),
                        Value::Str(s) => Some(Constant::Str(s.clone())),
                        Value::Bool(b) => Some(Constant::Num(*b as i64 as f64)),
                        Value::Null => None,
                    }
                };
                area.contains(&lookup) == Some(true)
            })
            .count();
        assert_eq!(
            result.len(),
            expected,
            "{sql}: executor {} vs area membership {expected}",
            result.len()
        );
    }
}

#[test]
fn group_by_queries_aggregate_over_content() {
    let catalog = build_catalog(0.05, 81);
    let executor = Executor::new(&catalog);
    let result = executor
        .execute_sql("SELECT class, COUNT(*) FROM SpecObjAll GROUP BY class ORDER BY class")
        .unwrap();
    assert_eq!(result.len(), 3, "three spectral classes");
    let total: i64 = result
        .rows
        .iter()
        .map(|r| match &r[1] {
            Value::Int(n) => *n,
            other => panic!("unexpected {other}"),
        })
        .sum();
    assert_eq!(
        total,
        catalog.table("SpecObjAll").unwrap().row_count() as i64
    );
}

#[test]
fn join_template_queries_join_correctly() {
    let catalog = build_catalog(0.05, 82);
    let executor = Executor::new(&catalog);
    // Cluster 16's join: galSpecExtra x galSpecIndx on specobjid. The
    // generators draw ids independently, so matches are rare but the query
    // must execute and every returned pair must satisfy the equality.
    let result = executor
        .execute_sql(
            "SELECT galSpecExtra.specobjid, galSpecIndx.specObjID \
             FROM galSpecExtra, galSpecIndx \
             WHERE galSpecExtra.specobjid = galSpecIndx.specObjID",
        )
        .unwrap();
    for row in &result.rows {
        assert_eq!(row[0], row[1]);
    }
}

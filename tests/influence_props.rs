//! E12 — property tests for the influence semantics (Definitions 3 & 4).
//!
//! For the query classes the paper proves exact (simple conjunctive/
//! disjunctive queries, inner joins, Lemma-4 EXISTS), a universal-relation
//! tuple lies in the extracted access area **iff** the query returns rows
//! in the witness state containing exactly that tuple (the (⇐) state of
//! the lemma proofs). We generate random queries and random tuples and
//! check the extractor against the executor.

use aa_core::extract::{Extractor, NoSchema};
use aa_core::{Constant, QualifiedColumn};
use aa_engine::{Catalog, ColumnDef, DataType, Table, TableSchema, Value};
use aa_prop::{check, Config, Source};

const OPS: &[&str] = &["=", "<>", "<", "<=", ">", ">="];

/// A random atomic predicate `col op const` rendered as SQL.
fn atom_sql(src: &mut Source) -> String {
    let col = *src.choice(&["u", "v"]);
    let op = *src.choice(OPS);
    let c = src.int_in(-5, 25);
    format!("T.{col} {op} {c}")
}

/// A random boolean WHERE clause of bounded depth.
fn where_sql(src: &mut Source, depth: u32) -> String {
    if depth == 0 || !src.bool(0.6) {
        return atom_sql(src);
    }
    match src.usize_in(0, 3) {
        0 => format!(
            "({} AND {})",
            where_sql(src, depth - 1),
            where_sql(src, depth - 1)
        ),
        1 => format!(
            "({} OR {})",
            where_sql(src, depth - 1),
            where_sql(src, depth - 1)
        ),
        _ => format!("NOT ({})", where_sql(src, depth - 1)),
    }
}

fn t_schema() -> TableSchema {
    TableSchema::new(
        "T",
        vec![
            ColumnDef::new("u", DataType::Int),
            ColumnDef::new("v", DataType::Int),
        ],
    )
}

fn s_schema() -> TableSchema {
    TableSchema::new(
        "S",
        vec![
            ColumnDef::new("u", DataType::Int),
            ColumnDef::new("w", DataType::Int),
        ],
    )
}

/// Executes `sql` on the singleton state {t} and reports non-emptiness.
fn returns_rows_in_singleton(sql: &str, u: i64, v: i64) -> bool {
    let mut catalog = Catalog::new();
    let mut t = Table::new(t_schema());
    t.insert(vec![Value::Int(u), Value::Int(v)]).unwrap();
    catalog.add_table(t);
    let result = aa_engine::Executor::new(&catalog)
        .execute_sql(sql)
        .unwrap_or_else(|e| panic!("{sql}: {e}"));
    !result.is_empty()
}

/// Looks up the tuple's value for area membership checks.
fn tuple_lookup(u: i64, v: i64) -> impl Fn(&QualifiedColumn) -> Option<Constant> {
    move |col: &QualifiedColumn| {
        if !col.table.eq_ignore_ascii_case("t") {
            return None;
        }
        match col.column.to_lowercase().as_str() {
            "u" => Some(Constant::Num(u as f64)),
            "v" => Some(Constant::Num(v as f64)),
            _ => None,
        }
    }
}

/// Simple queries: membership in the extracted area ⟺ the singleton
/// state {t} yields a non-empty result.
#[test]
fn simple_query_area_matches_influence() {
    check(Config::cases(256), |src| {
        let where_clause = where_sql(src, 3);
        let u = src.int_in(-10, 30);
        let v = src.int_in(-10, 30);
        let sql = format!("SELECT * FROM T WHERE {where_clause}");
        let area = Extractor::new(&NoSchema).extract_sql(&sql).unwrap();
        let in_area = area.contains(&tuple_lookup(u, v));
        let influences = returns_rows_in_singleton(&sql, u, v);
        // CNF conversion of arbitrary NOT/OR trees is exact for these
        // shapes, so the area must be decidable for a fully known tuple.
        assert_eq!(
            in_area,
            Some(influences),
            "query {sql} on tuple ({u}, {v})"
        );
    });
}

/// BETWEEN queries match their expansion.
#[test]
fn between_query_area_matches_influence() {
    check(Config::cases(256), |src| {
        let lo = src.int_in(-5, 15);
        let span = src.int_in(0, 10);
        let u = src.int_in(-10, 30);
        let hi = lo + span;
        let sql = format!("SELECT * FROM T WHERE u BETWEEN {lo} AND {hi}");
        let area = Extractor::new(&NoSchema).extract_sql(&sql).unwrap();
        let in_area = area.contains(&tuple_lookup(u, 0));
        let influences = returns_rows_in_singleton(&sql, u, 0);
        assert_eq!(in_area, Some(influences));
    });
}

/// Lemma 4 shape: EXISTS over a second relation. The witness state is
/// {t} in T and {s} in S; the pair is in the area iff the query
/// returns rows there.
#[test]
fn lemma4_exists_area_matches_influence() {
    check(Config::cases(256), |src| {
        let alpha = src.int_in(-5, 15);
        let beta = src.int_in(-5, 15);
        let tu = src.int_in(-5, 20);
        let su = src.int_in(-5, 20);
        let sv = src.int_in(-5, 20);
        let sql = format!(
            "SELECT * FROM T WHERE T.u > {alpha} AND EXISTS \
             (SELECT * FROM S WHERE S.u = T.u AND S.w < {beta})"
        );
        let area = Extractor::new(&NoSchema).extract_sql(&sql).unwrap();
        let lookup = |col: &QualifiedColumn| -> Option<Constant> {
            match (
                col.table.to_lowercase().as_str(),
                col.column.to_lowercase().as_str(),
            ) {
                ("t", "u") => Some(Constant::Num(tu as f64)),
                ("s", "u") => Some(Constant::Num(su as f64)),
                ("s", "w") => Some(Constant::Num(sv as f64)),
                _ => None,
            }
        };
        let in_area = area.contains(&lookup);

        let mut catalog = Catalog::new();
        let mut t = Table::new(t_schema());
        t.insert(vec![Value::Int(tu), Value::Int(0)]).unwrap();
        catalog.add_table(t);
        let mut s = Table::new(s_schema());
        s.insert(vec![Value::Int(su), Value::Int(sv)]).unwrap();
        catalog.add_table(s);
        let influences = !aa_engine::Executor::new(&catalog)
            .execute_sql(&sql)
            .unwrap()
            .is_empty();
        assert_eq!(
            in_area,
            Some(influences),
            "tuple (T.u={tu}, S.u={su}, S.w={sv})"
        );
    });
}

/// Inner joins: the pair (t, s) influences iff it is in the area.
#[test]
fn inner_join_area_matches_influence() {
    check(Config::cases(256), |src| {
        let tu = src.int_in(-3, 10);
        let tv = src.int_in(-3, 10);
        let su = src.int_in(-3, 10);
        let sw = src.int_in(-3, 10);
        let bound = src.int_in(-3, 10);
        let sql = format!("SELECT * FROM T INNER JOIN S ON T.u = S.u WHERE T.v <= {bound}");
        let area = Extractor::new(&NoSchema).extract_sql(&sql).unwrap();
        let lookup = |col: &QualifiedColumn| -> Option<Constant> {
            match (
                col.table.to_lowercase().as_str(),
                col.column.to_lowercase().as_str(),
            ) {
                ("t", "u") => Some(Constant::Num(tu as f64)),
                ("t", "v") => Some(Constant::Num(tv as f64)),
                ("s", "u") => Some(Constant::Num(su as f64)),
                ("s", "w") => Some(Constant::Num(sw as f64)),
                _ => None,
            }
        };
        let in_area = area.contains(&lookup);

        let mut catalog = Catalog::new();
        let mut t = Table::new(t_schema());
        t.insert(vec![Value::Int(tu), Value::Int(tv)]).unwrap();
        catalog.add_table(t);
        let mut s = Table::new(s_schema());
        s.insert(vec![Value::Int(su), Value::Int(sw)]).unwrap();
        catalog.add_table(s);
        let influences = !aa_engine::Executor::new(&catalog)
            .execute_sql(&sql)
            .unwrap()
            .is_empty();
        assert_eq!(in_area, Some(influences));
    });
}

/// Definition 3 directly: on random multi-row states, any tuple the
/// executor proves influential (removal changes the result) must lie
/// in the extracted access area (the area may be larger: it quantifies
/// over *all* states).
#[test]
fn influential_tuples_are_inside_the_area() {
    check(Config::cases(256), |src| {
        let where_clause = where_sql(src, 3);
        let rows = src.vec_of(1, 6, |s| (s.int_in(-10, 30), s.int_in(-10, 30)));
        let victim = src.usize_in(0, 6) % rows.len();
        let sql = format!("SELECT * FROM T WHERE {where_clause}");
        let area = Extractor::new(&NoSchema).extract_sql(&sql).unwrap();

        let mut catalog = Catalog::new();
        let mut t = Table::new(t_schema());
        for (u, v) in &rows {
            t.insert(vec![Value::Int(*u), Value::Int(*v)]).unwrap();
        }
        catalog.add_table(t);
        let influences = aa_engine::influence::influences_in_state(
            &catalog,
            "T",
            victim,
            &aa_sql::parse_select(&sql).unwrap(),
        )
        .unwrap();
        if influences {
            let (u, v) = rows[victim];
            assert_eq!(
                area.contains(&tuple_lookup(u, v)),
                Some(true),
                "influential tuple ({u}, {v}) outside area of {sql}"
            );
        }
    });
}

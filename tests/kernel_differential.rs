//! Differential suite: the bitset/arena `DistanceKernel` against the
//! scalar `QueryDistance` oracle.
//!
//! The kernel's contract is *bit-exact* f64 equality — not approximate
//! agreement — on every pair, in both distance modes, on random and
//! corpus inputs alike. Downstream, the whole clustering stack must be
//! byte-identical: same DBSCAN labels, same pivot choices, same
//! neighbor lists.

use aa_bench::harness::{self, ExperimentConfig};
use aa_core::{
    AccessArea, AccessRanges, DistanceKernel, DistanceMode, Extractor, NoSchema, QueryDistance,
};
use aa_dbscan::PivotIndex;
use aa_prop::{check, Config, Source};
use aa_skyserver::LogConfig;
use aa_util::SeededRng;

const MODES: [DistanceMode; 2] = [DistanceMode::PaperLiteral, DistanceMode::Dissimilarity];

fn extract(sql: &str) -> AccessArea {
    Extractor::new(&NoSchema)
        .extract_sql(sql)
        .unwrap_or_else(|e| panic!("{sql}: {e}"))
}

fn ranges_over(areas: &[AccessArea]) -> AccessRanges {
    let mut ranges = AccessRanges::new();
    ranges.observe_all(areas.iter());
    ranges.apply_doubling();
    ranges
}

/// Asserts kernel == scalar to the bit on every ordered pair, plus the
/// external-query path (`flatten` + `distance_to`) for every area.
/// Returns the number of pairs compared.
fn assert_bit_exact(areas: &[AccessArea], ranges: &AccessRanges, mode: DistanceMode) -> usize {
    let kernel = DistanceKernel::build(areas, ranges, mode);
    let scalar = QueryDistance::with_mode(ranges, mode);
    let mut pairs = 0;
    for i in 0..areas.len() {
        for j in 0..areas.len() {
            let k = kernel.distance(i, j);
            let s = scalar.distance(&areas[i], &areas[j]);
            assert_eq!(
                k.to_bits(),
                s.to_bits(),
                "distance({i},{j}) {mode:?}: kernel {k} vs scalar {s}"
            );
            let kt = kernel.d_tables(i, j);
            let st = scalar.d_tables(&areas[i], &areas[j]);
            assert_eq!(
                kt.to_bits(),
                st.to_bits(),
                "d_tables({i},{j}) {mode:?}: kernel {kt} vs scalar {st}"
            );
            pairs += 1;
        }
        // The serving path: area i flattened as an external query.
        let flat = kernel.flatten(&areas[i]);
        for j in 0..areas.len() {
            let k = kernel.distance_to(&flat, j);
            let s = scalar.distance(&areas[i], &areas[j]);
            assert_eq!(
                k.to_bits(),
                s.to_bits(),
                "distance_to({i},{j}) {mode:?}: kernel {k} vs scalar {s}"
            );
        }
    }
    pairs
}

// ---------------------------------------------------------------------
// Random-area generator (choice-stream driven, so aa-prop shrinks it).
// ---------------------------------------------------------------------

const COLS: [&str; 5] = ["ra", "dec", "z", "plate", "class"];
const STRINGS: [&str; 4] = ["'qso'", "'star'", "'galaxy'", "'U'"];
const NUM_OPS: [&str; 6] = [">", ">=", "<", "<=", "=", "<>"];

/// One random SQL query over `pool` tables: 1–3 tables, 0–4 predicates
/// mixing numeric comparisons, string (in)equalities, IN lists, and —
/// when two tables are in scope — join atoms.
fn random_sql(s: &mut Source, pool: &[String]) -> String {
    let n_tables = s.usize_in(1, 4.min(pool.len() + 1));
    let mut tables: Vec<&str> = Vec::new();
    for _ in 0..n_tables {
        let t = s.choice(pool).as_str();
        if !tables.contains(&t) {
            tables.push(t);
        }
    }
    let mut preds: Vec<String> = Vec::new();
    for _ in 0..s.usize_in(0, 5) {
        let t = *s.choice(&tables);
        let col = s.choice(&COLS[..4]);
        match s.usize_in(0, 4) {
            0 => {
                let op = s.choice(&NUM_OPS);
                preds.push(format!("{t}.{col} {op} {}", s.int_in(-100, 1000)));
            }
            1 => {
                let op = if s.usize_in(0, 2) == 0 { "=" } else { "<>" };
                preds.push(format!("{t}.class {op} {}", s.choice(&STRINGS)));
            }
            2 => {
                let lo = s.int_in(-100, 900);
                preds.push(format!(
                    "{t}.{col} BETWEEN {lo} AND {}",
                    lo + s.int_in(1, 100)
                ));
            }
            _ => {
                if tables.len() >= 2 {
                    let u = tables[s.usize_in(0, tables.len())];
                    if u != t {
                        preds.push(format!("{t}.{col} = {u}.{col}"));
                        continue;
                    }
                }
                preds.push(format!("{t}.plate IN (1, 2, 3)"));
            }
        }
    }
    let mut sql = format!("SELECT * FROM {}", tables.join(", "));
    if !preds.is_empty() {
        sql.push_str(" WHERE ");
        sql.push_str(&preds.join(" AND "));
    }
    sql
}

fn table_pool(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("Tab{i}")).collect()
}

// ---------------------------------------------------------------------
// 1. Seeded random batches: >= 1,000 pairs, both modes, bit-exact.
// ---------------------------------------------------------------------

#[test]
fn seeded_random_pairs_bit_exact() {
    let pool = table_pool(12);
    let mut total_pairs = 0;
    for (mode_idx, mode) in MODES.into_iter().enumerate() {
        // Drive the generator with a recorded choice stream so it is the
        // same generator aa-prop shrinks, but fully seed-pinned here.
        let mut rng = SeededRng::seed_from_u64(2015 + mode_idx as u64);
        let areas: Vec<AccessArea> = (0..40)
            .map(|_| {
                let mut src = Source::from_seed(rng.next_u64());
                extract(&random_sql(&mut src, &pool))
            })
            .collect();
        let ranges = ranges_over(&areas);
        total_pairs += assert_bit_exact(&areas, &ranges, mode);
    }
    assert!(total_pairs >= 1_000, "only {total_pairs} pairs compared");
}

// ---------------------------------------------------------------------
// 2. Property: any random batch agrees, including the wide-mask regime.
// ---------------------------------------------------------------------

#[test]
fn prop_random_batches_bit_exact() {
    check(Config::cases(24), |s: &mut Source| {
        // Pool sizes straddle the 64-table word boundary to exercise both
        // Small and Wide masks.
        let pool = table_pool(*s.choice(&[6usize, 70]));
        let n = s.usize_in(2, 9);
        let areas: Vec<AccessArea> =
            (0..n).map(|_| extract(&random_sql(s, &pool))).collect();
        let ranges = ranges_over(&areas);
        for mode in MODES {
            assert_bit_exact(&areas, &ranges, mode);
        }
    });
}

// ---------------------------------------------------------------------
// 3. The 17-query extraction corpus, all pairs, both modes.
// ---------------------------------------------------------------------

/// The SQL of `tests/parser_corpus.rs`'s EXTRACTION_CORPUS (kept in sync
/// by `corpus_is_complete` below).
const CORPUS_SQL: [&str; 17] = [
    "SELECT TOP 500 objID FROM PhotoObjAll WHERE ra BETWEEN 150 AND 200 AND dec > -5",
    "SELECT TOP 10 PERCENT plate FROM SpecObjAll WHERE class = 'GALAXY' AND z < 0.05",
    "SELECT [plate], [mjd] FROM [SpecObjAll] WHERE [plate] <= 3200 AND [mjd] >= 51578",
    "SELECT name FROM [DBObjects] WHERE [access] = 'U' AND ([type] = 'V' OR [type] = 'U')",
    "SELECT TOP 5 [name] FROM [DBViewCols] WHERE [viewname] = 'SpecObj'",
    "SELECT s.plate FROM SpecObjAll s WHERE s.z > 2 AND EXISTS \
     (SELECT * FROM Photoz p WHERE p.objid = s.bestobjid AND p.z < 1)",
    "SELECT * FROM T WHERE T.u > 7 AND EXISTS \
     (SELECT * FROM S WHERE S.u = T.u AND EXISTS \
      (SELECT * FROM R WHERE R.v = S.v AND R.x < 9))",
    "SELECT * FROM galSpecInfo WHERE specobjid IN \
     (SELECT specobjid FROM galSpecLine WHERE specobjid >= 1345591721622267904)",
    "SELECT * FROM SpecObjAll WHERE class IN ('star', 'qso')",
    "SELECT * FROM SpecObjAll WHERE plate IN (751, 752, 753)",
    "SELECT * FROM SpecObjAll WHERE plate NOT IN (751, 752)",
    "SELECT objid FROM Galaxies WHERE ra > 185.5 LIMIT 30",
    "SELECT objid FROM Galaxies LIMIT 100",
    "SELECT TOP 50 p.ra FROM PhotoObjAll p INNER JOIN SpecObjAll s \
     ON s.bestobjid = p.objid WHERE s.class = 'qso'",
    "SELECT TOP 1000 * FROM Photoz WHERE z BETWEEN 0 AND 0.1",
    "SELECT * FROM sppLines WHERE specobjid IN \
     (SELECT specobjid FROM sppParams WHERE fehadop BETWEEN -0.3 AND 0.5) \
     AND gwholemask = 0",
    "SELECT TOP 20 * FROM [BESTDR9]..[PhotoObjAll] WHERE [ra] < 10 AND [dec] >= -1.5",
];

#[test]
fn extraction_corpus_bit_exact() {
    let areas: Vec<AccessArea> = CORPUS_SQL.iter().map(|sql| extract(sql)).collect();
    let ranges = ranges_over(&areas);
    for mode in MODES {
        assert_bit_exact(&areas, &ranges, mode);
    }
}

#[test]
fn unknown_query_tables_and_columns_bit_exact() {
    // Kernel built over the corpus; queries reference tables/columns the
    // interner has never seen. The kernel's local-id overflow path must
    // still agree with the scalar to the bit.
    let areas: Vec<AccessArea> = CORPUS_SQL.iter().map(|sql| extract(sql)).collect();
    let ranges = ranges_over(&areas);
    let strangers = [
        "SELECT * FROM NeverSeen WHERE mystery > 3",
        "SELECT * FROM PhotoObjAll, NeverSeen WHERE NeverSeen.x = PhotoObjAll.ra",
        "SELECT * FROM PhotoObjAll WHERE unseen_col BETWEEN 1 AND 2 AND ra < 100",
        "SELECT * FROM Alien WHERE tag = 'x' OR tag = 'y'",
    ];
    for mode in MODES {
        let kernel = DistanceKernel::build(&areas, &ranges, mode);
        let scalar = QueryDistance::with_mode(&ranges, mode);
        for sql in strangers {
            let query = extract(sql);
            let flat = kernel.flatten(&query);
            for (j, area) in areas.iter().enumerate() {
                let k = kernel.distance_to(&flat, j);
                let s = scalar.distance(&query, area);
                assert_eq!(
                    k.to_bits(),
                    s.to_bits(),
                    "{sql} vs corpus[{j}] {mode:?}: kernel {k} vs scalar {s}"
                );
                let kt = kernel.d_tables_to(&flat, j);
                let st = scalar.d_tables(&query, area);
                assert_eq!(kt.to_bits(), st.to_bits(), "{sql} d_tables vs corpus[{j}]");
            }
        }
    }
}

// ---------------------------------------------------------------------
// 4. Byte-identical clustering on a seeded 5k-query log.
// ---------------------------------------------------------------------

#[test]
fn dbscan_labels_identical_on_seeded_log() {
    let config = ExperimentConfig {
        log: LogConfig::small(5_000, 7),
        catalog_scale: 0.02,
        ..ExperimentConfig::default()
    };
    let data = harness::prepare(&config);
    let areas: Vec<AccessArea> = data.extracted.iter().map(|q| q.area.clone()).collect();
    for mode in MODES {
        let kernel = harness::cluster_areas(&areas, &data.ranges, &config.dbscan, mode, 4);
        let scalar = harness::cluster_areas_scalar(&areas, &data.ranges, &config.dbscan, mode, 4);
        assert_eq!(kernel.cluster_count, scalar.cluster_count, "{mode:?}");
        assert_eq!(kernel.labels, scalar.labels, "{mode:?}");
    }
}

// ---------------------------------------------------------------------
// 5. Pivot index: identical pivots, neighbor lists, and knn results.
// ---------------------------------------------------------------------

#[test]
fn pivot_index_identical_scalar_vs_kernel() {
    let pool = table_pool(10);
    let mut rng = SeededRng::seed_from_u64(99);
    let mut areas: Vec<AccessArea> = CORPUS_SQL.iter().map(|sql| extract(sql)).collect();
    areas.extend((0..30).map(|_| {
        let mut src = Source::from_seed(rng.next_u64());
        extract(&random_sql(&mut src, &pool))
    }));
    let ranges = ranges_over(&areas);
    for mode in MODES {
        let kernel = DistanceKernel::build(&areas, &ranges, mode);
        let scalar = QueryDistance::with_mode(&ranges, mode);
        let positions: Vec<usize> = (0..areas.len()).collect();

        let scalar_index = PivotIndex::build(&areas, 16, &|a: &AccessArea, b: &AccessArea| {
            scalar.d_tables(a, b)
        });
        let kernel_index =
            PivotIndex::build(&positions, 16, &|a: &usize, b: &usize| kernel.d_tables(*a, *b));
        assert_eq!(scalar_index.pivots(), kernel_index.pivots(), "{mode:?}");

        for (qi, query) in areas.iter().enumerate() {
            let flat = kernel.flatten(query);
            let (s_range, s_eval) = scalar_index.range(
                0.3,
                |i| scalar.d_tables(query, &areas[i]),
                |i| scalar.distance(query, &areas[i]),
            );
            let (k_range, k_eval) = kernel_index.range(
                0.3,
                |i| kernel.d_tables_to(&flat, i),
                |i| kernel.distance_to(&flat, i),
            );
            assert_eq!(s_range, k_range, "range query {qi} {mode:?}");
            assert_eq!(s_eval, k_eval, "range evaluated {qi} {mode:?}");

            let (s_knn, _) = scalar_index.knn(
                5,
                |i| scalar.d_tables(query, &areas[i]),
                |i| scalar.distance(query, &areas[i]),
            );
            let (k_knn, _) = kernel_index.knn(
                5,
                |i| kernel.d_tables_to(&flat, i),
                |i| kernel.distance_to(&flat, i),
            );
            let s_bits: Vec<(usize, u64)> = s_knn.iter().map(|&(i, d)| (i, d.to_bits())).collect();
            let k_bits: Vec<(usize, u64)> = k_knn.iter().map(|&(i, d)| (i, d.to_bits())).collect();
            assert_eq!(s_bits, k_bits, "knn {qi} {mode:?}");
        }
    }
}

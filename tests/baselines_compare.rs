//! Baseline comparisons at test scale: the three findings of Sections
//! 6.4–6.6 must hold qualitatively on every run.

use aa_baselines::{cluster_olapclus, naive_areas, requery_log, RequeryConfig, RequeryFailure};
use aa_bench::{cluster_areas, prepare, ExperimentConfig};
use aa_core::{AccessArea, AccessRanges, Extractor};
use aa_dbscan::DbscanParams;
use aa_engine::ExecOptions;
use aa_skyserver::{cluster_query, evaluate, GroundTruth, LogConfig};
use aa_util::SeededRng;

/// Section 6.4: OLAPClus shatters Cluster-1-style workloads while our
/// distance aggregates them.
#[test]
fn olapclus_explodes_on_point_lookups() {
    let provider = aa_core::NoSchema;
    let extractor = Extractor::new(&provider);
    let mut rng = SeededRng::seed_from_u64(41);
    let areas: Vec<AccessArea> = (0..300)
        .map(|_| extractor.extract_sql(&cluster_query(1, &mut rng)).unwrap())
        .collect();
    let mut ranges = AccessRanges::new();
    ranges.observe_all(areas.iter());
    let params = DbscanParams {
        eps: 0.06,
        min_pts: 1,
    };

    let ours = aa_bench::cluster_areas(
        &areas,
        &ranges,
        &params,
        aa_core::DistanceMode::Dissimilarity,
        2,
    );
    let olap = cluster_olapclus(&areas, &params);
    assert_eq!(ours.cluster_count, 1, "our method aggregates");
    assert!(
        olap.cluster_count >= 295,
        "OLAPClus should shatter ({} clusters)",
        olap.cluster_count
    );
}

/// Section 6.5: naive (as-is) extraction breaks exactly the
/// aggregate-bearing clusters while faithful extraction keeps them.
#[test]
fn naive_extraction_breaks_breakable_clusters() {
    let cfg = ExperimentConfig {
        log: LogConfig::small(2_500, 31),
        catalog_scale: 0.02,
        ..ExperimentConfig::default()
    };
    let data = prepare(&cfg);

    let faithful_areas: Vec<AccessArea> =
        data.extracted.iter().map(|q| q.area.clone()).collect();
    let faithful = cluster_areas(
        &faithful_areas,
        &data.ranges,
        &cfg.dbscan,
        cfg.distance_mode,
        2,
    );
    let f_report = evaluate(&data.truths, &faithful.labels, faithful.cluster_count);

    let naive_opt = naive_areas(data.log.iter().map(|e| e.sql.as_str()), &data.catalog);
    let mut n_areas = Vec::new();
    let mut n_truths = Vec::new();
    for (i, area) in naive_opt.into_iter().enumerate() {
        if let Some(a) = area {
            n_areas.push(a);
            n_truths.push(data.log[i].truth);
        }
    }
    let mut n_ranges = AccessRanges::new();
    n_ranges.observe_all(n_areas.iter());
    let naive = cluster_areas(&n_areas, &n_ranges, &cfg.dbscan, cfg.distance_mode, 2);
    let n_report = evaluate(&n_truths, &naive.labels, naive.cluster_count);

    // Faithful keeps all 24; naive loses recall on breakable clusters.
    assert_eq!(f_report.recovered_count(), 24);
    let mut degraded = 0;
    for spec in aa_skyserver::TABLE1.iter().filter(|s| s.breakable) {
        let f = f_report
            .per_cluster
            .iter()
            .find(|c| c.planted == spec.id)
            .unwrap();
        let n = n_report
            .per_cluster
            .iter()
            .find(|c| c.planted == spec.id)
            .unwrap();
        if n.recall < f.recall - 0.05 || !n.is_recovered() {
            degraded += 1;
        }
    }
    assert!(
        degraded >= 6,
        "expected most of the 10 breakable clusters to degrade, got {degraded}"
    );
}

/// Section 6.6: re-querying is blind to empty-area queries and fails on
/// rate limits; extraction handles both.
#[test]
fn requerying_misses_what_extraction_finds() {
    let cfg = ExperimentConfig {
        log: LogConfig::small(1_200, 51),
        catalog_scale: 0.02,
        ..ExperimentConfig::default()
    };
    let data = prepare(&cfg);

    let (outcomes, stats) = requery_log(
        &data.catalog,
        data.log.iter().map(|e| e.sql.as_str()),
        &RequeryConfig {
            arrival_per_minute: 600.0, // a batch replay, as the paper did
            server_per_minute: 60,
            exec: ExecOptions::default(),
        },
    );

    // Empty-area clusters: extraction produced areas, re-querying did not.
    let mut extraction_found = 0;
    let mut requery_found = 0;
    for (i, entry) in data.log.iter().enumerate() {
        let is_empty_cluster = matches!(
            entry.truth,
            GroundTruth::Cluster(18..=24)
        );
        if !is_empty_cluster {
            continue;
        }
        if data.extracted.iter().any(|q| q.log_index == i) {
            extraction_found += 1;
        }
        if outcomes[i].is_ok() {
            requery_found += 1;
        }
    }
    assert!(extraction_found > 100, "{extraction_found}");
    assert_eq!(requery_found, 0, "re-querying cannot see empty areas");

    // Rate limiting bites on replay; extraction is unaffected.
    assert!(stats.rate_limited > 0);
    let rate_limited_but_extracted = outcomes
        .iter()
        .enumerate()
        .filter(|(i, o)| {
            matches!(o, Err(RequeryFailure::RateLimited))
                && data.extracted.iter().any(|q| q.log_index == *i)
        })
        .count();
    assert!(rate_limited_but_extracted > 0);
}

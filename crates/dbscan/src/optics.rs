//! OPTICS (Ankerst et al., SIGMOD 1999) — the density-based ordering
//! generalisation of DBSCAN.
//!
//! The paper's future work proposes "experiment[ing] with different
//! clustering techniques on our data sets of extracted access areas";
//! OPTICS is the canonical next step from DBSCAN because it removes the
//! single-`eps` commitment: one run produces a *reachability ordering*
//! from which clusterings for every `eps' ≤ eps` can be extracted.

use crate::index::NeighborIndex;
use crate::{BruteForceIndex, DbscanParams, DbscanResult, Label};

/// Output of an OPTICS run: the visit order and per-point reachability
/// distances (`f64::INFINITY` for points starting a new component).
#[derive(Debug, Clone)]
pub struct OpticsResult {
    /// Point indices in visit order.
    pub ordering: Vec<usize>,
    /// Reachability distance of each point, parallel to `ordering`.
    pub reachability: Vec<f64>,
}

impl OpticsResult {
    /// Extracts a DBSCAN-equivalent clustering at `eps_prime ≤ eps` from
    /// the ordering (the classic ExtractDBSCAN-Clustering procedure).
    pub fn extract_clustering(&self, eps_prime: f64, min_pts: usize) -> DbscanResult {
        let n = self.ordering.len();
        let mut labels = vec![Label::Noise; n];
        let mut cluster: Option<usize> = None;
        let mut next_cluster = 0usize;
        // Count how many points in each tentative cluster to enforce
        // min_pts on tiny fragments.
        let mut counts: Vec<usize> = Vec::new();

        for (pos, &point) in self.ordering.iter().enumerate() {
            let r = self.reachability[pos];
            if r > eps_prime {
                // Unreachable at eps'; it may still seed a new cluster if
                // its own neighbourhood is dense (approximated by the next
                // point's reachability).
                let starts_cluster = pos + 1 < n && self.reachability[pos + 1] <= eps_prime;
                if starts_cluster {
                    cluster = Some(next_cluster);
                    next_cluster += 1;
                    counts.push(1);
                    labels[point] = Label::Cluster(next_cluster - 1);
                } else {
                    cluster = None;
                }
            } else if let Some(c) = cluster {
                labels[point] = Label::Cluster(c);
                counts[c] += 1;
            }
        }

        // Demote clusters smaller than min_pts to noise and re-densify ids.
        let mut remap: Vec<Option<usize>> = vec![None; next_cluster];
        let mut dense = 0usize;
        for (c, &count) in counts.iter().enumerate() {
            if count >= min_pts {
                remap[c] = Some(dense);
                dense += 1;
            }
        }
        for label in &mut labels {
            *label = match label {
                Label::Cluster(c) => match remap[*c] {
                    Some(new) => Label::Cluster(new),
                    None => Label::Noise,
                },
                Label::Noise => Label::Noise,
            };
        }
        DbscanResult {
            labels,
            cluster_count: dense,
        }
    }

    /// The reachability value of each point by original index.
    pub fn reachability_by_index(&self) -> Vec<f64> {
        let mut out = vec![f64::INFINITY; self.ordering.len()];
        for (pos, &p) in self.ordering.iter().enumerate() {
            out[p] = self.reachability[pos];
        }
        out
    }
}

/// Runs OPTICS with a brute-force neighbour search.
pub fn optics<T, D>(items: &[T], params: &DbscanParams, distance: D) -> OpticsResult
where
    D: Fn(&T, &T) -> f64 + Sync,
    T: Sync,
{
    optics_with_index(items, params, &distance, &BruteForceIndex)
}

/// Runs OPTICS over a custom neighbour index.
pub fn optics_with_index<T, D, I>(
    items: &[T],
    params: &DbscanParams,
    distance: &D,
    index: &I,
) -> OpticsResult
where
    D: Fn(&T, &T) -> f64 + Sync,
    I: NeighborIndex<T> + Sync,
    T: Sync,
{
    let n = items.len();
    let mut processed = vec![false; n];
    let mut ordering = Vec::with_capacity(n);
    let mut reach_out = Vec::with_capacity(n);
    // Current best reachability per point.
    let mut reach = vec![f64::INFINITY; n];

    // Core distance: distance to the min_pts-th neighbour (incl. self).
    let core_distance = |i: usize, neighbors: &[usize]| -> Option<f64> {
        if neighbors.len() < params.min_pts {
            return None;
        }
        let mut dists: Vec<f64> = neighbors
            .iter()
            .map(|&j| distance(&items[i], &items[j]))
            .collect();
        dists.sort_by(f64::total_cmp);
        Some(dists[params.min_pts - 1])
    };

    for start in 0..n {
        if processed[start] {
            continue;
        }
        // Begin a new component at `start`.
        processed[start] = true;
        ordering.push(start);
        reach_out.push(f64::INFINITY);
        let neighbors = index.neighbors(items, start, params.eps, distance);
        let mut seeds: Vec<usize> = Vec::new();
        if let Some(core) = core_distance(start, &neighbors) {
            update_seeds(
                items, start, core, &neighbors, &processed, &mut reach, &mut seeds, distance,
            );
        }
        while !seeds.is_empty() {
            // Pop the seed with the smallest reachability (linear scan —
            // seed lists stay small relative to n).
            let best = seeds
                .iter()
                .enumerate()
                .min_by(|a, b| reach[*a.1].total_cmp(&reach[*b.1]))
                .map(|(pos, _)| pos)
                .expect("non-empty");
            let point = seeds.swap_remove(best);
            if processed[point] {
                continue;
            }
            processed[point] = true;
            ordering.push(point);
            reach_out.push(reach[point]);
            let neighbors = index.neighbors(items, point, params.eps, distance);
            if let Some(core) = core_distance(point, &neighbors) {
                update_seeds(
                    items, point, core, &neighbors, &processed, &mut reach, &mut seeds, distance,
                );
            }
        }
    }

    OpticsResult {
        ordering,
        reachability: reach_out,
    }
}

#[allow(clippy::too_many_arguments)]
fn update_seeds<T, D>(
    items: &[T],
    center: usize,
    core: f64,
    neighbors: &[usize],
    processed: &[bool],
    reach: &mut [f64],
    seeds: &mut Vec<usize>,
    distance: &D,
) where
    D: Fn(&T, &T) -> f64,
{
    for &q in neighbors {
        if processed[q] {
            continue;
        }
        let new_reach = core.max(distance(&items[center], &items[q]));
        if new_reach < reach[q] {
            if reach[q] == f64::INFINITY {
                seeds.push(q);
            }
            reach[q] = new_reach;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan;

    fn d1(a: &f64, b: &f64) -> f64 {
        (a - b).abs()
    }

    fn blobs() -> Vec<f64> {
        let mut pts = Vec::new();
        for i in 0..15 {
            pts.push(i as f64 * 0.05); // blob at 0.0..0.75
        }
        for i in 0..15 {
            pts.push(10.0 + i as f64 * 0.05); // blob at 10.0..
        }
        pts.push(50.0); // outlier
        pts
    }

    #[test]
    fn ordering_visits_every_point_once() {
        let pts = blobs();
        let r = optics(&pts, &DbscanParams { eps: 0.5, min_pts: 3 }, d1);
        assert_eq!(r.ordering.len(), pts.len());
        let mut seen = vec![false; pts.len()];
        for &p in &r.ordering {
            assert!(!seen[p], "point visited twice");
            seen[p] = true;
        }
    }

    #[test]
    fn reachability_valleys_match_blobs() {
        let pts = blobs();
        let r = optics(&pts, &DbscanParams { eps: 1.0, min_pts: 3 }, d1);
        // Points inside blobs have small reachability; component starts
        // and the outlier are infinite.
        let infinite = r
            .reachability
            .iter()
            .filter(|x| x.is_infinite())
            .count();
        assert_eq!(infinite, 3, "two blob starts + isolated outlier");
        let finite_max = r
            .reachability
            .iter()
            .filter(|x| x.is_finite())
            .fold(0.0f64, |a, &b| a.max(b));
        assert!(finite_max <= 0.11, "{finite_max}");
    }

    #[test]
    fn extraction_matches_dbscan_structure() {
        let pts = blobs();
        let params = DbscanParams { eps: 0.5, min_pts: 3 };
        let r = optics(&pts, &params, d1);
        let extracted = r.extract_clustering(0.5, params.min_pts);
        let reference = dbscan(&pts, &params, d1);
        assert_eq!(extracted.cluster_count, reference.cluster_count);
        // Same partition up to id permutation: compare co-membership on a
        // sample of pairs.
        for i in (0..pts.len()).step_by(3) {
            for j in (0..pts.len()).step_by(5) {
                let same_a = extracted.labels[i] == extracted.labels[j]
                    && extracted.labels[i] != Label::Noise;
                let same_b = reference.labels[i] == reference.labels[j]
                    && reference.labels[i] != Label::Noise;
                assert_eq!(same_a, same_b, "pair ({i}, {j})");
            }
        }
    }

    #[test]
    fn one_run_yields_multiple_granularities() {
        // Hierarchical blobs: two sub-blobs 1.0 apart inside a super-blob.
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(i as f64 * 0.05);
        }
        for i in 0..10 {
            pts.push(2.0 + i as f64 * 0.05);
        }
        let r = optics(&pts, &DbscanParams { eps: 5.0, min_pts: 3 }, d1);
        // Coarse cut: one cluster; fine cut: two.
        let coarse = r.extract_clustering(3.0, 3);
        let fine = r.extract_clustering(0.2, 3);
        assert_eq!(coarse.cluster_count, 1);
        assert_eq!(fine.cluster_count, 2);
    }

    #[test]
    fn empty_input() {
        let pts: Vec<f64> = Vec::new();
        let r = optics(&pts, &DbscanParams { eps: 1.0, min_pts: 2 }, d1);
        assert!(r.ordering.is_empty());
        assert_eq!(r.extract_clustering(1.0, 2).cluster_count, 0);
    }
}

//! # aa-dbscan — density-based clustering (Ester et al., KDD 1996)
//!
//! A from-scratch, allocation-conscious DBSCAN over arbitrary item types
//! and metrics, built for the access-area clustering of the SkyServer
//! paper (Section 6). The paper reports that its off-the-shelf DBSCAN
//! "has severe performance problems" on the full query set; this
//! implementation addresses that with a *blocking index*
//! ([`index::GroupedIndex`]) that exploits the structure of the paper's
//! distance function: `d = d_tables + d_conj >= d_tables`, so items whose
//! table sets are already further apart than `eps` can never be
//! neighbours and are pruned without evaluating `d_conj`.
//!
//! ```
//! use aa_dbscan::{dbscan, DbscanParams, Label};
//!
//! let points: Vec<f64> = vec![0.0, 0.1, 0.2, 9.0, 9.1, 50.0];
//! let result = dbscan(
//!     &points,
//!     &DbscanParams { eps: 0.5, min_pts: 2 },
//!     |a: &f64, b: &f64| (a - b).abs(),
//! );
//! assert_eq!(result.cluster_count, 2);
//! assert_eq!(result.labels[5], Label::Noise);
//! ```

#![forbid(unsafe_code)]

pub mod index;
pub mod optics;
pub mod parallel;

pub use index::{BruteForceIndex, GroupedIndex, KeyedBuckets, NeighborIndex, PivotIndex};
pub use optics::{optics, optics_with_index, OpticsResult};

/// DBSCAN parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbscanParams {
    /// Neighbourhood radius.
    pub eps: f64,
    /// Minimum neighbourhood size (including the point itself) for a core
    /// point.
    pub min_pts: usize,
}

/// Cluster assignment of one item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// Not density-reachable from any core point.
    Noise,
    /// Member of cluster `id` (ids are dense, starting at 0).
    Cluster(usize),
}

impl Label {
    /// The cluster id, if clustered.
    pub fn cluster(&self) -> Option<usize> {
        match self {
            Label::Cluster(id) => Some(*id),
            Label::Noise => None,
        }
    }
}

/// Clustering result.
#[derive(Debug, Clone, PartialEq)]
pub struct DbscanResult {
    /// Parallel to the input items.
    pub labels: Vec<Label>,
    /// Number of clusters found.
    pub cluster_count: usize,
}

impl DbscanResult {
    /// Item indices grouped per cluster.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.cluster_count];
        for (i, label) in self.labels.iter().enumerate() {
            if let Label::Cluster(id) = label {
                out[*id].push(i);
            }
        }
        out
    }

    /// Number of noise items.
    pub fn noise_count(&self) -> usize {
        self.labels.iter().filter(|l| **l == Label::Noise).count()
    }
}

/// DBSCAN with a brute-force O(n²) neighbour search.
pub fn dbscan<T, D>(items: &[T], params: &DbscanParams, distance: D) -> DbscanResult
where
    D: Fn(&T, &T) -> f64 + Sync,
    T: Sync,
{
    let index = BruteForceIndex;
    dbscan_with_index(items, params, &distance, &index)
}

/// DBSCAN over a custom neighbour index.
pub fn dbscan_with_index<T, D, I>(
    items: &[T],
    params: &DbscanParams,
    distance: &D,
    index: &I,
) -> DbscanResult
where
    D: Fn(&T, &T) -> f64 + Sync,
    I: NeighborIndex<T> + Sync,
    T: Sync,
{
    let n = items.len();
    let mut labels = vec![Option::<Label>::None; n];
    let mut cluster_count = 0usize;

    // Classic DBSCAN: seed from each unvisited point; expand core points'
    // neighbourhoods breadth-first.
    let mut queue: Vec<usize> = Vec::new();
    for start in 0..n {
        if labels[start].is_some() {
            continue;
        }
        let neighbors = index.neighbors(items, start, params.eps, distance);
        if neighbors.len() < params.min_pts {
            labels[start] = Some(Label::Noise);
            continue;
        }
        let cluster = cluster_count;
        cluster_count += 1;
        labels[start] = Some(Label::Cluster(cluster));
        queue.clear();
        queue.extend(neighbors);
        while let Some(p) = queue.pop() {
            match labels[p] {
                Some(Label::Cluster(_)) => continue,
                // Border point previously labelled noise joins the cluster.
                Some(Label::Noise) | None => {
                    let was_unvisited = labels[p].is_none();
                    labels[p] = Some(Label::Cluster(cluster));
                    if was_unvisited {
                        let p_neighbors = index.neighbors(items, p, params.eps, distance);
                        if p_neighbors.len() >= params.min_pts {
                            queue.extend(
                                p_neighbors.into_iter().filter(|q| {
                                    !matches!(labels[*q], Some(Label::Cluster(_)))
                                }),
                            );
                        }
                    }
                }
            }
        }
    }

    DbscanResult {
        labels: labels
            .into_iter()
            .map(|l| l.expect("all points labelled"))
            .collect(),
        cluster_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d1(a: &f64, b: &f64) -> f64 {
        (a - b).abs()
    }

    #[test]
    fn two_blobs_and_noise() {
        let pts = vec![0.0, 0.1, 0.2, 0.3, 10.0, 10.1, 10.2, 55.0];
        let r = dbscan(&pts, &DbscanParams { eps: 0.5, min_pts: 3 }, d1);
        assert_eq!(r.cluster_count, 2);
        assert_eq!(r.labels[0], r.labels[3]);
        assert_eq!(r.labels[4], r.labels[6]);
        assert_ne!(r.labels[0], r.labels[4]);
        assert_eq!(r.labels[7], Label::Noise);
        assert_eq!(r.noise_count(), 1);
    }

    #[test]
    fn chaining_through_density() {
        // Points 0.0, 0.4, 0.8, ... chain into one cluster with eps=0.5
        // even though endpoints are far apart.
        let pts: Vec<f64> = (0..20).map(|i| i as f64 * 0.4).collect();
        let r = dbscan(&pts, &DbscanParams { eps: 0.5, min_pts: 2 }, d1);
        assert_eq!(r.cluster_count, 1);
        assert_eq!(r.noise_count(), 0);
    }

    #[test]
    fn min_pts_one_makes_every_point_core() {
        let pts = vec![0.0, 100.0];
        let r = dbscan(&pts, &DbscanParams { eps: 1.0, min_pts: 1 }, d1);
        assert_eq!(r.cluster_count, 2);
    }

    #[test]
    fn all_noise_when_sparse() {
        let pts = vec![0.0, 10.0, 20.0];
        let r = dbscan(&pts, &DbscanParams { eps: 1.0, min_pts: 2 }, d1);
        assert_eq!(r.cluster_count, 0);
        assert_eq!(r.noise_count(), 3);
    }

    #[test]
    fn border_points_join_a_cluster() {
        // 4.9 is within eps of the dense blob's edge but has only 2
        // neighbours itself (min_pts 3): a border point, not noise.
        let pts = vec![4.0, 4.2, 4.4, 4.9];
        let r = dbscan(&pts, &DbscanParams { eps: 0.5, min_pts: 3 }, d1);
        assert_eq!(r.cluster_count, 1);
        assert_eq!(r.labels[3], Label::Cluster(0));
    }

    #[test]
    fn empty_input() {
        let pts: Vec<f64> = vec![];
        let r = dbscan(&pts, &DbscanParams { eps: 1.0, min_pts: 2 }, d1);
        assert_eq!(r.cluster_count, 0);
        assert!(r.labels.is_empty());
    }

    #[test]
    fn clusters_listing() {
        let pts = vec![0.0, 0.1, 5.0, 5.1, 99.0];
        let r = dbscan(&pts, &DbscanParams { eps: 0.5, min_pts: 2 }, d1);
        let clusters = r.clusters();
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0], vec![0, 1]);
        assert_eq!(clusters[1], vec![2, 3]);
    }

    #[test]
    fn deterministic_given_input_order() {
        let pts = vec![1.0, 1.1, 1.2, 8.0, 8.1, 8.2];
        let p = DbscanParams { eps: 0.3, min_pts: 2 };
        let a = dbscan(&pts, &p, d1);
        let b = dbscan(&pts, &p, d1);
        assert_eq!(a, b);
    }
}

//! Neighbour-search indexes for DBSCAN.

/// Produces the `eps`-neighbourhood of item `i` (including `i` itself).
pub trait NeighborIndex<T> {
    /// Indices of all items within `eps` of `items[i]` under `distance`.
    fn neighbors<D>(&self, items: &[T], i: usize, eps: f64, distance: &D) -> Vec<usize>
    where
        D: Fn(&T, &T) -> f64;
}

/// O(n) scan per query.
pub struct BruteForceIndex;

impl<T> NeighborIndex<T> for BruteForceIndex {
    fn neighbors<D>(&self, items: &[T], i: usize, eps: f64, distance: &D) -> Vec<usize>
    where
        D: Fn(&T, &T) -> f64,
    {
        let q = &items[i];
        items
            .iter()
            .enumerate()
            .filter(|(_, x)| distance(q, x) <= eps)
            .map(|(j, _)| j)
            .collect()
    }
}

/// Interned item keys and their buckets — phase 1 of building a
/// [`GroupedIndex`]. Split out so the lower-bound closure of phase 2 can
/// close over the interned key list this phase returns.
#[derive(Debug, Clone)]
pub struct KeyedBuckets {
    /// Key id per item.
    keys: Vec<usize>,
    /// Items per key id.
    buckets: Vec<Vec<usize>>,
}

impl KeyedBuckets {
    /// Buckets `items` by `key_of`; returns the buckets plus the distinct
    /// keys in first-seen order (key id = position in that vector).
    pub fn build<T, K, KF>(items: &[T], key_of: KF) -> (Self, Vec<K>)
    where
        K: std::hash::Hash + Eq + Clone,
        KF: Fn(&T) -> K,
    {
        let mut key_index: std::collections::HashMap<K, usize> = std::collections::HashMap::new();
        let mut distinct: Vec<K> = Vec::new();
        let mut keys = Vec::with_capacity(items.len());
        let mut buckets: Vec<Vec<usize>> = Vec::new();
        for (i, item) in items.iter().enumerate() {
            let k = key_of(item);
            let id = *key_index.entry(k.clone()).or_insert_with(|| {
                distinct.push(k.clone());
                buckets.push(Vec::new());
                distinct.len() - 1
            });
            keys.push(id);
            buckets[id].push(i);
        }
        (KeyedBuckets { keys, buckets }, distinct)
    }

    /// Key id of an item.
    pub fn key_of_item(&self, i: usize) -> usize {
        self.keys[i]
    }

    /// Number of distinct keys.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Items holding key id `k`.
    pub fn bucket(&self, k: usize) -> &[usize] {
        &self.buckets[k]
    }
}

/// A blocking index: items are bucketed by a discrete key, and a cheap
/// *lower bound* on the distance between two keys prunes whole buckets.
///
/// For the paper's distance `d = d_tables + d_conj`, the key is the table
/// set and the lower bound is the Jaccard distance `d_tables` itself:
/// whenever `d_tables(A, B) > eps`, no pair across those buckets can be
/// within `eps`, so `d_conj` (the expensive part) is never evaluated.
pub struct GroupedIndex<KD> {
    buckets: KeyedBuckets,
    /// Lower bound on the full distance given two key ids.
    key_lower_bound: KD,
}

impl<KD> GroupedIndex<KD>
where
    KD: Fn(usize, usize) -> f64,
{
    /// Combines pre-built buckets with a key-distance lower bound.
    pub fn new(buckets: KeyedBuckets, key_lower_bound: KD) -> Self {
        GroupedIndex {
            buckets,
            key_lower_bound,
        }
    }

    /// One-shot build when the lower bound doesn't need the key list.
    pub fn build<T, K, KF>(items: &[T], key_of: KF, key_lower_bound: KD) -> (Self, Vec<K>)
    where
        K: std::hash::Hash + Eq + Clone,
        KF: Fn(&T) -> K,
    {
        let (buckets, distinct) = KeyedBuckets::build(items, key_of);
        (GroupedIndex::new(buckets, key_lower_bound), distinct)
    }

    /// Key id of an item.
    pub fn key_of_item(&self, i: usize) -> usize {
        self.buckets.key_of_item(i)
    }

    /// Number of distinct keys.
    pub fn bucket_count(&self) -> usize {
        self.buckets.bucket_count()
    }
}

impl<T, KD> NeighborIndex<T> for GroupedIndex<KD>
where
    KD: Fn(usize, usize) -> f64,
{
    fn neighbors<D>(&self, items: &[T], i: usize, eps: f64, distance: &D) -> Vec<usize>
    where
        D: Fn(&T, &T) -> f64,
    {
        let q = &items[i];
        let qk = self.buckets.key_of_item(i);
        let mut out = Vec::new();
        for bk in 0..self.buckets.bucket_count() {
            if (self.key_lower_bound)(qk, bk) > eps {
                continue;
            }
            for &j in self.buckets.bucket(bk) {
                if distance(q, &items[j]) <= eps {
                    out.push(j);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dbscan, dbscan_with_index, DbscanParams};

    /// 2D points keyed by an integer "table set" id; cross-key distance 1.
    #[derive(Clone, Copy)]
    struct P {
        key: usize,
        x: f64,
    }

    fn dist(a: &P, b: &P) -> f64 {
        let table_part = if a.key == b.key { 0.0 } else { 1.0 };
        table_part + (a.x - b.x).abs()
    }

    fn dataset() -> Vec<P> {
        let mut pts = Vec::new();
        for k in 0..3 {
            for i in 0..10 {
                pts.push(P {
                    key: k,
                    x: i as f64 * 0.05,
                });
            }
        }
        pts
    }

    #[test]
    fn grouped_index_matches_brute_force() {
        let items = dataset();
        let params = DbscanParams {
            eps: 0.2,
            min_pts: 3,
        };
        let brute = dbscan(&items, &params, dist);
        let (index, _keys) = GroupedIndex::build(
            &items,
            |p: &P| p.key,
            |a, b| if a == b { 0.0 } else { 1.0 },
        );
        let fast = dbscan_with_index(&items, &params, &dist, &index);
        assert_eq!(brute, fast);
        assert_eq!(fast.cluster_count, 3);
    }

    #[test]
    fn lower_bound_prunes_buckets() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let items = dataset();
        let calls = AtomicUsize::new(0);
        let counting_dist = |a: &P, b: &P| {
            calls.fetch_add(1, Ordering::Relaxed);
            dist(a, b)
        };
        let (index, _) = GroupedIndex::build(
            &items,
            |p: &P| p.key,
            |a, b| if a == b { 0.0 } else { 1.0 },
        );
        let params = DbscanParams {
            eps: 0.2,
            min_pts: 3,
        };
        dbscan_with_index(&items, &params, &counting_dist, &index);
        let with_index = calls.swap(0, Ordering::Relaxed);
        dbscan(&items, &params, counting_dist);
        let brute_force = calls.load(Ordering::Relaxed);
        assert!(
            with_index * 2 <= brute_force,
            "index {with_index} vs brute {brute_force}"
        );
    }

    #[test]
    fn build_reports_distinct_keys() {
        let items = dataset();
        let (index, keys) = GroupedIndex::build(
            &items,
            |p: &P| p.key,
            |_, _| 0.0,
        );
        assert_eq!(index.bucket_count(), 3);
        assert_eq!(keys, vec![0, 1, 2]);
        assert_eq!(index.key_of_item(0), 0);
        assert_eq!(index.key_of_item(29), 2);
    }
}

//! Neighbour-search indexes for DBSCAN and for external (online) queries.

/// Produces `eps`-neighbourhoods, both for items inside the build set and
/// for external query points that were never indexed.
pub trait NeighborIndex<T> {
    /// Indices of all items within `eps` of `items[i]` under `distance`
    /// (including `i` itself).
    fn neighbors<D>(&self, items: &[T], i: usize, eps: f64, distance: &D) -> Vec<usize>
    where
        D: Fn(&T, &T) -> f64;

    /// Indices of all items within `eps` of an external `query` point.
    ///
    /// The default implementation is an exact O(n) scan, so every index
    /// answers external queries correctly; structure-aware indexes override
    /// it with a pruned search.
    fn neighbors_of<D>(&self, items: &[T], query: &T, eps: f64, distance: &D) -> Vec<usize>
    where
        D: Fn(&T, &T) -> f64,
    {
        items
            .iter()
            .enumerate()
            .filter(|(_, x)| distance(query, x) <= eps)
            .map(|(j, _)| j)
            .collect()
    }
}

/// O(n) scan per query.
pub struct BruteForceIndex;

impl<T> NeighborIndex<T> for BruteForceIndex {
    fn neighbors<D>(&self, items: &[T], i: usize, eps: f64, distance: &D) -> Vec<usize>
    where
        D: Fn(&T, &T) -> f64,
    {
        self.neighbors_of(items, &items[i], eps, distance)
    }
}

/// Interned item keys and their buckets — phase 1 of building a
/// [`GroupedIndex`]. Split out so callers that only need the blocking
/// structure (e.g. the bench harness) can use it directly.
#[derive(Debug, Clone)]
pub struct KeyedBuckets {
    /// Key id per item.
    keys: Vec<usize>,
    /// Items per key id.
    buckets: Vec<Vec<usize>>,
}

impl KeyedBuckets {
    /// Buckets `items` by `key_of`; returns the buckets plus the distinct
    /// keys in first-seen order (key id = position in that vector).
    pub fn build<T, K, KF>(items: &[T], key_of: KF) -> (Self, Vec<K>)
    where
        K: std::hash::Hash + Eq + Clone,
        KF: Fn(&T) -> K,
    {
        let mut key_index: std::collections::HashMap<K, usize> = std::collections::HashMap::new();
        let mut distinct: Vec<K> = Vec::new();
        let mut keys = Vec::with_capacity(items.len());
        let mut buckets: Vec<Vec<usize>> = Vec::new();
        for (i, item) in items.iter().enumerate() {
            let k = key_of(item);
            let id = *key_index.entry(k.clone()).or_insert_with(|| {
                distinct.push(k.clone());
                buckets.push(Vec::new());
                distinct.len() - 1
            });
            keys.push(id);
            buckets[id].push(i);
        }
        (KeyedBuckets { keys, buckets }, distinct)
    }

    /// Key id of an item.
    pub fn key_of_item(&self, i: usize) -> usize {
        self.keys[i]
    }

    /// Number of distinct keys.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Items holding key id `k`.
    pub fn bucket(&self, k: usize) -> &[usize] {
        &self.buckets[k]
    }
}

/// A blocking index: items are bucketed by a discrete key, and a cheap
/// *lower bound* on the distance between two key values prunes whole
/// buckets — for in-set neighbourhoods and for external query points alike.
///
/// For the paper's distance `d = d_tables + d_conj`, the key is the table
/// set and the lower bound is the Jaccard distance `d_tables` itself:
/// whenever `d_tables(A, B) > eps`, no pair across those buckets can be
/// within `eps`, so `d_conj` (the expensive part) is never evaluated.
pub struct GroupedIndex<K, KF, KB> {
    buckets: KeyedBuckets,
    /// Distinct key values, indexed by key id.
    keys: Vec<K>,
    /// Extracts the key of an arbitrary (possibly external) item.
    key_of: KF,
    /// Lower bound on the full distance given two key values.
    key_bound: KB,
}

impl<K, KF, KB> GroupedIndex<K, KF, KB> {
    /// Buckets `items` by `key_of` and keeps both closures for queries.
    pub fn build<T>(items: &[T], key_of: KF, key_bound: KB) -> Self
    where
        K: std::hash::Hash + Eq + Clone,
        KF: Fn(&T) -> K,
    {
        let (buckets, keys) = KeyedBuckets::build(items, &key_of);
        GroupedIndex {
            buckets,
            keys,
            key_of,
            key_bound,
        }
    }

    /// Key id of an in-set item.
    pub fn key_of_item(&self, i: usize) -> usize {
        self.buckets.key_of_item(i)
    }

    /// Number of distinct keys.
    pub fn bucket_count(&self) -> usize {
        self.buckets.bucket_count()
    }

    /// Distinct key values, indexed by key id.
    pub fn keys(&self) -> &[K] {
        &self.keys
    }

    fn scan<T, D>(&self, items: &[T], query: &T, qkey: &K, eps: f64, distance: &D) -> Vec<usize>
    where
        KB: Fn(&K, &K) -> f64,
        D: Fn(&T, &T) -> f64,
    {
        let mut out = Vec::new();
        for bk in 0..self.buckets.bucket_count() {
            if (self.key_bound)(qkey, &self.keys[bk]) > eps {
                continue;
            }
            for &j in self.buckets.bucket(bk) {
                if distance(query, &items[j]) <= eps {
                    out.push(j);
                }
            }
        }
        out
    }
}

impl<T, K, KF, KB> NeighborIndex<T> for GroupedIndex<K, KF, KB>
where
    KF: Fn(&T) -> K,
    KB: Fn(&K, &K) -> f64,
{
    fn neighbors<D>(&self, items: &[T], i: usize, eps: f64, distance: &D) -> Vec<usize>
    where
        D: Fn(&T, &T) -> f64,
    {
        let qkey = &self.keys[self.buckets.key_of_item(i)];
        self.scan(items, &items[i], qkey, eps, distance)
    }

    fn neighbors_of<D>(&self, items: &[T], query: &T, eps: f64, distance: &D) -> Vec<usize>
    where
        D: Fn(&T, &T) -> f64,
    {
        let qkey = (self.key_of)(query);
        self.scan(items, query, &qkey, eps, distance)
    }
}

/// A vantage-point (pivot) table for metric-lower-bound pruning.
///
/// The index stores, for a handful of deterministically chosen pivot items,
/// the *pruning-metric* distance from each pivot to every item. A query then
/// measures its metric distance to each pivot and derives, per item, the
/// triangle lower bound `max_p |m(q, p) − m(p, i)| ≤ m(q, i)`; items whose
/// bound exceeds the search radius are discarded without ever evaluating the
/// (expensive) search distance.
///
/// # Safety of pruning
///
/// Two conditions make the pruning provably exact:
///
/// 1. the pruning metric `m` satisfies the triangle inequality, and
/// 2. `m` lower-bounds the search distance: `m(x, y) ≤ d(x, y)`.
///
/// Then `|m(q,p) − m(p,i)| ≤ m(q,i) ≤ d(q,i)`, so a bound above `eps` (or
/// above the current k-NN radius) proves `d(q,i) > eps` and the item can be
/// skipped. The paper's composite distance `d = d_tables + d_conj` is *not*
/// provably a metric (`d_conj` is a normalised clause matching), so the
/// triangle inequality may not hold for `d` itself — which is why the index
/// never prunes on `d` and instead falls back to the Jaccard table distance
/// `d_tables`: a true metric with `d_tables ≤ d`.
///
/// Pivots are chosen by farthest-point traversal under `m` (ties broken
/// toward the smallest index), so with `m = d_tables` the pivot set covers
/// one representative per distinct table set and the bound degenerates to
/// the exact per-bucket Jaccard distance: `m(p,i) = 0` for a same-bucket
/// pivot gives `|m(q,p) − 0| = m(q,i)` exactly.
#[derive(Debug, Clone)]
pub struct PivotIndex {
    /// Item indices serving as pivots.
    pivots: Vec<usize>,
    /// `table[p][i]` = metric distance from pivot `p` to item `i`.
    table: Vec<Vec<f64>>,
    /// Number of indexed items.
    n: usize,
    /// Number of items present when the pivots were last selected;
    /// items past this were appended by [`PivotIndex::insert`].
    n_at_build: usize,
}

/// Insertions tolerated before [`PivotIndex::should_rebuild`] trips, as a
/// fraction of the size at build time: a rebuild is due once more than
/// half the build-time population has been appended.
const REBUILD_GROWTH_DENOMINATOR: usize = 2;
/// Absolute insertion floor below which a rebuild is never suggested —
/// tiny indexes would otherwise thrash on every append.
const REBUILD_MIN_INSERTS: usize = 16;

/// The shared farthest-point pivot selection: at most `max_pivots` pivots
/// over `n` items, `metric(p, i)` measuring two local positions. The first
/// pivot is position 0; each further pivot is the position farthest (under
/// the metric) from all chosen pivots, ties broken toward the smallest
/// position; selection stops early once every position sits at metric
/// distance 0 from some pivot. Returns the pivot positions and the filled
/// `table[p][i]` rows. [`PivotIndex::build`], [`PivotIndex::build_subset`]
/// and insert-triggered rebuilds all funnel through here so the traversal
/// can never drift between entry points.
fn select_pivots(
    n: usize,
    max_pivots: usize,
    metric: impl Fn(usize, usize) -> f64,
) -> (Vec<usize>, Vec<Vec<f64>>) {
    let mut pivots: Vec<usize> = Vec::new();
    let mut table: Vec<Vec<f64>> = Vec::new();
    if n == 0 || max_pivots == 0 {
        return (pivots, table);
    }
    let mut min_d = vec![f64::INFINITY; n];
    let mut next = 0usize;
    loop {
        pivots.push(next);
        let row: Vec<f64> = (0..n).map(|i| metric(next, i)).collect();
        for (i, &d) in row.iter().enumerate() {
            if d < min_d[i] {
                min_d[i] = d;
            }
        }
        table.push(row);
        if pivots.len() >= max_pivots.min(n) {
            break;
        }
        let (mut best_i, mut best_d) = (0usize, -1.0f64);
        for (i, &d) in min_d.iter().enumerate() {
            if d > best_d {
                best_d = d;
                best_i = i;
            }
        }
        if best_d <= 0.0 {
            break;
        }
        next = best_i;
    }
    (pivots, table)
}

impl PivotIndex {
    /// Builds the pivot table with at most `max_pivots` pivots.
    ///
    /// Selection is deterministic: the first pivot is item 0; each further
    /// pivot is the item farthest (under `metric`) from all chosen pivots,
    /// ties broken toward the smallest index. Selection stops early once
    /// every item is at metric distance 0 from some pivot — additional
    /// pivots could never tighten the bound.
    pub fn build<T, M>(items: &[T], max_pivots: usize, metric: &M) -> Self
    where
        M: Fn(&T, &T) -> f64,
    {
        let all: Vec<usize> = (0..items.len()).collect();
        Self::build_subset(items, &all, max_pivots, metric)
    }

    /// Builds the pivot table over a restricted subset of `items`.
    ///
    /// The index sees only `items[subset[j]]` for `j` in `0..subset.len()`,
    /// and every index it hands back (pivots, `range`, `knn`) is a
    /// *subset-local* position `j` — callers translate back through
    /// `subset[j]`. Pivot selection runs the same deterministic
    /// farthest-point traversal as [`PivotIndex::build`], restricted to the
    /// subset, so a sharded deployment that partitions one item set into
    /// disjoint subsets answers exact per-shard queries: the triangle
    /// pruning argument only needs the metric, never the full item set.
    pub fn build_subset<T, M>(items: &[T], subset: &[usize], max_pivots: usize, metric: &M) -> Self
    where
        M: Fn(&T, &T) -> f64,
    {
        let n = subset.len();
        let mut index = PivotIndex {
            pivots: Vec::new(),
            table: Vec::new(),
            n,
            n_at_build: n,
        };
        if n == 0 || max_pivots == 0 {
            return index;
        }
        let (pivots, table) = select_pivots(n, max_pivots, |p, i| {
            metric(&items[subset[p]], &items[subset[i]])
        });
        index.pivots = pivots;
        index.table = table;
        index
    }

    /// Item indices chosen as pivots.
    pub fn pivots(&self) -> &[usize] {
        &self.pivots
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when no items are indexed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Absorbs one new item at the next local position without re-selecting
    /// pivots: `metric_to(i)` must return the pruning-metric distance from
    /// the new item to the already-indexed item at local position `i` (it
    /// is called once per pivot). Returns the new item's local position.
    ///
    /// Pruning stays provably exact: [`lower_bound`] only requires that
    /// every `table[p][new]` entry is the true metric distance from pivot
    /// `p` to the new item — pivot *optimality* affects how tight the
    /// bound is, never whether it is a bound. Appends therefore degrade
    /// pruning quality gradually (the new item was not a farthest-point
    /// candidate); [`should_rebuild`] says when a fresh
    /// [`build`]/[`build_subset`] is due.
    ///
    /// [`lower_bound`]: PivotIndex::range
    /// [`should_rebuild`]: PivotIndex::should_rebuild
    /// [`build`]: PivotIndex::build
    /// [`build_subset`]: PivotIndex::build_subset
    pub fn insert(&mut self, metric_to: impl Fn(usize) -> f64) -> usize {
        for (p, &pivot) in self.pivots.iter().enumerate() {
            let d = metric_to(pivot);
            self.table[p].push(d);
        }
        let local = self.n;
        self.n += 1;
        local
    }

    /// Number of items appended by [`PivotIndex::insert`] since the pivots
    /// were last selected.
    pub fn inserted_since_build(&self) -> usize {
        self.n - self.n_at_build
    }

    /// Deterministic rebuild predicate: true once more than half the
    /// build-time population (and at least [`REBUILD_MIN_INSERTS`] items)
    /// has been appended. Purely a function of the insert count, so every
    /// replay of the same ingest sequence rebuilds at the same ordinal.
    pub fn should_rebuild(&self) -> bool {
        let inserted = self.inserted_since_build();
        inserted >= REBUILD_MIN_INSERTS
            && inserted * REBUILD_GROWTH_DENOMINATOR > self.n_at_build
    }

    /// Metric distances from the query to every pivot, via `metric_to(i)` =
    /// metric distance from the query to item `i` (called once per pivot).
    fn query_row(&self, metric_to: &impl Fn(usize) -> f64) -> Vec<f64> {
        self.pivots.iter().map(|&p| metric_to(p)).collect()
    }

    /// Triangle lower bound on the metric distance from the query to item
    /// `i`, given the query's pivot distances.
    fn lower_bound(&self, q_row: &[f64], i: usize) -> f64 {
        let mut lb: f64 = 0.0;
        for (p, &qp) in q_row.iter().enumerate() {
            let b = (qp - self.table[p][i]).abs();
            if b > lb {
                lb = b;
            }
        }
        lb
    }

    /// All items with search distance ≤ `eps` from the query, in ascending
    /// index order, plus the number of `dist_to` evaluations performed.
    ///
    /// `metric_to(i)` must return the *pruning metric* distance from the
    /// query to item `i`; `dist_to(i)` the full search distance. Exact as
    /// long as the metric lower-bounds the search distance (see type docs).
    pub fn range(
        &self,
        eps: f64,
        metric_to: impl Fn(usize) -> f64,
        dist_to: impl Fn(usize) -> f64,
    ) -> (Vec<usize>, usize) {
        let q_row = self.query_row(&metric_to);
        let mut out = Vec::new();
        let mut evaluated = 0usize;
        for i in 0..self.n {
            if !self.table.is_empty() && self.lower_bound(&q_row, i) > eps {
                continue;
            }
            evaluated += 1;
            if dist_to(i) <= eps {
                out.push(i);
            }
        }
        (out, evaluated)
    }

    /// The `k` items nearest to the query under the search distance, sorted
    /// by `(distance, index)`, plus the number of `dist_to` evaluations.
    ///
    /// Ties are deterministic: among equal distances the smaller item index
    /// wins, exactly as in a brute-force sort by `(distance, index)`.
    pub fn knn(
        &self,
        k: usize,
        metric_to: impl Fn(usize) -> f64,
        dist_to: impl Fn(usize) -> f64,
    ) -> (Vec<(usize, f64)>, usize) {
        if k == 0 || self.n == 0 {
            return (Vec::new(), 0);
        }
        let q_row = self.query_row(&metric_to);
        // Visit items in ascending lower-bound order so the k-NN radius
        // tightens as fast as possible; once the bound of the next candidate
        // exceeds the current radius, no later candidate can qualify.
        let mut order: Vec<(f64, usize)> = (0..self.n)
            .map(|i| (self.lower_bound(&q_row, i), i))
            .collect();
        order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut best: Vec<(f64, usize)> = Vec::with_capacity(k + 1);
        let mut evaluated = 0usize;
        for &(lb, i) in &order {
            if best.len() == k && lb > best[k - 1].0 {
                break;
            }
            let d = dist_to(i);
            evaluated += 1;
            if best.len() == k {
                let worst = best[k - 1];
                if d.total_cmp(&worst.0).then(i.cmp(&worst.1)).is_ge() {
                    continue;
                }
                best.pop();
            }
            let pos = best
                .partition_point(|&(bd, bi)| bd.total_cmp(&d).then(bi.cmp(&i)).is_lt());
            best.insert(pos, (d, i));
        }
        (best.into_iter().map(|(d, i)| (i, d)).collect(), evaluated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dbscan, dbscan_with_index, DbscanParams};

    /// 2D points keyed by an integer "table set" id; cross-key distance 1.
    #[derive(Clone, Copy)]
    struct P {
        key: usize,
        x: f64,
    }

    fn dist(a: &P, b: &P) -> f64 {
        let table_part = if a.key == b.key { 0.0 } else { 1.0 };
        table_part + (a.x - b.x).abs()
    }

    /// The metric part of `dist`: a true metric with `key_metric <= dist`.
    fn key_metric(a: &P, b: &P) -> f64 {
        if a.key == b.key {
            0.0
        } else {
            1.0
        }
    }

    fn dataset() -> Vec<P> {
        let mut pts = Vec::new();
        for k in 0..3 {
            for i in 0..10 {
                pts.push(P {
                    key: k,
                    x: i as f64 * 0.05,
                });
            }
        }
        pts
    }

    fn grouped(items: &[P]) -> GroupedIndex<usize, impl Fn(&P) -> usize, impl Fn(&usize, &usize) -> f64> {
        GroupedIndex::build(
            items,
            |p: &P| p.key,
            |a: &usize, b: &usize| if a == b { 0.0 } else { 1.0 },
        )
    }

    #[test]
    fn grouped_index_matches_brute_force() {
        let items = dataset();
        let params = DbscanParams {
            eps: 0.2,
            min_pts: 3,
        };
        let brute = dbscan(&items, &params, dist);
        let index = grouped(&items);
        let fast = dbscan_with_index(&items, &params, &dist, &index);
        assert_eq!(brute, fast);
        assert_eq!(fast.cluster_count, 3);
    }

    #[test]
    fn lower_bound_prunes_buckets() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let items = dataset();
        let calls = AtomicUsize::new(0);
        let counting_dist = |a: &P, b: &P| {
            calls.fetch_add(1, Ordering::Relaxed);
            dist(a, b)
        };
        let index = grouped(&items);
        let params = DbscanParams {
            eps: 0.2,
            min_pts: 3,
        };
        dbscan_with_index(&items, &params, &counting_dist, &index);
        let with_index = calls.swap(0, Ordering::Relaxed);
        dbscan(&items, &params, counting_dist);
        let brute_force = calls.load(Ordering::Relaxed);
        assert!(
            with_index * 2 <= brute_force,
            "index {with_index} vs brute {brute_force}"
        );
    }

    #[test]
    fn build_reports_distinct_keys() {
        let items = dataset();
        let index = grouped(&items);
        assert_eq!(index.bucket_count(), 3);
        assert_eq!(index.keys(), &[0, 1, 2]);
        assert_eq!(index.key_of_item(0), 0);
        assert_eq!(index.key_of_item(29), 2);
    }

    #[test]
    fn neighbors_of_answers_external_queries() {
        let items = dataset();
        let index = grouped(&items);
        // A query point that was never indexed, sitting inside key 1.
        let q = P { key: 1, x: 0.12 };
        let got = index.neighbors_of(&items, &q, 0.1, &dist);
        let brute = BruteForceIndex.neighbors_of(&items, &q, 0.1, &dist);
        assert_eq!(got, brute);
        assert!(!got.is_empty());
        // All hits share the query's key: the cross-key floor is 1.
        assert!(got.iter().all(|&i| items[i].key == 1));
    }

    #[test]
    fn neighbors_of_prunes_foreign_buckets() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let items = dataset();
        let index = grouped(&items);
        let calls = AtomicUsize::new(0);
        let counting_dist = |a: &P, b: &P| {
            calls.fetch_add(1, Ordering::Relaxed);
            dist(a, b)
        };
        let q = P { key: 2, x: 0.0 };
        index.neighbors_of(&items, &q, 0.5, &counting_dist);
        // Only key-2 items (10 of 30) are ever evaluated.
        assert_eq!(calls.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn pivot_selection_is_deterministic_and_covers_keys() {
        let items = dataset();
        let index = PivotIndex::build(&items, 8, &key_metric);
        // Farthest-point under the key metric stops once every key has a
        // pivot: one per distinct key, smallest indexes first.
        assert_eq!(index.pivots(), &[0, 10, 20]);
        let again = PivotIndex::build(&items, 8, &key_metric);
        assert_eq!(index.pivots(), again.pivots());
    }

    #[test]
    fn pivot_range_matches_brute_force_and_prunes() {
        let items = dataset();
        let index = PivotIndex::build(&items, 8, &key_metric);
        let q = P { key: 1, x: 0.21 };
        let (got, evaluated) = index.range(
            0.15,
            |i| key_metric(&q, &items[i]),
            |i| dist(&q, &items[i]),
        );
        let brute = BruteForceIndex.neighbors_of(&items, &q, 0.15, &dist);
        assert_eq!(got, brute);
        // Foreign-key items (20 of 30) are pruned without evaluation.
        assert_eq!(evaluated, 10);
    }

    #[test]
    fn pivot_knn_matches_brute_force_with_deterministic_ties() {
        let items = dataset();
        let index = PivotIndex::build(&items, 8, &key_metric);
        // Equidistant from items at x=0.10 and x=0.20 — plus exact ties on
        // x inside every key bucket make (distance, index) ordering matter.
        let q = P { key: 0, x: 0.15 };
        for k in [1, 3, 10, 30, 31] {
            let (got, _) = index.knn(
                k,
                |i| key_metric(&q, &items[i]),
                |i| dist(&q, &items[i]),
            );
            let mut brute: Vec<(usize, f64)> = items
                .iter()
                .enumerate()
                .map(|(i, p)| (i, dist(&q, p)))
                .collect();
            brute.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            brute.truncate(k);
            assert_eq!(got, brute, "k={k}");
        }
    }

    #[test]
    fn pivot_knn_prunes_when_radius_tightens() {
        let items = dataset();
        let index = PivotIndex::build(&items, 8, &key_metric);
        let q = P { key: 0, x: 0.0 };
        let (_, evaluated) = index.knn(
            3,
            |i| key_metric(&q, &items[i]),
            |i| dist(&q, &items[i]),
        );
        // The three nearest all live in key 0 at distance <= 0.45 < 1, so
        // both foreign buckets are pruned wholesale.
        assert_eq!(evaluated, 10);
    }

    #[test]
    fn pivot_subset_matches_brute_force_over_the_slice() {
        let items = dataset();
        // A deliberately scattered subset crossing all three key buckets.
        let subset: Vec<usize> = (0..items.len()).filter(|i| i % 3 != 1).collect();
        let index = PivotIndex::build_subset(&items, &subset, 8, &key_metric);
        assert_eq!(index.len(), subset.len());
        let q = P { key: 1, x: 0.13 };
        for k in [1, 4, subset.len(), subset.len() + 2] {
            let (got, _) = index.knn(
                k,
                |j| key_metric(&q, &items[subset[j]]),
                |j| dist(&q, &items[subset[j]]),
            );
            // Brute force over the same slice, tie-broken by subset-local
            // position — the contract sharded callers rely on.
            let mut brute: Vec<(usize, f64)> = subset
                .iter()
                .enumerate()
                .map(|(j, &g)| (j, dist(&q, &items[g])))
                .collect();
            brute.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            brute.truncate(k);
            assert_eq!(got, brute, "k={k}");
        }
        let (hits, _) = index.range(
            0.2,
            |j| key_metric(&q, &items[subset[j]]),
            |j| dist(&q, &items[subset[j]]),
        );
        let brute: Vec<usize> = (0..subset.len())
            .filter(|&j| dist(&q, &items[subset[j]]) <= 0.2)
            .collect();
        assert_eq!(hits, brute);
    }

    #[test]
    fn pivot_build_is_build_subset_over_the_identity() {
        let items = dataset();
        let all: Vec<usize> = (0..items.len()).collect();
        let a = PivotIndex::build(&items, 8, &key_metric);
        let b = PivotIndex::build_subset(&items, &all, 8, &key_metric);
        assert_eq!(a.pivots(), b.pivots());
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn inserted_point_is_searched_exactly_like_a_fresh_build() {
        let mut items = dataset();
        let late = P { key: 1, x: 0.47 };
        let mut index = PivotIndex::build(&items, 8, &key_metric);
        let local = index.insert(|i| key_metric(&late, &items[i]));
        assert_eq!(local, items.len());
        items.push(late);
        assert_eq!(index.len(), items.len());
        assert_eq!(index.inserted_since_build(), 1);
        let fresh = PivotIndex::build(&items, 8, &key_metric);
        let q = P { key: 1, x: 0.44 };
        let (got, _) = index.range(
            0.1,
            |i| key_metric(&q, &items[i]),
            |i| dist(&q, &items[i]),
        );
        let (want, _) = fresh.range(
            0.1,
            |i| key_metric(&q, &items[i]),
            |i| dist(&q, &items[i]),
        );
        assert_eq!(got, want);
        assert!(got.contains(&local), "the inserted point is in range");
        for k in [1, 5, items.len()] {
            let (got, _) = index.knn(
                k,
                |i| key_metric(&q, &items[i]),
                |i| dist(&q, &items[i]),
            );
            let (want, _) = fresh.knn(
                k,
                |i| key_metric(&q, &items[i]),
                |i| dist(&q, &items[i]),
            );
            assert_eq!(got, want, "k={k}");
        }
    }

    #[test]
    fn insert_into_pivotless_index_still_answers_exactly() {
        let empty: Vec<P> = Vec::new();
        let mut index = PivotIndex::build(&empty, 4, &key_metric);
        let mut items = Vec::new();
        for i in 0..5 {
            let p = P {
                key: i % 2,
                x: i as f64 * 0.1,
            };
            let local = index.insert(|j| key_metric(&p, &items[j]));
            assert_eq!(local, i);
            items.push(p);
        }
        let q = P { key: 0, x: 0.05 };
        let (hits, evaluated) = index.range(
            0.2,
            |i| key_metric(&q, &items[i]),
            |i| dist(&q, &items[i]),
        );
        let brute = BruteForceIndex.neighbors_of(&items, &q, 0.2, &dist);
        assert_eq!(hits, brute);
        // No pivots were ever selected, so nothing can be pruned.
        assert_eq!(evaluated, items.len());
    }

    #[test]
    fn rebuild_threshold_is_deterministic_in_the_insert_count() {
        let items = dataset();
        let mut index = PivotIndex::build(&items, 8, &key_metric);
        assert!(!index.should_rebuild());
        let mut grown = items.clone();
        let mut tripped_at = None;
        for step in 0..40 {
            let p = P {
                key: 3,
                x: step as f64 * 0.01,
            };
            index.insert(|i| key_metric(&p, &grown[i]));
            grown.push(p);
            if index.should_rebuild() {
                tripped_at = Some(index.inserted_since_build());
                break;
            }
        }
        // 30 items at build: the predicate trips at exactly 16 inserts
        // (>= the floor and 16 * 2 > 30), independent of anything else.
        assert_eq!(tripped_at, Some(16));
        // A replay over the same sequence trips at the same ordinal.
        let mut again = PivotIndex::build(&items, 8, &key_metric);
        let mut grown = items.clone();
        for step in 0..16 {
            let p = P {
                key: 3,
                x: step as f64 * 0.01,
            };
            assert!(!again.should_rebuild());
            again.insert(|i| key_metric(&p, &grown[i]));
            grown.push(p);
        }
        assert!(again.should_rebuild());
        // Rebuilding resets the counter and restores pivot coverage.
        let rebuilt = PivotIndex::build(&grown, 8, &key_metric);
        assert_eq!(rebuilt.inserted_since_build(), 0);
        assert!(!rebuilt.should_rebuild());
        assert!(rebuilt.pivots().contains(&30), "new key gets a pivot");
    }

    #[test]
    fn pivot_empty_and_zero_k() {
        let empty: Vec<P> = Vec::new();
        let index = PivotIndex::build(&empty, 4, &key_metric);
        assert!(index.is_empty());
        let (hits, eval) = index.range(1.0, |_| 0.0, |_| 0.0);
        assert!(hits.is_empty());
        assert_eq!(eval, 0);
        let items = dataset();
        let index = PivotIndex::build(&items, 4, &key_metric);
        let (hits, eval) = index.knn(0, |i| key_metric(&items[0], &items[i]), |_| 0.0);
        assert!(hits.is_empty());
        assert_eq!(eval, 0);
    }
}

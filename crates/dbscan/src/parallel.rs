//! Parallel neighbour precomputation.
//!
//! For large inputs the dominant cost of DBSCAN is the O(n²) distance
//! evaluation. This module precomputes every point's `eps`-neighbourhood
//! across threads (`std::thread::scope`, chunked by point index) and
//! exposes the result as a [`NeighborIndex`] whose queries are O(1).

use crate::index::NeighborIndex;
use crate::{dbscan_with_index, DbscanParams, DbscanResult};

/// A fully materialised neighbourhood table.
pub struct PrecomputedNeighbors {
    lists: Vec<Vec<usize>>,
}

impl PrecomputedNeighbors {
    /// Computes all `eps`-neighbourhoods with `threads` worker threads.
    /// `candidates(i)` optionally restricts which pairs are evaluated
    /// (e.g. bucket members from a blocking scheme); pass `None` for all.
    pub fn compute<T, D>(
        items: &[T],
        eps: f64,
        distance: &D,
        threads: usize,
        candidates: Option<&(dyn Fn(usize) -> Vec<usize> + Sync)>,
    ) -> Self
    where
        T: Sync,
        D: Fn(&T, &T) -> f64 + Sync,
    {
        let n = items.len();
        let threads = threads.max(1);
        let mut lists: Vec<Vec<usize>> = vec![Vec::new(); n];

        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            let mut remaining: &mut [Vec<usize>] = &mut lists;
            let mut start = 0usize;
            let mut handles = Vec::new();
            while !remaining.is_empty() {
                let take = chunk.min(remaining.len());
                let (head, tail) = remaining.split_at_mut(take);
                remaining = tail;
                let lo = start;
                start += take;
                handles.push(scope.spawn(move || {
                    for (off, list) in head.iter_mut().enumerate() {
                        let i = lo + off;
                        let q = &items[i];
                        match candidates {
                            Some(cand) => {
                                for j in cand(i) {
                                    if distance(q, &items[j]) <= eps {
                                        list.push(j);
                                    }
                                }
                            }
                            None => {
                                for (j, x) in items.iter().enumerate() {
                                    if distance(q, x) <= eps {
                                        list.push(j);
                                    }
                                }
                            }
                        }
                    }
                }));
            }
            // Join every worker before reacting to failures, then
            // propagate the first panic by resuming its original payload.
            // A bare `expect` here would (a) abort the join loop early and
            // (b) replace the payload with a generic message, losing the
            // panicking worker's actual error for callers that isolate
            // faults with `catch_unwind` (e.g. aa-core's hardened runner).
            let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
            for h in handles {
                if let Err(payload) = h.join() {
                    first_panic.get_or_insert(payload);
                }
            }
            if let Some(payload) = first_panic {
                std::panic::resume_unwind(payload);
            }
        });

        PrecomputedNeighbors { lists }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// Total number of neighbour entries (for diagnostics).
    pub fn total_edges(&self) -> usize {
        self.lists.iter().map(Vec::len).sum()
    }
}

impl<T> NeighborIndex<T> for PrecomputedNeighbors {
    fn neighbors<D>(&self, _items: &[T], i: usize, _eps: f64, _distance: &D) -> Vec<usize>
    where
        D: Fn(&T, &T) -> f64,
    {
        self.lists[i].clone()
    }
}

/// DBSCAN with parallel neighbourhood precomputation.
pub fn dbscan_parallel<T, D>(
    items: &[T],
    params: &DbscanParams,
    distance: &D,
    threads: usize,
) -> DbscanResult
where
    T: Sync,
    D: Fn(&T, &T) -> f64 + Sync,
{
    let pre = PrecomputedNeighbors::compute(items, params.eps, distance, threads, None);
    dbscan_with_index(items, params, distance, &pre)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan;

    fn d1(a: &f64, b: &f64) -> f64 {
        (a - b).abs()
    }

    #[test]
    fn parallel_matches_sequential() {
        let pts: Vec<f64> = (0..500)
            .map(|i| if i % 2 == 0 { i as f64 * 0.01 } else { 100.0 + i as f64 * 0.01 })
            .collect();
        let params = DbscanParams {
            eps: 0.3,
            min_pts: 4,
        };
        let seq = dbscan(&pts, &params, d1);
        for threads in [1, 2, 8] {
            let par = dbscan_parallel(&pts, &params, &d1, threads);
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn candidate_restriction_is_honoured() {
        let pts = vec![0.0, 0.05, 0.1, 0.15];
        // Restrict every point's candidates to itself: all noise.
        let only_self = |i: usize| vec![i];
        let pre = PrecomputedNeighbors::compute(&pts, 0.5, &d1, 2, Some(&only_self));
        assert_eq!(pre.total_edges(), 4);
        let r = dbscan_with_index(
            &pts,
            &DbscanParams {
                eps: 0.5,
                min_pts: 2,
            },
            &d1,
            &pre,
        );
        assert_eq!(r.noise_count(), 4);
    }

    #[test]
    fn worker_panic_payload_is_preserved() {
        let pts: Vec<f64> = (0..64).map(f64::from).collect();
        let poisoned = |a: &f64, b: &f64| -> f64 {
            if *a == 7.0 || *b == 7.0 {
                panic!("poison distance at point 7");
            }
            (a - b).abs()
        };
        let caught = match std::panic::catch_unwind(|| {
            PrecomputedNeighbors::compute(&pts, 0.5, &poisoned, 4, None)
        }) {
            Err(payload) => payload,
            Ok(_) => panic!("worker panic must propagate"),
        };
        // The original payload survives the join (no generic
        // "worker panicked" replacement).
        let message = caught
            .downcast_ref::<&str>()
            .copied()
            .expect("payload should be the original &str");
        assert_eq!(message, "poison distance at point 7");
    }

    #[test]
    fn edge_counts() {
        let pts = vec![0.0, 0.1, 10.0];
        let pre = PrecomputedNeighbors::compute(&pts, 0.5, &d1, 3, None);
        assert_eq!(pre.len(), 3);
        // 0 and 1 see each other + themselves; 2 sees itself: 2+2+1.
        assert_eq!(pre.total_edges(), 5);
    }
}

//! Seeded synthetic data generation for the DR9 schema.

use crate::schema::{dr9_tables, Dist, TableSpec};
use aa_engine::{Catalog, Table, Value};
use aa_util::SeededRng;

/// Builds the full synthetic catalog. `scale` multiplies every table's
/// base row count (0.1 → 10% of rows); generation is deterministic in
/// `seed`.
pub fn build_catalog(scale: f64, seed: u64) -> Catalog {
    let mut catalog = Catalog::new();
    let mut rng = SeededRng::seed_from_u64(seed);
    for spec in dr9_tables() {
        catalog.add_table(generate_table(&spec, scale, &mut rng));
    }
    catalog
}

/// Generates one table.
pub fn generate_table(spec: &TableSpec, scale: f64, rng: &mut SeededRng) -> Table {
    let rows = ((spec.base_rows as f64 * scale).round() as usize).max(1);
    let mut table = Table::new(spec.to_schema());
    for _ in 0..rows {
        let row = generate_row(spec, rng);
        // Content may deliberately exceed conservative domains in stress
        // setups; bypass validation for speed and flexibility.
        table.insert_unchecked(row);
    }
    table
}

fn generate_row(spec: &TableSpec, rng: &mut SeededRng) -> Vec<Value> {
    let mut row: Vec<Value> = Vec::with_capacity(spec.columns.len());
    for (idx, col) in spec.columns.iter().enumerate() {
        let value = match &col.dist {
            Dist::Uniform(lo, hi) => Value::Float(rng.gen_range(*lo..=*hi)),
            Dist::UniformInt(lo, hi) => Value::Int(rng.gen_range(*lo..=*hi)),
            Dist::Mixture(parts) => {
                let total: f64 = parts.iter().map(|(w, _, _)| w).sum();
                let mut pick = rng.gen_range(0.0..total);
                let mut chosen = parts.last().expect("non-empty mixture");
                for part in *parts {
                    if pick < part.0 {
                        chosen = part;
                        break;
                    }
                    pick -= part.0;
                }
                Value::Float(rng.gen_range(chosen.1..=chosen.2))
            }
            Dist::MixtureInt(parts) => {
                let total: f64 = parts.iter().map(|(w, _, _)| w).sum();
                let mut pick = rng.gen_range(0.0..total);
                let mut chosen = parts.last().expect("non-empty mixture");
                for part in *parts {
                    if pick < part.0 {
                        chosen = part;
                        break;
                    }
                    pick -= part.0;
                }
                Value::Int(rng.gen_range(chosen.1..=chosen.2))
            }
            Dist::Cat(values) => {
                let total: f64 = values.iter().map(|(_, w)| w).sum();
                let mut pick = rng.gen_range(0.0..total);
                let mut chosen = values.last().expect("non-empty cat").0;
                for (v, w) in *values {
                    if pick < *w {
                        chosen = v;
                        break;
                    }
                    pick -= w;
                }
                Value::Str(chosen.to_string())
            }
            Dist::LinkedLinear {
                base,
                scale,
                offset,
                noise,
            } => {
                // The base column must have been generated earlier in the
                // column list.
                let base_val = spec.columns[..idx]
                    .iter()
                    .zip(row.iter())
                    .find(|(c, _)| c.name.eq_ignore_ascii_case(base))
                    .and_then(|(_, v)| v.as_f64())
                    .unwrap_or(0.0);
                let jitter = rng.gen_range(-*noise..=*noise);
                let v = offset + scale * base_val + jitter;
                match col.dtype {
                    aa_engine::DataType::Int => Value::Int(v.round() as i64),
                    _ => Value::Float(v),
                }
            }
        };
        row.push(value);
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::table_spec;
    use aa_engine::{exact_column_content, ColumnContent};

    #[test]
    fn catalog_builds_all_tables_scaled() {
        let catalog = build_catalog(0.01, 42);
        assert!(catalog.has_table("PhotoObjAll"));
        assert!(catalog.has_table("zooSpec"));
        let photo = catalog.table("PhotoObjAll").unwrap();
        assert_eq!(photo.row_count(), 300); // 30_000 * 0.01
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let a = build_catalog(0.005, 7);
        let b = build_catalog(0.005, 7);
        let ta = a.table("Photoz").unwrap();
        let tb = b.table("Photoz").unwrap();
        assert_eq!(ta.rows, tb.rows);
        let c = build_catalog(0.005, 8);
        assert_ne!(c.table("Photoz").unwrap().rows, ta.rows);
    }

    #[test]
    fn content_respects_calibrated_boxes() {
        let catalog = build_catalog(0.05, 1);
        // PhotoObjAll.dec content stays in [-25, 85] (empty below -25).
        let photo = catalog.table("PhotoObjAll").unwrap();
        match exact_column_content(photo, "dec") {
            ColumnContent::Numeric { min, max } => {
                assert!(min >= -25.0, "{min}");
                assert!(max <= 85.0, "{max}");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Photoz.z content stays in [0, 1].
        let photoz = catalog.table("Photoz").unwrap();
        match exact_column_content(photoz, "z") {
            ColumnContent::Numeric { min, max } => {
                assert!(min >= 0.0 && max <= 1.0, "{min} {max}");
            }
            other => panic!("unexpected {other:?}"),
        }
        // galSpecLine.specobjid content ends before Cluster 19's range.
        let gsl = catalog.table("galSpecLine").unwrap();
        match exact_column_content(gsl, "specobjid") {
            ColumnContent::Numeric { max, .. } => {
                assert!(max < 3.52e18, "{max}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn plate_tracks_mjd() {
        let mut rng = SeededRng::seed_from_u64(3);
        let spec = table_spec("SpecObjAll").unwrap();
        let table = generate_table(&spec, 0.05, &mut rng);
        let schema = &table.schema;
        let (pi, mi) = (
            schema.column_index("plate").unwrap(),
            schema.column_index("mjd").unwrap(),
        );
        for row in &table.rows {
            let plate = row[pi].as_f64().unwrap();
            let mjd = row[mi].as_f64().unwrap();
            let expected = 266.0 + (mjd - 51_578.0) * (4875.0 / 4174.0);
            assert!(
                (plate - expected).abs() <= 150.5,
                "plate {plate} vs expected {expected}"
            );
        }
    }

    #[test]
    fn categorical_weights_roughly_hold() {
        let catalog = build_catalog(0.5, 11);
        let spec_obj = catalog.table("SpecObjAll").unwrap();
        let ci = spec_obj.schema.column_index("class").unwrap();
        let stars = spec_obj
            .rows
            .iter()
            .filter(|r| matches!(&r[ci], Value::Str(s) if s == "star"))
            .count() as f64;
        let frac = stars / spec_obj.row_count() as f64;
        assert!((frac - 0.25).abs() < 0.05, "{frac}");
    }
}

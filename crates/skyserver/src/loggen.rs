//! Synthetic query-log generation with ground-truth labels.
//!
//! The real 12.4M-entry DR9 log is not public; this generator reproduces
//! its *composition* as reported by the paper: the Table 1 cluster mix
//! (cardinality-proportional), a large exploratory background, the ~0.54%
//! of entries the parser rejects (Section 6.1), and the MySQL-dialect
//! queries of Section 6.6. Every entry carries its ground truth so the
//! clustering-recovery experiments can score themselves.

use crate::templates::{
    background_query, cluster_query, mysql_dialect_query, pathological_query, ClusterSpec,
    PathologicalKind, TABLE1,
};
use aa_util::SeededRng;

/// What generated a log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GroundTruth {
    /// Table 1 cluster 1–24.
    Cluster(u8),
    /// Exploratory background (should mostly be DBSCAN noise).
    Background,
    /// MySQL-dialect query (parses, errors on the real server).
    MySqlDialect,
    /// Unparseable entry.
    Pathological(PathologicalKind),
}

/// One log entry.
#[derive(Debug, Clone)]
pub struct LogEntry {
    pub sql: String,
    pub truth: GroundTruth,
    /// Simulated user id. The paper observes that "the cardinality of
    /// each cluster is approximately equal to the number of users":
    /// cluster queries come from a broad user base, so each entry draws a
    /// fresh user with high probability (a small share are repeats).
    pub user: u32,
}

/// Log composition knobs.
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// Total number of entries.
    pub total: usize,
    /// RNG seed (the log is fully deterministic given the config).
    pub seed: u64,
    /// Fraction of entries drawn from the Table 1 cluster templates.
    pub cluster_fraction: f64,
    /// Fraction of unparseable entries (paper: 67,563 / 12,442,989).
    pub pathological_fraction: f64,
    /// Fraction of MySQL-dialect entries.
    pub mysql_fraction: f64,
    /// Floor on per-cluster query counts so small clusters (e.g. Cluster
    /// 24 with 217 of 5.6M) survive down-scaling past DBSCAN's `min_pts`.
    pub min_cluster_size: usize,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            total: 20_000,
            seed: 42,
            cluster_fraction: 0.5,
            pathological_fraction: 67_563.0 / 12_442_989.0,
            mysql_fraction: 0.01,
            min_cluster_size: 30,
        }
    }
}

impl LogConfig {
    /// A small config for tests.
    pub fn small(total: usize, seed: u64) -> Self {
        LogConfig {
            total,
            seed,
            min_cluster_size: 10,
            ..LogConfig::default()
        }
    }
}

/// Per-cluster planned counts for a config.
pub fn planned_cluster_counts(config: &LogConfig) -> Vec<(&'static ClusterSpec, usize)> {
    let budget = (config.total as f64 * config.cluster_fraction).round() as usize;
    let total_card: u64 = TABLE1.iter().map(|c| c.cardinality).sum();
    TABLE1
        .iter()
        .map(|spec| {
            let raw =
                (budget as f64 * spec.cardinality as f64 / total_card as f64).round() as usize;
            (spec, raw.max(config.min_cluster_size))
        })
        .collect()
}

/// Generates the log (shuffled, deterministic in the seed).
pub fn generate_log(config: &LogConfig) -> Vec<LogEntry> {
    let mut rng = SeededRng::seed_from_u64(config.seed);
    let mut entries: Vec<LogEntry> = Vec::with_capacity(config.total);
    let mut next_user: u32 = 0;
    // ~90% of queries come from a fresh user; 10% are repeat visitors.
    let mut draw_user = |rng: &mut SeededRng| -> u32 {
        if next_user > 0 && rng.gen_bool(0.1) {
            rng.gen_range(0..next_user)
        } else {
            next_user += 1;
            next_user - 1
        }
    };

    for (spec, count) in planned_cluster_counts(config) {
        for _ in 0..count {
            let user = draw_user(&mut rng);
            entries.push(LogEntry {
                sql: cluster_query(spec.id, &mut rng),
                truth: GroundTruth::Cluster(spec.id),
                user,
            });
        }
    }

    let n_path = (config.total as f64 * config.pathological_fraction).round() as usize;
    for i in 0..n_path {
        // Section 6.1's split: errors, UDFs, admin statements.
        let kind = match i % 3 {
            0 => PathologicalKind::SyntaxError,
            1 => PathologicalKind::UserDefinedFunction,
            _ => PathologicalKind::AdminStatement,
        };
        let user = draw_user(&mut rng);
        entries.push(LogEntry {
            sql: pathological_query(kind, &mut rng),
            truth: GroundTruth::Pathological(kind),
            user,
        });
    }

    let n_mysql = (config.total as f64 * config.mysql_fraction).round() as usize;
    for _ in 0..n_mysql {
        let user = draw_user(&mut rng);
        entries.push(LogEntry {
            sql: mysql_dialect_query(&mut rng),
            truth: GroundTruth::MySqlDialect,
            user,
        });
    }

    while entries.len() < config.total {
        let user = draw_user(&mut rng);
        entries.push(LogEntry {
            sql: background_query(&mut rng),
            truth: GroundTruth::Background,
            user,
        });
    }

    rng.shuffle(&mut entries);
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_has_requested_composition() {
        let config = LogConfig::small(5_000, 7);
        let log = generate_log(&config);
        assert!(log.len() >= config.total);
        let clusters = log
            .iter()
            .filter(|e| matches!(e.truth, GroundTruth::Cluster(_)))
            .count();
        // cluster_fraction 0.5 plus per-cluster floors.
        assert!(clusters >= 2_400, "{clusters}");
        let path = log
            .iter()
            .filter(|e| matches!(e.truth, GroundTruth::Pathological(_)))
            .count();
        assert_eq!(path, 27); // round(5000 * 0.00543)
        let mysql = log
            .iter()
            .filter(|e| e.truth == GroundTruth::MySqlDialect)
            .count();
        assert_eq!(mysql, 50);
    }

    #[test]
    fn every_cluster_meets_its_floor() {
        let config = LogConfig::small(3_000, 9);
        let log = generate_log(&config);
        for spec in TABLE1 {
            let n = log
                .iter()
                .filter(|e| e.truth == GroundTruth::Cluster(spec.id))
                .count();
            assert!(
                n >= config.min_cluster_size,
                "cluster {} has only {n}",
                spec.id
            );
        }
    }

    #[test]
    fn log_is_deterministic() {
        let config = LogConfig::small(1_000, 3);
        let a = generate_log(&config);
        let b = generate_log(&config);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.sql, y.sql);
            assert_eq!(x.truth, y.truth);
        }
    }

    #[test]
    fn users_are_broadly_distributed() {
        // The paper: cluster cardinality ~ number of distinct users.
        let log = generate_log(&LogConfig::small(2_000, 13));
        let users: std::collections::HashSet<u32> = log.iter().map(|e| e.user).collect();
        assert!(
            users.len() as f64 > 0.8 * log.len() as f64,
            "{} users for {} queries",
            users.len(),
            log.len()
        );
    }

    #[test]
    fn cluster_counts_follow_cardinality_order() {
        let config = LogConfig {
            total: 50_000,
            ..LogConfig::default()
        };
        let counts = planned_cluster_counts(&config);
        let c1 = counts.iter().find(|(s, _)| s.id == 1).unwrap().1;
        let c7 = counts.iter().find(|(s, _)| s.id == 7).unwrap().1;
        let c24 = counts.iter().find(|(s, _)| s.id == 24).unwrap().1;
        assert!(c1 > c7);
        assert!(c7 > c24);
        assert_eq!(c24, config.min_cluster_size);
    }
}

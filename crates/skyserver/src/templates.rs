//! Query templates calibrated to Table 1 of the paper.
//!
//! Each of the paper's 24 representative clusters becomes a template that
//! emits SQL whose *faithfully extracted* access area falls inside the
//! cluster's reported bounds (constants are jittered per query, so DBSCAN
//! has to chain them — exactly the aggregation the paper performs).
//!
//! Clusters 2, 5, 8, 9, 11, 12, 18, 19, 20 and 22 — the ones Section 6.5
//! reports broken by as-is predicate handling — emit a share of
//! *aggregate-form* variants (`GROUP BY … HAVING SUM(x) > c`): the lemma
//! analysis maps the `HAVING` to no constraint (Lemma 1, `sup > 0`), so
//! the faithful area equals the plain variant's, while naive extraction
//! injects a spurious `x > c` predicate that pushes the query out of the
//! cluster.

use aa_util::SeededRng;

/// Paper-reported numbers for one Table 1 cluster (the targets the
/// reproduction is compared against in EXPERIMENTS.md).
#[derive(Debug, Clone, Copy)]
pub struct ClusterSpec {
    /// Cluster id, 1–24 as in Table 1.
    pub id: u8,
    /// Reported number of queries.
    pub cardinality: u64,
    /// Reported area coverage.
    pub area_coverage: f64,
    /// Reported object coverage.
    pub object_coverage: f64,
    /// Reported access-area description.
    pub description: &'static str,
    /// Clusters 18–24 lie in empty areas of the data space.
    pub empty_area: bool,
    /// Listed as broken by OLAPClus-on-raw-queries in Section 6.5.
    pub breakable: bool,
}

/// Table 1 of the paper, verbatim.
pub const TABLE1: &[ClusterSpec] = &[
    ClusterSpec { id: 1,  cardinality: 179_072, area_coverage: 0.24, object_coverage: 0.36, description: "1237657855534432934 <= Photoz.objid <= 1237666210342830434", empty_area: false, breakable: false },
    ClusterSpec { id: 2,  cardinality: 121_311, area_coverage: 0.19, object_coverage: 0.22, description: "1115887524498139136 <= SpecObjAll.specobjid <= 2183177975464224768", empty_area: false, breakable: true },
    ClusterSpec { id: 3,  cardinality: 92_177,  area_coverage: 0.22, object_coverage: 0.21, description: "1345591721622267904 <= galSpecLine.specobjid <= 2007633797213874176", empty_area: false, breakable: false },
    ClusterSpec { id: 4,  cardinality: 90_047,  area_coverage: 0.25, object_coverage: 0.25, description: "1416192325597030400 <= galSpecInfo.specobjid <= 2183213984470034432", empty_area: false, breakable: false },
    ClusterSpec { id: 5,  cardinality: 90_015,  area_coverage: 0.19, object_coverage: 0.25, description: "PhotoObjAll.ra <= 210 AND PhotoObjAll.dec <= 10", empty_area: false, breakable: true },
    ClusterSpec { id: 6,  cardinality: 82_196,  area_coverage: 0.23, object_coverage: 0.24, description: "1228357946564438016 <= sppLines.specobjid <= 2069493422263134208", empty_area: false, breakable: false },
    ClusterSpec { id: 7,  cardinality: 23_021,  area_coverage: 0.17, object_coverage: 0.04, description: "54 <= SpecObjAll.ra <= 115", empty_area: false, breakable: false },
    ClusterSpec { id: 8,  cardinality: 23_021,  area_coverage: 0.23, object_coverage: 0.09, description: "60 <= SpecPhotoAll.ra <= 124", empty_area: false, breakable: true },
    ClusterSpec { id: 9,  cardinality: 18_904,  area_coverage: 0.03, object_coverage: 0.01, description: "SpecObjAll.class = 'star' AND 51578 <= SpecObjAll.mjd <= 52178 AND 296 <= SpecObjAll.plate <= 3200", empty_area: false, breakable: true },
    ClusterSpec { id: 10, cardinality: 10_141,  area_coverage: 0.26, object_coverage: 0.27, description: "DBObjects.access = 'U' AND (DBObjects.type = 'V' OR DBObjects.type = 'U')", empty_area: false, breakable: false },
    ClusterSpec { id: 11, cardinality: 4_006,   area_coverage: 0.24, object_coverage: 0.18, description: "55 <= emissionLinesPort.ra <= 141", empty_area: false, breakable: true },
    ClusterSpec { id: 12, cardinality: 3_785,   area_coverage: 0.21, object_coverage: 0.17, description: "62 <= stellarMassPCAWisc.ra <= 138", empty_area: false, breakable: true },
    ClusterSpec { id: 13, cardinality: 1_622,   area_coverage: 0.12, object_coverage: 0.11, description: "AtlasOutline.objid > 1237676243900255188", empty_area: false, breakable: false },
    ClusterSpec { id: 14, cardinality: 1_371,   area_coverage: 0.16, object_coverage: 0.01, description: "2 <= zooSpec.ra <= 120 AND 30 <= zooSpec.dec <= 70", empty_area: false, breakable: false },
    ClusterSpec { id: 15, cardinality: 1_141,   area_coverage: 0.10, object_coverage: 0.05, description: "0 <= Photoz.z <= 0.1", empty_area: false, breakable: false },
    ClusterSpec { id: 16, cardinality: 1_102,   area_coverage: 0.25, object_coverage: 0.17, description: "0 <= galSpecExtra.bptclass <= 3 AND galSpecExtra.specobjid = galSpecIndx.specObjID", empty_area: false, breakable: false },
    ClusterSpec { id: 17, cardinality: 1_035,   area_coverage: 0.0009, object_coverage: 0.0009, description: "sppLines.gwholemask = 0 AND 0 <= sppLines.gwholeside <= 50 AND sppLines.specobjid = sppParams.specobjid AND -0.3 <= sppParams.fehadop <= 0.5 AND 2 <= sppParams.loggadop <= 3", empty_area: false, breakable: false },
    ClusterSpec { id: 18, cardinality: 48_470,  area_coverage: 0.0, object_coverage: 0.0, description: "10 <= PhotoObjAll.ra <= 120 AND -90 <= PhotoObjAll.dec <= -50", empty_area: true, breakable: true },
    ClusterSpec { id: 19, cardinality: 41_599,  area_coverage: 0.0, object_coverage: 0.0, description: "3519644828126257152 <= galSpecLine.specobjid <= 5788299621113984000", empty_area: true, breakable: true },
    ClusterSpec { id: 20, cardinality: 18_444,  area_coverage: 0.0, object_coverage: 0.0, description: "3519644828126257152 <= galSpecInfo.specobjid <= 5788299621113984000", empty_area: true, breakable: true },
    ClusterSpec { id: 21, cardinality: 18_043,  area_coverage: 0.0, object_coverage: 0.0, description: "4037480726273651712 <= sppLines.specobjid <= 5788299621113984000", empty_area: true, breakable: false },
    ClusterSpec { id: 22, cardinality: 1_358,   area_coverage: 0.0, object_coverage: 0.0, description: "6 <= zooSpec.ra <= 115 AND -100 <= zooSpec.dec <= -15", empty_area: true, breakable: true },
    ClusterSpec { id: 23, cardinality: 422,     area_coverage: 0.0, object_coverage: 0.0, description: "-0.98 <= Photoz.z <= -0.1", empty_area: true, breakable: false },
    ClusterSpec { id: 24, cardinality: 217,     area_coverage: 0.0, object_coverage: 0.0, description: "3.0 <= Photoz.z <= 6.5", empty_area: true, breakable: false },
];

/// Fraction of a breakable cluster's queries emitted in aggregate form.
pub const AGGREGATE_VARIANT_SHARE: f64 = 0.25;

/// Draws a range `[lo', hi']` jittered inward from `[lo, hi]` so that the
/// union over many draws reconstructs `[lo, hi]` as the aggregated MBR.
fn jitter_range(rng: &mut SeededRng, lo: f64, hi: f64) -> (f64, f64) {
    let span = hi - lo;
    let l = lo + rng.gen_range(0.0..=span * 0.08);
    let h = hi - rng.gen_range(0.0..=span * 0.08);
    (l, h.max(l))
}

fn jitter_range_i(rng: &mut SeededRng, lo: i64, hi: i64) -> (i64, i64) {
    let (l, h) = jitter_range(rng, lo as f64, hi as f64);
    (l.round() as i64, h.round() as i64)
}

/// Emits a range predicate in one of the syntactic variants users write.
fn range_pred(rng: &mut SeededRng, col: &str, lo: &str, hi: &str) -> String {
    match rng.gen_range(0..3) {
        0 => format!("{col} BETWEEN {lo} AND {hi}"),
        1 => format!("{col} >= {lo} AND {col} <= {hi}"),
        _ => format!("{lo} <= {col} AND {col} <= {hi}"),
    }
}

/// Optionally wraps a plain query into the breakable aggregate form.
fn maybe_aggregate(
    rng: &mut SeededRng,
    breakable: bool,
    table: &str,
    group_col: &str,
    sum_col: &str,
    preds: &str,
    plain: String,
) -> String {
    if breakable && rng.gen_bool(AGGREGATE_VARIANT_SHARE) {
        let threshold = rng.gen_range(100..100_000);
        format!(
            "SELECT {table}.{group_col}, SUM({table}.{sum_col}) FROM {table} \
             WHERE {preds} GROUP BY {table}.{group_col} \
             HAVING SUM({table}.{sum_col}) > {threshold}"
        )
    } else {
        plain
    }
}

/// Generates one query belonging to Table 1 cluster `id` (1–24).
pub fn cluster_query(id: u8, rng: &mut SeededRng) -> String {
    match id {
        // Point lookups on Photoz.objid.
        1 => {
            let c = rng.gen_range(1_237_657_855_534_432_934i64..=1_237_666_210_342_830_434);
            match rng.gen_range(0..3) {
                0 => format!("SELECT z FROM Photoz WHERE objid = {c}"),
                1 => format!("SELECT * FROM Photoz WHERE Photoz.objid = {c}"),
                _ => format!("SELECT z, zerr FROM Photoz WHERE objid = {c} ORDER BY z"),
            }
        }
        2 => {
            let (l, h) =
                jitter_range_i(rng, 1_115_887_524_498_139_136, 2_183_177_975_464_224_768);
            let preds = range_pred(rng, "SpecObjAll.specobjid", &l.to_string(), &h.to_string());
            let plain = format!("SELECT * FROM SpecObjAll WHERE {preds}");
            maybe_aggregate(rng, true, "SpecObjAll", "class", "z", &preds, plain)
        }
        3 => {
            let (l, h) =
                jitter_range_i(rng, 1_345_591_721_622_267_904, 2_007_633_797_213_874_176);
            let preds = range_pred(rng, "galSpecLine.specobjid", &l.to_string(), &h.to_string());
            format!("SELECT h_alpha_flux FROM galSpecLine WHERE {preds}")
        }
        4 => {
            let (l, h) =
                jitter_range_i(rng, 1_416_192_325_597_030_400, 2_183_213_984_470_034_432);
            let preds = range_pred(rng, "galSpecInfo.specobjid", &l.to_string(), &h.to_string());
            format!("SELECT * FROM galSpecInfo WHERE {preds}")
        }
        5 => {
            let ra = 210.0 - rng.gen_range(0.0..=8.0);
            let dec = 10.0 - rng.gen_range(0.0..=0.8);
            let preds = format!("PhotoObjAll.ra <= {ra:.2} AND PhotoObjAll.dec <= {dec:.2}");
            let plain = match rng.gen_range(0..3) {
                0 => format!("SELECT ra, dec FROM PhotoObjAll WHERE {preds}"),
                1 => format!("SELECT TOP 1000 * FROM PhotoObjAll WHERE {preds}"),
                _ => format!("SELECT objid FROM PhotoObjAll WHERE {preds} ORDER BY ra"),
            };
            maybe_aggregate(rng, true, "PhotoObjAll", "type", "r", &preds, plain)
        }
        6 => {
            let (l, h) =
                jitter_range_i(rng, 1_228_357_946_564_438_016, 2_069_493_422_263_134_208);
            let preds = range_pred(rng, "sppLines.specobjid", &l.to_string(), &h.to_string());
            format!("SELECT * FROM sppLines WHERE {preds}")
        }
        7 => {
            let (l, h) = jitter_range(rng, 54.0, 115.0);
            let preds = range_pred(rng, "SpecObjAll.ra", &format!("{l:.2}"), &format!("{h:.2}"));
            format!("SELECT ra, dec, z FROM SpecObjAll WHERE {preds}")
        }
        8 => {
            let (l, h) = jitter_range(rng, 60.0, 124.0);
            let preds =
                range_pred(rng, "SpecPhotoAll.ra", &format!("{l:.2}"), &format!("{h:.2}"));
            let plain = format!("SELECT * FROM SpecPhotoAll WHERE {preds}");
            maybe_aggregate(rng, true, "SpecPhotoAll", "class", "dec", &preds, plain)
        }
        9 => {
            let (ml, mh) = jitter_range_i(rng, 51_578, 52_178);
            let (pl, ph) = jitter_range_i(rng, 296, 3_200);
            let preds = format!(
                "SpecObjAll.class = 'star' AND {} AND {}",
                range_pred(rng, "SpecObjAll.mjd", &ml.to_string(), &mh.to_string()),
                range_pred(rng, "SpecObjAll.plate", &pl.to_string(), &ph.to_string()),
            );
            let plain = format!("SELECT plate, mjd FROM SpecObjAll WHERE {preds}");
            maybe_aggregate(rng, true, "SpecObjAll", "plate", "z", &preds, plain)
        }
        10 => {
            format!(
                "SELECT name FROM DBObjects WHERE access = 'U' AND (type = 'V' OR type = 'U'){}",
                if rng.gen_bool(0.3) { " ORDER BY name" } else { "" }
            )
        }
        11 => {
            let (l, h) = jitter_range(rng, 55.0, 141.0);
            let preds = range_pred(
                rng,
                "emissionLinesPort.ra",
                &format!("{l:.2}"),
                &format!("{h:.2}"),
            );
            let plain = format!("SELECT * FROM emissionLinesPort WHERE {preds}");
            maybe_aggregate(rng, true, "emissionLinesPort", "bpt", "dec", &preds, plain)
        }
        12 => {
            let (l, h) = jitter_range(rng, 62.0, 138.0);
            let preds = range_pred(
                rng,
                "stellarMassPCAWisc.ra",
                &format!("{l:.2}"),
                &format!("{h:.2}"),
            );
            let plain = format!("SELECT mstellar_median FROM stellarMassPCAWisc WHERE {preds}");
            maybe_aggregate(
                rng,
                true,
                "stellarMassPCAWisc",
                "specobjid",
                "mstellar_median",
                &preds,
                plain,
            )
        }
        13 => {
            let c = 1_237_676_243_900_255_188i64 + rng.gen_range(0..2_000_000_000_000i64);
            format!("SELECT * FROM AtlasOutline WHERE objid > {c}")
        }
        14 => {
            let (rl, rh) = jitter_range(rng, 2.0, 120.0);
            let (dl, dh) = jitter_range(rng, 30.0, 70.0);
            format!(
                "SELECT * FROM zooSpec WHERE {} AND {}",
                range_pred(rng, "zooSpec.ra", &format!("{rl:.2}"), &format!("{rh:.2}")),
                range_pred(rng, "zooSpec.dec", &format!("{dl:.2}"), &format!("{dh:.2}")),
            )
        }
        15 => {
            let h = 0.1 - rng.gen_range(0.0..=0.008);
            format!(
                "SELECT objid FROM Photoz WHERE {}",
                range_pred(rng, "Photoz.z", "0", &format!("{h:.4}"))
            )
        }
        16 => {
            let (bl, bh) = jitter_range_i(rng, 0, 3);
            format!(
                "SELECT galSpecExtra.bptclass FROM galSpecExtra, galSpecIndx \
                 WHERE galSpecExtra.bptclass >= {bl} AND galSpecExtra.bptclass <= {bh} \
                 AND galSpecExtra.specobjid = galSpecIndx.specObjID"
            )
        }
        17 => {
            let (gl, gh) = jitter_range(rng, 0.0, 50.0);
            let (fl, fh) = jitter_range(rng, -0.3, 0.5);
            let (ll, lh) = jitter_range(rng, 2.0, 3.0);
            format!(
                "SELECT * FROM sppLines, sppParams WHERE sppLines.gwholemask = 0 \
                 AND sppLines.gwholeside >= {gl:.2} AND sppLines.gwholeside <= {gh:.2} \
                 AND sppLines.specobjid = sppParams.specobjid \
                 AND sppParams.fehadop >= {fl:.3} AND sppParams.fehadop <= {fh:.3} \
                 AND sppParams.loggadop >= {ll:.2} AND sppParams.loggadop <= {lh:.2}"
            )
        }
        // Empty-area clusters (18–24).
        18 => {
            let (rl, rh) = jitter_range(rng, 10.0, 120.0);
            let (dl, dh) = jitter_range(rng, -90.0, -50.0);
            let preds = format!(
                "{} AND {}",
                range_pred(rng, "PhotoObjAll.ra", &format!("{rl:.2}"), &format!("{rh:.2}")),
                range_pred(rng, "PhotoObjAll.dec", &format!("{dl:.2}"), &format!("{dh:.2}")),
            );
            let plain = format!("SELECT ra, dec FROM PhotoObjAll WHERE {preds}");
            maybe_aggregate(rng, true, "PhotoObjAll", "mode", "g", &preds, plain)
        }
        19 => {
            let (l, h) =
                jitter_range_i(rng, 3_519_644_828_126_257_152, 5_788_299_621_113_984_000);
            let preds = range_pred(rng, "galSpecLine.specobjid", &l.to_string(), &h.to_string());
            let plain = format!("SELECT * FROM galSpecLine WHERE {preds}");
            maybe_aggregate(rng, true, "galSpecLine", "specobjid", "h_alpha_flux", &preds, plain)
        }
        20 => {
            let (l, h) =
                jitter_range_i(rng, 3_519_644_828_126_257_152, 5_788_299_621_113_984_000);
            let preds = range_pred(rng, "galSpecInfo.specobjid", &l.to_string(), &h.to_string());
            let plain = format!("SELECT * FROM galSpecInfo WHERE {preds}");
            maybe_aggregate(rng, true, "galSpecInfo", "targettype", "v_disp", &preds, plain)
        }
        21 => {
            let (l, h) =
                jitter_range_i(rng, 4_037_480_726_273_651_712, 5_788_299_621_113_984_000);
            format!(
                "SELECT * FROM sppLines WHERE {}",
                range_pred(rng, "sppLines.specobjid", &l.to_string(), &h.to_string())
            )
        }
        22 => {
            let (rl, rh) = jitter_range(rng, 6.0, 115.0);
            let (dl, dh) = jitter_range(rng, -100.0, -15.0);
            let preds = format!(
                "{} AND {}",
                range_pred(rng, "zooSpec.ra", &format!("{rl:.2}"), &format!("{rh:.2}")),
                range_pred(rng, "zooSpec.dec", &format!("{dl:.2}"), &format!("{dh:.2}")),
            );
            let plain = format!("SELECT * FROM zooSpec WHERE {preds}");
            maybe_aggregate(rng, true, "zooSpec", "specobjid", "p_el", &preds, plain)
        }
        23 => {
            let (l, h) = jitter_range(rng, -0.98, -0.1);
            format!(
                "SELECT objid FROM Photoz WHERE {}",
                range_pred(rng, "Photoz.z", &format!("{l:.3}"), &format!("{h:.3}"))
            )
        }
        24 => {
            let (l, h) = jitter_range(rng, 3.0, 6.5);
            format!(
                "SELECT objid FROM Photoz WHERE {}",
                range_pred(rng, "Photoz.z", &format!("{l:.2}"), &format!("{h:.2}"))
            )
        }
        other => panic!("no such Table 1 cluster: {other}"),
    }
}

/// Background queries: exploratory one-offs spread across the data space,
/// which DBSCAN should largely label as noise.
pub fn background_query(rng: &mut SeededRng) -> String {
    const CHOICES: &[(&str, &str, f64, f64)] = &[
        ("PhotoObjAll", "r", 10.0, 30.0),
        ("PhotoObjAll", "ra", 0.0, 360.0),
        ("SpecObjAll", "z", 0.0, 5.0),
        ("SpecObjAll", "dec", -25.0, 85.0),
        ("Photoz", "zerr", 0.0, 0.2),
        ("galSpecLine", "h_beta_flux", -50.0, 2000.0),
        ("zooSpec", "p_el", 0.0, 1.0),
        ("sppParams", "fehadop", -3.0, 0.6),
        ("emissionLinesPort", "dec", -25.0, 85.0),
        ("stellarMassPCAWisc", "mstellar_median", 7.0, 12.0),
    ];
    let (table, col, lo, hi) = CHOICES[rng.gen_range(0..CHOICES.len())];
    let a = rng.gen_range(lo..hi);
    let b = rng.gen_range(lo..hi);
    let (a, b) = (a.min(b), a.max(b));
    match rng.gen_range(0..4) {
        0 => format!("SELECT * FROM {table} WHERE {col} > {a:.4}"),
        1 => format!("SELECT * FROM {table} WHERE {col} < {b:.4}"),
        2 => format!("SELECT * FROM {table} WHERE {col} BETWEEN {a:.4} AND {b:.4}"),
        _ => format!("SELECT TOP 100 * FROM {table} WHERE {col} >= {a:.4} AND {col} <= {b:.4}"),
    }
}

/// Pathological log entries — the ~0.54% the paper's parser rejects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathologicalKind {
    /// Plain syntax errors.
    SyntaxError,
    /// SkyServer UDF calls (JSqlParser rejected these; we reject them in
    /// the extractor).
    UserDefinedFunction,
    /// Admin DDL (`CREATE TABLE`, `DECLARE`).
    AdminStatement,
}

/// Generates a pathological entry of the given kind.
pub fn pathological_query(kind: PathologicalKind, rng: &mut SeededRng) -> String {
    match kind {
        PathologicalKind::SyntaxError => {
            const BROKEN: &[&str] = &[
                "SELEC * FORM PhotoObjAll",
                "SELECT * FROM WHERE ra > 10",
                "SELECT ra dec FROM PhotoObjAll WHERE (ra > 10",
                "SELECT * FROM PhotoObjAll WHERE ra >> 10",
                "FROM PhotoObjAll SELECT *",
            ];
            BROKEN[rng.gen_range(0..BROKEN.len())].to_string()
        }
        PathologicalKind::UserDefinedFunction => {
            let ra = rng.gen_range(0.0..360.0);
            let dec = rng.gen_range(-25.0..85.0);
            match rng.gen_range(0..2) {
                0 => format!(
                    "SELECT p.objid FROM PhotoObjAll p, dbo.fGetNearbyObjEq({ra:.2}, {dec:.2}, 1.0) n WHERE p.objid = n.objid"
                ),
                _ => format!(
                    "SELECT * FROM PhotoObjAll WHERE dbo.fDistanceArcMinEq(ra, dec, {ra:.2}, {dec:.2}) < 2.0"
                ),
            }
        }
        PathologicalKind::AdminStatement => {
            const ADMIN: &[&str] = &[
                "CREATE TABLE #tmpResults (objid bigint, ra float)",
                "DECLARE @count int",
                "INSERT INTO weblog VALUES (1, 'hit')",
                "DROP TABLE #tmpResults",
            ];
            ADMIN[rng.gen_range(0..ADMIN.len())].to_string()
        }
    }
}

/// MySQL-dialect queries users paste into the MS-SQL-only interface
/// (Section 6.6's `SELECT Galaxies.objid FROM Galaxies LIMIT 10`).
pub fn mysql_dialect_query(rng: &mut SeededRng) -> String {
    let n = rng.gen_range(5..500);
    match rng.gen_range(0..2) {
        0 => format!("SELECT Galaxies.objid FROM Galaxies LIMIT {n}"),
        _ => {
            let ra = rng.gen_range(0.0..300.0);
            format!("SELECT objid FROM Galaxies WHERE ra > {ra:.2} LIMIT {n}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_shape() {
        assert_eq!(TABLE1.len(), 24);
        // Cardinalities are strictly ordered within clusters 1..17 as in
        // the table, and 18-24 are the empty-area block.
        assert_eq!(TABLE1[0].cardinality, 179_072);
        assert_eq!(TABLE1[23].cardinality, 217);
        assert_eq!(TABLE1.iter().filter(|c| c.empty_area).count(), 7);
        let breakable: Vec<u8> = TABLE1.iter().filter(|c| c.breakable).map(|c| c.id).collect();
        assert_eq!(breakable, vec![2, 5, 8, 9, 11, 12, 18, 19, 20, 22]);
    }

    #[test]
    fn every_cluster_query_parses() {
        let mut rng = SeededRng::seed_from_u64(1);
        for spec in TABLE1 {
            for _ in 0..20 {
                let sql = cluster_query(spec.id, &mut rng);
                aa_sql::parse_select(&sql)
                    .unwrap_or_else(|e| panic!("cluster {}: {sql}: {e}", spec.id));
            }
        }
    }

    #[test]
    fn cluster_queries_extract_into_reported_bounds() {
        use aa_core::extract::{Extractor, NoSchema};
        let mut rng = SeededRng::seed_from_u64(2);
        let ex = Extractor::new(&NoSchema);
        // Cluster 1: every extracted area constrains Photoz.objid within
        // the reported range.
        for _ in 0..50 {
            let sql = cluster_query(1, &mut rng);
            let area = ex.extract_sql(&sql).unwrap();
            assert!(area.has_table("Photoz"));
            let atom = area.constraint.atoms().next().unwrap();
            let (_, iv) = atom.satisfying_interval().unwrap();
            assert!(iv.lo >= 1_237_657_855_534_432_934f64);
            assert!(iv.hi <= 1_237_666_210_342_830_435f64);
        }
    }

    #[test]
    fn aggregate_variants_extract_to_same_table_and_range() {
        use aa_core::extract::{Extractor, NoSchema};
        let mut rng = SeededRng::seed_from_u64(3);
        let ex = Extractor::new(&NoSchema);
        let mut saw_aggregate = false;
        for _ in 0..100 {
            let sql = cluster_query(19, &mut rng);
            if sql.contains("HAVING") {
                saw_aggregate = true;
                let area = ex.extract_sql(&sql).unwrap();
                // Faithful extraction: the HAVING adds nothing; only the
                // specobjid range remains.
                assert!(area.has_table("galSpecLine"), "{sql}");
                for atom in area.constraint.atoms() {
                    assert!(
                        atom.to_string().contains("specobjid"),
                        "unexpected atom in {sql}: {atom}"
                    );
                }
            }
        }
        assert!(saw_aggregate, "aggregate share never sampled");
    }

    #[test]
    fn pathological_queries_fail_as_expected() {
        let mut rng = SeededRng::seed_from_u64(4);
        for _ in 0..10 {
            let sql = pathological_query(PathologicalKind::SyntaxError, &mut rng);
            assert!(aa_sql::parse_select(&sql).is_err(), "{sql}");
            let sql = pathological_query(PathologicalKind::AdminStatement, &mut rng);
            assert!(aa_sql::parse_select(&sql).is_err(), "{sql}");
        }
    }

    #[test]
    fn mysql_queries_parse_but_flag_dialect() {
        let mut rng = SeededRng::seed_from_u64(5);
        for _ in 0..10 {
            let sql = mysql_dialect_query(&mut rng);
            let q = aa_sql::parse_select(&sql).unwrap();
            assert!(q.uses_mysql_dialect(), "{sql}");
        }
    }

    #[test]
    fn background_queries_parse() {
        let mut rng = SeededRng::seed_from_u64(6);
        for _ in 0..100 {
            let sql = background_query(&mut rng);
            aa_sql::parse_select(&sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        }
    }
}

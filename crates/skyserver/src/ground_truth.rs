//! Scoring clustering output against the generator's ground truth.

use crate::loggen::GroundTruth;
use aa_dbscan::Label;
use std::collections::HashMap;

/// Recovery of one planted Table 1 cluster.
#[derive(Debug, Clone, Copy)]
pub struct ClusterRecovery {
    /// Planted cluster id (1–24).
    pub planted: u8,
    /// Number of its queries in the clustered sample.
    pub planted_size: usize,
    /// The DBSCAN cluster holding the plurality of them, if any.
    pub found_cluster: Option<usize>,
    /// Fraction of the planted queries inside `found_cluster`.
    pub recall: f64,
    /// Fraction of `found_cluster` that comes from this planted cluster.
    pub precision: f64,
}

impl ClusterRecovery {
    /// The criterion used by the integration tests: the planted cluster is
    /// considered recovered when most of it lands in one DBSCAN cluster
    /// that is not dominated by foreign queries.
    pub fn is_recovered(&self) -> bool {
        self.found_cluster.is_some() && self.recall >= 0.7 && self.precision >= 0.5
    }
}

/// Full recovery report.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    pub per_cluster: Vec<ClusterRecovery>,
    /// Fraction of background queries labelled noise.
    pub background_noise_rate: f64,
    /// Total DBSCAN clusters.
    pub dbscan_clusters: usize,
}

impl RecoveryReport {
    /// Number of planted clusters recovered.
    pub fn recovered_count(&self) -> usize {
        self.per_cluster
            .iter()
            .filter(|c| c.is_recovered())
            .count()
    }
}

/// Scores DBSCAN labels against ground truth. `truths` and `labels` are
/// parallel (one entry per clustered item).
pub fn evaluate(truths: &[GroundTruth], labels: &[Label], dbscan_clusters: usize) -> RecoveryReport {
    assert_eq!(truths.len(), labels.len());

    // Sizes of each DBSCAN cluster.
    let mut dbscan_sizes: HashMap<usize, usize> = HashMap::new();
    for label in labels {
        if let Label::Cluster(id) = label {
            *dbscan_sizes.entry(*id).or_default() += 1;
        }
    }

    // For each planted cluster: histogram over DBSCAN labels.
    let mut planted: HashMap<u8, HashMap<Option<usize>, usize>> = HashMap::new();
    let mut planted_sizes: HashMap<u8, usize> = HashMap::new();
    let mut background_total = 0usize;
    let mut background_noise = 0usize;
    for (truth, label) in truths.iter().zip(labels) {
        match truth {
            GroundTruth::Cluster(id) => {
                let id_v = *id;
                *planted_sizes.entry(id_v).or_default() += 1;
                *planted
                    .entry(id_v)
                    .or_default()
                    .entry(label.cluster())
                    .or_default() += 1;
            }
            GroundTruth::Background | GroundTruth::MySqlDialect => {
                background_total += 1;
                if *label == Label::Noise {
                    background_noise += 1;
                }
            }
            GroundTruth::Pathological(_) => {}
        }
    }

    let mut per_cluster: Vec<ClusterRecovery> = Vec::new();
    let mut ids: Vec<u8> = planted_sizes.keys().copied().collect();
    ids.sort_unstable();
    for id in ids {
        let size = planted_sizes[&id];
        let hist = &planted[&id];
        // Plurality DBSCAN cluster among the *clustered* queries.
        let best = hist
            .iter()
            .filter_map(|(label, n)| label.map(|l| (l, *n)))
            .max_by_key(|(_, n)| *n);
        let (found_cluster, recall, precision) = match best {
            Some((label, n)) => {
                let cluster_size = dbscan_sizes.get(&label).copied().unwrap_or(1);
                (
                    Some(label),
                    n as f64 / size as f64,
                    n as f64 / cluster_size as f64,
                )
            }
            None => (None, 0.0, 0.0),
        };
        per_cluster.push(ClusterRecovery {
            planted: id,
            planted_size: size,
            found_cluster,
            recall,
            precision,
        });
    }

    RecoveryReport {
        per_cluster,
        background_noise_rate: if background_total == 0 {
            1.0
        } else {
            background_noise as f64 / background_total as f64
        },
        dbscan_clusters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_recovery_scores_one() {
        let truths = vec![
            GroundTruth::Cluster(1),
            GroundTruth::Cluster(1),
            GroundTruth::Cluster(2),
            GroundTruth::Cluster(2),
            GroundTruth::Background,
        ];
        let labels = vec![
            Label::Cluster(0),
            Label::Cluster(0),
            Label::Cluster(1),
            Label::Cluster(1),
            Label::Noise,
        ];
        let report = evaluate(&truths, &labels, 2);
        assert_eq!(report.recovered_count(), 2);
        assert_eq!(report.background_noise_rate, 1.0);
        for c in &report.per_cluster {
            assert_eq!(c.recall, 1.0);
            assert_eq!(c.precision, 1.0);
        }
    }

    #[test]
    fn shattered_cluster_is_not_recovered() {
        // Cluster 1's four queries land in four different DBSCAN clusters.
        let truths = vec![GroundTruth::Cluster(1); 4];
        let labels = vec![
            Label::Cluster(0),
            Label::Cluster(1),
            Label::Cluster(2),
            Label::Cluster(3),
        ];
        let report = evaluate(&truths, &labels, 4);
        assert_eq!(report.recovered_count(), 0);
        assert_eq!(report.per_cluster[0].recall, 0.25);
    }

    #[test]
    fn merged_foreign_cluster_hurts_precision() {
        // One DBSCAN cluster swallows cluster 1 and lots of background.
        let mut truths = vec![GroundTruth::Cluster(1); 5];
        truths.extend(vec![GroundTruth::Background; 15]);
        let labels = vec![Label::Cluster(0); 20];
        let report = evaluate(&truths, &labels, 1);
        let c = &report.per_cluster[0];
        assert_eq!(c.recall, 1.0);
        assert_eq!(c.precision, 0.25);
        assert!(!c.is_recovered());
        assert_eq!(report.background_noise_rate, 0.0);
    }

    #[test]
    fn all_noise_cluster_reports_zero() {
        let truths = vec![GroundTruth::Cluster(3); 3];
        let labels = vec![Label::Noise; 3];
        let report = evaluate(&truths, &labels, 0);
        assert!(report.per_cluster[0].found_cluster.is_none());
        assert!(!report.per_cluster[0].is_recovered());
    }
}

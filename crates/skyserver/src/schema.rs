//! Synthetic SkyServer DR9 schema.
//!
//! The real SDSS DR9 database is proprietary production data; this module
//! defines a faithful *shape* substitute: the 16 relations the paper's
//! evaluation mentions, with realistic domains and — crucially — content
//! bounding boxes calibrated so that the Table 1 clusters reproduce their
//! reported **area coverage** values (cluster-MBR volume / content volume)
//! and the Figure 1 empty-area geometry:
//!
//! * `SpecObjAll`: content `plate ∈ [266, 5141]`, `mjd ∈ [51578, 55752]`
//!   (Figure 1(a) / Example 1); Cluster 9's box covers ≈3% of it.
//! * `PhotoObjAll`: content `dec ∈ [-25, 85]` — Cluster 18's
//!   `dec ∈ [-90, -50]` lies in the empty area (Figure 1(b)).
//! * `Photoz.objid`: content spans 3.5·10¹³ ids, so Cluster 1's range of
//!   8.35·10¹² covers ≈0.24 of it.
//! * `zooSpec`: content `dec ∈ [-15, 80]` — Cluster 22's `[-100, -15]` is
//!   empty and even exceeds the *domain* floor of −90, reproducing the
//!   paper's "queried with value −100 although dec ≥ −90" anomaly.
//! * the `specobjid` contents of `galSpecLine` / `galSpecInfo` /
//!   `sppLines` end below 3.52–4.04·10¹⁸, so Clusters 19–21 are empty.

use aa_engine::{ColumnDef, DataType, Domain, TableSchema};

/// How a column's *content* is distributed by the data generator. The
/// schema [`Domain`] may be wider than the generated content — that gap is
/// the "empty area" of the data space (Section 2.1).
#[derive(Debug, Clone)]
pub enum Dist {
    /// Uniform float in `[lo, hi]`.
    Uniform(f64, f64),
    /// Uniform integer in `[lo, hi]`.
    UniformInt(i64, i64),
    /// Weighted mixture of uniform float segments `(weight, lo, hi)`.
    Mixture(&'static [(f64, f64, f64)]),
    /// Weighted mixture of uniform integer segments `(weight, lo, hi)`.
    MixtureInt(&'static [(f64, i64, i64)]),
    /// Weighted categorical values.
    Cat(&'static [(&'static str, f64)]),
    /// Linearly coupled to a previously generated column of the same row:
    /// `value = offset + scale * base ± noise`. Used for the plate↔mjd
    /// correlation of `SpecObjAll` (later observation nights get higher
    /// plate numbers), which drives Cluster 9's low object coverage.
    LinkedLinear {
        base: &'static str,
        scale: f64,
        offset: f64,
        noise: f64,
    },
}

/// One synthetic column: engine schema plus generation recipe.
#[derive(Debug, Clone)]
pub struct ColumnSpec {
    pub name: &'static str,
    pub dtype: DataType,
    pub domain: Domain,
    pub dist: Dist,
}

impl ColumnSpec {
    fn float(name: &'static str, dom: (f64, f64), dist: Dist) -> Self {
        ColumnSpec {
            name,
            dtype: DataType::Float,
            domain: Domain::Numeric {
                lo: dom.0,
                hi: dom.1,
            },
            dist,
        }
    }

    fn int(name: &'static str, dom: (i64, i64), dist: Dist) -> Self {
        ColumnSpec {
            name,
            dtype: DataType::Int,
            domain: Domain::Numeric {
                lo: dom.0 as f64,
                hi: dom.1 as f64,
            },
            dist,
        }
    }

    fn cat(name: &'static str, values: &'static [(&'static str, f64)]) -> Self {
        ColumnSpec {
            name,
            dtype: DataType::Text,
            domain: Domain::Unbounded,
            dist: Dist::Cat(values),
        }
    }
}

/// One synthetic table: name, row budget at scale 1.0, columns.
#[derive(Debug, Clone)]
pub struct TableSpec {
    pub name: &'static str,
    pub base_rows: usize,
    pub columns: Vec<ColumnSpec>,
}

impl TableSpec {
    /// The engine-side schema for this spec.
    pub fn to_schema(&self) -> TableSchema {
        TableSchema::new(
            self.name,
            self.columns
                .iter()
                .map(|c| ColumnDef {
                    name: c.name.to_string(),
                    data_type: c.dtype,
                    domain: c.domain.clone(),
                })
                .collect(),
        )
    }
}

// Shared id-content constants (see module docs).
/// `Photoz.objid` / `AtlasOutline.objid` content floor.
pub const OBJID_LO: i64 = 1_237_645_000_000_000_000;
/// `Photoz.objid` / `AtlasOutline.objid` content ceiling.
pub const OBJID_HI: i64 = 1_237_680_000_000_000_000;

const CLASS_WEIGHTS: &[(&str, f64)] = &[("galaxy", 0.60), ("star", 0.25), ("qso", 0.15)];

/// The synthetic DR9 table set.
pub fn dr9_tables() -> Vec<TableSpec> {
    vec![
        TableSpec {
            name: "PhotoObjAll",
            base_rows: 30_000,
            columns: vec![
                ColumnSpec::int(
                    "objid",
                    (0, i64::MAX),
                    Dist::UniformInt(OBJID_LO, OBJID_HI),
                ),
                ColumnSpec::float("ra", (0.0, 360.0), Dist::Uniform(0.0, 360.0)),
                // Content dec in [-25, 85]; the domain extends to -90, so
                // Cluster 18's box is an empty area (Figure 1(b)). 45% of
                // objects sit below dec=10 so Cluster 5's object coverage
                // lands near the paper's 0.25.
                ColumnSpec::float(
                    "dec",
                    (-90.0, 90.0),
                    Dist::Mixture(&[(0.45, -25.0, 10.0), (0.55, 10.0, 85.0)]),
                ),
                ColumnSpec::int("type", (0, 9), Dist::UniformInt(0, 9)),
                ColumnSpec::int("mode", (1, 2), Dist::UniformInt(1, 2)),
                ColumnSpec::float("u", (0.0, 40.0), Dist::Uniform(12.0, 26.0)),
                ColumnSpec::float("g", (0.0, 40.0), Dist::Uniform(12.0, 26.0)),
                ColumnSpec::float("r", (0.0, 40.0), Dist::Uniform(12.0, 26.0)),
                ColumnSpec::float("i", (0.0, 40.0), Dist::Uniform(12.0, 26.0)),
                ColumnSpec::float("z", (0.0, 40.0), Dist::Uniform(12.0, 26.0)),
            ],
        },
        TableSpec {
            name: "SpecObjAll",
            base_rows: 20_000,
            columns: vec![
                ColumnSpec::int(
                    "specobjid",
                    (0, i64::MAX),
                    Dist::UniformInt(300_000_000_000_000_000, 5_917_000_000_000_000_000),
                ),
                // mjd first: plate is linearly coupled to it below.
                ColumnSpec::int("mjd", (50_000, 60_000), Dist::UniformInt(51_578, 55_752)),
                ColumnSpec::int(
                    "plate",
                    (0, 10_000),
                    Dist::LinkedLinear {
                        base: "mjd",
                        scale: 4875.0 / 4174.0, // (5141-266)/(55752-51578)
                        offset: 266.0 - 51_578.0 * (4875.0 / 4174.0),
                        noise: 150.0,
                    },
                ),
                // Only ~4% of spectra lie in ra [54, 115] (Cluster 7's
                // object coverage 0.04 vs area coverage 0.17).
                ColumnSpec::float(
                    "ra",
                    (0.0, 360.0),
                    Dist::Mixture(&[(0.04, 54.0, 115.0), (0.30, 0.0, 54.0), (0.66, 115.0, 360.0)]),
                ),
                ColumnSpec::float(
                    "dec",
                    (-90.0, 90.0),
                    Dist::Mixture(&[(0.45, -25.0, 10.0), (0.55, 10.0, 85.0)]),
                ),
                ColumnSpec::cat("class", CLASS_WEIGHTS),
                ColumnSpec::float("z", (-1.0, 8.0), Dist::Uniform(0.0, 5.0)),
            ],
        },
        TableSpec {
            name: "SpecPhotoAll",
            base_rows: 10_000,
            columns: vec![
                ColumnSpec::int(
                    "specobjid",
                    (0, i64::MAX),
                    Dist::UniformInt(300_000_000_000_000_000, 5_917_000_000_000_000_000),
                ),
                ColumnSpec::int(
                    "objid",
                    (0, i64::MAX),
                    Dist::UniformInt(OBJID_LO, OBJID_HI),
                ),
                // Cluster 8: area coverage 0.18 on [60,124]; object
                // coverage 0.09.
                ColumnSpec::float(
                    "ra",
                    (0.0, 360.0),
                    Dist::Mixture(&[(0.09, 60.0, 124.0), (0.30, 0.0, 60.0), (0.61, 124.0, 360.0)]),
                ),
                ColumnSpec::float("dec", (-90.0, 90.0), Dist::Uniform(-25.0, 85.0)),
                ColumnSpec::cat("class", CLASS_WEIGHTS),
            ],
        },
        TableSpec {
            name: "Photoz",
            base_rows: 15_000,
            columns: vec![
                // 36% of objects sit inside Cluster 1's id range (which
                // spans 24% of the content) — Table 1 reports object
                // coverage 0.36 vs area coverage 0.24 there.
                ColumnSpec::int(
                    "objid",
                    (0, i64::MAX),
                    Dist::MixtureInt(&[
                        (0.36, 1_237_657_855_534_432_934, 1_237_666_210_342_830_434),
                        (0.37, 1_237_645_000_000_000_000, 1_237_657_855_534_432_933),
                        (0.27, 1_237_666_210_342_830_435, 1_237_680_000_000_000_000),
                    ]),
                ),
                // Content z in [0, 1]; Clusters 23 (z < 0) and 24 (z > 3)
                // probe empty areas.
                ColumnSpec::float("z", (-1.0, 8.0), Dist::Uniform(0.0, 1.0)),
                ColumnSpec::float("zerr", (0.0, 1.0), Dist::Uniform(0.0, 0.2)),
            ],
        },
        TableSpec {
            name: "galSpecLine",
            base_rows: 12_000,
            columns: vec![
                // Content ends at 3.5e18: Cluster 19 ([3.52e18, 5.79e18])
                // is empty; Cluster 3's range covers ~0.22.
                ColumnSpec::int(
                    "specobjid",
                    (0, i64::MAX),
                    Dist::UniformInt(500_000_000_000_000_000, 3_500_000_000_000_000_000),
                ),
                ColumnSpec::float("h_alpha_flux", (-1e5, 1e5), Dist::Uniform(-50.0, 5000.0)),
                ColumnSpec::float("h_beta_flux", (-1e5, 1e5), Dist::Uniform(-50.0, 2000.0)),
            ],
        },
        TableSpec {
            name: "galSpecInfo",
            base_rows: 12_000,
            columns: vec![
                ColumnSpec::int(
                    "specobjid",
                    (0, i64::MAX),
                    Dist::UniformInt(450_000_000_000_000_000, 3_520_000_000_000_000_000),
                ),
                ColumnSpec::cat(
                    "targettype",
                    &[("galaxy", 0.8), ("qa", 0.1), ("sky", 0.1)],
                ),
                ColumnSpec::float("v_disp", (0.0, 1000.0), Dist::Uniform(30.0, 400.0)),
            ],
        },
        TableSpec {
            name: "sppLines",
            base_rows: 12_000,
            columns: vec![
                // Content ends at 4.037e18: Cluster 21 is empty; Cluster
                // 6's range covers ~0.23.
                ColumnSpec::int(
                    "specobjid",
                    (0, i64::MAX),
                    Dist::UniformInt(380_000_000_000_000_000, 4_037_000_000_000_000_000),
                ),
                ColumnSpec::int("gwholemask", (0, 255), Dist::UniformInt(0, 255)),
                ColumnSpec::float("gwholeside", (0.0, 5000.0), Dist::Uniform(0.0, 2000.0)),
            ],
        },
        TableSpec {
            name: "sppParams",
            base_rows: 12_000,
            columns: vec![
                ColumnSpec::int(
                    "specobjid",
                    (0, i64::MAX),
                    Dist::UniformInt(380_000_000_000_000_000, 4_037_000_000_000_000_000),
                ),
                ColumnSpec::float("fehadop", (-5.0, 1.0), Dist::Uniform(-3.0, 0.6)),
                ColumnSpec::float("loggadop", (0.0, 5.0), Dist::Uniform(0.5, 5.0)),
            ],
        },
        TableSpec {
            name: "galSpecExtra",
            base_rows: 8_000,
            columns: vec![
                ColumnSpec::int(
                    "specobjid",
                    (0, i64::MAX),
                    Dist::UniformInt(500_000_000_000_000_000, 3_500_000_000_000_000_000),
                ),
                ColumnSpec::int("bptclass", (-1, 4), Dist::UniformInt(-1, 4)),
                ColumnSpec::float("lgm_tot_p50", (0.0, 15.0), Dist::Uniform(7.0, 12.0)),
            ],
        },
        TableSpec {
            name: "galSpecIndx",
            base_rows: 8_000,
            columns: vec![
                ColumnSpec::int(
                    "specObjID",
                    (0, i64::MAX),
                    Dist::UniformInt(500_000_000_000_000_000, 3_500_000_000_000_000_000),
                ),
                ColumnSpec::float("d4000", (0.0, 5.0), Dist::Uniform(0.8, 2.5)),
            ],
        },
        TableSpec {
            name: "zooSpec",
            base_rows: 8_000,
            columns: vec![
                ColumnSpec::int(
                    "specobjid",
                    (0, i64::MAX),
                    Dist::UniformInt(500_000_000_000_000_000, 3_500_000_000_000_000_000),
                ),
                ColumnSpec::float("ra", (0.0, 360.0), Dist::Uniform(0.0, 360.0)),
                // Content dec in [-15, 80]; Cluster 22's [-100, -15] is
                // empty and dips below the -90 domain floor (Figure 1(c)).
                // Only ~4% of objects sit in Cluster 14's dec band
                // [30, 70], reproducing its low object coverage (0.01).
                ColumnSpec::float(
                    "dec",
                    (-90.0, 90.0),
                    Dist::Mixture(&[(0.04, 30.0, 70.0), (0.60, -15.0, 30.0), (0.36, 70.0, 80.0)]),
                ),
                ColumnSpec::float("p_el", (0.0, 1.0), Dist::Uniform(0.0, 1.0)),
                ColumnSpec::float("p_cs", (0.0, 1.0), Dist::Uniform(0.0, 1.0)),
            ],
        },
        TableSpec {
            name: "emissionLinesPort",
            base_rows: 6_000,
            columns: vec![
                ColumnSpec::int(
                    "specobjid",
                    (0, i64::MAX),
                    Dist::UniformInt(500_000_000_000_000_000, 3_500_000_000_000_000_000),
                ),
                ColumnSpec::float("ra", (0.0, 360.0), Dist::Uniform(0.0, 360.0)),
                ColumnSpec::float("dec", (-90.0, 90.0), Dist::Uniform(-25.0, 85.0)),
                ColumnSpec::cat("bpt", &[("star forming", 0.6), ("agn", 0.2), ("composite", 0.2)]),
            ],
        },
        TableSpec {
            name: "stellarMassPCAWisc",
            base_rows: 6_000,
            columns: vec![
                ColumnSpec::int(
                    "specobjid",
                    (0, i64::MAX),
                    Dist::UniformInt(500_000_000_000_000_000, 3_500_000_000_000_000_000),
                ),
                ColumnSpec::float("ra", (0.0, 360.0), Dist::Uniform(0.0, 360.0)),
                ColumnSpec::float("mstellar_median", (0.0, 15.0), Dist::Uniform(7.0, 12.0)),
            ],
        },
        TableSpec {
            name: "AtlasOutline",
            base_rows: 6_000,
            columns: vec![
                // Cluster 13: objid > 1.23767624e18 covers ~0.12 of the
                // [OBJID_LO, OBJID_HI] content span.
                ColumnSpec::int(
                    "objid",
                    (0, i64::MAX),
                    Dist::UniformInt(OBJID_LO, OBJID_HI),
                ),
                ColumnSpec::int("span", (0, 10_000), Dist::UniformInt(1, 500)),
            ],
        },
        TableSpec {
            name: "DBObjects",
            base_rows: 500,
            columns: vec![
                ColumnSpec::cat(
                    "name",
                    &[("fGetNearbyObjEq", 0.2), ("PhotoTag", 0.4), ("SpecObj", 0.4)],
                ),
                ColumnSpec::cat("access", &[("U", 0.4), ("S", 0.3), ("A", 0.3)]),
                ColumnSpec::cat(
                    "type",
                    &[("U", 0.25), ("V", 0.25), ("F", 0.25), ("P", 0.25)],
                ),
            ],
        },
        TableSpec {
            name: "Galaxies",
            base_rows: 3_000,
            columns: vec![
                ColumnSpec::int(
                    "objid",
                    (0, i64::MAX),
                    Dist::UniformInt(OBJID_LO, OBJID_HI),
                ),
                ColumnSpec::float("ra", (0.0, 360.0), Dist::Uniform(0.0, 360.0)),
                ColumnSpec::float("dec", (-90.0, 90.0), Dist::Uniform(-25.0, 85.0)),
            ],
        },
    ]
}

/// Looks up a table spec by (case-insensitive) name.
pub fn table_spec(name: &str) -> Option<TableSpec> {
    dr9_tables()
        .into_iter()
        .find(|t| t.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_tables_defined() {
        assert_eq!(dr9_tables().len(), 16);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(table_spec("photoobjall").is_some());
        assert!(table_spec("PHOTOZ").is_some());
        assert!(table_spec("NotATable").is_none());
    }

    #[test]
    fn schemas_materialise() {
        for spec in dr9_tables() {
            let schema = spec.to_schema();
            assert_eq!(schema.arity(), spec.columns.len());
            assert_eq!(schema.name, spec.name);
        }
    }

    #[test]
    fn cluster1_area_coverage_is_near_paper_value() {
        // Cluster 1's objid range over the Photoz content span ≈ 0.24.
        let span = (OBJID_HI - OBJID_LO) as f64;
        let cluster = 1_237_666_210_342_830_434f64 - 1_237_657_855_534_432_934f64;
        let coverage = cluster / span;
        assert!((coverage - 0.24).abs() < 0.01, "{coverage}");
    }

    #[test]
    fn linked_plate_spec_exists() {
        let spec = table_spec("SpecObjAll").unwrap();
        let plate = spec.columns.iter().find(|c| c.name == "plate").unwrap();
        match &plate.dist {
            Dist::LinkedLinear { base, .. } => assert_eq!(*base, "mjd"),
            other => panic!("unexpected {other:?}"),
        }
    }
}

//! # aa-skyserver — synthetic SkyServer DR9 substrate
//!
//! The paper's evaluation runs on the proprietary SDSS DR9 database and
//! its 12.4M-query log; neither is available, so this crate simulates
//! both (see DESIGN.md §1 row 6 for the substitution argument):
//!
//! * [`schema`]: the 16 relations the evaluation mentions, with realistic
//!   domains and content boxes calibrated to Table 1's coverage numbers;
//! * [`datagen`]: a seeded data generator producing an
//!   [`aa_engine::Catalog`] whose content reproduces the Figure 1 geometry
//!   (empty areas included);
//! * [`templates`]: one query template per Table 1 cluster (constants
//!   jittered per query), plus background/pathological/dialect templates;
//! * [`loggen`]: a deterministic log generator with ground-truth labels;
//! * [`ground_truth`]: recovery scoring of clustering output.

#![forbid(unsafe_code)]

pub mod datagen;
pub mod ground_truth;
pub mod loggen;
pub mod schema;
pub mod templates;

pub use datagen::build_catalog;
pub use ground_truth::{evaluate, ClusterRecovery, RecoveryReport};
pub use loggen::{generate_log, GroundTruth, LogConfig, LogEntry};
pub use schema::{dr9_tables, table_spec, ColumnSpec, Dist, TableSpec};
pub use templates::{
    background_query, cluster_query, mysql_dialect_query, pathological_query, ClusterSpec,
    PathologicalKind, AGGREGATE_VARIANT_SHARE, TABLE1,
};

use aa_core::extract::{ColumnType, SchemaProvider};
use aa_core::Interval;
use aa_engine::DataType;

/// Real DR9 columns the evaluation queries reference but the synthetic
/// generator does not materialise (adding them to [`schema`] would shift
/// the shared data-generation RNG and every calibrated content box).
/// They exist only for name/type resolution: `(table, column, type)`.
const SCHEMA_ONLY_COLUMNS: &[(&str, &str, DataType)] =
    &[("SpecObjAll", "bestobjid", DataType::Int)];

/// A [`SchemaProvider`] backed by the static DR9 schema — lets the
/// extractor resolve unqualified columns and consult domains without
/// materialising any data.
pub struct Dr9Schema {
    tables: Vec<TableSpec>,
}

impl Dr9Schema {
    /// Builds the provider from the static schema.
    pub fn new() -> Self {
        Dr9Schema {
            tables: dr9_tables(),
        }
    }

    /// Table names in the schema, in declaration order.
    pub fn table_names(&self) -> Vec<&'static str> {
        self.tables.iter().map(|t| t.name).collect()
    }

    fn schema_only(table: &str, column: &str) -> Option<DataType> {
        SCHEMA_ONLY_COLUMNS
            .iter()
            .find(|(t, c, _)| t.eq_ignore_ascii_case(table) && c.eq_ignore_ascii_case(column))
            .map(|(_, _, dt)| *dt)
    }
}

impl Default for Dr9Schema {
    fn default() -> Self {
        Dr9Schema::new()
    }
}

impl SchemaProvider for Dr9Schema {
    fn table_columns(&self, table: &str) -> Option<Vec<String>> {
        self.tables
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(table))
            .map(|t| {
                let mut cols: Vec<String> =
                    t.columns.iter().map(|c| c.name.to_lowercase()).collect();
                cols.extend(
                    SCHEMA_ONLY_COLUMNS
                        .iter()
                        .filter(|(st, _, _)| st.eq_ignore_ascii_case(table))
                        .map(|(_, c, _)| c.to_lowercase()),
                );
                cols
            })
    }

    fn column_domain(&self, table: &str, column: &str) -> Option<Interval> {
        let t = self
            .tables
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(table))?;
        let c = t
            .columns
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(column))?;
        match &c.domain {
            aa_engine::Domain::Numeric { lo, hi } => Some(Interval::closed(*lo, *hi)),
            _ => None,
        }
    }

    fn column_type(&self, table: &str, column: &str) -> Option<ColumnType> {
        let dtype = self
            .tables
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(table))
            .and_then(|t| {
                t.columns
                    .iter()
                    .find(|c| c.name.eq_ignore_ascii_case(column))
                    .map(|c| c.dtype)
            })
            .or_else(|| Self::schema_only(table, column))?;
        Some(match dtype {
            DataType::Int | DataType::Float => ColumnType::Numeric,
            DataType::Text => ColumnType::Text,
            DataType::Bool => ColumnType::Bool,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dr9_schema_provider_resolves() {
        let p = Dr9Schema::new();
        let cols = p.table_columns("photoobjall").unwrap();
        assert!(cols.contains(&"ra".to_string()));
        assert!(cols.contains(&"dec".to_string()));
        let dom = p.column_domain("zooSpec", "dec").unwrap();
        assert_eq!((dom.lo, dom.hi), (-90.0, 90.0));
        assert!(p.table_columns("nope").is_none());
    }

    #[test]
    fn provider_types_columns_including_schema_only_extras() {
        use aa_core::extract::ColumnType;
        let p = Dr9Schema::new();
        assert_eq!(p.column_type("PhotoObjAll", "ra"), Some(ColumnType::Numeric));
        assert_eq!(p.column_type("SpecObjAll", "class"), Some(ColumnType::Text));
        // `bestobjid` is real DR9 but not generated; it still resolves.
        assert_eq!(
            p.column_type("specobjall", "BESTOBJID"),
            Some(ColumnType::Numeric)
        );
        assert!(p
            .table_columns("SpecObjAll")
            .unwrap()
            .contains(&"bestobjid".to_string()));
        assert_eq!(p.column_type("SpecObjAll", "nope"), None);
        assert_eq!(p.column_type("nope", "ra"), None);
    }

    #[test]
    fn provider_lets_extractor_resolve_unqualified_columns() {
        use aa_core::extract::Extractor;
        let p = Dr9Schema::new();
        let area = Extractor::new(&p)
            .extract_sql("SELECT * FROM PhotoObjAll, SpecObjAll WHERE plate > 296 AND mode = 1")
            .unwrap();
        let sql = area.to_intermediate_sql();
        // `plate` only exists in SpecObjAll, `mode` only in PhotoObjAll.
        assert!(sql.contains("SpecObjAll.plate > 296"), "{sql}");
        assert!(sql.contains("PhotoObjAll.mode = 1"), "{sql}");
    }
}

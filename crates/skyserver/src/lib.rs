//! # aa-skyserver — synthetic SkyServer DR9 substrate
//!
//! The paper's evaluation runs on the proprietary SDSS DR9 database and
//! its 12.4M-query log; neither is available, so this crate simulates
//! both (see DESIGN.md §1 row 6 for the substitution argument):
//!
//! * [`schema`]: the 16 relations the evaluation mentions, with realistic
//!   domains and content boxes calibrated to Table 1's coverage numbers;
//! * [`datagen`]: a seeded data generator producing an
//!   [`aa_engine::Catalog`] whose content reproduces the Figure 1 geometry
//!   (empty areas included);
//! * [`templates`]: one query template per Table 1 cluster (constants
//!   jittered per query), plus background/pathological/dialect templates;
//! * [`loggen`]: a deterministic log generator with ground-truth labels;
//! * [`ground_truth`]: recovery scoring of clustering output.

pub mod datagen;
pub mod ground_truth;
pub mod loggen;
pub mod schema;
pub mod templates;

pub use datagen::build_catalog;
pub use ground_truth::{evaluate, ClusterRecovery, RecoveryReport};
pub use loggen::{generate_log, GroundTruth, LogConfig, LogEntry};
pub use schema::{dr9_tables, table_spec, ColumnSpec, Dist, TableSpec};
pub use templates::{
    background_query, cluster_query, mysql_dialect_query, pathological_query, ClusterSpec,
    PathologicalKind, AGGREGATE_VARIANT_SHARE, TABLE1,
};

use aa_core::extract::SchemaProvider;
use aa_core::Interval;

/// A [`SchemaProvider`] backed by the static DR9 schema — lets the
/// extractor resolve unqualified columns and consult domains without
/// materialising any data.
pub struct Dr9Schema {
    tables: Vec<TableSpec>,
}

impl Dr9Schema {
    /// Builds the provider from the static schema.
    pub fn new() -> Self {
        Dr9Schema {
            tables: dr9_tables(),
        }
    }
}

impl Default for Dr9Schema {
    fn default() -> Self {
        Dr9Schema::new()
    }
}

impl SchemaProvider for Dr9Schema {
    fn table_columns(&self, table: &str) -> Option<Vec<String>> {
        self.tables
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(table))
            .map(|t| t.columns.iter().map(|c| c.name.to_lowercase()).collect())
    }

    fn column_domain(&self, table: &str, column: &str) -> Option<Interval> {
        let t = self
            .tables
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(table))?;
        let c = t
            .columns
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(column))?;
        match &c.domain {
            aa_engine::Domain::Numeric { lo, hi } => Some(Interval::closed(*lo, *hi)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dr9_schema_provider_resolves() {
        let p = Dr9Schema::new();
        let cols = p.table_columns("photoobjall").unwrap();
        assert!(cols.contains(&"ra".to_string()));
        assert!(cols.contains(&"dec".to_string()));
        let dom = p.column_domain("zooSpec", "dec").unwrap();
        assert_eq!((dom.lo, dom.hi), (-90.0, 90.0));
        assert!(p.table_columns("nope").is_none());
    }

    #[test]
    fn provider_lets_extractor_resolve_unqualified_columns() {
        use aa_core::extract::Extractor;
        let p = Dr9Schema::new();
        let area = Extractor::new(&p)
            .extract_sql("SELECT * FROM PhotoObjAll, SpecObjAll WHERE plate > 296 AND mode = 1")
            .unwrap();
        let sql = area.to_intermediate_sql();
        // `plate` only exists in SpecObjAll, `mode` only in PhotoObjAll.
        assert!(sql.contains("SpecObjAll.plate > 296"), "{sql}");
        assert!(sql.contains("PhotoObjAll.mode = 1"), "{sql}");
    }
}

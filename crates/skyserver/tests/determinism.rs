//! Determinism guarantees for the synthetic SkyServer workload: the
//! whole pipeline is seeded, so the same config must reproduce the log
//! and catalog byte-for-byte across runs (and across machines — the
//! in-tree PRNG has no platform-dependent state).

use aa_skyserver::loggen::{generate_log, GroundTruth, LogConfig};

/// Stable digest of a log (FNV-1a over every field of every entry).
fn digest(entries: &[aa_skyserver::loggen::LogEntry]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for b in bytes {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for e in entries {
        eat(e.sql.as_bytes());
        eat(&e.user.to_le_bytes());
        eat(format!("{:?}", e.truth).as_bytes());
    }
    h
}

#[test]
fn same_seed_gives_byte_identical_logs() {
    let config = LogConfig::small(400, 7);
    let a = generate_log(&config);
    let b = generate_log(&config);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.sql, y.sql);
        assert_eq!(x.user, y.user);
        assert_eq!(format!("{:?}", x.truth), format!("{:?}", y.truth));
    }
    assert_eq!(digest(&a), digest(&b));
}

#[test]
fn different_seeds_give_different_logs() {
    let a = generate_log(&LogConfig::small(400, 7));
    let b = generate_log(&LogConfig::small(400, 8));
    assert_ne!(digest(&a), digest(&b), "seed must perturb the log");
}

#[test]
fn log_composition_is_seed_stable() {
    // Shuffling must not change *what* is generated, only the order:
    // the multiset of ground-truth kinds is a function of the config.
    let count = |entries: &[aa_skyserver::loggen::LogEntry]| {
        let mut cluster = 0usize;
        let mut background = 0usize;
        let mut mysql = 0usize;
        let mut path = 0usize;
        for e in entries {
            match e.truth {
                GroundTruth::Cluster(_) => cluster += 1,
                GroundTruth::Background => background += 1,
                GroundTruth::MySqlDialect => mysql += 1,
                GroundTruth::Pathological(_) => path += 1,
            }
        }
        (cluster, background, mysql, path)
    };
    let a = count(&generate_log(&LogConfig::small(500, 1)));
    let b = count(&generate_log(&LogConfig::small(500, 2)));
    assert_eq!(a, b, "composition depends only on the config, not the seed");
}

#[test]
fn catalog_generation_is_deterministic() {
    let a = aa_skyserver::datagen::build_catalog(0.02, 11);
    let b = aa_skyserver::datagen::build_catalog(0.02, 11);
    assert_eq!(a.total_rows(), b.total_rows());
    assert!(a.total_rows() > 0);
    for (ta, tb) in a.tables().zip(b.tables()) {
        assert_eq!(ta.schema.name, tb.schema.name);
        assert_eq!(ta.row_count(), tb.row_count(), "{}", ta.schema.name);
        assert_eq!(
            format!("{:?}", ta.rows),
            format!("{:?}", tb.rows),
            "{} rows",
            ta.schema.name
        );
    }
}

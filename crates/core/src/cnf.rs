//! Conjunctive normal form: the constraint representation of the
//! intermediate query format (Section 2.4).
//!
//! A [`Cnf`] is a conjunction of [`Disjunction`]s of atomic predicates —
//! the `F(p₁, …, p_K)` of the paper. The empty CNF is `TRUE` (no
//! constraint); a CNF containing an empty disjunction is unsatisfiable.

use crate::predicate::{AtomicPredicate, Constant, QualifiedColumn};
use std::collections::BTreeSet;
use std::fmt;

/// One disjunction (OR) of atomic predicates.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Disjunction {
    pub atoms: Vec<AtomicPredicate>,
}

impl Disjunction {
    /// Creates a disjunction, dropping duplicate atoms.
    pub fn new(atoms: Vec<AtomicPredicate>) -> Self {
        let mut seen = std::collections::HashSet::new();
        let atoms = atoms
            .into_iter()
            .filter(|a| seen.insert(a.clone()))
            .collect();
        Disjunction { atoms }
    }

    /// A singleton disjunction.
    pub fn singleton(atom: AtomicPredicate) -> Self {
        Disjunction { atoms: vec![atom] }
    }

    /// Number of atoms (`|o|` in the paper's `d_disj`).
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True for the empty disjunction (unsatisfiable clause).
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Evaluates under a value lookup (`None` = value unavailable).
    pub fn evaluate(
        &self,
        lookup: &dyn Fn(&QualifiedColumn) -> Option<Constant>,
    ) -> Option<bool> {
        let mut unknown = false;
        for atom in &self.atoms {
            match atom.evaluate(lookup) {
                Some(true) => return Some(true),
                Some(false) => {}
                None => unknown = true,
            }
        }
        if unknown {
            None
        } else {
            Some(false)
        }
    }

    /// True when every atom of `self` also appears in `other` — then
    /// `other` (as a disjunction) is implied by `self`, so in a CNF the
    /// clause `other` is redundant next to `self`.
    pub fn subsumes(&self, other: &Disjunction) -> bool {
        self.atoms.iter().all(|a| other.atoms.contains(a))
    }

    /// A canonical sorted key (for dedup across clause orderings).
    fn canonical_key(&self) -> Vec<String> {
        let mut key: Vec<String> = self.atoms.iter().map(|a| a.to_string().to_lowercase()).collect();
        key.sort();
        key
    }
}

impl fmt::Display for Disjunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "FALSE");
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " OR ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// A conjunction of disjunctions.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Cnf {
    pub clauses: Vec<Disjunction>,
}

impl Cnf {
    pub fn new(clauses: Vec<Disjunction>) -> Self {
        Cnf { clauses }
    }

    /// The unconstrained CNF (`TRUE`).
    pub fn top() -> Self {
        Cnf {
            clauses: Vec::new(),
        }
    }

    /// Number of clauses (`|b|` in the paper's `d_conj`).
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// True when there is no constraint at all.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// True when the CNF contains an empty clause, i.e. is syntactically
    /// unsatisfiable. (Semantic contradictions like `a < 0 AND a > 1` are
    /// detected by consolidation, not here.)
    pub fn is_unsatisfiable_form(&self) -> bool {
        self.clauses.iter().any(Disjunction::is_empty)
    }

    /// All atoms across all clauses.
    pub fn atoms(&self) -> impl Iterator<Item = &AtomicPredicate> {
        self.clauses.iter().flat_map(|c| c.atoms.iter())
    }

    /// The set of tables mentioned (lower-cased).
    pub fn tables(&self) -> BTreeSet<String> {
        self.atoms().flat_map(|a| a.tables()).collect()
    }

    /// Evaluates under a value lookup.
    pub fn evaluate(
        &self,
        lookup: &dyn Fn(&QualifiedColumn) -> Option<Constant>,
    ) -> Option<bool> {
        let mut unknown = false;
        for clause in &self.clauses {
            match clause.evaluate(lookup) {
                Some(false) => return Some(false),
                Some(true) => {}
                None => unknown = true,
            }
        }
        if unknown {
            None
        } else {
            Some(true)
        }
    }

    /// Removes duplicate clauses (order-insensitive within each clause).
    pub fn dedup(&mut self) {
        let mut seen = std::collections::HashSet::new();
        self.clauses.retain(|c| seen.insert(c.canonical_key()));
    }

    /// Removes clauses subsumed by another clause (a clause with a subset
    /// of atoms implies any superset clause).
    pub fn remove_subsumed(&mut self) {
        let clauses = std::mem::take(&mut self.clauses);
        let mut kept: Vec<Disjunction> = Vec::with_capacity(clauses.len());
        for c in clauses {
            if kept.iter().any(|k| k.subsumes(&c) && k.len() < c.len()) {
                continue;
            }
            kept.retain(|k| !(c.subsumes(k) && c.len() < k.len()));
            kept.push(c);
        }
        self.clauses = kept;
    }

}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clauses.is_empty() {
            return write!(f, "TRUE");
        }
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " AND ")?;
            }
            if c.len() > 1 {
                write!(f, "({c})")?;
            } else {
                write!(f, "{c}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;

    fn p(col: &str, op: CmpOp, v: f64) -> AtomicPredicate {
        AtomicPredicate::cc(QualifiedColumn::new("T", col), op, Constant::Num(v))
    }

    #[test]
    fn disjunction_dedups_atoms() {
        let d = Disjunction::new(vec![p("u", CmpOp::Gt, 1.0), p("u", CmpOp::Gt, 1.0)]);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn cnf_dedup_ignores_clause_order() {
        let mut cnf = Cnf::new(vec![
            Disjunction::new(vec![p("u", CmpOp::Gt, 1.0), p("v", CmpOp::Lt, 2.0)]),
            Disjunction::new(vec![p("v", CmpOp::Lt, 2.0), p("u", CmpOp::Gt, 1.0)]),
        ]);
        cnf.dedup();
        assert_eq!(cnf.len(), 1);
    }

    #[test]
    fn subsumption_removal() {
        let mut cnf = Cnf::new(vec![
            Disjunction::new(vec![p("u", CmpOp::Gt, 1.0)]),
            Disjunction::new(vec![p("u", CmpOp::Gt, 1.0), p("v", CmpOp::Lt, 2.0)]),
        ]);
        cnf.remove_subsumed();
        assert_eq!(cnf.len(), 1);
        assert_eq!(cnf.clauses[0].len(), 1);
    }

    #[test]
    fn evaluation_semantics() {
        let cnf = Cnf::new(vec![
            Disjunction::new(vec![p("u", CmpOp::Gt, 1.0), p("u", CmpOp::Lt, -1.0)]),
            Disjunction::singleton(p("v", CmpOp::LtEq, 5.0)),
        ]);
        let lookup = |c: &QualifiedColumn| {
            Some(Constant::Num(match c.column.as_str() {
                "u" => 3.0,
                "v" => 4.0,
                _ => return None,
            }))
        };
        assert_eq!(cnf.evaluate(&lookup), Some(true));
        let lookup_fail = |c: &QualifiedColumn| {
            Some(Constant::Num(match c.column.as_str() {
                "u" => 0.0,
                "v" => 4.0,
                _ => return None,
            }))
        };
        assert_eq!(cnf.evaluate(&lookup_fail), Some(false));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Cnf::top().to_string(), "TRUE");
        let cnf = Cnf::new(vec![
            Disjunction::new(vec![p("u", CmpOp::LtEq, 5.0), p("u", CmpOp::GtEq, 10.0)]),
            Disjunction::singleton(p("v", CmpOp::LtEq, 5.0)),
        ]);
        assert_eq!(
            cnf.to_string(),
            "(T.u <= 5 OR T.u >= 10) AND T.v <= 5"
        );
    }

    #[test]
    fn tables_collects_all_mentioned() {
        let cnf = Cnf::new(vec![Disjunction::singleton(AtomicPredicate::join(
            QualifiedColumn::new("T", "u"),
            CmpOp::Eq,
            QualifiedColumn::new("S", "u"),
        ))]);
        let tables = cnf.tables();
        assert!(tables.contains("t"));
        assert!(tables.contains("s"));
    }
}

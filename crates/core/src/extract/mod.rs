//! Extraction of access areas from parsed queries (Section 4).
//!
//! The extractor turns an [`aa_sql::Select`] into an [`AccessArea`]: the
//! universal relation `U` (every relation the query mentions, including
//! inside nested subqueries) plus a CNF constraint. Different query shapes
//! take different mappings:
//!
//! * **simple queries** (Section 4.1): predicates taken as-is, `BETWEEN`
//!   expanded, `NOT` pushed onto atoms;
//! * **join queries** (Section 4.2): inner/cross/natural push the join
//!   condition into the constraint; `FULL OUTER JOIN` contributes *no*
//!   constraint (Example 2); `LEFT`/`RIGHT OUTER JOIN` reduce to the nested
//!   `IN` form (Example 3) whose pulled-up constraint equals the `ON`
//!   condition;
//! * **aggregate queries** (Section 4.3): `HAVING AGG(a) θ c` is rewritten
//!   by the case analysis of [`aggregates`] (generalising Lemmas 1–3 to an
//!   *effective domain* = schema domain ∩ `WHERE`-interval on `a`);
//! * **nested queries** (Section 4.4): `EXISTS` subqueries are grouped by
//!   relation and replaced by the OR of their `WHERE` parts (Lemmas 4–6);
//!   `IN`/`ANY`/`ALL`/scalar subqueries reduce to the `EXISTS` form first.

pub mod aggregates;
mod lower;
pub mod naive;

use crate::area::AccessArea;
use crate::boolexpr::{BoolExpr, DEFAULT_ATOM_CAP, DEFAULT_CLAUSE_CAP};
use crate::consolidate;
use crate::error::{ExtractError, ExtractResult, UnsupportedConstruct};
use crate::interval::Interval;
use crate::predicate::{AtomicPredicate, CmpOp, Constant, QualifiedColumn};
use aa_sql::{
    BinaryOp, ColumnRef, Expr, JoinConstraint, JoinOperator, Literal, Quantifier, Select,
    SelectItem, TableFactor, TableWithJoins, UnaryOp,
};
use std::collections::BTreeMap;

/// Coarse column type classes, as much as the analyzer's type checker
/// needs: SQL Server's numeric family collapses to `Numeric` because the
/// paper's predicates only ever compare within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    Numeric,
    Text,
    Bool,
}

impl std::fmt::Display for ColumnType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ColumnType::Numeric => "numeric",
            ColumnType::Text => "text",
            ColumnType::Bool => "bool",
        })
    }
}

/// Schema knowledge the extractor may consult: which columns a table has
/// (for resolving unqualified columns and `NATURAL JOIN`) and column
/// domains (for the aggregate lemmas).
pub trait SchemaProvider {
    /// Lower-cased column names of `table`, or `None` for unknown tables.
    fn table_columns(&self, table: &str) -> Option<Vec<String>>;

    /// Domain of a numeric column; `None` when unknown (the lemmas then
    /// assume `(-inf, +inf)`, as the paper does for Lemmas 2 and 3).
    fn column_domain(&self, table: &str, column: &str) -> Option<Interval>;

    /// Coarse type of a column, or `None` when unknown. The default keeps
    /// existing providers source-compatible; the semantic analyzer skips
    /// type checks wherever this answers `None`.
    fn column_type(&self, _table: &str, _column: &str) -> Option<ColumnType> {
        None
    }
}

/// A provider with no schema knowledge. Unqualified columns can then only
/// be resolved when a single table is in scope.
pub struct NoSchema;

impl SchemaProvider for NoSchema {
    fn table_columns(&self, _table: &str) -> Option<Vec<String>> {
        None
    }

    fn column_domain(&self, _table: &str, _column: &str) -> Option<Interval> {
        None
    }
}

impl SchemaProvider for aa_engine::Catalog {
    fn table_columns(&self, table: &str) -> Option<Vec<String>> {
        self.table(table).ok().map(|t| {
            t.schema
                .columns
                .iter()
                .map(|c| c.name.to_lowercase())
                .collect()
        })
    }

    fn column_domain(&self, table: &str, column: &str) -> Option<Interval> {
        let t = self.table(table).ok()?;
        let col = t.schema.column(column)?;
        match &col.domain {
            aa_engine::Domain::Numeric { lo, hi } => Some(Interval::closed(*lo, *hi)),
            _ => None,
        }
    }

    fn column_type(&self, table: &str, column: &str) -> Option<ColumnType> {
        let t = self.table(table).ok()?;
        let col = t.schema.column(column)?;
        Some(match col.data_type {
            aa_engine::DataType::Int | aa_engine::DataType::Float => ColumnType::Numeric,
            aa_engine::DataType::Text => ColumnType::Text,
            aa_engine::DataType::Bool => ColumnType::Bool,
        })
    }
}

/// Extraction tuning knobs.
#[derive(Debug, Clone)]
pub struct ExtractConfig {
    /// The paper's 35-predicate cap for CNF conversion.
    pub atom_cap: usize,
    /// Engineering cap on CNF clause count.
    pub clause_cap: usize,
    /// *Naive* mode (Section 6.5 comparison): predicates are taken as-is —
    /// outer-join conditions kept verbatim, `HAVING AGG(a) θ c` mapped
    /// directly to `a θ c`, EXISTS subqueries not grouped by relation.
    /// The paper shows this breaks Clusters 2, 5, 8, 9, 11, 12, 18–20, 22.
    pub naive: bool,
}

impl Default for ExtractConfig {
    fn default() -> Self {
        ExtractConfig {
            atom_cap: DEFAULT_ATOM_CAP,
            clause_cap: DEFAULT_CLAUSE_CAP,
            naive: false,
        }
    }
}

/// Mutable extraction state threaded through the lowering recursion.
pub(crate) struct State {
    /// Universal-relation tables: lower-cased name → display spelling.
    tables: BTreeMap<String, String>,
    /// Cleared when any approximation is taken.
    exact: bool,
    /// Set when a lemma proves the access area empty.
    provably_empty: bool,
}

impl State {
    fn add_table(&mut self, display: &str) {
        self.tables
            .entry(display.to_lowercase())
            .or_insert_with(|| display.to_string());
    }

    fn approximate(&mut self) {
        self.exact = false;
    }
}

/// One visible name in a query scope.
enum CtxEntry {
    /// A base table under its alias (or own name).
    Table { visible: String, real: String },
    /// An inlined derived table: output column → underlying column.
    Derived {
        visible: String,
        columns: BTreeMap<String, QualifiedColumn>,
        /// Real tables of the subquery (for resolving wildcard output).
        tables: Vec<String>,
    },
}

/// A lexical scope chain for column resolution; subqueries link to their
/// parent so correlated references resolve outward.
pub(crate) struct Ctx<'p> {
    entries: Vec<CtxEntry>,
    parent: Option<&'p Ctx<'p>>,
}

impl<'p> Ctx<'p> {
    fn new(parent: Option<&'p Ctx<'p>>) -> Self {
        Ctx {
            entries: Vec::new(),
            parent,
        }
    }
}

/// Output of extraction stage 1 (lowering).
#[derive(Debug, Clone)]
pub struct LoweredQuery {
    tables: BTreeMap<String, String>,
    /// The constraint `P` as a boolean expression over atoms.
    pub constraint: BoolExpr,
    exact: bool,
    provably_empty: bool,
}

impl LoweredQuery {
    /// Display names of the universal-relation tables.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.values().map(String::as_str)
    }

    /// False when any approximation was taken during lowering.
    pub fn is_exact(&self) -> bool {
        self.exact
    }
}

/// Output of extraction stage 2 (CNF conversion).
#[derive(Debug, Clone)]
pub struct ConvertedQuery {
    tables: BTreeMap<String, String>,
    /// The constraint in CNF, before consolidation.
    pub cnf: crate::cnf::Cnf,
    exact: bool,
    provably_empty: bool,
}

impl ConvertedQuery {
    /// Display names of the universal-relation tables.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.values().map(String::as_str)
    }

    /// True when lowering already proved the area empty.
    pub fn is_provably_empty(&self) -> bool {
        self.provably_empty
    }
}

/// The access-area extractor.
pub struct Extractor<'a> {
    provider: &'a dyn SchemaProvider,
    config: ExtractConfig,
}

impl<'a> Extractor<'a> {
    pub fn new(provider: &'a dyn SchemaProvider) -> Self {
        Extractor {
            provider,
            config: ExtractConfig::default(),
        }
    }

    pub fn with_config(provider: &'a dyn SchemaProvider, config: ExtractConfig) -> Self {
        Extractor { provider, config }
    }

    /// Parses and extracts in one step.
    pub fn extract_sql(&self, sql: &str) -> ExtractResult<AccessArea> {
        let select = aa_sql::parse_select(sql)?;
        self.extract(&select)
    }

    /// Extracts the access area of a parsed query.
    pub fn extract(&self, query: &Select) -> ExtractResult<AccessArea> {
        let lowered = self.lower(query)?;
        let (converted, _) = self.convert(lowered);
        Ok(self.consolidate(converted))
    }

    /// Stage 1 (of 3): lowers the query to a boolean constraint over atomic
    /// predicates, collecting the universal relation. Separated from
    /// [`Extractor::extract`] so the efficiency experiment (Section 6.6)
    /// can time Extraction / CNF / Consolidation independently.
    pub fn lower(&self, query: &Select) -> ExtractResult<LoweredQuery> {
        let mut state = State {
            tables: BTreeMap::new(),
            exact: true,
            provably_empty: false,
        };
        let constraint = self.lower_select(query, None, &mut state)?;
        Ok(LoweredQuery {
            tables: state.tables,
            constraint,
            exact: state.exact,
            provably_empty: state.provably_empty,
        })
    }

    /// Stage 2: CNF conversion (with the paper's predicate cap).
    pub fn convert(&self, lowered: LoweredQuery) -> (ConvertedQuery, bool) {
        let conversion = lowered
            .constraint
            .to_cnf_capped(self.config.atom_cap, self.config.clause_cap);
        let exact = lowered.exact && conversion.exact;
        (
            ConvertedQuery {
                tables: lowered.tables,
                cnf: conversion.cnf,
                exact,
                provably_empty: lowered.provably_empty,
            },
            conversion.exact,
        )
    }

    /// Stage 3: consolidation (redundancy removal, interval merging,
    /// contradiction detection — Section 4.5's cleanup step).
    pub fn consolidate(&self, converted: ConvertedQuery) -> AccessArea {
        let mut cnf = converted.cnf;
        let outcome = consolidate::consolidate(&mut cnf);
        let mut area = AccessArea::new(converted.tables.into_values());
        area.constraint = cnf;
        area.exact = converted.exact;
        area.provably_empty = converted.provably_empty
            || outcome.contradiction
            || area.constraint.is_unsatisfiable_form();
        area
    }

    /// Processes one `SELECT` (top-level or nested): registers its FROM
    /// tables and returns the combined constraint it contributes.
    fn lower_select(
        &self,
        query: &Select,
        parent: Option<&Ctx<'_>>,
        state: &mut State,
    ) -> ExtractResult<BoolExpr> {
        // Build this query's scope.
        let mut ctx = Ctx::new(parent);
        let mut join_constraints: Vec<BoolExpr> = Vec::new();

        for twj in &query.from {
            self.register_factor(&twj.base, &mut ctx, state, &mut join_constraints)?;
            for join in &twj.joins {
                self.register_factor(&join.factor, &mut ctx, state, &mut join_constraints)?;
            }
        }
        // Join conditions need the full scope, so lower them after all
        // factors are registered.
        let mut parts: Vec<BoolExpr> = Vec::new();
        for twj in &query.from {
            for join in &twj.joins {
                parts.push(self.lower_join(join.op, &join.constraint, twj, &ctx, state)?);
            }
        }
        parts.extend(join_constraints);

        // WHERE.
        if let Some(pred) = &query.selection {
            parts.push(self.lower_expr(pred, &ctx, state)?);
        }

        // Subqueries in the projection (the `A_S` columns of Section 2.1).
        for item in &query.projection {
            if let SelectItem::Expr { expr, .. } = item {
                self.check_no_functions(expr)?;
                for sub in collect_subqueries(expr) {
                    parts.push(self.lower_select(sub, Some(&ctx), state)?);
                }
            }
        }

        // HAVING (Section 4.3).
        if let Some(having) = &query.having {
            parts.push(self.lower_having(having, query, &ctx, state)?);
        }

        Ok(BoolExpr::and(parts))
    }

    /// Registers a FROM factor in the scope (inlining derived tables).
    fn register_factor(
        &self,
        factor: &TableFactor,
        ctx: &mut Ctx<'_>,
        state: &mut State,
        extra_constraints: &mut Vec<BoolExpr>,
    ) -> ExtractResult<()> {
        match factor {
            TableFactor::Table { name, alias } => {
                let real = name.base_name().to_string();
                state.add_table(&real);
                let visible = alias
                    .clone()
                    .unwrap_or_else(|| real.clone())
                    .to_lowercase();
                ctx.entries.push(CtxEntry::Table { visible, real });
                Ok(())
            }
            TableFactor::Derived { subquery, alias } => {
                // Inline the derived table: its constraint joins ours; its
                // output columns map to underlying columns.
                let sub_ctx_entries = self.derived_column_map(subquery, state)?;
                let constraint = self.lower_select(subquery, Some(&*ctx), state)?;
                extra_constraints.push(constraint);
                let visible = alias
                    .clone()
                    .unwrap_or_else(|| "_derived".to_string())
                    .to_lowercase();
                ctx.entries.push(CtxEntry::Derived {
                    visible,
                    columns: sub_ctx_entries.0,
                    tables: sub_ctx_entries.1,
                });
                Ok(())
            }
        }
    }

    /// Maps a derived table's output columns to underlying qualified
    /// columns (for wildcards, resolution defers to the provider).
    #[allow(clippy::type_complexity)]
    fn derived_column_map(
        &self,
        subquery: &Select,
        state: &mut State,
    ) -> ExtractResult<(BTreeMap<String, QualifiedColumn>, Vec<String>)> {
        // Scope of the subquery itself, for resolving its projection.
        let mut sub_ctx = Ctx::new(None);
        let mut ignored = Vec::new();
        for twj in &subquery.from {
            self.register_factor(&twj.base, &mut sub_ctx, state, &mut ignored)?;
            for join in &twj.joins {
                self.register_factor(&join.factor, &mut sub_ctx, state, &mut ignored)?;
            }
        }
        let sub_tables: Vec<String> = sub_ctx
            .entries
            .iter()
            .map(|e| match e {
                CtxEntry::Table { real, .. } => real.clone(),
                CtxEntry::Derived { tables, .. } => {
                    tables.first().cloned().unwrap_or_default()
                }
            })
            .collect();

        let mut map = BTreeMap::new();
        for item in &subquery.projection {
            match item {
                SelectItem::Expr { expr, alias } => {
                    if let Expr::Column(cref) = expr {
                        if let Some(qc) = self.resolve_column(cref, &sub_ctx, state)? {
                            let out_name = alias
                                .clone()
                                .unwrap_or_else(|| cref.column.clone())
                                .to_lowercase();
                            map.insert(out_name, qc);
                        }
                    }
                    // Computed output columns are opaque: references to
                    // them lower approximately.
                }
                SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => {
                    // Resolved lazily via `tables` + provider.
                }
            }
        }
        Ok((map, sub_tables))
    }

    /// Lowers one join's contribution per Section 4.2.
    fn lower_join(
        &self,
        op: JoinOperator,
        constraint: &JoinConstraint,
        _twj: &TableWithJoins,
        ctx: &Ctx<'_>,
        state: &mut State,
    ) -> ExtractResult<BoolExpr> {
        match (op, constraint) {
            // FULL OUTER JOIN keeps everything: no constraint (Example 2).
            // Naive mode keeps the ON condition as-is — exactly the mistake
            // Section 6.5 demonstrates.
            (JoinOperator::FullOuter, JoinConstraint::On(cond)) if self.config.naive => {
                self.lower_expr(cond, ctx, state)
            }
            (JoinOperator::FullOuter, _) => Ok(BoolExpr::True),
            (_, JoinConstraint::None) => Ok(BoolExpr::True),
            // LEFT/RIGHT OUTER reduce via the nested-IN rewrite of
            // Example 3; the pulled-up constraint is the ON condition.
            (_, JoinConstraint::On(cond)) => self.lower_expr(cond, ctx, state),
            (_, JoinConstraint::Natural) => {
                // Equality over common columns of the two most recent table
                // entries; without schema knowledge, approximate with TRUE.
                let tables: Vec<&str> = ctx
                    .entries
                    .iter()
                    .filter_map(|e| match e {
                        CtxEntry::Table { real, .. } => Some(real.as_str()),
                        _ => None,
                    })
                    .collect();
                if tables.len() < 2 {
                    state.approximate();
                    return Ok(BoolExpr::True);
                }
                let right = tables[tables.len() - 1];
                let left = tables[tables.len() - 2];
                let (Some(lc), Some(rc)) = (
                    self.provider.table_columns(left),
                    self.provider.table_columns(right),
                ) else {
                    state.approximate();
                    return Ok(BoolExpr::True);
                };
                let atoms: Vec<BoolExpr> = lc
                    .iter()
                    .filter(|c| rc.contains(c))
                    .map(|c| {
                        BoolExpr::Atom(AtomicPredicate::join(
                            QualifiedColumn::new(left, c.clone()),
                            CmpOp::Eq,
                            QualifiedColumn::new(right, c.clone()),
                        ))
                    })
                    .collect();
                if atoms.is_empty() {
                    state.approximate();
                    return Ok(BoolExpr::True);
                }
                Ok(BoolExpr::and(atoms))
            }
        }
    }

    /// Resolves a column reference against the scope chain.
    fn resolve_column(
        &self,
        cref: &ColumnRef,
        ctx: &Ctx<'_>,
        state: &mut State,
    ) -> ExtractResult<Option<QualifiedColumn>> {
        let col_lower = cref.column.to_lowercase();
        if let Some(q) = &cref.qualifier {
            let q_lower = q.to_lowercase();
            let mut scope = Some(ctx);
            while let Some(c) = scope {
                for entry in &c.entries {
                    match entry {
                        CtxEntry::Table { visible, real } if *visible == q_lower => {
                            return Ok(Some(QualifiedColumn::new(real.clone(), cref.column.clone())));
                        }
                        CtxEntry::Derived {
                            visible,
                            columns,
                            tables,
                        } if *visible == q_lower => {
                            if let Some(qc) = columns.get(&col_lower) {
                                return Ok(Some(qc.clone()));
                            }
                            // Wildcard output: find the column via schema.
                            for t in tables {
                                if let Some(cols) = self.provider.table_columns(t) {
                                    if cols.contains(&col_lower) {
                                        return Ok(Some(QualifiedColumn::new(
                                            t.clone(),
                                            cref.column.clone(),
                                        )));
                                    }
                                }
                            }
                            state.approximate();
                            return Ok(None);
                        }
                        _ => {}
                    }
                }
                scope = c.parent;
            }
            // Qualifier resolves nowhere: the user referenced a relation
            // without putting it in FROM (invalid on the real server, but
            // the intent is clear). Definition 1 makes the universal
            // relation cover *every* relation the query mentions, so the
            // qualifier joins U.
            state.approximate();
            state.add_table(q);
            return Ok(Some(QualifiedColumn::new(q.clone(), cref.column.clone())));
        }

        // Unqualified: search scope chain via the provider.
        let mut scope = Some(ctx);
        while let Some(c) = scope {
            let mut candidates: Vec<QualifiedColumn> = Vec::new();
            let mut schemaless_tables: Vec<&str> = Vec::new();
            for entry in &c.entries {
                match entry {
                    CtxEntry::Table { real, .. } => match self.provider.table_columns(real) {
                        Some(cols) => {
                            if cols.contains(&col_lower) {
                                candidates
                                    .push(QualifiedColumn::new(real.clone(), cref.column.clone()));
                            }
                        }
                        None => schemaless_tables.push(real),
                    },
                    CtxEntry::Derived {
                        columns, tables, ..
                    } => {
                        if let Some(qc) = columns.get(&col_lower) {
                            candidates.push(qc.clone());
                        } else {
                            for t in tables {
                                if let Some(cols) = self.provider.table_columns(t) {
                                    if cols.contains(&col_lower) {
                                        candidates.push(QualifiedColumn::new(
                                            t.clone(),
                                            cref.column.clone(),
                                        ));
                                    }
                                }
                            }
                        }
                    }
                }
            }
            match candidates.len() {
                1 => return Ok(Some(candidates.pop().expect("len 1"))),
                0 => {
                    // No schema hit; if exactly one schemaless table is in
                    // scope, attribute the column to it.
                    if schemaless_tables.len() == 1 && c.entries.len() == 1 {
                        return Ok(Some(QualifiedColumn::new(
                            schemaless_tables[0],
                            cref.column.clone(),
                        )));
                    }
                }
                _ => {
                    // Ambiguous: take the first, flag approximate.
                    state.approximate();
                    return Ok(Some(candidates.swap_remove(0)));
                }
            }
            scope = c.parent;
        }
        // Unresolvable: attribute to the first table in scope if any.
        state.approximate();
        let first = ctx.entries.iter().find_map(|e| match e {
            CtxEntry::Table { real, .. } => Some(real.clone()),
            CtxEntry::Derived { tables, .. } => tables.first().cloned(),
        });
        Ok(first.map(|t| QualifiedColumn::new(t, cref.column.clone())))
    }

    /// Rejects queries using user-defined functions — JSqlParser could not
    /// parse them, and the coverage experiment counts them as failures.
    fn check_no_functions(&self, expr: &Expr) -> ExtractResult<()> {
        match expr {
            Expr::Function { name, .. } => Err(ExtractError::Unsupported(
                UnsupportedConstruct::UserDefinedFunction(name.clone()),
            )),
            Expr::Unary { expr, .. } => self.check_no_functions(expr),
            Expr::Binary { left, right, .. } => {
                self.check_no_functions(left)?;
                self.check_no_functions(right)
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                self.check_no_functions(expr)?;
                self.check_no_functions(low)?;
                self.check_no_functions(high)
            }
            Expr::InList { expr, list, .. } => {
                self.check_no_functions(expr)?;
                list.iter().try_for_each(|e| self.check_no_functions(e))
            }
            Expr::Aggregate { arg: Some(a), .. } => self.check_no_functions(a),
            Expr::Aggregate { arg: None, .. } => Ok(()),
            Expr::Cast { expr, .. } => self.check_no_functions(expr),
            Expr::Case {
                operand,
                branches,
                else_result,
            } => {
                if let Some(o) = operand {
                    self.check_no_functions(o)?;
                }
                for (w, t) in branches {
                    self.check_no_functions(w)?;
                    self.check_no_functions(t)?;
                }
                if let Some(e) = else_result {
                    self.check_no_functions(e)?;
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    // The expression-lowering half of the extractor lives in `lower.rs`.
}

/// Collects direct subqueries of an expression (not recursing into them).
fn collect_subqueries(expr: &Expr) -> Vec<&Select> {
    let mut out = Vec::new();
    fn walk<'e>(e: &'e Expr, out: &mut Vec<&'e Select>) {
        match e {
            Expr::InSubquery { subquery, .. }
            | Expr::Exists { subquery, .. }
            | Expr::Quantified { subquery, .. } => out.push(subquery),
            Expr::ScalarSubquery(subquery) => out.push(subquery),
            Expr::Unary { expr, .. } => walk(expr, out),
            Expr::Binary { left, right, .. } => {
                walk(left, out);
                walk(right, out);
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                walk(expr, out);
                walk(low, out);
                walk(high, out);
            }
            Expr::InList { expr, list, .. } => {
                walk(expr, out);
                for item in list {
                    walk(item, out);
                }
            }
            Expr::IsNull { expr, .. } => walk(expr, out),
            Expr::Like { expr, pattern, .. } => {
                walk(expr, out);
                walk(pattern, out);
            }
            Expr::Aggregate { arg, .. } => {
                if let Some(a) = arg {
                    walk(a, out);
                }
            }
            Expr::Function { args, .. } => {
                for a in args {
                    walk(a, out);
                }
            }
            Expr::Case {
                operand,
                branches,
                else_result,
            } => {
                if let Some(o) = operand {
                    walk(o, out);
                }
                for (w, t) in branches {
                    walk(w, out);
                    walk(t, out);
                }
                if let Some(el) = else_result {
                    walk(el, out);
                }
            }
            Expr::Cast { expr, .. } => walk(expr, out),
            Expr::Column(_) | Expr::Literal(_) | Expr::Variable(_) => {}
        }
    }
    walk(expr, &mut out);
    out
}

//! Expression lowering: from `aa_sql::Expr` to [`BoolExpr`] over atomic
//! predicates, including the nested-query lemmas of Section 4.4.

use super::*;

/// A resolved comparison operand.
enum Operand {
    Col(QualifiedColumn),
    Const(Constant),
    /// `col * mul + add` — lets `ra + 10 < 20` normalise to `ra < 10`.
    Affine {
        col: QualifiedColumn,
        mul: f64,
        add: f64,
    },
    /// A scalar subquery (handled by the nested-query machinery).
    Subquery(Box<Select>),
    /// Anything the normaliser cannot reduce.
    Opaque,
}

impl<'a> Extractor<'a> {
    /// Lowers a predicate expression to a boolean combination of atoms.
    pub(crate) fn lower_expr(
        &self,
        expr: &Expr,
        ctx: &Ctx<'_>,
        state: &mut State,
    ) -> ExtractResult<BoolExpr> {
        match expr {
            Expr::Binary {
                left,
                op: BinaryOp::And,
                right,
            } => {
                // Flatten the AND chain so EXISTS grouping (Lemma 5) sees
                // all conjuncts at once.
                let mut conjuncts = Vec::new();
                flatten_chain(expr, BinaryOp::And, &mut conjuncts);
                debug_assert!(conjuncts.len() >= 2, "{left:?} {right:?}");
                self.lower_uniform_level(&conjuncts, true, ctx, state)
            }
            Expr::Binary {
                op: BinaryOp::Or, ..
            } => {
                let mut disjuncts = Vec::new();
                flatten_chain(expr, BinaryOp::Or, &mut disjuncts);
                self.lower_uniform_level(&disjuncts, false, ctx, state)
            }
            Expr::Binary { left, op, right } if op.is_comparison() => {
                self.lower_comparison(left, *op, right, ctx, state)
            }
            Expr::Binary { .. } => {
                // Bare arithmetic in predicate position (e.g. `WHERE u + v`)
                // carries no extractable constraint.
                state.approximate();
                Ok(BoolExpr::True)
            }
            Expr::Unary {
                op: UnaryOp::Not,
                expr: inner,
            } => {
                if inner.has_subquery() {
                    // NOT EXISTS / NOT IN (subquery): the area *inspected*
                    // is that of the positive form (the influencing tuples
                    // are those matching the inner predicate); the paper
                    // defers these to its approximation scheme.
                    state.approximate();
                    self.lower_expr(inner, ctx, state)
                } else {
                    Ok(self.lower_expr(inner, ctx, state)?.not())
                }
            }
            Expr::Unary { expr: inner, .. } => {
                // +e / -e in boolean position: no constraint.
                let _ = inner;
                state.approximate();
                Ok(BoolExpr::True)
            }
            Expr::Between {
                expr,
                negated,
                low,
                high,
            } => {
                // BETWEEN expands into two predicates (Section 4.1).
                let ge = self.lower_comparison(expr, BinaryOp::GtEq, low, ctx, state)?;
                let le = self.lower_comparison(expr, BinaryOp::LtEq, high, ctx, state)?;
                let both = BoolExpr::and([ge, le]);
                Ok(if *negated { both.not() } else { both })
            }
            Expr::InList {
                expr,
                negated,
                list,
            } => {
                let mut alts = Vec::with_capacity(list.len());
                for item in list {
                    alts.push(self.lower_comparison(expr, BinaryOp::Eq, item, ctx, state)?);
                }
                let any = BoolExpr::or(alts);
                Ok(if *negated { any.not() } else { any })
            }
            Expr::InSubquery {
                expr,
                negated,
                subquery,
            } => {
                if *negated {
                    state.approximate();
                }
                self.lower_in_subquery(expr, subquery, BinaryOp::Eq, ctx, state)
            }
            Expr::Exists { negated, subquery } => {
                if *negated {
                    state.approximate();
                }
                self.lower_select(subquery, Some(ctx), state)
            }
            Expr::Quantified {
                left,
                op,
                quantifier,
                subquery,
            } => match quantifier {
                // `x θ ANY (SELECT c FROM S WHERE w)` is
                // `EXISTS (SELECT * FROM S WHERE w AND x θ c)`.
                Quantifier::Any => self.lower_in_subquery(left, subquery, *op, ctx, state),
                // `x θ ALL (...)` constrains via the *violating* tuples:
                // `NOT EXISTS (... AND NOT(x θ c))`; the inspected area
                // carries the negated comparison.
                Quantifier::All => {
                    state.approximate();
                    let negated_op = negate_cmp(*op);
                    self.lower_in_subquery(left, subquery, negated_op, ctx, state)
                }
            },
            Expr::IsNull { .. } => {
                // NULL lies outside the data-space model (domains of real
                // columns); no spatial constraint.
                Ok(BoolExpr::True)
            }
            Expr::Like {
                expr,
                negated,
                pattern,
            } => {
                // LIKE without wildcards is equality; with wildcards it
                // does not map to a column-constant predicate.
                if let Expr::Literal(Literal::String(p)) = pattern.as_ref() {
                    if !p.contains(['%', '_']) {
                        let eq = self.lower_comparison(expr, BinaryOp::Eq, pattern, ctx, state)?;
                        return Ok(if *negated { eq.not() } else { eq });
                    }
                }
                state.approximate();
                Ok(BoolExpr::True)
            }
            Expr::Literal(Literal::Bool(b)) => Ok(if *b { BoolExpr::True } else { BoolExpr::False }),
            Expr::Literal(Literal::Int(i)) => {
                Ok(if *i != 0 { BoolExpr::True } else { BoolExpr::False })
            }
            Expr::Function { name, .. } => Err(ExtractError::Unsupported(
                UnsupportedConstruct::UserDefinedFunction(name.clone()),
            )),
            Expr::Aggregate { .. } => {
                // Aggregates outside HAVING carry no selection constraint.
                state.approximate();
                Ok(BoolExpr::True)
            }
            Expr::ScalarSubquery(sub) => {
                // A bare subquery in boolean position: contribute its area.
                state.approximate();
                self.lower_select(sub, Some(ctx), state)
            }
            _ => {
                state.approximate();
                Ok(BoolExpr::True)
            }
        }
    }

    /// Lowers the children of one uniform AND/OR level, grouping EXISTS
    /// subqueries that refer to the same relation (Lemmas 5 and 6): the
    /// group is replaced by the OR of the members' WHERE parts.
    fn lower_uniform_level(
        &self,
        children: &[&Expr],
        is_and: bool,
        ctx: &Ctx<'_>,
        state: &mut State,
    ) -> ExtractResult<BoolExpr> {
        // Partition EXISTS children by the (single) relation they access.
        // Naive mode (Section 6.5) skips the grouping, conjoining the
        // subquery constraints directly — which turns Lemma 5's
        // `(S.v < β OR S.v >= γ)` into the contradiction
        // `S.v < β AND S.v >= γ`.
        let mut groups: BTreeMap<String, Vec<&Select>> = BTreeMap::new();
        let mut rest: Vec<&Expr> = Vec::new();
        for child in children {
            match child {
                Expr::Exists {
                    negated: false,
                    subquery,
                } if !self.config.naive => match single_relation(subquery) {
                    Some(rel) => groups.entry(rel).or_default().push(subquery),
                    None => rest.push(child),
                },
                _ => rest.push(child),
            }
        }

        let mut parts: Vec<BoolExpr> = Vec::new();
        for child in rest {
            parts.push(self.lower_expr(child, ctx, state)?);
        }
        for (_rel, subs) in groups {
            let mut alts = Vec::with_capacity(subs.len());
            for sub in subs {
                alts.push(self.lower_select(sub, Some(ctx), state)?);
            }
            parts.push(BoolExpr::or(alts));
        }
        Ok(if is_and {
            BoolExpr::and(parts)
        } else {
            BoolExpr::or(parts)
        })
    }

    /// Lowers `outer θ (SELECT inner FROM ... WHERE w)`-style constructs
    /// (`IN`, `ANY`, scalar comparison): the subquery's constraint plus the
    /// linking predicate `outer θ inner`.
    fn lower_in_subquery(
        &self,
        outer: &Expr,
        subquery: &Select,
        op: BinaryOp,
        ctx: &Ctx<'_>,
        state: &mut State,
    ) -> ExtractResult<BoolExpr> {
        // Build the subquery scope relative to the current one so the link
        // predicate resolves both sides.
        let mut sub_ctx = Ctx::new(Some(ctx));
        let mut join_parts = Vec::new();
        for twj in &subquery.from {
            self.register_factor(&twj.base, &mut sub_ctx, state, &mut join_parts)?;
            for join in &twj.joins {
                self.register_factor(&join.factor, &mut sub_ctx, state, &mut join_parts)?;
            }
        }
        let mut parts = join_parts;
        for twj in &subquery.from {
            for join in &twj.joins {
                parts.push(self.lower_join(join.op, &join.constraint, twj, &sub_ctx, state)?);
            }
        }
        if let Some(w) = &subquery.selection {
            parts.push(self.lower_expr(w, &sub_ctx, state)?);
        }
        if let Some(h) = &subquery.having {
            parts.push(self.lower_having(h, subquery, &sub_ctx, state)?);
        }

        // The linking predicate: outer θ (first projected column).
        match subquery.projection.first() {
            Some(SelectItem::Expr { expr: inner, .. }) if matches!(inner, Expr::Column(_)) => {
                // Resolve the inner column in the subquery scope and the
                // outer operand in the outer scope.
                parts.push(self.lower_comparison_scoped(
                    outer, ctx, op, inner, &sub_ctx, state,
                )?);
            }
            Some(SelectItem::Expr { expr: inner, .. }) if inner.has_aggregate() => {
                // `x > (SELECT AVG(v) FROM S WHERE ...)`: the aggregate's
                // value is state-dependent; keep the subquery constraint,
                // drop the comparison.
                state.approximate();
            }
            _ => {
                state.approximate();
            }
        }
        Ok(BoolExpr::and(parts))
    }

    /// Lowers a comparison whose sides live in different scopes (outer
    /// expression vs. subquery projection).
    #[allow(clippy::too_many_arguments)]
    fn lower_comparison_scoped(
        &self,
        left: &Expr,
        left_ctx: &Ctx<'_>,
        op: BinaryOp,
        right: &Expr,
        right_ctx: &Ctx<'_>,
        state: &mut State,
    ) -> ExtractResult<BoolExpr> {
        let l = self.resolve_operand(left, left_ctx, state)?;
        let r = self.resolve_operand(right, right_ctx, state)?;
        self.combine_operands(l, op, r, left_ctx, state)
    }

    /// Lowers `left θ right` in a single scope.
    pub(crate) fn lower_comparison(
        &self,
        left: &Expr,
        op: BinaryOp,
        right: &Expr,
        ctx: &Ctx<'_>,
        state: &mut State,
    ) -> ExtractResult<BoolExpr> {
        let l = self.resolve_operand(left, ctx, state)?;
        let r = self.resolve_operand(right, ctx, state)?;
        self.combine_operands(l, op, r, ctx, state)
    }

    fn combine_operands(
        &self,
        left: Operand,
        op: BinaryOp,
        right: Operand,
        ctx: &Ctx<'_>,
        state: &mut State,
    ) -> ExtractResult<BoolExpr> {
        let cmp = to_cmp(op).ok_or_else(|| {
            ExtractError::Unsupported(UnsupportedConstruct::NonComparisonOperator(op.to_string()))
        })?;
        Ok(match (left, right) {
            (Operand::Const(a), Operand::Const(b)) => {
                if crate::predicate::compare_constants(&a, cmp, &b) {
                    BoolExpr::True
                } else {
                    BoolExpr::False
                }
            }
            (Operand::Col(c), Operand::Const(v)) => {
                BoolExpr::Atom(AtomicPredicate::cc(c, cmp, v))
            }
            (Operand::Const(v), Operand::Col(c)) => {
                BoolExpr::Atom(AtomicPredicate::cc(c, cmp.flip(), v))
            }
            (Operand::Col(a), Operand::Col(b)) => BoolExpr::Atom(AtomicPredicate::join(a, cmp, b)),
            (Operand::Affine { col, mul, add }, Operand::Const(v)) => {
                affine_atom(col, mul, add, cmp, v, state)
            }
            (Operand::Const(v), Operand::Affine { col, mul, add }) => {
                affine_atom(col, mul, add, cmp.flip(), v, state)
            }
            (Operand::Affine { col, mul, add }, Operand::Col(other))
            | (Operand::Col(other), Operand::Affine { col, mul, add }) => {
                // `T.u + 1 = S.u`: approximately the join itself.
                let _ = (mul, add);
                state.approximate();
                BoolExpr::Atom(AtomicPredicate::join(col, cmp, other))
            }
            (Operand::Subquery(sub), other) | (other, Operand::Subquery(sub)) => {
                // Scalar subquery on one side: nested handling.
                let outer_expr = match other {
                    Operand::Col(c) => Some(Expr::Column(aa_sql::ColumnRef::qualified(
                        c.table.clone(),
                        c.column.clone(),
                    ))),
                    Operand::Const(Constant::Num(x)) => Some(Expr::Literal(Literal::Float(x))),
                    Operand::Const(Constant::Str(s)) => Some(Expr::Literal(Literal::String(s))),
                    _ => None,
                };
                match outer_expr {
                    Some(oe) => {
                        // Column refs here are pre-resolved (table.column),
                        // which the scope chain resolves again harmlessly.
                        self.lower_in_subquery(&oe, &sub, op, ctx, state)?
                    }
                    None => {
                        state.approximate();
                        self.lower_select(&sub, Some(ctx), state)?
                    }
                }
            }
            _ => {
                state.approximate();
                BoolExpr::True
            }
        })
    }

    /// Resolves one comparison operand.
    fn resolve_operand(
        &self,
        expr: &Expr,
        ctx: &Ctx<'_>,
        state: &mut State,
    ) -> ExtractResult<Operand> {
        Ok(match expr {
            Expr::Column(cref) => match self.resolve_column(cref, ctx, state)? {
                Some(qc) => Operand::Col(qc),
                None => Operand::Opaque,
            },
            Expr::Literal(lit) => match lit {
                Literal::Int(i) => Operand::Const(Constant::Num(*i as f64)),
                Literal::Float(f) => Operand::Const(Constant::Num(*f)),
                Literal::String(s) => Operand::Const(Constant::Str(s.clone())),
                Literal::Bool(b) => Operand::Const(Constant::Num(*b as i64 as f64)),
                Literal::Null => Operand::Opaque,
            },
            Expr::Unary {
                op: UnaryOp::Neg,
                expr: inner,
            } => match self.resolve_operand(inner, ctx, state)? {
                Operand::Const(Constant::Num(x)) => Operand::Const(Constant::Num(-x)),
                Operand::Col(col) => Operand::Affine {
                    col,
                    mul: -1.0,
                    add: 0.0,
                },
                Operand::Affine { col, mul, add } => Operand::Affine {
                    col,
                    mul: -mul,
                    add: -add,
                },
                _ => Operand::Opaque,
            },
            Expr::Unary {
                op: UnaryOp::Plus,
                expr: inner,
            } => self.resolve_operand(inner, ctx, state)?,
            Expr::Binary { left, op, right } if !op.is_comparison() && !op.is_logical() => {
                let l = self.resolve_operand(left, ctx, state)?;
                let r = self.resolve_operand(right, ctx, state)?;
                combine_affine(l, *op, r)
            }
            Expr::ScalarSubquery(sub) => Operand::Subquery(sub.clone()),
            Expr::Cast { expr: inner, .. } => self.resolve_operand(inner, ctx, state)?,
            Expr::Function { name, .. } => {
                return Err(ExtractError::Unsupported(
                    UnsupportedConstruct::UserDefinedFunction(name.clone()),
                ))
            }
            _ => Operand::Opaque,
        })
    }
}

/// Flattens `a AND b AND c` / `a OR b OR c` chains into child lists.
fn flatten_chain<'e>(expr: &'e Expr, op: BinaryOp, out: &mut Vec<&'e Expr>) {
    match expr {
        Expr::Binary {
            left,
            op: node_op,
            right,
        } if *node_op == op => {
            flatten_chain(left, op, out);
            flatten_chain(right, op, out);
        }
        other => out.push(other),
    }
}

/// The relation accessed by a subquery, when it is exactly one base table
/// (the shape the paper's EXISTS lemmas assume).
fn single_relation(sub: &Select) -> Option<String> {
    if sub.from.len() != 1 {
        return None;
    }
    let twj = &sub.from[0];
    if !twj.joins.is_empty() {
        return None;
    }
    match &twj.base {
        TableFactor::Table { name, .. } => Some(name.base_name().to_lowercase()),
        TableFactor::Derived { .. } => None,
    }
}

/// Converts a comparison `BinaryOp` to a `CmpOp`.
fn to_cmp(op: BinaryOp) -> Option<CmpOp> {
    Some(match op {
        BinaryOp::Eq => CmpOp::Eq,
        BinaryOp::Neq => CmpOp::Neq,
        BinaryOp::Lt => CmpOp::Lt,
        BinaryOp::LtEq => CmpOp::LtEq,
        BinaryOp::Gt => CmpOp::Gt,
        BinaryOp::GtEq => CmpOp::GtEq,
        _ => return None,
    })
}

/// Negates a comparison operator at the `BinaryOp` level.
fn negate_cmp(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Eq => BinaryOp::Neq,
        BinaryOp::Neq => BinaryOp::Eq,
        BinaryOp::Lt => BinaryOp::GtEq,
        BinaryOp::LtEq => BinaryOp::Gt,
        BinaryOp::Gt => BinaryOp::LtEq,
        BinaryOp::GtEq => BinaryOp::Lt,
        other => other,
    }
}

/// Solves `col*mul + add  θ  c` for `col`.
fn affine_atom(
    col: QualifiedColumn,
    mul: f64,
    add: f64,
    cmp: CmpOp,
    v: Constant,
    state: &mut State,
) -> BoolExpr {
    let Some(c) = v.as_num() else {
        state.approximate();
        return BoolExpr::True;
    };
    if mul == 0.0 {
        return if cmp.eval_f64(add, c) {
            BoolExpr::True
        } else {
            BoolExpr::False
        };
    }
    let solved = (c - add) / mul;
    let cmp = if mul < 0.0 { cmp.flip() } else { cmp };
    BoolExpr::Atom(AtomicPredicate::cc(col, cmp, Constant::Num(solved)))
}

/// Combines two operands under an arithmetic operator, preserving affine
/// forms over a single column where possible.
fn combine_affine(left: Operand, op: BinaryOp, right: Operand) -> Operand {
    use Operand::*;
    let as_affine = |o: Operand| -> Operand {
        match o {
            Col(c) => Affine {
                col: c,
                mul: 1.0,
                add: 0.0,
            },
            other => other,
        }
    };
    let (l, r) = (as_affine(left), as_affine(right));
    match (l, op, r) {
        (Const(Constant::Num(a)), _, Const(Constant::Num(b))) => {
            let v = match op {
                BinaryOp::Plus => a + b,
                BinaryOp::Minus => a - b,
                BinaryOp::Mul => a * b,
                BinaryOp::Div => {
                    if b == 0.0 {
                        return Opaque;
                    }
                    a / b
                }
                BinaryOp::Mod => {
                    if b == 0.0 {
                        return Opaque;
                    }
                    a % b
                }
                _ => return Opaque,
            };
            Const(Constant::Num(v))
        }
        (Affine { col, mul, add }, BinaryOp::Plus, Const(Constant::Num(c)))
        | (Const(Constant::Num(c)), BinaryOp::Plus, Affine { col, mul, add }) => Affine {
            col,
            mul,
            add: add + c,
        },
        (Affine { col, mul, add }, BinaryOp::Minus, Const(Constant::Num(c))) => Affine {
            col,
            mul,
            add: add - c,
        },
        (Const(Constant::Num(c)), BinaryOp::Minus, Affine { col, mul, add }) => Affine {
            col,
            mul: -mul,
            add: c - add,
        },
        (Affine { col, mul, add }, BinaryOp::Mul, Const(Constant::Num(c)))
        | (Const(Constant::Num(c)), BinaryOp::Mul, Affine { col, mul, add }) => Affine {
            col,
            mul: mul * c,
            add: add * c,
        },
        (Affine { col, mul, add }, BinaryOp::Div, Const(Constant::Num(c))) if c != 0.0 => Affine {
            col,
            mul: mul / c,
            add: add / c,
        },
        _ => Opaque,
    }
}

//! The *naive* extractor used by the Section 6.5 comparison: predicates
//! are used as-is, without the paper's transformations.

use super::{ExtractConfig, Extractor, SchemaProvider};

/// Builds an extractor in naive (as-is predicate) mode.
///
/// Differences from the faithful extractor:
/// * `FULL OUTER JOIN ... ON cond` keeps `cond` (should contribute none);
/// * `HAVING AGG(a) θ c` becomes `a θ c` (should run the lemma analysis);
/// * AND-connected `EXISTS` subqueries over the same relation are conjoined
///   instead of OR-grouped (Lemma 5 violation, producing contradictions).
///
/// The paper reports that clustering on these areas breaks Clusters 2, 5,
/// 8, 9, 11, 12, 18, 19, 20 and 22 of Table 1.
pub fn naive_extractor(provider: &dyn SchemaProvider) -> Extractor<'_> {
    Extractor::with_config(
        provider,
        ExtractConfig {
            naive: true,
            ..ExtractConfig::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::NoSchema;

    #[test]
    fn naive_keeps_full_outer_condition() {
        let provider = NoSchema;
        let naive = naive_extractor(&provider);
        let faithful = Extractor::new(&provider);
        let sql = "SELECT * FROM T FULL OUTER JOIN S ON T.u = S.u";
        let naive_area = naive.extract_sql(sql).unwrap();
        let faithful_area = faithful.extract_sql(sql).unwrap();
        // Faithful: no constraint (Example 2). Naive: keeps T.u = S.u.
        assert!(faithful_area.constraint.is_empty());
        assert_eq!(naive_area.constraint.len(), 1);
    }

    #[test]
    fn naive_maps_having_directly() {
        let provider = NoSchema;
        let naive = naive_extractor(&provider);
        // SUM(v) > 10 with unbounded domain: faithful extraction yields no
        // constraint (Lemma 1, supp > 0); naive yields v > 10.
        let sql = "SELECT u, SUM(v) FROM T GROUP BY u HAVING SUM(v) > 10";
        let area = naive.extract_sql(sql).unwrap();
        assert_eq!(area.constraint.to_string(), "T.v > 10");
        let faithful = Extractor::new(&provider).extract_sql(sql).unwrap();
        assert!(faithful.constraint.is_empty());
    }

    #[test]
    fn naive_breaks_lemma5_grouping() {
        let provider = NoSchema;
        let sql = "SELECT * FROM T WHERE T.u > 1 \
                   AND EXISTS (SELECT * FROM S WHERE S.v < 2 AND S.u = T.u) \
                   AND EXISTS (SELECT * FROM S WHERE S.v > 5 AND S.u = T.u)";
        // Faithful: S.v < 2 OR S.v > 5 (satisfiable).
        let faithful = Extractor::new(&provider).extract_sql(sql).unwrap();
        assert!(!faithful.provably_empty);
        // Naive: S.v < 2 AND S.v > 5 (contradiction).
        let naive = naive_extractor(&provider).extract_sql(sql).unwrap();
        assert!(naive.provably_empty);
    }
}

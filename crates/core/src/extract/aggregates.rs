//! Aggregate queries: mapping `HAVING AGG(a) θ c` to access-area
//! constraints (Section 4.3, Lemmas 1–3, generalised).
//!
//! ## The unified case analysis
//!
//! The paper proves three lemmas for `SUM` under different `WHERE`
//! constraints on the aggregated column, plus (in the companion thesis) the
//! cases for `COUNT`/`MIN`/`MAX`/`AVG`. All of them are instances of one
//! question: *given that every group member's value must come from the
//! **effective domain** `D = dom(a) ∩ (WHERE-interval on a)`, for which
//! values `v ∈ D` of the candidate tuple does a schema-allowed state exist
//! whose group satisfies `AGG θ c`?*
//!
//! Running the analysis on `D` instead of `dom(a)` recovers each lemma:
//!
//! * Lemma 1 (`SUM > c`, no WHERE): `D = dom(a)`; `sup D > 0` → every tuple
//!   qualifies (pad the group with positive values); `sup D ≤ 0` → the
//!   best achievable sum is the tuple's own value, giving `σ_{a>c}`, empty
//!   when even that is impossible.
//! * Lemma 2 (`WHERE a < c₁`, `SUM > c₂`): `D = (-∞, c₁)`; `c₁ > 0` → no
//!   extra constraint; `c₁ ≤ 0 ∧ c₂ ≥ 0` → empty; `c₁ ≤ 0 ∧ c₂ < 0` →
//!   `σ_{a > c₂}` when `c₂ < c₁`, else empty.
//! * Lemma 3 (`WHERE a > c₁`, `SUM > c₂`): `sup D = +∞` → no extra
//!   constraint.

use crate::boolexpr::BoolExpr;
use crate::error::ExtractResult;
use crate::interval::Interval;
use crate::predicate::{AtomicPredicate, CmpOp, Constant, QualifiedColumn};
use aa_sql::{AggFunc, BinaryOp, Expr, Select};

use super::{Ctx, Extractor, State};

/// The outcome of analysing one `AGG(a) θ c` condition.
#[derive(Debug, Clone, PartialEq)]
pub enum HavingOutcome {
    /// Every tuple of the (WHERE-constrained) space can influence the
    /// result: no additional constraint.
    Top,
    /// No tuple can: the access area is provably empty.
    Empty,
    /// The additional constraint `a θ' c'`.
    Pred(AtomicPredicate),
}

impl<'a> Extractor<'a> {
    /// Lowers a HAVING clause. Conjunctions of `AGG(a) θ c` terms are
    /// analysed term-wise; plain (non-aggregate) predicates lower like
    /// WHERE predicates; anything else approximates to `TRUE`.
    pub(crate) fn lower_having(
        &self,
        having: &Expr,
        query: &Select,
        ctx: &Ctx<'_>,
        state: &mut State,
    ) -> ExtractResult<BoolExpr> {
        let mut conjuncts = Vec::new();
        flatten_and(having, &mut conjuncts);

        let mut parts = Vec::new();
        for term in conjuncts {
            parts.push(self.lower_having_term(term, query, ctx, state)?);
        }
        Ok(BoolExpr::and(parts))
    }

    fn lower_having_term(
        &self,
        term: &Expr,
        query: &Select,
        ctx: &Ctx<'_>,
        state: &mut State,
    ) -> ExtractResult<BoolExpr> {
        // Recognise `AGG(a) θ c` / `c θ AGG(a)`.
        if let Expr::Binary { left, op, right } = term {
            if op.is_comparison() {
                let shaped = match (left.as_ref(), right.as_ref()) {
                    (Expr::Aggregate { func, arg, .. }, rhs) if is_constant(rhs) => {
                        Some((*func, arg.as_deref(), *op, rhs))
                    }
                    (lhs, Expr::Aggregate { func, arg, .. }) if is_constant(lhs) => {
                        Some((*func, arg.as_deref(), flip_binop(*op), lhs))
                    }
                    _ => None,
                };
                if let Some((func, arg, op, const_expr)) = shaped {
                    return self.lower_agg_comparison(func, arg, op, const_expr, query, ctx, state);
                }
            }
        }
        if term.has_aggregate() {
            // An aggregate shape outside the supported format (the paper
            // confines itself to one aggregate per HAVING): approximate.
            state.approximate();
            return Ok(BoolExpr::True);
        }
        // Plain predicate on grouping columns: same mapping as WHERE.
        self.lower_expr(term, ctx, state)
    }

    #[allow(clippy::too_many_arguments)]
    fn lower_agg_comparison(
        &self,
        func: AggFunc,
        arg: Option<&Expr>,
        op: BinaryOp,
        const_expr: &Expr,
        query: &Select,
        ctx: &Ctx<'_>,
        state: &mut State,
    ) -> ExtractResult<BoolExpr> {
        let Some(c) = constant_value(const_expr) else {
            state.approximate();
            return Ok(BoolExpr::True);
        };
        let cmp = match op {
            BinaryOp::Eq => CmpOp::Eq,
            BinaryOp::Neq => CmpOp::Neq,
            BinaryOp::Lt => CmpOp::Lt,
            BinaryOp::LtEq => CmpOp::LtEq,
            BinaryOp::Gt => CmpOp::Gt,
            BinaryOp::GtEq => CmpOp::GtEq,
            _ => {
                state.approximate();
                return Ok(BoolExpr::True);
            }
        };

        // COUNT is column-independent: a group containing the tuple can
        // always be padded to any cardinality ≥ 1.
        if func == AggFunc::Count {
            return Ok(match count_outcome(cmp, c) {
                HavingOutcome::Top => BoolExpr::True,
                HavingOutcome::Empty => {
                    state.provably_empty = true;
                    BoolExpr::False
                }
                HavingOutcome::Pred(_) => unreachable!("COUNT yields no predicate"),
            });
        }

        // Resolve the aggregated column; "if it does not [belong to a FROM
        // relation], we ignore it" (Section 4.3).
        let Some(Expr::Column(cref)) = arg else {
            state.approximate();
            return Ok(BoolExpr::True);
        };
        let Some(col) = self.resolve_column_pub(cref, ctx, state)? else {
            state.approximate();
            return Ok(BoolExpr::True);
        };

        // Naive mode (Section 6.5): take the predicate as-is — `AGG(a) θ c`
        // becomes `a θ c`, skipping the lemma case analysis entirely.
        if self.config.naive {
            return Ok(BoolExpr::Atom(AtomicPredicate::cc(
                col,
                cmp,
                Constant::Num(c),
            )));
        }

        // Effective domain: schema domain ∩ WHERE-interval on the column.
        let schema_dom = self
            .provider
            .column_domain(&col.table, &col.column)
            .unwrap_or_else(Interval::all);
        let where_iv = query
            .selection
            .as_ref()
            .map(|w| self.conjunctive_interval(w, &col, ctx, state))
            .transpose()?
            .unwrap_or_else(Interval::all);
        let eff = schema_dom.intersect(&where_iv);

        let outcome = aggregate_outcome(func, cmp, c, &col, &eff, state);
        Ok(match outcome {
            HavingOutcome::Top => BoolExpr::True,
            HavingOutcome::Empty => {
                state.provably_empty = true;
                BoolExpr::False
            }
            HavingOutcome::Pred(p) => BoolExpr::Atom(p),
        })
    }

    /// Interval implied on `col` by the top-level conjuncts of the WHERE
    /// clause (predicates under OR are ignored — they do not constrain
    /// every group member).
    fn conjunctive_interval(
        &self,
        where_expr: &Expr,
        col: &QualifiedColumn,
        ctx: &Ctx<'_>,
        state: &mut State,
    ) -> ExtractResult<Interval> {
        let mut conjuncts = Vec::new();
        flatten_and(where_expr, &mut conjuncts);
        let mut iv = Interval::all();
        for term in conjuncts {
            // Lower each conjunct independently; only definite atoms on the
            // target column tighten the interval.
            let lowered = self.lower_expr(term, ctx, state)?;
            if let BoolExpr::Atom(atom) = &lowered {
                if let Some((atom_col, atom_iv)) = atom.satisfying_interval() {
                    if atom_col == *col {
                        iv = iv.intersect(&atom_iv);
                    }
                }
            } else if let BoolExpr::And(parts) = &lowered {
                for p in parts {
                    if let BoolExpr::Atom(atom) = p {
                        if let Some((atom_col, atom_iv)) = atom.satisfying_interval() {
                            if atom_col == *col {
                                iv = iv.intersect(&atom_iv);
                            }
                        }
                    }
                }
            }
        }
        Ok(iv)
    }

    /// Column resolution exposed to this module.
    fn resolve_column_pub(
        &self,
        cref: &aa_sql::ColumnRef,
        ctx: &Ctx<'_>,
        state: &mut State,
    ) -> ExtractResult<Option<QualifiedColumn>> {
        self.resolve_column(cref, ctx, state)
    }
}

/// `COUNT θ c`: group cardinality ranges over `{1, 2, 3, …}`.
fn count_outcome(cmp: CmpOp, c: f64) -> HavingOutcome {
    let satisfiable = match cmp {
        CmpOp::Gt | CmpOp::GtEq | CmpOp::Neq => true, // unbounded above
        CmpOp::Lt => c > 1.0,
        CmpOp::LtEq => c >= 1.0,
        CmpOp::Eq => c >= 1.0 && c.fract() == 0.0,
    };
    if satisfiable {
        HavingOutcome::Top
    } else {
        HavingOutcome::Empty
    }
}

/// The per-function case analysis over the effective domain `eff`.
fn aggregate_outcome(
    func: AggFunc,
    cmp: CmpOp,
    c: f64,
    col: &QualifiedColumn,
    eff: &Interval,
    state: &mut State,
) -> HavingOutcome {
    // Helper: is there any domain value strictly above / below c?
    let exists_above = |strict: bool| !eff.intersect(&Interval::above(c, strict)).is_empty();
    let exists_below = |strict: bool| !eff.intersect(&Interval::below(c, strict)).is_empty();
    let pred = |op: CmpOp| {
        HavingOutcome::Pred(AtomicPredicate::cc(col.clone(), op, Constant::Num(c)))
    };

    match func {
        AggFunc::Count => count_outcome(cmp, c),
        AggFunc::Sum => match cmp {
            CmpOp::Gt | CmpOp::GtEq => {
                let strict = cmp == CmpOp::Gt;
                if eff.intersect(&Interval::above(0.0, true)).is_empty() {
                    // All addable values ≤ 0: best sum is the tuple's own
                    // value (Lemma 1, case supp ≤ 0).
                    if exists_above(strict) {
                        pred(cmp)
                    } else {
                        HavingOutcome::Empty
                    }
                } else {
                    // Positive values available: pad the group (Lemma 1
                    // case supp > 0 / Lemma 3).
                    HavingOutcome::Top
                }
            }
            CmpOp::Lt | CmpOp::LtEq => {
                let strict = cmp == CmpOp::Lt;
                if eff.intersect(&Interval::below(0.0, true)).is_empty() {
                    if exists_below(strict) {
                        pred(cmp)
                    } else {
                        HavingOutcome::Empty
                    }
                } else {
                    HavingOutcome::Top
                }
            }
            CmpOp::Eq | CmpOp::Neq => {
                // Exact-sum reachability needs a finer analysis (the
                // companion thesis's cases); approximate safely upward.
                state.approximate();
                HavingOutcome::Top
            }
        },
        AggFunc::Min => match cmp {
            // MIN over a group containing the tuple is at most the tuple's
            // value and can be pushed down to inf(eff).
            CmpOp::Gt | CmpOp::GtEq => {
                if exists_above(cmp == CmpOp::Gt) {
                    pred(cmp)
                } else {
                    HavingOutcome::Empty
                }
            }
            CmpOp::Lt | CmpOp::LtEq => {
                if exists_below(cmp == CmpOp::Lt) {
                    HavingOutcome::Top
                } else {
                    HavingOutcome::Empty
                }
            }
            CmpOp::Eq => {
                if eff.contains(c) {
                    pred(CmpOp::GtEq)
                } else {
                    HavingOutcome::Empty
                }
            }
            CmpOp::Neq => {
                if exists_below(true) {
                    HavingOutcome::Top
                } else {
                    // All values ≥ c: a tuple with value exactly c pins
                    // MIN = c; tuples above c can avoid it.
                    pred(CmpOp::Gt)
                }
            }
        },
        AggFunc::Max => match cmp {
            CmpOp::Lt | CmpOp::LtEq => {
                if exists_below(cmp == CmpOp::Lt) {
                    pred(cmp)
                } else {
                    HavingOutcome::Empty
                }
            }
            CmpOp::Gt | CmpOp::GtEq => {
                if exists_above(cmp == CmpOp::Gt) {
                    HavingOutcome::Top
                } else {
                    HavingOutcome::Empty
                }
            }
            CmpOp::Eq => {
                if eff.contains(c) {
                    pred(CmpOp::LtEq)
                } else {
                    HavingOutcome::Empty
                }
            }
            CmpOp::Neq => {
                if exists_above(true) {
                    HavingOutcome::Top
                } else {
                    pred(CmpOp::Lt)
                }
            }
        },
        AggFunc::Avg => match cmp {
            CmpOp::Gt | CmpOp::GtEq => {
                // Dragging the average up needs values *strictly* above c:
                // padding with values equal to c only approaches c from
                // below when the tuple itself sits below it.
                if exists_above(true) {
                    HavingOutcome::Top
                } else if cmp == CmpOp::GtEq && eff.contains(c) {
                    // AVG = c only when every member equals c.
                    pred(CmpOp::GtEq)
                } else {
                    HavingOutcome::Empty
                }
            }
            CmpOp::Lt | CmpOp::LtEq => {
                if exists_below(true) {
                    HavingOutcome::Top
                } else if cmp == CmpOp::LtEq && eff.contains(c) {
                    pred(CmpOp::LtEq)
                } else {
                    HavingOutcome::Empty
                }
            }
            CmpOp::Eq => {
                if exists_above(true) && exists_below(true) {
                    HavingOutcome::Top
                } else if eff.contains(c) {
                    pred(CmpOp::Eq)
                } else {
                    HavingOutcome::Empty
                }
            }
            CmpOp::Neq => {
                if eff.width() > 0.0 {
                    HavingOutcome::Top
                } else {
                    state.approximate();
                    HavingOutcome::Top
                }
            }
        },
    }
}

/// Mirrors a comparison operator (`c θ AGG` → `AGG θ' c`).
fn flip_binop(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::LtEq => BinaryOp::GtEq,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::GtEq => BinaryOp::LtEq,
        other => other,
    }
}

/// Flattens an AND chain.
fn flatten_and<'e>(expr: &'e Expr, out: &mut Vec<&'e Expr>) {
    match expr {
        Expr::Binary {
            left,
            op: BinaryOp::And,
            right,
        } => {
            flatten_and(left, out);
            flatten_and(right, out);
        }
        other => out.push(other),
    }
}

fn is_constant(expr: &Expr) -> bool {
    constant_value(expr).is_some()
}

/// Numeric constant folding for HAVING thresholds.
fn constant_value(expr: &Expr) -> Option<f64> {
    match expr {
        Expr::Literal(aa_sql::Literal::Int(i)) => Some(*i as f64),
        Expr::Literal(aa_sql::Literal::Float(f)) => Some(*f),
        Expr::Unary {
            op: aa_sql::UnaryOp::Neg,
            expr,
        } => constant_value(expr).map(|v| -v),
        _ => None,
    }
}


//! The hardened log runner: per-query fault domains over [`Pipeline`].
//!
//! `Pipeline::process_log` is all-or-nothing — one panic in the parser or
//! extractor kills the whole run. Real SkyServer traffic is adversarial
//! (the traffic reports document malformed and runaway queries as a
//! constant fraction of load), so at production scale the runner itself
//! must contain faults per *query*, not per *log*. [`LogRunner`] layers
//! four mechanisms over the pipeline:
//!
//! * **panic isolation** — every `process` call runs under
//!   `catch_unwind`; a poison query becomes a recorded
//!   [`FailureKind::Internal`] failure instead of a crashed run;
//! * **per-query budgets** — a deterministic fuel budget charged at stage
//!   granularity (bytes parsed, atoms lowered/converted/consolidated)
//!   plus an optional wall-clock deadline, both surfacing as
//!   [`FailureKind::BudgetExceeded`];
//! * **quarantine** — failed entries are appended to a replayable JSONL
//!   sidecar ([`QuarantineRecord`]) carrying kind, span, message, and the
//!   original SQL;
//! * **checkpoint/resume** — the log is processed in chunks; after each
//!   chunk the runner atomically persists `{offset, running stats}` plus
//!   an extracted-areas sidecar, so a killed run resumes from the last
//!   checkpoint and provably produces the same areas and stats as a
//!   one-shot run.
//!
//! A seeded [`FaultPlan`] (xoshiro256++, [`aa_util::SeededRng`]) injects
//! panics, synthetic errors, and budget exhaustion at chosen stages; the
//! chaos suite uses it to prove the runner survives every injected fault
//! while leaving non-faulted queries byte-identical to a clean run.

use crate::pipeline::{
    ExtractedQuery, FailedQuery, FailureKind, Pipeline, PipelineStats, Stage, StageFault,
    StageHooks,
};
use aa_sql::Span;
use aa_util::{FromJson, Json, SeededRng, ToJson};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Once;
use std::time::{Duration, Instant};

// ---- fault injection -------------------------------------------------------

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic when the given stage is entered.
    Panic(Stage),
    /// Return a synthetic internal error when the given stage is entered.
    SyntheticError(Stage),
    /// Exhaust the query's budget before the first stage.
    BudgetExhaust,
}

impl FaultKind {
    /// The [`FailureKind`] this fault must surface as when it fires.
    pub fn expected_failure(&self) -> FailureKind {
        match self {
            FaultKind::Panic(_) | FaultKind::SyntheticError(_) => FailureKind::Internal,
            FaultKind::BudgetExhaust => FailureKind::BudgetExceeded,
        }
    }
}

/// A deterministic schedule of faults keyed by log index. Two plans built
/// from the same seed over the same index set are identical, so a chaos
/// run is exactly reproducible.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: BTreeMap<usize, FaultKind>,
}

impl FaultPlan {
    /// Samples a plan over log indices `0..total`: each index draws a
    /// fault with probability `rate`, choosing uniformly among panic /
    /// synthetic error / budget exhaustion and (where applicable) a
    /// uniform stage.
    pub fn seeded(seed: u64, total: usize, rate: f64) -> FaultPlan {
        FaultPlan::seeded_over(seed, 0..total, rate)
    }

    /// Like [`FaultPlan::seeded`], but over an explicit index set (e.g.
    /// only queries known to extract cleanly, so that stage-targeted
    /// faults are guaranteed to fire).
    pub fn seeded_over(
        seed: u64,
        indices: impl IntoIterator<Item = usize>,
        rate: f64,
    ) -> FaultPlan {
        let mut rng = SeededRng::seed_from_u64(seed);
        let mut faults = BTreeMap::new();
        for i in indices {
            if !rng.gen_bool(rate) {
                continue;
            }
            let stage = Stage::ALL[rng.gen_range(0..Stage::ALL.len())];
            let kind = match rng.gen_range(0..3u32) {
                0 => FaultKind::Panic(stage),
                1 => FaultKind::SyntheticError(stage),
                _ => FaultKind::BudgetExhaust,
            };
            faults.insert(i, kind);
        }
        FaultPlan { faults }
    }

    /// Adds (or overrides) one fault.
    pub fn insert(&mut self, log_index: usize, kind: FaultKind) {
        self.faults.insert(log_index, kind);
    }

    pub fn get(&self, log_index: usize) -> Option<FaultKind> {
        self.faults.get(&log_index).copied()
    }

    pub fn len(&self) -> usize {
        self.faults.len()
    }

    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Planned faults in log order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, FaultKind)> + '_ {
        self.faults.iter().map(|(i, k)| (*i, *k))
    }
}

// ---- runner configuration --------------------------------------------------

/// Knobs for the hardened runner. The default configuration behaves like
/// `Pipeline::process_log` plus panic isolation: no budgets, no files.
#[derive(Debug, Clone, Default)]
pub struct RunnerConfig {
    /// Per-query fuel budget in deterministic units (1 + input bytes for
    /// parse; 1 + atom counts for lower/CNF/consolidate). `None` = no cap.
    pub fuel: Option<u64>,
    /// Optional per-query wall-clock deadline, checked at stage
    /// boundaries. Nondeterministic by nature — off by default and
    /// excluded from the determinism guarantees.
    pub deadline: Option<Duration>,
    /// Entries processed between checkpoints.
    pub chunk_size: usize,
    /// Catch panics per query (recorded as [`FailureKind::Internal`]).
    pub isolate_panics: bool,
    /// Checkpoint file; the extracted-areas sidecar lives alongside at
    /// `<path>.areas.jsonl`.
    pub checkpoint: Option<PathBuf>,
    /// Resume from the checkpoint file if it exists (fresh run otherwise).
    pub resume: bool,
    /// Quarantine sidecar (JSONL, one [`QuarantineRecord`] per line).
    pub quarantine: Option<PathBuf>,
    /// Deterministic fault injection schedule.
    pub fault_plan: Option<FaultPlan>,
    /// Stop after this many chunks (checkpoint persists) — simulates a
    /// killed run for the resume tests and for operational drills.
    pub max_chunks: Option<usize>,
}

impl RunnerConfig {
    pub fn new() -> RunnerConfig {
        RunnerConfig {
            fuel: None,
            deadline: None,
            chunk_size: 256,
            isolate_panics: true,
            checkpoint: None,
            resume: false,
            quarantine: None,
            fault_plan: None,
            max_chunks: None,
        }
    }
}

/// Runner-level failure (I/O, corrupt checkpoint). Query-level failures
/// never surface here — they are data, recorded in the report.
#[derive(Debug, Clone, PartialEq)]
pub struct RunnerError(pub String);

impl fmt::Display for RunnerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runner error: {}", self.0)
    }
}

impl std::error::Error for RunnerError {}

fn io_err(context: &str, e: impl fmt::Display) -> RunnerError {
    RunnerError(format!("{context}: {e}"))
}

/// Outcome of a [`LogRunner::run`].
#[derive(Debug)]
pub struct RunReport {
    /// Entries extracted by *this* invocation (a resumed run only holds
    /// the tail; the areas sidecar holds the full set).
    pub extracted: Vec<ExtractedQuery>,
    /// Entries that failed in this invocation.
    pub failed: Vec<FailedQuery>,
    /// Cumulative statistics, including any checkpoint-restored prefix.
    pub stats: PipelineStats,
    /// Log offset this invocation started from (0 for fresh runs).
    pub start_offset: usize,
    /// Log offset reached (== log length unless `max_chunks` stopped us).
    pub end_offset: usize,
    /// Number of faults that fired from the fault plan.
    pub faults_fired: usize,
}

// ---- quarantine ------------------------------------------------------------

/// One quarantined log entry, serialized to the JSONL sidecar. Carries
/// everything needed to replay the query later: the failure taxonomy
/// entry, the anchored span, the message, and the original SQL.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineRecord {
    pub log_index: usize,
    pub kind: FailureKind,
    pub message: String,
    pub span: Option<(usize, usize)>,
    pub sql: String,
}

impl QuarantineRecord {
    fn from_failure(f: &FailedQuery, sql: &str) -> QuarantineRecord {
        QuarantineRecord {
            log_index: f.log_index,
            kind: f.kind,
            message: f.message.clone(),
            span: f.span.map(|s: Span| (s.start, s.end)),
            sql: sql.to_string(),
        }
    }
}

impl ToJson for QuarantineRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("log_index".to_string(), self.log_index.to_json()),
            ("kind".to_string(), Json::Str(self.kind.as_str().into())),
            ("message".to_string(), Json::Str(self.message.clone())),
            (
                "span".to_string(),
                match self.span {
                    Some((s, e)) => Json::Arr(vec![s.to_json(), e.to_json()]),
                    None => Json::Null,
                },
            ),
            ("sql".to_string(), Json::Str(self.sql.clone())),
        ])
    }
}

impl FromJson for QuarantineRecord {
    fn from_json(json: &Json) -> Result<Self, aa_util::JsonError> {
        let field = |k: &str| {
            json.get(k)
                .ok_or_else(|| aa_util::JsonError(format!("quarantine record: missing '{k}'")))
        };
        let kind_tag = String::from_json(field("kind")?)?;
        let kind = FailureKind::parse(&kind_tag)
            .ok_or_else(|| aa_util::JsonError(format!("unknown failure kind '{kind_tag}'")))?;
        let span = match field("span")? {
            Json::Null => None,
            Json::Arr(xs) if xs.len() == 2 => Some((
                f64::from_json(&xs[0])? as usize,
                f64::from_json(&xs[1])? as usize,
            )),
            _ => return Err(aa_util::JsonError("span must be null or [start, end]".into())),
        };
        Ok(QuarantineRecord {
            log_index: f64::from_json(field("log_index")?)? as usize,
            kind,
            message: String::from_json(field("message")?)?,
            span,
            sql: String::from_json(field("sql")?)?,
        })
    }
}

/// Reads a quarantine sidecar back into records (blank lines ignored).
///
/// Crash tolerance: a process killed mid-append leaves a *torn trailing
/// line* — a partial JSON record with no terminating newline, possibly
/// cut inside a multi-byte character. Every complete line before it is
/// durable (appends are sequential), so the torn tail is logged-and-
/// skipped instead of failing the whole read. Corruption anywhere *else*
/// in the file is not a crash artifact and still errors.
pub fn read_quarantine(path: &Path) -> Result<Vec<QuarantineRecord>, RunnerError> {
    let (records, torn) = read_quarantine_tolerant(path)?;
    if let Some(tail) = torn {
        eprintln!(
            "warning: {}: skipping torn trailing line ({} bytes) left by an interrupted append",
            path.display(),
            tail.len()
        );
    }
    Ok(records)
}

/// Like [`read_quarantine`], but hands back the torn trailing line (if
/// any) instead of printing a warning, for callers that surface it in
/// their own reporting.
pub fn read_quarantine_tolerant(
    path: &Path,
) -> Result<(Vec<QuarantineRecord>, Option<String>), RunnerError> {
    // Bytes, not read_to_string: a write torn inside a multi-byte
    // character must not poison the readable prefix.
    let bytes = std::fs::read(path)
        .map_err(|e| io_err(&format!("read quarantine {}", path.display()), e))?;
    let text = String::from_utf8_lossy(&bytes);
    let lines: Vec<&str> = text.lines().collect();
    let mut records = Vec::new();
    let mut torn = None;
    let last = lines.len().saturating_sub(1);
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parsed = Json::parse(line)
            .map_err(|e| io_err("parse quarantine line", e))
            .and_then(|json| {
                QuarantineRecord::from_json(&json).map_err(|e| io_err("decode quarantine line", e))
            });
        match parsed {
            Ok(record) => records.push(record),
            // Only the final line can be a crash-torn tail; anything
            // earlier is real corruption and must surface.
            Err(_) if i == last && !text.ends_with('\n') => {
                torn = Some((*line).to_string());
            }
            Err(e) => return Err(e),
        }
    }
    Ok((records, torn))
}

/// Histogram of quarantine records by failure kind, in [`FailureKind::ALL`]
/// order (deterministic).
pub fn failure_histogram(records: &[QuarantineRecord]) -> BTreeMap<FailureKind, usize> {
    let mut hist = BTreeMap::new();
    for r in records {
        *hist.entry(r.kind).or_insert(0) += 1;
    }
    hist
}

// ---- checkpoint ------------------------------------------------------------

/// Checkpoint layout (version 1): log offset reached, sidecar line counts
/// (for truncation on resume), and the running deterministic stats.
#[derive(Debug, Clone)]
struct Checkpoint {
    offset: usize,
    areas_written: usize,
    quarantined: usize,
    stats: PipelineStats,
}

impl ToJson for Checkpoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("version".to_string(), 1u32.to_json()),
            ("offset".to_string(), self.offset.to_json()),
            ("areas_written".to_string(), self.areas_written.to_json()),
            ("quarantined".to_string(), self.quarantined.to_json()),
            ("stats".to_string(), self.stats.to_json()),
        ])
    }
}

impl FromJson for Checkpoint {
    fn from_json(json: &Json) -> Result<Self, aa_util::JsonError> {
        let field = |k: &str| {
            json.get(k)
                .ok_or_else(|| aa_util::JsonError(format!("checkpoint: missing '{k}'")))
        };
        let version = f64::from_json(field("version")?)? as u32;
        if version != 1 {
            return Err(aa_util::JsonError(format!(
                "unsupported checkpoint version {version}"
            )));
        }
        Ok(Checkpoint {
            offset: f64::from_json(field("offset")?)? as usize,
            areas_written: f64::from_json(field("areas_written")?)? as usize,
            quarantined: f64::from_json(field("quarantined")?)? as usize,
            stats: PipelineStats::from_json(field("stats")?)?,
        })
    }
}

/// Path of the extracted-areas sidecar belonging to a checkpoint file.
pub fn areas_sidecar(checkpoint: &Path) -> PathBuf {
    let mut os = checkpoint.as_os_str().to_owned();
    os.push(".areas.jsonl");
    PathBuf::from(os)
}

fn write_atomic(path: &Path, content: &str) -> Result<(), RunnerError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, content)
        .map_err(|e| io_err(&format!("write {}", tmp.display()), e))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| io_err(&format!("rename {} -> {}", tmp.display(), path.display()), e))
}

/// Appends lines to a sidecar file (created if absent).
fn append_lines(path: &Path, lines: &[String]) -> Result<(), RunnerError> {
    if lines.is_empty() {
        return Ok(());
    }
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| io_err(&format!("open {}", path.display()), e))?;
    let mut buf = String::new();
    for line in lines {
        buf.push_str(line);
        buf.push('\n');
    }
    f.write_all(buf.as_bytes())
        .map_err(|e| io_err(&format!("append {}", path.display()), e))
}

/// Truncates a JSONL sidecar to its first `keep` lines (missing file with
/// `keep == 0` is fine). Used on resume to drop lines written after the
/// last durable checkpoint — including a torn trailing line left by a
/// crash mid-append, which may be cut inside a multi-byte character (the
/// bytes are read lossily; only lines *before* the checkpointed count are
/// kept, and those were durable and complete when the checkpoint landed).
fn truncate_lines(path: &Path, keep: usize) -> Result<(), RunnerError> {
    let text = match std::fs::read(path) {
        Ok(bytes) => String::from_utf8_lossy(&bytes).into_owned(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound && keep == 0 => return Ok(()),
        Err(e) => return Err(io_err(&format!("read {}", path.display()), e)),
    };
    let kept: Vec<&str> = text.lines().take(keep).collect();
    if kept.len() < keep {
        return Err(RunnerError(format!(
            "{} has {} lines, checkpoint expects at least {keep}",
            path.display(),
            kept.len()
        )));
    }
    let mut out = kept.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    write_atomic(path, &out)
}

// ---- per-query guard (budget + deadline + fault injection) -----------------

struct QueryGuard {
    fuel_left: Option<u64>,
    started: Instant,
    deadline: Option<Duration>,
    fault: Option<FaultKind>,
    fired: bool,
}

impl QueryGuard {
    fn new(config: &RunnerConfig, fault: Option<FaultKind>) -> QueryGuard {
        QueryGuard {
            fuel_left: config.fuel,
            started: Instant::now(),
            deadline: config.deadline,
            fault,
            fired: false,
        }
    }
}

impl StageHooks for QueryGuard {
    fn before_stage(&mut self, stage: Stage) -> Result<(), StageFault> {
        match self.fault {
            Some(FaultKind::BudgetExhaust) if stage == Stage::Parse => {
                self.fired = true;
                Err(StageFault::Budget(
                    "injected fault: budget exhausted".to_string(),
                ))
            }
            Some(FaultKind::Panic(s)) if s == stage => {
                self.fired = true;
                panic!("injected fault: panic at {stage} stage");
            }
            Some(FaultKind::SyntheticError(s)) if s == stage => {
                self.fired = true;
                Err(StageFault::Error(format!(
                    "injected fault: synthetic error at {stage} stage"
                )))
            }
            _ => Ok(()),
        }
    }

    fn after_stage(&mut self, stage: Stage, cost: u64) -> Result<(), StageFault> {
        if let Some(fuel) = &mut self.fuel_left {
            if *fuel < cost {
                *fuel = 0;
                return Err(StageFault::Budget(format!(
                    "fuel budget exhausted after {stage} stage (cost {cost})"
                )));
            }
            *fuel -= cost;
        }
        if let Some(deadline) = self.deadline {
            if self.started.elapsed() > deadline {
                return Err(StageFault::Budget(format!(
                    "deadline of {deadline:?} exceeded after {stage} stage"
                )));
            }
        }
        Ok(())
    }
}

// ---- panic quieting --------------------------------------------------------

thread_local! {
    static SUPPRESS_PANIC_OUTPUT: Cell<bool> = const { Cell::new(false) };
}

static QUIET_HOOK: Once = Once::new();

/// Installs (once, process-wide) a panic hook that stays silent while the
/// current thread is inside the runner's `catch_unwind` region, and
/// delegates to the previous hook everywhere else. Without this, a chaos
/// run over thousands of injected panics floods stderr with backtraces
/// for failures that are fully contained.
fn install_quiet_panic_hook() {
    QUIET_HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_OUTPUT.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

struct QuietGuard;

impl QuietGuard {
    fn new() -> QuietGuard {
        SUPPRESS_PANIC_OUTPUT.with(|s| s.set(true));
        QuietGuard
    }
}

impl Drop for QuietGuard {
    fn drop(&mut self) {
        SUPPRESS_PANIC_OUTPUT.with(|s| s.set(false));
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Runs `f` under `catch_unwind` with panic output suppressed, returning
/// the panic message on unwind. This is the runner's own containment
/// primitive, exported so other fault domains (the serving layer's
/// request boundary) share one panic-quieting hook instead of stacking
/// competing ones.
///
/// The closure is wrapped in `AssertUnwindSafe`: callers are asserting
/// that whatever `f` touches is either owned by `f` or safe to observe
/// after an abandoned mutation (the serving layer guards shared state
/// with mutexes whose poisoning is handled at the lock site).
pub fn catch_quietly<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    install_quiet_panic_hook();
    let quiet = QuietGuard::new();
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    drop(quiet);
    result.map_err(panic_message)
}

// ---- the runner ------------------------------------------------------------

/// The fault-tolerant log runner. See the module docs for the contract.
pub struct LogRunner<'a> {
    pipeline: &'a Pipeline<'a>,
    config: RunnerConfig,
}

impl<'a> LogRunner<'a> {
    pub fn new(pipeline: &'a Pipeline<'a>, config: RunnerConfig) -> LogRunner<'a> {
        LogRunner { pipeline, config }
    }

    /// Config accessor (e.g. for reporting the effective chunk size).
    pub fn config(&self) -> &RunnerConfig {
        &self.config
    }

    /// Processes `log`, chunk by chunk, with every configured hardening
    /// layer. Only infrastructure problems (I/O, corrupt checkpoint)
    /// return `Err`; query failures of any kind are data in the report.
    pub fn run<S: AsRef<str>>(&self, log: &[S]) -> Result<RunReport, RunnerError> {
        let chunk_size = self.config.chunk_size.max(1);
        let mut stats = PipelineStats::default();
        let mut offset = 0usize;
        let mut areas_written = 0usize;
        let mut quarantined = 0usize;

        // Resume or start fresh, reconciling sidecars with the checkpoint.
        if let Some(ckpt_path) = &self.config.checkpoint {
            let areas_path = areas_sidecar(ckpt_path);
            let existing = self.config.resume && ckpt_path.exists();
            if existing {
                let text = std::fs::read_to_string(ckpt_path)
                    .map_err(|e| io_err(&format!("read checkpoint {}", ckpt_path.display()), e))?;
                let json = Json::parse(&text).map_err(|e| io_err("parse checkpoint", e))?;
                let ckpt =
                    Checkpoint::from_json(&json).map_err(|e| io_err("decode checkpoint", e))?;
                offset = ckpt.offset;
                areas_written = ckpt.areas_written;
                quarantined = ckpt.quarantined;
                stats = ckpt.stats;
                if offset > log.len() {
                    return Err(RunnerError(format!(
                        "checkpoint offset {offset} beyond log length {}",
                        log.len()
                    )));
                }
                // Drop sidecar lines written after the durable checkpoint.
                truncate_lines(&areas_path, areas_written)?;
                if let Some(qpath) = &self.config.quarantine {
                    truncate_lines(qpath, quarantined)?;
                }
            } else {
                // Fresh run: clean slate for the sidecars.
                truncate_lines(&areas_path, 0)?;
                if let Some(qpath) = &self.config.quarantine {
                    truncate_lines(qpath, 0)?;
                }
            }
        } else if let Some(qpath) = &self.config.quarantine {
            if !self.config.resume {
                truncate_lines(qpath, 0)?;
            }
        }

        if self.config.isolate_panics {
            install_quiet_panic_hook();
        }

        let start_offset = offset;
        let wall_start = Instant::now();
        let mut extracted = Vec::new();
        let mut failed = Vec::new();
        let mut faults_fired = 0usize;
        let mut chunks_done = 0usize;

        while offset < log.len() {
            if let Some(max) = self.config.max_chunks {
                if chunks_done >= max {
                    break;
                }
            }
            let end = (offset + chunk_size).min(log.len());
            let mut area_lines: Vec<String> = Vec::new();
            let mut quarantine_lines: Vec<String> = Vec::new();

            for (i, entry) in log.iter().enumerate().take(end).skip(offset) {
                let sql = entry.as_ref();
                let (outcome, fired) = self.process_one(i, sql);
                faults_fired += fired as usize;
                stats.absorb(&outcome);
                match outcome {
                    Ok(q) => {
                        if self.config.checkpoint.is_some() {
                            area_lines.push(area_line(&q));
                        }
                        extracted.push(q);
                    }
                    Err(f) => {
                        if self.config.quarantine.is_some() {
                            quarantine_lines.push(
                                QuarantineRecord::from_failure(&f, sql)
                                    .to_json()
                                    .to_string_compact(),
                            );
                        }
                        failed.push(f);
                    }
                }
            }

            // Durability order: sidecars first, checkpoint last. A crash
            // between the two leaves extra sidecar lines that the next
            // resume truncates away — never a checkpoint pointing at
            // missing data.
            if let Some(ckpt_path) = &self.config.checkpoint {
                append_lines(&areas_sidecar(ckpt_path), &area_lines)?;
                areas_written += area_lines.len();
            }
            if let Some(qpath) = &self.config.quarantine {
                append_lines(qpath, &quarantine_lines)?;
                quarantined += quarantine_lines.len();
            }
            offset = end;
            stats.wall += wall_start.elapsed().saturating_sub(stats.wall);
            if let Some(ckpt_path) = &self.config.checkpoint {
                let ckpt = Checkpoint {
                    offset,
                    areas_written,
                    quarantined,
                    stats: stats.clone(),
                };
                write_atomic(ckpt_path, &ckpt.to_json().to_string_pretty())?;
            }
            chunks_done += 1;
        }

        stats.wall = wall_start.elapsed();
        Ok(RunReport {
            extracted,
            failed,
            stats,
            start_offset,
            end_offset: offset,
            faults_fired,
        })
    }

    /// Processes one entry under the guard; returns the outcome and
    /// whether an injected fault fired.
    fn process_one(&self, i: usize, sql: &str) -> (Result<ExtractedQuery, FailedQuery>, bool) {
        let fault = self.config.fault_plan.as_ref().and_then(|p| p.get(i));
        let mut guard = QueryGuard::new(&self.config, fault);
        if self.config.isolate_panics {
            let caught = catch_quietly(|| self.pipeline.process_hooked(i, sql, &mut guard));
            let outcome = match caught {
                Ok(result) => result,
                Err(message) => Err(FailedQuery {
                    log_index: i,
                    kind: FailureKind::Internal,
                    message: format!("panic: {message}"),
                    span: None,
                    diagnostics: Vec::new(),
                }),
            };
            (outcome, guard.fired)
        } else {
            let outcome = self.pipeline.process_hooked(i, sql, &mut guard);
            (outcome, guard.fired)
        }
    }
}

/// One line of the extracted-areas sidecar: a deterministic JSON record
/// of everything the downstream analysis consumes (log position, the
/// area, and the dialect flag). Timings are deliberately excluded — they
/// differ run to run and would break resume-equality.
fn area_line(q: &ExtractedQuery) -> String {
    Json::obj([
        ("log_index".to_string(), q.log_index.to_json()),
        ("mysql_dialect".to_string(), q.mysql_dialect.to_json()),
        ("area".to_string(), q.area.to_json()),
    ])
    .to_string_compact()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::NoSchema;

    fn pipeline_fixture(provider: &NoSchema) -> Pipeline<'_> {
        Pipeline::new(provider)
    }

    const LOG: [&str; 5] = [
        "SELECT * FROM SpecObjAll WHERE plate BETWEEN 296 AND 3200",
        "SELEC * FORM T",
        "SELECT * FROM PhotoObjAll WHERE ra > 180 AND ra < 200 AND dec > 0",
        "SELECT objid FROM Galaxies LIMIT 10",
        "SELECT * FROM T WHERE u >= 1 AND u <= 8 OR s > 5",
    ];

    #[test]
    fn default_runner_matches_process_log() {
        let provider = NoSchema;
        let pipeline = pipeline_fixture(&provider);
        let (pe, pf, ps) = pipeline.process_log(LOG);
        let runner = LogRunner::new(&pipeline, RunnerConfig::new());
        let report = runner.run(&LOG).unwrap();
        assert_eq!(report.extracted.len(), pe.len());
        assert_eq!(report.failed.len(), pf.len());
        assert_eq!(report.stats.to_json(), ps.to_json());
        assert_eq!(report.end_offset, LOG.len());
        assert_eq!(report.faults_fired, 0);
    }

    #[test]
    fn injected_panic_is_isolated_and_recorded() {
        let provider = NoSchema;
        let pipeline = pipeline_fixture(&provider);
        let mut plan = FaultPlan::default();
        plan.insert(0, FaultKind::Panic(Stage::Cnf));
        let config = RunnerConfig {
            fault_plan: Some(plan),
            ..RunnerConfig::new()
        };
        let report = LogRunner::new(&pipeline, config).run(&LOG).unwrap();
        assert_eq!(report.stats.internal_errors, 1);
        assert_eq!(report.faults_fired, 1);
        let f = report.failed.iter().find(|f| f.log_index == 0).unwrap();
        assert_eq!(f.kind, FailureKind::Internal);
        assert!(f.message.contains("injected fault: panic at cnf"), "{}", f.message);
        // The rest of the log still processed.
        assert_eq!(report.stats.total, LOG.len());
    }

    #[test]
    fn synthetic_error_and_budget_exhaust_fire_with_correct_kinds() {
        let provider = NoSchema;
        let pipeline = pipeline_fixture(&provider);
        let mut plan = FaultPlan::default();
        plan.insert(2, FaultKind::SyntheticError(Stage::Lower));
        plan.insert(4, FaultKind::BudgetExhaust);
        let config = RunnerConfig {
            fault_plan: Some(plan),
            ..RunnerConfig::new()
        };
        let report = LogRunner::new(&pipeline, config).run(&LOG).unwrap();
        assert_eq!(report.stats.internal_errors, 1);
        assert_eq!(report.stats.budget_exceeded, 1);
        assert_eq!(report.faults_fired, 2);
        assert_eq!(
            report.failed.iter().find(|f| f.log_index == 2).unwrap().kind,
            FailureKind::Internal
        );
        assert_eq!(
            report.failed.iter().find(|f| f.log_index == 4).unwrap().kind,
            FailureKind::BudgetExceeded
        );
    }

    #[test]
    fn tiny_fuel_budget_rejects_everything_deterministically() {
        let provider = NoSchema;
        let pipeline = pipeline_fixture(&provider);
        let config = RunnerConfig {
            fuel: Some(3), // parse alone costs 1 + sql.len()
            ..RunnerConfig::new()
        };
        let a = LogRunner::new(&pipeline, config.clone()).run(&LOG).unwrap();
        let b = LogRunner::new(&pipeline, config).run(&LOG).unwrap();
        // The syntax-error entry fails at parse *before* the budget check;
        // everything else runs out of fuel. Either way, fully accounted.
        assert_eq!(a.stats.extracted, 0);
        assert_eq!(a.stats.total, a.stats.failure_total());
        assert_eq!(a.stats.to_json(), b.stats.to_json());
        assert!(a.stats.budget_exceeded >= 4, "{}", a.stats.budget_exceeded);
    }

    #[test]
    fn generous_fuel_budget_changes_nothing() {
        let provider = NoSchema;
        let pipeline = pipeline_fixture(&provider);
        let clean = LogRunner::new(&pipeline, RunnerConfig::new()).run(&LOG).unwrap();
        let config = RunnerConfig {
            fuel: Some(1_000_000),
            ..RunnerConfig::new()
        };
        let budgeted = LogRunner::new(&pipeline, config).run(&LOG).unwrap();
        assert_eq!(clean.stats.to_json(), budgeted.stats.to_json());
        for (a, b) in clean.extracted.iter().zip(&budgeted.extracted) {
            assert_eq!(area_line(a), area_line(b));
        }
    }

    #[test]
    fn fault_plan_is_deterministic_in_its_seed() {
        let a = FaultPlan::seeded(7, 10_000, 0.03);
        let b = FaultPlan::seeded(7, 10_000, 0.03);
        let c = FaultPlan::seeded(8, 10_000, 0.03);
        assert!(!a.is_empty());
        assert_eq!(
            a.iter().collect::<Vec<_>>(),
            b.iter().collect::<Vec<_>>()
        );
        assert_ne!(
            a.iter().collect::<Vec<_>>(),
            c.iter().collect::<Vec<_>>()
        );
        // Rate is roughly honoured.
        assert!(a.len() > 150 && a.len() < 450, "{}", a.len());
    }

    #[test]
    fn quarantine_records_round_trip_through_json() {
        for record in [
            QuarantineRecord {
                log_index: 7,
                kind: FailureKind::Internal,
                message: "panic: injected".to_string(),
                span: None,
                sql: "SELECT * FROM T".to_string(),
            },
            QuarantineRecord {
                log_index: 0,
                kind: FailureKind::SyntaxError,
                message: "syntax error: bad \"quote\"".to_string(),
                span: Some((3, 9)),
                sql: "SELEC * FORM T".to_string(),
            },
        ] {
            let line = record.to_json().to_string_compact();
            let back = QuarantineRecord::from_json(&Json::parse(&line).unwrap()).unwrap();
            assert_eq!(back, record, "{line}");
        }
    }

    #[test]
    fn checkpoint_round_trips_and_sidecar_path_is_stable() {
        let mut stats = PipelineStats {
            total: 10,
            extracted: 8,
            syntax_errors: 1,
            internal_errors: 1,
            ..PipelineStats::default()
        };
        stats.diagnostic_counts.insert("W002".to_string(), 3);
        let ckpt = Checkpoint {
            offset: 10,
            areas_written: 8,
            quarantined: 2,
            stats,
        };
        let text = ckpt.to_json().to_string_pretty();
        let back = Checkpoint::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.offset, 10);
        assert_eq!(back.stats.to_json(), ckpt.stats.to_json());
        assert_eq!(
            areas_sidecar(Path::new("/tmp/run.ckpt.json")),
            PathBuf::from("/tmp/run.ckpt.json.areas.jsonl")
        );
    }

    #[test]
    fn failure_kind_tags_round_trip() {
        for kind in FailureKind::ALL {
            assert_eq!(FailureKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(FailureKind::parse("nonsense"), None);
    }
}

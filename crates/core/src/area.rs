//! The access area of a query (Definition 4) in intermediate format
//! (Section 2.4): a universal relation `U = R₁ × … × R_N` plus a CNF
//! constraint `F(p₁, …, p_K)`.

use crate::cnf::Cnf;
use crate::predicate::{Constant, QualifiedColumn};
use std::collections::BTreeMap;
use std::fmt;

/// An extracted access area.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessArea {
    /// Relations of the universal relation, keyed by lower-cased name
    /// (alphabetical, as the paper's cleanup step orders them), mapped to a
    /// display spelling.
    tables: BTreeMap<String, String>,
    /// The constraint on `U`, in conjunctive normal form.
    pub constraint: Cnf,
    /// False when any transformation had to approximate (CNF truncation,
    /// unsupported predicate mapped to TRUE, ...). Approximations are
    /// always over-approximations: the reported area contains the true one.
    pub exact: bool,
    /// True when the lemma case-analysis proved the access area empty
    /// (e.g. `HAVING SUM(v) > c` with `sup(dom(v)) ≤ 0 ∧ c > sup`).
    pub provably_empty: bool,
}

impl AccessArea {
    /// Creates an area over the given relations with no constraint.
    pub fn new(tables: impl IntoIterator<Item = String>) -> Self {
        let mut map = BTreeMap::new();
        for t in tables {
            map.entry(t.to_lowercase()).or_insert(t);
        }
        AccessArea {
            tables: map,
            constraint: Cnf::top(),
            exact: true,
            provably_empty: false,
        }
    }

    /// Adds a relation to the universal relation.
    pub fn add_table(&mut self, name: &str) {
        self.tables
            .entry(name.to_lowercase())
            .or_insert_with(|| name.to_string());
    }

    /// True when `name` is part of the universal relation.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_lowercase())
    }

    /// Lower-cased table names, alphabetically ordered.
    pub fn table_keys(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Display spellings, alphabetically ordered by key.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.values().map(String::as_str)
    }

    /// Number of relations in the universal relation.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Membership test: does the universal-relation tuple described by
    /// `lookup` fall inside this access area? Returns `None` when a needed
    /// column value is unavailable.
    pub fn contains(
        &self,
        lookup: &dyn Fn(&QualifiedColumn) -> Option<Constant>,
    ) -> Option<bool> {
        if self.provably_empty {
            return Some(false);
        }
        self.constraint.evaluate(lookup)
    }

    /// Renders the intermediate-format query `q̄` of Section 2.4:
    /// `SELECT * FROM R₁, …, R_N WHERE F(p₁, …, p_K)`.
    pub fn to_intermediate_sql(&self) -> String {
        let mut sql = String::from("SELECT *");
        if !self.tables.is_empty() {
            sql.push_str(" FROM ");
            let names: Vec<&str> = self.table_names().collect();
            sql.push_str(&names.join(", "));
        }
        if self.provably_empty {
            sql.push_str(" WHERE FALSE");
        } else if !self.constraint.is_empty() {
            sql.push_str(" WHERE ");
            sql.push_str(&self.constraint.to_string());
        }
        sql
    }

    /// Per-column conjunctive intervals: for every column constrained by
    /// *singleton* numeric clauses (i.e. conjunctively), the intersection
    /// of those atoms' satisfying intervals. This is the per-query box the
    /// aggregation step (Section 6.2) builds cluster MBRs from.
    pub fn conjunctive_intervals(
        &self,
    ) -> std::collections::BTreeMap<QualifiedColumn, crate::interval::Interval> {
        let mut out: std::collections::BTreeMap<QualifiedColumn, crate::interval::Interval> =
            std::collections::BTreeMap::new();
        for clause in &self.constraint.clauses {
            if clause.len() != 1 {
                continue;
            }
            if let Some((col, iv)) = clause.atoms[0].satisfying_interval() {
                // Skip the vacuous full-line interval of `<>` atoms.
                if iv.is_all() {
                    continue;
                }
                out.entry(col)
                    .and_modify(|e| *e = e.intersect(&iv))
                    .or_insert(iv);
            }
        }
        out
    }

    /// Per-column categorical value sets implied conjunctively: a clause
    /// whose atoms are all `col = 'v'` on one column contributes its value
    /// set (singleton `=` atoms and IN-list expansions alike).
    pub fn categorical_values(
        &self,
    ) -> std::collections::BTreeMap<QualifiedColumn, std::collections::BTreeSet<String>> {
        use crate::predicate::{AtomicPredicate, CmpOp, Constant};
        let mut out: std::collections::BTreeMap<
            QualifiedColumn,
            std::collections::BTreeSet<String>,
        > = std::collections::BTreeMap::new();
        for clause in &self.constraint.clauses {
            let mut col: Option<QualifiedColumn> = None;
            let mut values = std::collections::BTreeSet::new();
            let mut uniform = !clause.atoms.is_empty();
            for atom in &clause.atoms {
                match atom {
                    AtomicPredicate::ColumnConstant {
                        column,
                        op: CmpOp::Eq,
                        value: Constant::Str(s),
                    } => {
                        if col.get_or_insert_with(|| column.clone()) != column {
                            uniform = false;
                            break;
                        }
                        values.insert(s.to_lowercase());
                    }
                    _ => {
                        uniform = false;
                        break;
                    }
                }
            }
            if uniform {
                if let Some(c) = col {
                    out.entry(c).or_default().extend(values);
                }
            }
        }
        out
    }

    /// The column-column (join) atoms appearing as singleton clauses.
    pub fn join_atoms(&self) -> Vec<&crate::predicate::AtomicPredicate> {
        self.constraint
            .clauses
            .iter()
            .filter(|c| c.len() == 1)
            .map(|c| &c.atoms[0])
            .filter(|a| matches!(a, crate::predicate::AtomicPredicate::ColumnColumn { .. }))
            .collect()
    }

    /// All column-constant predicate columns mentioned in the constraint.
    pub fn constrained_columns(&self) -> Vec<QualifiedColumn> {
        let mut cols: Vec<QualifiedColumn> = self
            .constraint
            .atoms()
            .flat_map(|a| a.columns().into_iter().cloned())
            .collect();
        cols.sort();
        cols.dedup();
        cols
    }
}

impl fmt::Display for AccessArea {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_intermediate_sql())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Disjunction;
    use crate::predicate::{AtomicPredicate, CmpOp};

    #[test]
    fn tables_are_alphabetical_and_case_folded() {
        let mut area = AccessArea::new(vec!["SpecObjAll".to_string(), "Photoz".to_string()]);
        area.add_table("photoz"); // duplicate under case folding
        let names: Vec<&str> = area.table_names().collect();
        assert_eq!(names, vec!["Photoz", "SpecObjAll"]);
        assert_eq!(area.table_count(), 2);
        assert!(area.has_table("SPECOBJALL"));
    }

    #[test]
    fn intermediate_sql_rendering() {
        let mut area = AccessArea::new(vec!["T".to_string()]);
        area.constraint = Cnf::new(vec![
            Disjunction::new(vec![
                AtomicPredicate::cc(
                    QualifiedColumn::new("T", "u"),
                    CmpOp::LtEq,
                    Constant::Num(5.0),
                ),
                AtomicPredicate::cc(
                    QualifiedColumn::new("T", "u"),
                    CmpOp::GtEq,
                    Constant::Num(10.0),
                ),
            ]),
            Disjunction::singleton(AtomicPredicate::cc(
                QualifiedColumn::new("T", "v"),
                CmpOp::LtEq,
                Constant::Num(5.0),
            )),
        ]);
        assert_eq!(
            area.to_intermediate_sql(),
            "SELECT * FROM T WHERE (T.u <= 5 OR T.u >= 10) AND T.v <= 5"
        );
    }

    #[test]
    fn provably_empty_renders_false_and_contains_nothing() {
        let mut area = AccessArea::new(vec!["T".to_string()]);
        area.provably_empty = true;
        assert!(area.to_intermediate_sql().ends_with("WHERE FALSE"));
        assert_eq!(area.contains(&|_| Some(Constant::Num(0.0))), Some(false));
    }

    #[test]
    fn unconstrained_area_contains_everything() {
        let area = AccessArea::new(vec!["T".to_string()]);
        assert_eq!(area.contains(&|_| None), Some(true));
        assert_eq!(area.to_intermediate_sql(), "SELECT * FROM T");
    }
}

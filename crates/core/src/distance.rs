//! The query distance function (Section 5):
//! `d(q₁,q₂) = d_tables(q₁.FROM, q₂.FROM) + d_conj(q₁.WHERE, q₂.WHERE)`.
//!
//! ## The `d_pred` ambiguity, and why two modes exist
//!
//! Section 5.2 defines the same-column predicate distance as the
//! *normalized overlap* `|i₁ ∩ i₂| / |access(a)|` (worked example: `a < 3`
//! vs `a > 2` on `access = [0,5]` gives 0.2). Read literally, two
//! *identical* predicates are then far apart (large overlap = large
//! distance) and two *disjoint* predicates are at distance 0 — the exact
//! opposite of the stated goal ("overlap as our main objective of
//! similarity") and unable to produce Table 1's range-query clusters.
//!
//! [`DistanceMode::PaperLiteral`] implements the formulas exactly as
//! printed, for the ablation experiment. The default
//! [`DistanceMode::Dissimilarity`] uses the natural reading that is
//! consistent with every cluster in Table 1:
//!
//! ```text
//! d_pred(p₁,p₂) = (|hull(i₁,i₂)| − |i₁ ∩ i₂|) / |access(a)|
//! ```
//!
//! which equals `1 − (normalized overlap)` whenever the two intervals
//! jointly span `access(a)` — exactly the paper's worked example
//! (`1 − 0.2 = 0.8`) — and degrades gracefully for point predicates:
//! `objid = c₁` vs `objid = c₂` are at distance `|c₁−c₂| / |access|`,
//! which is what lets DBSCAN chain the id-lookup queries of Clusters 1–4
//! into contiguous ranges while OLAPClus (exact matching) shatters them
//! into ~100,000 singleton clusters (Section 6.4).

use crate::area::AccessArea;
use crate::cnf::{Cnf, Disjunction};
use crate::interval::Interval;
use crate::predicate::{AtomicPredicate, CmpOp, Constant};
use crate::ranges::AccessRanges;
use std::collections::BTreeSet;

/// Which reading of Section 5.2 to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DistanceMode {
    /// The formulas exactly as printed in the paper (ablation only).
    PaperLiteral,
    /// The overlap-based *dissimilarity* consistent with Table 1 (default).
    #[default]
    Dissimilarity,
}

impl DistanceMode {
    /// Stable spelling used by CLIs and serialised models.
    pub fn as_str(&self) -> &'static str {
        match self {
            DistanceMode::PaperLiteral => "literal",
            DistanceMode::Dissimilarity => "dissim",
        }
    }

    /// Parses the spellings accepted by `as_str` and the CLIs.
    pub fn parse(s: &str) -> Option<DistanceMode> {
        match s {
            "literal" => Some(DistanceMode::PaperLiteral),
            "dissim" | "dissimilarity" => Some(DistanceMode::Dissimilarity),
            _ => None,
        }
    }
}

/// The distance function, bound to the `access(a)` tracker it normalises
/// against.
pub struct QueryDistance<'a> {
    ranges: &'a AccessRanges,
    mode: DistanceMode,
}

impl<'a> QueryDistance<'a> {
    pub fn new(ranges: &'a AccessRanges) -> Self {
        QueryDistance {
            ranges,
            mode: DistanceMode::default(),
        }
    }

    pub fn with_mode(ranges: &'a AccessRanges, mode: DistanceMode) -> Self {
        QueryDistance { ranges, mode }
    }

    /// `d(q₁, q₂) = d_tables + d_conj` (Equation 1).
    pub fn distance(&self, a: &AccessArea, b: &AccessArea) -> f64 {
        self.d_tables(a, b) + self.d_conj(&a.constraint, &b.constraint)
    }

    /// Jaccard distance between the table sets (Section 5.1).
    pub fn d_tables(&self, a: &AccessArea, b: &AccessArea) -> f64 {
        let sa: BTreeSet<&str> = a.table_keys().collect();
        let sb: BTreeSet<&str> = b.table_keys().collect();
        if sa.is_empty() && sb.is_empty() {
            // Corner case the paper defines: queries over constants only.
            return 0.0;
        }
        let inter = sa.intersection(&sb).count() as f64;
        let union = sa.union(&sb).count() as f64;
        1.0 - inter / union
    }

    /// Distance of two CNF constraints (Section 5.2).
    pub fn d_conj(&self, b1: &Cnf, b2: &Cnf) -> f64 {
        match (b1.is_empty(), b2.is_empty()) {
            (true, true) => return 0.0,
            // One side unconstrained: maximal clause mismatch.
            (true, false) | (false, true) => return 1.0,
            _ => {}
        }
        // Each pairwise clause distance is computed once; `sum1` takes row
        // minima as rows stream, `sum2` comes from the running column
        // minima. The accumulation order matches the former double scan
        // exactly, so the result is bit-identical.
        let mut col_min = vec![f64::INFINITY; b2.len()];
        let mut sum1 = 0.0;
        for o1 in &b1.clauses {
            let mut row_min = f64::INFINITY;
            for (j, o2) in b2.clauses.iter().enumerate() {
                let d = self.d_disj(o1, o2);
                row_min = row_min.min(d);
                col_min[j] = col_min[j].min(d);
            }
            sum1 += row_min;
        }
        let mut sum2 = 0.0;
        for m in &col_min {
            sum2 += *m;
        }
        (sum1 + sum2) / (b1.len() + b2.len()) as f64
    }

    /// Distance of two disjunctions.
    pub fn d_disj(&self, o1: &Disjunction, o2: &Disjunction) -> f64 {
        match (o1.is_empty(), o2.is_empty()) {
            (true, true) => return 0.0,
            (true, false) | (false, true) => return 1.0,
            _ => {}
        }
        let sum1: f64 = o1
            .atoms
            .iter()
            .map(|p1| {
                o2.atoms
                    .iter()
                    .map(|p2| self.d_pred(p1, p2))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum();
        let sum2: f64 = o2
            .atoms
            .iter()
            .map(|p2| {
                o1.atoms
                    .iter()
                    .map(|p1| self.d_pred(p1, p2))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum();
        (sum1 + sum2) / (o1.len() + o2.len()) as f64
    }

    /// Distance of two atomic predicates.
    pub fn d_pred(&self, p1: &AtomicPredicate, p2: &AtomicPredicate) -> f64 {
        use AtomicPredicate::*;
        match (p1, p2) {
            // Join predicates compare structurally (orientation-agnostic).
            (
                ColumnColumn {
                    left: l1,
                    op: op1,
                    right: r1,
                },
                ColumnColumn {
                    left: l2,
                    op: op2,
                    right: r2,
                },
            ) => {
                let same = (l1 == l2 && r1 == r2 && op1 == op2)
                    || (l1 == r2 && r1 == l2 && *op1 == op2.flip());
                match self.mode {
                    DistanceMode::Dissimilarity => {
                        if same {
                            0.0
                        } else {
                            1.0
                        }
                    }
                    // Literal mode: "overlap" of identical joins is total.
                    DistanceMode::PaperLiteral => {
                        if same {
                            1.0
                        } else {
                            0.0
                        }
                    }
                }
            }
            (
                ColumnConstant {
                    column: c1,
                    op: op1,
                    value: v1,
                },
                ColumnConstant {
                    column: c2,
                    op: op2,
                    value: v2,
                },
            ) => {
                if c1 == c2 {
                    self.d_pred_same_column(p1, p2, c1, op1, v1, op2, v2)
                } else {
                    self.d_pred_cross_column(p1, p2)
                }
            }
            // A join predicate against a column-constant predicate: no
            // meaningful overlap.
            _ => match self.mode {
                DistanceMode::Dissimilarity => 1.0,
                DistanceMode::PaperLiteral => 0.0,
            },
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn d_pred_same_column(
        &self,
        p1: &AtomicPredicate,
        p2: &AtomicPredicate,
        col: &crate::predicate::QualifiedColumn,
        op1: &CmpOp,
        v1: &Constant,
        op2: &CmpOp,
        v2: &Constant,
    ) -> f64 {
        match (v1, v2) {
            (Constant::Num(_), Constant::Num(_)) => {
                let i1 = p1.interval().expect("numeric cc");
                let i2 = p2.interval().expect("numeric cc");
                // access(a), widened to include both predicates so clipping
                // never empties them (the pipeline's observe pass normally
                // guarantees this already).
                let mut access = self
                    .ranges
                    .numeric(col)
                    .unwrap_or_else(|| Interval::closed(0.0, 0.0));
                for c in [v1.as_num(), v2.as_num()].into_iter().flatten() {
                    access = access.hull(&Interval::point(c));
                }
                let a1 = i1.intersect(&access);
                let a2 = i2.intersect(&access);
                let width = access.width();
                if width == 0.0 {
                    // Degenerate access range: compare structurally.
                    return match self.mode {
                        DistanceMode::Dissimilarity => {
                            if op1 == op2 && v1 == v2 {
                                0.0
                            } else {
                                1.0
                            }
                        }
                        DistanceMode::PaperLiteral => {
                            if op1 == op2 && v1 == v2 {
                                1.0
                            } else {
                                0.0
                            }
                        }
                    };
                }
                let overlap = a1.overlap_width(&a2);
                match self.mode {
                    DistanceMode::PaperLiteral => overlap / width,
                    DistanceMode::Dissimilarity => {
                        let hull = a1.hull(&a2).width();
                        ((hull - overlap) / width).clamp(0.0, 1.0)
                    }
                }
            }
            (Constant::Str(_), Constant::Str(_)) => {
                // Value sets over the categorical access set.
                let access = self
                    .ranges
                    .categorical(col)
                    .cloned()
                    .unwrap_or_default();
                let set_of = |op: &CmpOp, v: &Constant| -> BTreeSet<String> {
                    let Constant::Str(s) = v else {
                        return BTreeSet::new();
                    };
                    let s = s.to_lowercase();
                    match op {
                        CmpOp::Eq => std::iter::once(s).collect(),
                        CmpOp::Neq => access.iter().filter(|x| **x != s).cloned().collect(),
                        // Ordered string comparisons are rare; approximate
                        // with the singleton.
                        _ => std::iter::once(s).collect(),
                    }
                };
                let s1 = set_of(op1, v1);
                let s2 = set_of(op2, v2);
                let common = s1.intersection(&s2).count() as f64;
                match self.mode {
                    DistanceMode::PaperLiteral => {
                        let denom = access.len().max(1) as f64;
                        common / denom
                    }
                    DistanceMode::Dissimilarity => {
                        let union = s1.union(&s2).count() as f64;
                        if union == 0.0 {
                            0.0
                        } else {
                            1.0 - common / union
                        }
                    }
                }
            }
            // Mixed numeric/categorical on one column: disjoint.
            _ => match self.mode {
                DistanceMode::Dissimilarity => 1.0,
                DistanceMode::PaperLiteral => 0.0,
            },
        }
    }

    /// Different columns: "the proportion of the joint space of the
    /// involved columns occupied by p₁ and p₂" (paper example: `a₁ < 3`,
    /// `a₂ > 2` on `[0,5]²` → 9/25 = 0.36).
    ///
    /// In `Dissimilarity` mode this is a constant 1: predicates that
    /// constrain *different* dimensions never describe the same area, and
    /// a graded value (e.g. `1 − proportion`) would rate two wide
    /// predicates on unrelated columns as near-identical, merging clusters
    /// that Table 1 keeps separate.
    fn d_pred_cross_column(&self, p1: &AtomicPredicate, p2: &AtomicPredicate) -> f64 {
        if self.mode == DistanceMode::Dissimilarity {
            return 1.0;
        }
        let frac = |p: &AtomicPredicate| -> f64 {
            let AtomicPredicate::ColumnConstant { column, value, .. } = p else {
                return 1.0;
            };
            match value {
                Constant::Num(c) => {
                    let Some(iv) = p.interval() else {
                        return 1.0;
                    };
                    let mut access = self
                        .ranges
                        .numeric(column)
                        .unwrap_or_else(|| Interval::closed(0.0, 0.0));
                    access = access.hull(&Interval::point(*c));
                    let w = access.width();
                    if w == 0.0 {
                        return 1.0;
                    }
                    (iv.intersect(&access).width() / w).clamp(0.0, 1.0)
                }
                Constant::Str(_) => {
                    let denom = self
                        .ranges
                        .categorical(column)
                        .map(|s| s.len())
                        .unwrap_or(1)
                        .max(1) as f64;
                    (1.0 / denom).clamp(0.0, 1.0)
                }
            }
        };
        frac(p1) * frac(p2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{Extractor, NoSchema};
    use crate::predicate::QualifiedColumn;

    fn area(sql: &str) -> AccessArea {
        Extractor::new(&NoSchema).extract_sql(sql).unwrap()
    }

    fn ranges() -> AccessRanges {
        let mut r = AccessRanges::new();
        r.set_numeric(&QualifiedColumn::new("T", "a"), 0.0, 5.0);
        r.set_numeric(&QualifiedColumn::new("T", "a1"), 0.0, 5.0);
        r.set_numeric(&QualifiedColumn::new("T", "a2"), 0.0, 5.0);
        r.set_numeric(&QualifiedColumn::new("T", "u"), 0.0, 100.0);
        r.set_categorical(
            &QualifiedColumn::new("T", "class"),
            ["star".to_string(), "galaxy".to_string(), "qso".to_string()],
        );
        r
    }

    fn pred(sql_where: &str) -> AtomicPredicate {
        let a = area(&format!("SELECT * FROM T WHERE {sql_where}"));
        assert_eq!(a.constraint.len(), 1, "{sql_where}");
        a.constraint.clauses[0].atoms[0].clone()
    }

    #[test]
    fn paper_literal_reproduces_worked_examples() {
        let r = ranges();
        let d = QueryDistance::with_mode(&r, DistanceMode::PaperLiteral);
        // Example 1: p1 = a < 3, p2 = a > 2, access = [0,5] -> 0.2.
        let dp = d.d_pred(&pred("a < 3"), &pred("a > 2"));
        assert!((dp - 0.2).abs() < 1e-12, "{dp}");
        // Example 2: a1 < 3 vs a2 > 2 -> (3*3)/(5*5) = 0.36.
        let dp = d.d_pred(&pred("a1 < 3"), &pred("a2 > 2"));
        assert!((dp - 0.36).abs() < 1e-12, "{dp}");
    }

    #[test]
    fn dissimilarity_is_complementary_on_spanning_example() {
        let r = ranges();
        let d = QueryDistance::new(&r);
        // hull([0,3),(2,5]) = [0,5] width 5; overlap 1 -> (5-1)/5 = 0.8.
        let dp = d.d_pred(&pred("a < 3"), &pred("a > 2"));
        assert!((dp - 0.8).abs() < 1e-12, "{dp}");
    }

    #[test]
    fn identical_predicates_are_at_distance_zero() {
        let r = ranges();
        let d = QueryDistance::new(&r);
        assert_eq!(d.d_pred(&pred("a < 3"), &pred("a < 3")), 0.0);
        assert_eq!(d.d_pred(&pred("class = 'star'"), &pred("class = 'STAR'")), 0.0);
    }

    #[test]
    fn point_predicates_scale_with_constant_distance() {
        // The Cluster 1 mechanism: objid = c queries chain when constants
        // are near on the access range.
        let r = ranges();
        let d = QueryDistance::new(&r);
        let near = d.d_pred(&pred("u = 10"), &pred("u = 12"));
        let far = d.d_pred(&pred("u = 10"), &pred("u = 90"));
        assert!((near - 0.02).abs() < 1e-12, "{near}");
        assert!((far - 0.8).abs() < 1e-12, "{far}");
        assert!(near < far);
    }

    #[test]
    fn d_tables_jaccard() {
        let r = ranges();
        let d = QueryDistance::new(&r);
        let a = area("SELECT * FROM T WHERE u > 1");
        let b = area("SELECT * FROM T, S WHERE u > 1 AND S.x > 0");
        let c = area("SELECT * FROM R WHERE y > 0");
        assert_eq!(d.d_tables(&a, &a), 0.0);
        assert!((d.d_tables(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(d.d_tables(&a, &c), 1.0);
        // Constants-only corner case.
        let k1 = area("SELECT 1");
        let k2 = area("SELECT 2");
        assert_eq!(d.d_tables(&k1, &k2), 0.0);
    }

    #[test]
    fn full_distance_orders_clusters_sensibly() {
        let r = ranges();
        let d = QueryDistance::new(&r);
        let q1 = area("SELECT * FROM T WHERE a <= 2 AND class = 'star'");
        let q2 = area("SELECT * FROM T WHERE a <= 2.2 AND class = 'star'");
        let q3 = area("SELECT * FROM T WHERE a >= 4 AND class = 'qso'");
        let near = d.distance(&q1, &q2);
        let far = d.distance(&q1, &q3);
        assert!(near < far, "near={near} far={far}");
        assert!(near < 0.1, "near={near}");
        // Same query -> distance 0.
        assert_eq!(d.distance(&q1, &q1), 0.0);
    }

    #[test]
    fn categorical_jaccard() {
        let r = ranges();
        let d = QueryDistance::new(&r);
        assert_eq!(
            d.d_pred(&pred("class = 'star'"), &pred("class = 'galaxy'")),
            1.0
        );
        // star vs NOT galaxy: {star} vs {star, qso} -> 1 - 1/2.
        let dp = d.d_pred(&pred("class = 'star'"), &pred("class <> 'galaxy'"));
        assert!((dp - 0.5).abs() < 1e-12, "{dp}");
    }

    #[test]
    fn join_predicate_distances() {
        let r = ranges();
        let d = QueryDistance::new(&r);
        let j1 = area("SELECT * FROM T, S WHERE T.u = S.u").constraint.clauses[0].atoms[0].clone();
        let j2 = area("SELECT * FROM S, T WHERE S.u = T.u").constraint.clauses[0].atoms[0].clone();
        let j3 = area("SELECT * FROM T, S WHERE T.u = S.w").constraint.clauses[0].atoms[0].clone();
        assert_eq!(d.d_pred(&j1, &j2), 0.0, "orientation-insensitive");
        assert_eq!(d.d_pred(&j1, &j3), 1.0);
        assert_eq!(d.d_pred(&j1, &pred("u = 10")), 1.0);
    }

    #[test]
    fn d_conj_handles_empty_sides() {
        let r = ranges();
        let d = QueryDistance::new(&r);
        let unconstrained = area("SELECT * FROM T");
        let constrained = area("SELECT * FROM T WHERE u > 1");
        assert_eq!(
            d.d_conj(&unconstrained.constraint, &unconstrained.constraint),
            0.0
        );
        assert_eq!(
            d.d_conj(&unconstrained.constraint, &constrained.constraint),
            1.0
        );
    }

    #[test]
    fn distance_is_symmetric() {
        let r = ranges();
        let d = QueryDistance::new(&r);
        let q1 = area("SELECT * FROM T WHERE a < 3 AND u > 10");
        let q2 = area("SELECT * FROM T WHERE a > 2");
        assert_eq!(d.distance(&q1, &q2), d.distance(&q2, &q1));
    }
}

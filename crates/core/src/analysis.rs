//! The semantic-analysis gate: shared diagnostic types and the analyzer
//! trait the pipeline calls between parsing and extraction.
//!
//! The concrete analyzer (binder + type checker + query linter) lives in
//! the `aa-analyze` crate; only the interface lives here so that `aa-core`
//! does not depend on it. Diagnostics are span-anchored into the original
//! SQL text and carry a stable code from the registry documented in
//! DESIGN.md (`E0xx` = semantic errors, `W0xx` = lints).

use aa_sql::{Select, Span};
use std::fmt;

/// How the pipeline treats analyzer diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnalyzeMode {
    /// Analyzer not invoked (seed behaviour).
    #[default]
    Off,
    /// Diagnostics are collected onto the extracted query but never block
    /// extraction.
    Warn,
    /// Queries with any `Error`-severity diagnostic are rejected before
    /// extraction ([`FailureKind::SemanticError`](crate::FailureKind)).
    Strict,
}

/// Diagnostic severity. `Error` means the query is semantically broken
/// (unknown column, incoherent types); `Warning` flags suspect-but-legal
/// constructs (cartesian joins, contradictory ranges).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One analyzer finding, anchored to the source text where possible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable registry code, e.g. `"E002"` or `"W003"`.
    pub code: &'static str,
    pub severity: Severity,
    pub message: String,
    /// Byte span into the original SQL, when the finding has a precise
    /// anchor; `None` for whole-query findings (e.g. the atom-cap lint).
    pub span: Option<Span>,
}

impl Diagnostic {
    pub fn error(code: &'static str, message: impl Into<String>, span: Option<Span>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            span,
        }
    }

    pub fn warning(code: &'static str, message: impl Into<String>, span: Option<Span>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            message: message.into(),
            span,
        }
    }

    /// Renders the diagnostic against its source text: one header line
    /// with code, severity, message and line:column, plus a caret snippet
    /// when the diagnostic carries a usable span.
    pub fn render(&self, source: &str) -> String {
        let mut out = format!("{} [{}] {}", self.code, self.severity, self.message);
        if let Some(span) = self.span {
            let (line, col) = line_col(source, span.start);
            out.push_str(&format!(" at {line}:{col}"));
            if let Some(snippet) = snippet(source, span) {
                out.push('\n');
                out.push_str(&snippet);
            }
        }
        out
    }
}

/// 1-based (line, column) of byte `offset` in `source`.
pub fn line_col(source: &str, offset: usize) -> (usize, usize) {
    let offset = offset.min(source.len());
    let mut line = 1;
    let mut col = 1;
    for ch in source[..offset].chars() {
        if ch == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

/// Renders the source line containing `span.start` with a caret underline
/// covering the (line-clipped) span. Returns `None` for degenerate spans.
pub fn snippet(source: &str, span: Span) -> Option<String> {
    if span.end <= span.start || span.start >= source.len() {
        return None;
    }
    let line_start = source[..span.start].rfind('\n').map_or(0, |i| i + 1);
    let line_end = source[span.start..]
        .find('\n')
        .map_or(source.len(), |i| span.start + i);
    let line = &source[line_start..line_end];
    let lead = source[line_start..span.start].chars().count();
    let width = source[span.start..span.end.min(line_end)].chars().count().max(1);
    Some(format!(
        "   |  {line}\n   |  {}{}",
        " ".repeat(lead),
        "^".repeat(width)
    ))
}

/// The interface the pipeline gates on. Implemented by `aa-analyze`'s
/// `Analyzer`; `sql` is the original text (for spans crossing future
/// rewrite stages) and `query` the parsed statement.
pub trait QueryAnalyzer {
    fn analyze(&self, sql: &str, query: &Select) -> Vec<Diagnostic>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_is_one_based_and_newline_aware() {
        let src = "SELECT *\nFROM T\nWHERE u > 1";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 9), (2, 1));
        assert_eq!(line_col(src, 22), (3, 7));
        // Past-the-end offsets clamp instead of panicking.
        assert_eq!(line_col(src, 10_000), (3, 12));
    }

    #[test]
    fn render_includes_caret_snippet() {
        let src = "SELECT colr FROM PhotoObjAll";
        let d = Diagnostic::error("E002", "unknown column `colr`", Some(Span::new(7, 11)));
        let rendered = d.render(src);
        assert!(rendered.starts_with("E002 [error] unknown column `colr` at 1:8"));
        assert!(rendered.contains("^^^^"), "{rendered}");
    }

    #[test]
    fn render_without_span_is_single_line() {
        let d = Diagnostic::warning("W005", "too many predicates", None);
        assert_eq!(d.render("SELECT 1"), "W005 [warning] too many predicates");
    }
}

//! Interval algebra over column domains.
//!
//! Atomic predicates on numeric columns denote half-lines or intervals;
//! consolidation (merging/contradiction detection) and the `d_pred`
//! distance (normalized overlap, Section 5.2) both reduce to interval
//! operations implemented here. Bounds carry open/closed flags so that
//! `a < 3 AND a > 3` is recognised as a contradiction while
//! `a <= 3 AND a >= 3` collapses to the point `{3}`.


/// A (possibly unbounded, possibly empty) numeric interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    pub lo: f64,
    pub hi: f64,
    pub lo_open: bool,
    pub hi_open: bool,
}

impl Interval {
    /// The full real line.
    pub fn all() -> Interval {
        Interval {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
            lo_open: true,
            hi_open: true,
        }
    }

    /// Closed interval `[lo, hi]`.
    pub fn closed(lo: f64, hi: f64) -> Interval {
        Interval {
            lo,
            hi,
            lo_open: false,
            hi_open: false,
        }
    }

    /// The single point `{x}`.
    pub fn point(x: f64) -> Interval {
        Interval::closed(x, x)
    }

    /// `(-inf, x)` or `(-inf, x]`.
    pub fn below(x: f64, open: bool) -> Interval {
        Interval {
            lo: f64::NEG_INFINITY,
            hi: x,
            lo_open: true,
            hi_open: open,
        }
    }

    /// `(x, +inf)` or `[x, +inf)`.
    pub fn above(x: f64, open: bool) -> Interval {
        Interval {
            lo: x,
            hi: f64::INFINITY,
            lo_open: open,
            hi_open: true,
        }
    }

    /// True when the interval contains no points.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi || (self.lo == self.hi && (self.lo_open || self.hi_open))
    }

    /// True when the interval is the whole line.
    pub fn is_all(&self) -> bool {
        self.lo == f64::NEG_INFINITY && self.hi == f64::INFINITY
    }

    /// True when `x` lies inside.
    pub fn contains(&self, x: f64) -> bool {
        let lo_ok = if self.lo_open { x > self.lo } else { x >= self.lo };
        let hi_ok = if self.hi_open { x < self.hi } else { x <= self.hi };
        lo_ok && hi_ok
    }

    /// Interval length (0 for empty or point; +inf when unbounded).
    pub fn width(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            (self.hi - self.lo).max(0.0)
        }
    }

    /// Intersection.
    pub fn intersect(&self, other: &Interval) -> Interval {
        let (lo, lo_open) = match self.lo.partial_cmp(&other.lo) {
            Some(std::cmp::Ordering::Greater) => (self.lo, self.lo_open),
            Some(std::cmp::Ordering::Less) => (other.lo, other.lo_open),
            _ => (self.lo, self.lo_open || other.lo_open),
        };
        let (hi, hi_open) = match self.hi.partial_cmp(&other.hi) {
            Some(std::cmp::Ordering::Less) => (self.hi, self.hi_open),
            Some(std::cmp::Ordering::Greater) => (other.hi, other.hi_open),
            _ => (self.hi, self.hi_open || other.hi_open),
        };
        Interval {
            lo,
            hi,
            lo_open,
            hi_open,
        }
    }

    /// Length of the intersection with `other` — the "overlap of intervals"
    /// of the paper's `d_pred`.
    pub fn overlap_width(&self, other: &Interval) -> f64 {
        self.intersect(other).width()
    }

    /// True when the intervals share at least one point.
    pub fn overlaps(&self, other: &Interval) -> bool {
        !self.intersect(other).is_empty()
    }

    /// True when the union of the two intervals is one contiguous interval
    /// (they overlap or touch at a closed endpoint).
    pub fn touches_or_overlaps(&self, other: &Interval) -> bool {
        if self.overlaps(other) {
            return true;
        }
        // Adjacent: e.g. (-inf, 3] and (3, inf) touch at 3 iff one side is
        // closed there.
        let touch = |a: &Interval, b: &Interval| {
            a.hi == b.lo && (!a.hi_open || !b.lo_open)
        };
        touch(self, other) || touch(other, self)
    }

    /// Smallest interval containing both (convex hull).
    pub fn hull(&self, other: &Interval) -> Interval {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        let (lo, lo_open) = if self.lo < other.lo {
            (self.lo, self.lo_open)
        } else if other.lo < self.lo {
            (other.lo, other.lo_open)
        } else {
            (self.lo, self.lo_open && other.lo_open)
        };
        let (hi, hi_open) = if self.hi > other.hi {
            (self.hi, self.hi_open)
        } else if other.hi > self.hi {
            (other.hi, other.hi_open)
        } else {
            (self.hi, self.hi_open && other.hi_open)
        };
        Interval {
            lo,
            hi,
            lo_open,
            hi_open,
        }
    }

    /// Union when contiguous; `None` when the union is disconnected.
    pub fn union(&self, other: &Interval) -> Option<Interval> {
        if self.is_empty() {
            return Some(*other);
        }
        if other.is_empty() {
            return Some(*self);
        }
        if self.touches_or_overlaps(other) {
            Some(self.hull(other))
        } else {
            None
        }
    }

    /// True when `self` is a subset of `other`.
    pub fn subset_of(&self, other: &Interval) -> bool {
        if self.is_empty() {
            return true;
        }
        let lo_ok = other.lo < self.lo
            || (other.lo == self.lo && (!other.lo_open || self.lo_open));
        let hi_ok = other.hi > self.hi
            || (other.hi == self.hi && (!other.hi_open || self.hi_open));
        lo_ok && hi_ok
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return write!(f, "∅");
        }
        write!(
            f,
            "{}{}, {}{}",
            if self.lo_open { "(" } else { "[" },
            self.lo,
            self.hi,
            if self.hi_open { ")" } else { "]" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emptiness() {
        assert!(Interval::closed(5.0, 3.0).is_empty());
        assert!(!Interval::point(3.0).is_empty());
        // a < 3 AND a > 3
        let contradiction = Interval::below(3.0, true).intersect(&Interval::above(3.0, true));
        assert!(contradiction.is_empty());
        // a <= 3 AND a >= 3 -> the point 3
        let point = Interval::below(3.0, false).intersect(&Interval::above(3.0, false));
        assert!(!point.is_empty());
        assert_eq!(point, Interval::point(3.0));
    }

    #[test]
    fn paper_example_overlap() {
        // Section 5.2: p1 is a < 3, p2 is a > 2, access(a) = [0, 5]
        // overlap of (2,3) with width 1, normalised by 5 -> 0.2.
        let p1 = Interval::below(3.0, true);
        let p2 = Interval::above(2.0, true);
        let access = Interval::closed(0.0, 5.0);
        let overlap = p1.intersect(&p2).intersect(&access).width();
        assert!((overlap / access.width() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn contains_respects_openness() {
        let i = Interval::above(2.0, true);
        assert!(!i.contains(2.0));
        assert!(i.contains(2.0001));
        let j = Interval::above(2.0, false);
        assert!(j.contains(2.0));
    }

    #[test]
    fn hull_and_union() {
        let a = Interval::closed(0.0, 2.0);
        let b = Interval::closed(1.0, 5.0);
        assert_eq!(a.hull(&b), Interval::closed(0.0, 5.0));
        assert_eq!(a.union(&b), Some(Interval::closed(0.0, 5.0)));
        let c = Interval::closed(10.0, 11.0);
        assert_eq!(a.union(&c), None);
    }

    #[test]
    fn touching_intervals_union() {
        // (-inf, 3] U (3, inf) = everything
        let a = Interval::below(3.0, false);
        let b = Interval::above(3.0, true);
        let u = a.union(&b).unwrap();
        assert!(u.is_all());
        // (-inf, 3) and (3, inf) do NOT union (3 missing).
        let a = Interval::below(3.0, true);
        assert_eq!(a.union(&b), None);
    }

    #[test]
    fn subset() {
        assert!(Interval::closed(1.0, 2.0).subset_of(&Interval::closed(0.0, 5.0)));
        assert!(Interval::below(3.0, true).subset_of(&Interval::below(3.0, false)));
        assert!(!Interval::below(3.0, false).subset_of(&Interval::below(3.0, true)));
        assert!(Interval::point(3.0).subset_of(&Interval::all()));
    }

    #[test]
    fn width_of_unbounded_is_infinite() {
        assert!(Interval::above(0.0, true).width().is_infinite());
        assert_eq!(Interval::point(2.0).width(), 0.0);
    }
}

//! Boolean expressions over atomic predicates, with NNF/CNF conversion.
//!
//! The extractor lowers each query's constraint `P` into a [`BoolExpr`],
//! pushes `NOT` down to the atoms (inverting their operators, Section 4.1),
//! and converts to conjunctive normal form (Section 2.4). CNF conversion by
//! distribution is worst-case exponential; the paper's workaround —
//! "only consider the first 35 predicates of any query" — is reproduced by
//! [`BoolExpr::truncate_atoms`], plus an additional clause-count cap as an
//! engineering guard (results are then flagged as approximate).

use crate::cnf::{Cnf, Disjunction};
use crate::predicate::{AtomicPredicate, Constant, QualifiedColumn};
use std::fmt;

/// The paper's predicate cap for CNF conversion (Section 6.6: only 471 of
/// 12.4M queries exceed it).
pub const DEFAULT_ATOM_CAP: usize = 35;

/// Engineering guard on the number of CNF clauses produced by distribution.
pub const DEFAULT_CLAUSE_CAP: usize = 4096;

/// A boolean combination of atomic predicates.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BoolExpr {
    /// Always true (no constraint).
    True,
    /// Always false (empty access area).
    False,
    Atom(AtomicPredicate),
    Not(Box<BoolExpr>),
    And(Vec<BoolExpr>),
    Or(Vec<BoolExpr>),
}

impl BoolExpr {
    /// Smart AND: flattens nested ANDs, drops `True`, collapses on `False`.
    pub fn and(parts: impl IntoIterator<Item = BoolExpr>) -> BoolExpr {
        let mut out = Vec::new();
        for p in parts {
            match p {
                BoolExpr::True => {}
                BoolExpr::False => return BoolExpr::False,
                BoolExpr::And(xs) => out.extend(xs),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => BoolExpr::True,
            1 => out.pop().expect("len checked"),
            _ => BoolExpr::And(out),
        }
    }

    /// Smart OR: flattens nested ORs, drops `False`, collapses on `True`.
    pub fn or(parts: impl IntoIterator<Item = BoolExpr>) -> BoolExpr {
        let mut out = Vec::new();
        for p in parts {
            match p {
                BoolExpr::False => {}
                BoolExpr::True => return BoolExpr::True,
                BoolExpr::Or(xs) => out.extend(xs),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => BoolExpr::False,
            1 => out.pop().expect("len checked"),
            _ => BoolExpr::Or(out),
        }
    }

    /// Logical negation (not yet pushed down).
    #[allow(clippy::should_implement_trait)] // logical negation, not std::ops::Not
    pub fn not(self) -> BoolExpr {
        match self {
            BoolExpr::True => BoolExpr::False,
            BoolExpr::False => BoolExpr::True,
            BoolExpr::Not(inner) => *inner,
            other => BoolExpr::Not(Box::new(other)),
        }
    }

    /// Negation normal form: `NOT` pushed to the atoms via De Morgan and
    /// operator inversion (`NOT (u > 5 AND v <= 10)` → `u <= 5 OR v > 10`,
    /// the paper's Section 4.1 example).
    pub fn to_nnf(&self) -> BoolExpr {
        fn go(e: &BoolExpr, negated: bool) -> BoolExpr {
            match e {
                BoolExpr::True => {
                    if negated {
                        BoolExpr::False
                    } else {
                        BoolExpr::True
                    }
                }
                BoolExpr::False => {
                    if negated {
                        BoolExpr::True
                    } else {
                        BoolExpr::False
                    }
                }
                BoolExpr::Atom(p) => {
                    if negated {
                        BoolExpr::Atom(p.negate())
                    } else {
                        BoolExpr::Atom(p.clone())
                    }
                }
                BoolExpr::Not(inner) => go(inner, !negated),
                BoolExpr::And(xs) => {
                    let parts = xs.iter().map(|x| go(x, negated));
                    if negated {
                        BoolExpr::or(parts)
                    } else {
                        BoolExpr::and(parts)
                    }
                }
                BoolExpr::Or(xs) => {
                    let parts = xs.iter().map(|x| go(x, negated));
                    if negated {
                        BoolExpr::and(parts)
                    } else {
                        BoolExpr::or(parts)
                    }
                }
            }
        }
        go(self, false)
    }

    /// Number of atom occurrences.
    pub fn atom_count(&self) -> usize {
        match self {
            BoolExpr::True | BoolExpr::False => 0,
            BoolExpr::Atom(_) => 1,
            BoolExpr::Not(inner) => inner.atom_count(),
            BoolExpr::And(xs) | BoolExpr::Or(xs) => xs.iter().map(BoolExpr::atom_count).sum(),
        }
    }

    /// Collects all atoms, left to right.
    pub fn atoms(&self) -> Vec<&AtomicPredicate> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a BoolExpr, out: &mut Vec<&'a AtomicPredicate>) {
            match e {
                BoolExpr::Atom(p) => out.push(p),
                BoolExpr::Not(inner) => walk(inner, out),
                BoolExpr::And(xs) | BoolExpr::Or(xs) => {
                    for x in xs {
                        walk(x, out);
                    }
                }
                _ => {}
            }
        }
        walk(self, &mut out);
        out
    }

    /// Keeps only the first `max` atoms (left-to-right), replacing the rest
    /// with `True` — the paper's CNF-blowup workaround. Returns the
    /// truncated expression and whether anything was dropped.
    pub fn truncate_atoms(&self, max: usize) -> (BoolExpr, bool) {
        fn go(e: &BoolExpr, budget: &mut usize, dropped: &mut bool) -> BoolExpr {
            match e {
                BoolExpr::Atom(p) => {
                    if *budget > 0 {
                        *budget -= 1;
                        BoolExpr::Atom(p.clone())
                    } else {
                        *dropped = true;
                        BoolExpr::True
                    }
                }
                BoolExpr::Not(inner) => go(inner, budget, dropped).not(),
                BoolExpr::And(xs) => {
                    BoolExpr::and(xs.iter().map(|x| go(x, budget, dropped)).collect::<Vec<_>>())
                }
                BoolExpr::Or(xs) => {
                    BoolExpr::or(xs.iter().map(|x| go(x, budget, dropped)).collect::<Vec<_>>())
                }
                other => other.clone(),
            }
        }
        let mut budget = max;
        let mut dropped = false;
        let out = go(self, &mut budget, &mut dropped);
        (out, dropped)
    }

    /// Evaluates the expression given a value lookup for columns.
    /// Returns `None` if any needed column value is unavailable.
    pub fn evaluate(
        &self,
        lookup: &dyn Fn(&QualifiedColumn) -> Option<Constant>,
    ) -> Option<bool> {
        match self {
            BoolExpr::True => Some(true),
            BoolExpr::False => Some(false),
            BoolExpr::Atom(p) => p.evaluate(lookup),
            BoolExpr::Not(inner) => inner.evaluate(lookup).map(|b| !b),
            BoolExpr::And(xs) => {
                let mut all = true;
                for x in xs {
                    match x.evaluate(lookup) {
                        Some(false) => return Some(false),
                        Some(true) => {}
                        None => all = false,
                    }
                }
                if all {
                    Some(true)
                } else {
                    None
                }
            }
            BoolExpr::Or(xs) => {
                let mut any_unknown = false;
                for x in xs {
                    match x.evaluate(lookup) {
                        Some(true) => return Some(true),
                        Some(false) => {}
                        None => any_unknown = true,
                    }
                }
                if any_unknown {
                    None
                } else {
                    Some(false)
                }
            }
        }
    }

    /// Converts to CNF. Atoms beyond `atom_cap` are dropped first (paper's
    /// 35-predicate workaround); `clause_cap` bounds distribution blowup.
    /// The `exact` flag in the result is `false` when either cap fired.
    pub fn to_cnf_capped(&self, atom_cap: usize, clause_cap: usize) -> CnfConversion {
        let (bounded, truncated) = self.to_nnf().truncate_atoms(atom_cap);
        let nnf = bounded.to_nnf(); // truncation may reintroduce Not via smart ctors; renormalise
        let mut capped = false;
        let clauses = distribute(&nnf, clause_cap, &mut capped);
        let mut cnf = Cnf::new(clauses.into_iter().map(Disjunction::new).collect());
        cnf.dedup();
        CnfConversion {
            cnf,
            exact: !truncated && !capped,
        }
    }

    /// CNF conversion with the default caps.
    pub fn to_cnf(&self) -> CnfConversion {
        self.to_cnf_capped(DEFAULT_ATOM_CAP, DEFAULT_CLAUSE_CAP)
    }
}

/// Result of CNF conversion.
#[derive(Debug, Clone, PartialEq)]
pub struct CnfConversion {
    pub cnf: Cnf,
    /// False when an atom/clause cap truncated the constraint (the area is
    /// then an over-approximation of the true access area).
    pub exact: bool,
}

/// Distributes an NNF expression into clause lists (each clause a vector of
/// atoms). `capped` is set when the clause cap truncates the result.
fn distribute(
    e: &BoolExpr,
    clause_cap: usize,
    capped: &mut bool,
) -> Vec<Vec<AtomicPredicate>> {
    match e {
        BoolExpr::True => vec![],
        // An unsatisfiable constraint is the empty clause.
        BoolExpr::False => vec![vec![]],
        BoolExpr::Atom(p) => vec![vec![p.clone()]],
        BoolExpr::Not(inner) => {
            // NNF guarantees Not only wraps atoms.
            match inner.as_ref() {
                BoolExpr::Atom(p) => vec![vec![p.negate()]],
                other => distribute(&other.clone().not().to_nnf(), clause_cap, capped),
            }
        }
        BoolExpr::And(xs) => {
            let mut out = Vec::new();
            for x in xs {
                out.extend(distribute(x, clause_cap, capped));
                if out.len() > clause_cap {
                    out.truncate(clause_cap);
                    *capped = true;
                    break;
                }
            }
            out
        }
        BoolExpr::Or(xs) => {
            // CNF(a OR b): cross product of a's clauses with b's clauses.
            let mut acc: Vec<Vec<AtomicPredicate>> = vec![vec![]];
            for x in xs {
                let clauses = distribute(x, clause_cap, capped);
                if clauses.is_empty() {
                    // x is True: the whole disjunction is True.
                    return vec![];
                }
                let mut next = Vec::with_capacity(acc.len() * clauses.len());
                'outer: for a in &acc {
                    for c in &clauses {
                        let mut merged = a.clone();
                        merged.extend(c.iter().cloned());
                        next.push(merged);
                        if next.len() > clause_cap {
                            *capped = true;
                            break 'outer;
                        }
                    }
                }
                next.truncate(clause_cap);
                acc = next;
            }
            acc
        }
    }
}

impl fmt::Display for BoolExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoolExpr::True => write!(f, "TRUE"),
            BoolExpr::False => write!(f, "FALSE"),
            BoolExpr::Atom(p) => write!(f, "{p}"),
            BoolExpr::Not(inner) => write!(f, "NOT ({inner})"),
            BoolExpr::And(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    match x {
                        BoolExpr::Or(_) => write!(f, "({x})")?,
                        _ => write!(f, "{x}")?,
                    }
                }
                Ok(())
            }
            BoolExpr::Or(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    write!(f, "{x}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;

    fn atom(col: &str, op: CmpOp, v: f64) -> BoolExpr {
        BoolExpr::Atom(AtomicPredicate::cc(
            QualifiedColumn::new("T", col),
            op,
            Constant::Num(v),
        ))
    }

    #[test]
    fn smart_constructors_simplify() {
        assert_eq!(BoolExpr::and([]), BoolExpr::True);
        assert_eq!(BoolExpr::or([]), BoolExpr::False);
        assert_eq!(
            BoolExpr::and([BoolExpr::True, atom("u", CmpOp::Gt, 1.0)]),
            atom("u", CmpOp::Gt, 1.0)
        );
        assert_eq!(
            BoolExpr::and([BoolExpr::False, atom("u", CmpOp::Gt, 1.0)]),
            BoolExpr::False
        );
        assert_eq!(
            BoolExpr::or([BoolExpr::True, atom("u", CmpOp::Gt, 1.0)]),
            BoolExpr::True
        );
    }

    #[test]
    fn nnf_pushes_not_to_atoms() {
        // NOT (u > 5 AND v <= 10)  ->  u <= 5 OR v > 10 (paper example)
        let e = BoolExpr::and([atom("u", CmpOp::Gt, 5.0), atom("v", CmpOp::LtEq, 10.0)]).not();
        let nnf = e.to_nnf();
        assert_eq!(
            nnf,
            BoolExpr::or([atom("u", CmpOp::LtEq, 5.0), atom("v", CmpOp::Gt, 10.0)])
        );
    }

    #[test]
    fn double_negation_cancels() {
        let e = atom("u", CmpOp::Lt, 3.0).not().not();
        assert_eq!(e.to_nnf(), atom("u", CmpOp::Lt, 3.0));
    }

    #[test]
    fn cnf_of_dnf_distributes() {
        // (a AND b) OR c  ->  (a OR c) AND (b OR c)
        let a = atom("a", CmpOp::Gt, 1.0);
        let b = atom("b", CmpOp::Gt, 2.0);
        let c = atom("c", CmpOp::Gt, 3.0);
        let e = BoolExpr::or([BoolExpr::and([a, b]), c]);
        let conv = e.to_cnf();
        assert!(conv.exact);
        assert_eq!(conv.cnf.clauses.len(), 2);
        for clause in &conv.cnf.clauses {
            assert_eq!(clause.atoms.len(), 2);
        }
    }

    #[test]
    fn cnf_of_true_and_false() {
        assert!(BoolExpr::True.to_cnf().cnf.clauses.is_empty());
        let f = BoolExpr::False.to_cnf().cnf;
        assert_eq!(f.clauses.len(), 1);
        assert!(f.clauses[0].atoms.is_empty());
        assert!(f.is_unsatisfiable_form());
    }

    #[test]
    fn atom_cap_truncates_and_flags() {
        let atoms: Vec<BoolExpr> = (0..50)
            .map(|i| atom(&format!("c{i}"), CmpOp::Gt, i as f64))
            .collect();
        let e = BoolExpr::and(atoms);
        let conv = e.to_cnf_capped(35, usize::MAX);
        assert!(!conv.exact);
        assert_eq!(conv.cnf.clauses.len(), 35);
    }

    #[test]
    fn clause_cap_fires_on_blowup() {
        // OR of 2-atom ANDs: CNF has 2^n clauses.
        let mut ors = Vec::new();
        for i in 0..16 {
            ors.push(BoolExpr::and([
                atom(&format!("a{i}"), CmpOp::Gt, 0.0),
                atom(&format!("b{i}"), CmpOp::Lt, 1.0),
            ]));
        }
        let e = BoolExpr::or(ors);
        let conv = e.to_cnf_capped(100, 256);
        assert!(!conv.exact);
        assert!(conv.cnf.clauses.len() <= 256);
    }

    #[test]
    fn evaluate_with_unknowns() {
        let e = BoolExpr::or([atom("u", CmpOp::Gt, 5.0), atom("missing", CmpOp::Lt, 0.0)]);
        // u=10 makes the OR true regardless of the unknown second atom.
        let lookup = |c: &QualifiedColumn| {
            if c.column == "u" {
                Some(Constant::Num(10.0))
            } else {
                None
            }
        };
        assert_eq!(e.evaluate(&lookup), Some(true));
        // u=1 leaves the OR unknown.
        let lookup = |c: &QualifiedColumn| {
            if c.column == "u" {
                Some(Constant::Num(1.0))
            } else {
                None
            }
        };
        assert_eq!(e.evaluate(&lookup), None);
    }

    #[test]
    fn truncate_atoms_counts_left_to_right() {
        let e = BoolExpr::and([
            atom("a", CmpOp::Gt, 1.0),
            atom("b", CmpOp::Gt, 2.0),
            atom("c", CmpOp::Gt, 3.0),
        ]);
        let (t, dropped) = e.truncate_atoms(2);
        assert!(dropped);
        assert_eq!(
            t,
            BoolExpr::and([atom("a", CmpOp::Gt, 1.0), atom("b", CmpOp::Gt, 2.0)])
        );
    }
}

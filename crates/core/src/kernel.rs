//! Bitset distance kernels (ROADMAP item 3).
//!
//! [`QueryDistance`](crate::distance::QueryDistance) is the reference
//! implementation of the Section 5 metric: it rebuilds `BTreeSet<&str>`
//! table sets and walks boxed CNF clauses on every call, which is the
//! per-pair cost that dominates DBSCAN expansion and serve-side
//! classification. [`DistanceKernel`] is the production path: table names
//! are interned once into `u64` popcount bitmasks (with a multi-word
//! overflow representation past 64 distinct tables) so `d_tables` is
//! branch-free, and CNF atoms are flattened into one contiguous arena with
//! every per-atom quantity the predicate distance needs (satisfying
//! interval, access range, categorical value set, cross-column occupancy
//! fraction) precomputed, so `d_conj`/`d_disj` are cache-linear scans.
//!
//! ## Contract
//!
//! The kernel is *bit-exact* against the scalar reference: for any pair of
//! areas, `DistanceKernel::distance` and `QueryDistance::distance` return
//! f64 values with identical bit patterns. This holds because the kernel
//! replays the exact same floating-point operation sequence (same
//! hull/intersect/clip order, same `f64::min` fold order, same
//! normalisation expression) over precomputed inputs. The differential
//! suite in `tests/kernel_differential.rs` enforces the contract on seeded
//! random areas, the extraction corpus, and whole DBSCAN/pivot-index runs.
//!
//! ## Interner / overflow contract
//!
//! * Ids are assigned over the *sorted* set of names, so they depend only
//!   on the set of tables (columns) in the build set, never on area order.
//! * A universe of ≤ 64 tables yields single-word [`TableMask::Small`]
//!   masks (the popcount fast path); larger universes fall back to
//!   multi-word [`TableMask::Wide`] masks with identical semantics.
//! * External queries ([`DistanceKernel::flatten`]) may mention tables or
//!   columns outside the build universe. Those get *local* ids past the
//!   kernel universe: they never collide with known names, so an unknown
//!   table contributes to the Jaccard union but never the intersection —
//!   exactly the scalar behaviour for a name no indexed area mentions.
//!
//! The kernel snapshots `access(a)` at build time: it owns a clone of the
//! [`AccessRanges`] and precomputes every range lookup, so later mutation
//! of the caller's ranges does not leak into kernel distances.

use crate::area::AccessArea;
use crate::distance::DistanceMode;
use crate::interval::Interval;
use crate::predicate::{AtomicPredicate, CmpOp, Constant, QualifiedColumn};
use crate::ranges::AccessRanges;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

/// Jaccard distance from intersection/union cardinalities — the single
/// formula point shared by the bitset kernel, the string-set helper below,
/// and the `aa-baselines` blocking index.
pub fn jaccard_from_counts(inter: usize, union: usize) -> f64 {
    if union == 0 {
        // Both sets empty: the paper's constants-only corner case.
        return 0.0;
    }
    1.0 - inter as f64 / union as f64
}

/// Jaccard distance between two (lower-cased) table-name sets.
pub fn jaccard_str_sets(a: &BTreeSet<String>, b: &BTreeSet<String>) -> f64 {
    let inter = a.intersection(b).count();
    let union = a.union(b).count();
    jaccard_from_counts(inter, union)
}

/// The table set of an access area (lower-cased keys), as used by the
/// blocking indexes.
pub fn area_table_set(a: &AccessArea) -> BTreeSet<String> {
    a.table_keys().map(str::to_string).collect()
}

/// Interns lower-cased table names to dense ids. Ids are assigned in
/// sorted name order, so two interners built over the same *set* of names
/// agree regardless of the order areas were presented in.
#[derive(Debug, Clone, Default)]
pub struct TableInterner {
    ids: HashMap<String, u32>,
    names: Vec<String>,
}

impl TableInterner {
    /// Builds the interner over every table mentioned by `areas`.
    pub fn build<'a>(areas: impl IntoIterator<Item = &'a AccessArea>) -> TableInterner {
        let mut all: BTreeSet<&str> = BTreeSet::new();
        for area in areas {
            all.extend(area.table_keys());
        }
        let mut interner = TableInterner::default();
        for name in all {
            let id = interner.names.len() as u32;
            interner.ids.insert(name.to_string(), id);
            interner.names.push(name.to_string());
        }
        interner
    }

    /// The id of a lower-cased table name, if it is in the universe.
    pub fn id(&self, lower: &str) -> Option<u32> {
        self.ids.get(lower).copied()
    }

    /// The name behind an id.
    pub fn name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of interned tables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no tables are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// A table set as a bitmask over interned ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableMask {
    /// All bits fit one word: the branch-free popcount fast path.
    Small(u64),
    /// Overflow path for bit indices ≥ 64 (large table universes).
    Wide(Vec<u64>),
}

impl TableMask {
    /// Builds a mask from bit indices (interned table ids).
    pub fn from_bits(bits: &[u32]) -> TableMask {
        match bits.iter().copied().max() {
            None => TableMask::Small(0),
            Some(m) if m < 64 => {
                let mut word = 0u64;
                for &b in bits {
                    word |= 1u64 << b;
                }
                TableMask::Small(word)
            }
            Some(m) => {
                let mut words = vec![0u64; m as usize / 64 + 1];
                for &b in bits {
                    words[b as usize / 64] |= 1u64 << (b % 64);
                }
                TableMask::Wide(words)
            }
        }
    }

    /// True for the single-word representation.
    pub fn is_small(&self) -> bool {
        matches!(self, TableMask::Small(_))
    }

    /// Number of tables in the set.
    pub fn popcount(&self) -> u32 {
        match self {
            TableMask::Small(w) => w.count_ones(),
            TableMask::Wide(v) => v.iter().map(|w| w.count_ones()).sum(),
        }
    }

    fn words(&self) -> &[u64] {
        match self {
            TableMask::Small(w) => std::slice::from_ref(w),
            TableMask::Wide(v) => v,
        }
    }

    /// `(|a ∩ b|, |a ∪ b|)` cardinalities.
    pub fn inter_union(&self, other: &TableMask) -> (u32, u32) {
        match (self, other) {
            (TableMask::Small(a), TableMask::Small(b)) => {
                ((a & b).count_ones(), (a | b).count_ones())
            }
            _ => {
                let (a, b) = (self.words(), other.words());
                let mut inter = 0u32;
                let mut union = 0u32;
                for i in 0..a.len().max(b.len()) {
                    let wa = a.get(i).copied().unwrap_or(0);
                    let wb = b.get(i).copied().unwrap_or(0);
                    inter += (wa & wb).count_ones();
                    union += (wa | wb).count_ones();
                }
                (inter, union)
            }
        }
    }
}

/// Work counters threaded through every kernel distance call. Snapshot of
/// the kernel's internal atomics; deterministic for a fixed call sequence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DistanceCounters {
    /// Full `distance` evaluations (area pairs).
    pub pairs: u64,
    /// Atom pairs fed to the predicate distance.
    pub atoms_scanned: u64,
    /// `d_tables` calls answered on the single-word popcount fast path.
    pub bitset_fast_path: u64,
}

#[derive(Debug, Default)]
struct CounterCells {
    pairs: AtomicU64,
    atoms_scanned: AtomicU64,
    bitset_fast_path: AtomicU64,
}

/// One flattened atomic predicate: every range lookup and per-atom derived
/// quantity the predicate distance needs, precomputed at flatten time.
#[derive(Debug, Clone)]
enum FlatAtom {
    /// Numeric column-constant predicate `col op c`.
    Num {
        col: u32,
        op: CmpOp,
        c: f64,
        /// Satisfying interval of `col op c`.
        iv: Interval,
        /// `access(a)` of the column (`[0,0]` when untracked), before the
        /// per-pair widening by the two constants.
        access: Interval,
        /// Literal-mode cross-column occupancy fraction.
        frac: f64,
    },
    /// Categorical column-constant predicate.
    Cat {
        col: u32,
        /// The predicate's value set under the categorical access set.
        set: BTreeSet<String>,
        /// `|access(a)|` of the column (literal-mode denominator).
        access_len: usize,
        /// Literal-mode cross-column occupancy fraction.
        frac: f64,
    },
    /// Join predicate `left op right`.
    Join { left: u32, op: CmpOp, right: u32 },
}

impl FlatAtom {
    fn col(&self) -> Option<u32> {
        match self {
            FlatAtom::Num { col, .. } | FlatAtom::Cat { col, .. } => Some(*col),
            FlatAtom::Join { .. } => None,
        }
    }

    fn frac(&self) -> f64 {
        match self {
            FlatAtom::Num { frac, .. } | FlatAtom::Cat { frac, .. } => *frac,
            FlatAtom::Join { .. } => 1.0,
        }
    }
}

/// An external access area flattened against a kernel: table bitmask plus
/// arena-flattened CNF clauses. Unknown tables/columns carry local ids
/// past the kernel universe (see the module docs).
#[derive(Debug, Clone)]
pub struct FlatQuery {
    mask: TableMask,
    /// Clause spans into `atoms`.
    clauses: Vec<(u32, u32)>,
    atoms: Vec<FlatAtom>,
}

impl FlatQuery {
    /// The query's table bitmask.
    pub fn mask(&self) -> &TableMask {
        &self.mask
    }
}

/// Scratch sizes for the stack-allocated column-minima buffers; spills to
/// a heap vector for wider CNFs.
const DISJ_SCRATCH: usize = 16;
const CONJ_SCRATCH: usize = 32;

/// The bitset distance kernel over a fixed set of access areas.
///
/// Indexed areas are addressed by position in the build slice. External
/// queries go through [`DistanceKernel::flatten`] once and are then
/// comparable against any indexed area via the `*_to` methods.
pub struct DistanceKernel {
    mode: DistanceMode,
    ranges: AccessRanges,
    tables: TableInterner,
    columns: HashMap<QualifiedColumn, u32>,
    column_count: u32,
    masks: Vec<TableMask>,
    /// Per area: span into `clause_spans`.
    area_clauses: Vec<(u32, u32)>,
    /// Per clause: span into `atoms`.
    clause_spans: Vec<(u32, u32)>,
    atoms: Vec<FlatAtom>,
    counters: CounterCells,
}

impl DistanceKernel {
    /// Flattens `areas` into the kernel representation. `ranges` is
    /// snapshotted (cloned); `mode` selects the Section 5.2 reading, as in
    /// [`QueryDistance::with_mode`](crate::distance::QueryDistance::with_mode).
    pub fn build(areas: &[AccessArea], ranges: &AccessRanges, mode: DistanceMode) -> DistanceKernel {
        let tables = TableInterner::build(areas);
        let mut cols: BTreeSet<&QualifiedColumn> = BTreeSet::new();
        for area in areas {
            for atom in area.constraint.atoms() {
                cols.extend(atom.columns());
            }
        }
        let mut columns = HashMap::with_capacity(cols.len());
        for (i, col) in cols.into_iter().enumerate() {
            columns.insert(col.clone(), i as u32);
        }
        let column_count = columns.len() as u32;
        let mut kernel = DistanceKernel {
            mode,
            ranges: ranges.clone(),
            tables,
            columns,
            column_count,
            masks: Vec::with_capacity(areas.len()),
            area_clauses: Vec::with_capacity(areas.len()),
            clause_spans: Vec::new(),
            atoms: Vec::new(),
            counters: CounterCells::default(),
        };
        for area in areas {
            let flat = kernel.flatten(area);
            let atom_base = kernel.atoms.len() as u32;
            let clause_base = kernel.clause_spans.len() as u32;
            for (s, e) in flat.clauses {
                kernel.clause_spans.push((s + atom_base, e + atom_base));
            }
            kernel.atoms.extend(flat.atoms);
            kernel
                .area_clauses
                .push((clause_base, kernel.clause_spans.len() as u32));
            kernel.masks.push(flat.mask);
        }
        kernel
    }

    /// Number of indexed areas.
    pub fn len(&self) -> usize {
        self.masks.len()
    }

    /// True when no areas are indexed.
    pub fn is_empty(&self) -> bool {
        self.masks.is_empty()
    }

    /// The distance mode the kernel was built with.
    pub fn mode(&self) -> DistanceMode {
        self.mode
    }

    /// The table interner (ids over the build universe).
    pub fn tables(&self) -> &TableInterner {
        &self.tables
    }

    /// The table bitmask of indexed area `i`.
    pub fn mask_of(&self, i: usize) -> &TableMask {
        &self.masks[i]
    }

    /// Snapshot of the work counters.
    pub fn counters(&self) -> DistanceCounters {
        DistanceCounters {
            pairs: self.counters.pairs.load(Ordering::Relaxed),
            atoms_scanned: self.counters.atoms_scanned.load(Ordering::Relaxed),
            bitset_fast_path: self.counters.bitset_fast_path.load(Ordering::Relaxed),
        }
    }

    /// Resets the work counters to zero (bench harness hook: counter
    /// sweeps are measured separately from timing loops).
    pub fn reset_counters(&self) {
        self.counters.pairs.store(0, Ordering::Relaxed);
        self.counters.atoms_scanned.store(0, Ordering::Relaxed);
        self.counters.bitset_fast_path.store(0, Ordering::Relaxed);
    }

    /// Flattens an external area against this kernel's universe.
    pub fn flatten(&self, area: &AccessArea) -> FlatQuery {
        let table_base = self.tables.len() as u32;
        let mut unknown_tables: HashMap<String, u32> = HashMap::new();
        let mut bits: Vec<u32> = Vec::new();
        for t in area.table_keys() {
            let id = match self.tables.id(t) {
                Some(id) => id,
                None => {
                    let next = table_base + unknown_tables.len() as u32;
                    *unknown_tables.entry(t.to_string()).or_insert(next)
                }
            };
            bits.push(id);
        }
        let mask = TableMask::from_bits(&bits);

        let column_base = self.column_count;
        let mut unknown_columns: HashMap<QualifiedColumn, u32> = HashMap::new();
        let mut col_id = |col: &QualifiedColumn| -> u32 {
            if let Some(&id) = self.columns.get(col) {
                return id;
            }
            let next = column_base + unknown_columns.len() as u32;
            *unknown_columns.entry(col.clone()).or_insert(next)
        };

        let mut atoms = Vec::new();
        let mut clauses = Vec::with_capacity(area.constraint.clauses.len());
        for clause in &area.constraint.clauses {
            let start = atoms.len() as u32;
            for atom in &clause.atoms {
                atoms.push(self.flatten_atom(atom, &mut col_id));
            }
            clauses.push((start, atoms.len() as u32));
        }
        FlatQuery {
            mask,
            clauses,
            atoms,
        }
    }

    fn flatten_atom(
        &self,
        atom: &AtomicPredicate,
        col_id: &mut dyn FnMut(&QualifiedColumn) -> u32,
    ) -> FlatAtom {
        match atom {
            AtomicPredicate::ColumnColumn { left, op, right } => FlatAtom::Join {
                left: col_id(left),
                op: *op,
                right: col_id(right),
            },
            AtomicPredicate::ColumnConstant { column, op, value } => match value {
                Constant::Num(c) => {
                    let iv = atom.interval().expect("numeric cc has an interval");
                    let access = self
                        .ranges
                        .numeric(column)
                        .unwrap_or_else(|| Interval::closed(0.0, 0.0));
                    // Literal-mode cross-column fraction, replicating the
                    // scalar op sequence exactly.
                    let facc = access.hull(&Interval::point(*c));
                    let w = facc.width();
                    let frac = if w == 0.0 {
                        1.0
                    } else {
                        (iv.intersect(&facc).width() / w).clamp(0.0, 1.0)
                    };
                    FlatAtom::Num {
                        col: col_id(column),
                        op: *op,
                        c: *c,
                        iv,
                        access,
                        frac,
                    }
                }
                Constant::Str(s) => {
                    let access = self
                        .ranges
                        .categorical(column)
                        .cloned()
                        .unwrap_or_default();
                    let lower = s.to_lowercase();
                    let set: BTreeSet<String> = match op {
                        CmpOp::Eq => std::iter::once(lower).collect(),
                        CmpOp::Neq => access.iter().filter(|x| **x != lower).cloned().collect(),
                        _ => std::iter::once(lower).collect(),
                    };
                    let denom = access.len().max(1) as f64;
                    let frac = (1.0 / denom).clamp(0.0, 1.0);
                    FlatAtom::Cat {
                        col: col_id(column),
                        set,
                        access_len: access.len(),
                        frac,
                    }
                }
            },
        }
    }

    /// Jaccard distance between the table sets of indexed areas `i`/`j`.
    pub fn d_tables(&self, i: usize, j: usize) -> f64 {
        self.d_tables_mask(&self.masks[i], &self.masks[j])
    }

    /// Jaccard distance between a flattened query and indexed area `j`.
    pub fn d_tables_to(&self, q: &FlatQuery, j: usize) -> f64 {
        self.d_tables_mask(&q.mask, &self.masks[j])
    }

    /// Full distance `d = d_tables + d_conj` between indexed areas.
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        self.counters.pairs.fetch_add(1, Ordering::Relaxed);
        let (ci, ai) = self.area_view(i);
        let (cj, aj) = self.area_view(j);
        self.d_tables_mask(&self.masks[i], &self.masks[j]) + self.d_conj_flat(ci, ai, cj, aj)
    }

    /// Full distance between a flattened query and indexed area `j`.
    pub fn distance_to(&self, q: &FlatQuery, j: usize) -> f64 {
        self.counters.pairs.fetch_add(1, Ordering::Relaxed);
        let (cj, aj) = self.area_view(j);
        self.d_tables_mask(&q.mask, &self.masks[j])
            + self.d_conj_flat(&q.clauses, &q.atoms, cj, aj)
    }

    fn area_view(&self, i: usize) -> (&[(u32, u32)], &[FlatAtom]) {
        let (s, e) = self.area_clauses[i];
        (&self.clause_spans[s as usize..e as usize], &self.atoms)
    }

    fn d_tables_mask(&self, a: &TableMask, b: &TableMask) -> f64 {
        if a.is_small() && b.is_small() {
            self.counters.bitset_fast_path.fetch_add(1, Ordering::Relaxed);
        }
        let (inter, union) = a.inter_union(b);
        jaccard_from_counts(inter as usize, union as usize)
    }

    /// `d_conj` over flattened clause spans. Computes each pairwise
    /// clause distance once; row minima accumulate directly and column
    /// minima live in a scratch buffer, preserving the scalar fold order.
    fn d_conj_flat(
        &self,
        ac: &[(u32, u32)],
        aa: &[FlatAtom],
        bc: &[(u32, u32)],
        ba: &[FlatAtom],
    ) -> f64 {
        match (ac.is_empty(), bc.is_empty()) {
            (true, true) => return 0.0,
            (true, false) | (false, true) => return 1.0,
            _ => {}
        }
        let n2 = bc.len();
        let mut small = [f64::INFINITY; CONJ_SCRATCH];
        let mut heap: Vec<f64>;
        let col_min: &mut [f64] = if n2 <= CONJ_SCRATCH {
            &mut small[..n2]
        } else {
            heap = vec![f64::INFINITY; n2];
            &mut heap
        };
        let mut sum1 = 0.0;
        for &(s1, e1) in ac {
            let o1 = &aa[s1 as usize..e1 as usize];
            let mut row_min = f64::INFINITY;
            for (j, &(s2, e2)) in bc.iter().enumerate() {
                let d = self.d_disj_flat(o1, &ba[s2 as usize..e2 as usize]);
                row_min = row_min.min(d);
                col_min[j] = col_min[j].min(d);
            }
            sum1 += row_min;
        }
        let mut sum2 = 0.0;
        for m in col_min.iter() {
            sum2 += *m;
        }
        (sum1 + sum2) / (ac.len() + bc.len()) as f64
    }

    fn d_disj_flat(&self, o1: &[FlatAtom], o2: &[FlatAtom]) -> f64 {
        match (o1.is_empty(), o2.is_empty()) {
            (true, true) => return 0.0,
            (true, false) | (false, true) => return 1.0,
            _ => {}
        }
        self.counters
            .atoms_scanned
            .fetch_add((o1.len() * o2.len()) as u64, Ordering::Relaxed);
        let n2 = o2.len();
        let mut small = [f64::INFINITY; DISJ_SCRATCH];
        let mut heap: Vec<f64>;
        let col_min: &mut [f64] = if n2 <= DISJ_SCRATCH {
            &mut small[..n2]
        } else {
            heap = vec![f64::INFINITY; n2];
            &mut heap
        };
        let mut sum1 = 0.0;
        for p1 in o1 {
            let mut row_min = f64::INFINITY;
            for (j, p2) in o2.iter().enumerate() {
                let d = self.d_pred_flat(p1, p2);
                row_min = row_min.min(d);
                col_min[j] = col_min[j].min(d);
            }
            sum1 += row_min;
        }
        let mut sum2 = 0.0;
        for m in col_min.iter() {
            sum2 += *m;
        }
        (sum1 + sum2) / (o1.len() + o2.len()) as f64
    }

    fn d_pred_flat(&self, p1: &FlatAtom, p2: &FlatAtom) -> f64 {
        use FlatAtom::*;
        match (p1, p2) {
            (
                Join {
                    left: l1,
                    op: op1,
                    right: r1,
                },
                Join {
                    left: l2,
                    op: op2,
                    right: r2,
                },
            ) => {
                let same = (l1 == l2 && r1 == r2 && op1 == op2)
                    || (l1 == r2 && r1 == l2 && *op1 == op2.flip());
                match self.mode {
                    DistanceMode::Dissimilarity => {
                        if same {
                            0.0
                        } else {
                            1.0
                        }
                    }
                    DistanceMode::PaperLiteral => {
                        if same {
                            1.0
                        } else {
                            0.0
                        }
                    }
                }
            }
            (
                Num {
                    col: c1,
                    op: op1,
                    c: v1,
                    iv: i1,
                    access,
                    ..
                },
                Num {
                    col: c2,
                    op: op2,
                    c: v2,
                    iv: i2,
                    ..
                },
            ) if c1 == c2 => {
                // Same access base for both atoms (same column); widen by
                // the two constants in the scalar's order.
                let mut acc = *access;
                acc = acc.hull(&Interval::point(*v1));
                acc = acc.hull(&Interval::point(*v2));
                let a1 = i1.intersect(&acc);
                let a2 = i2.intersect(&acc);
                let width = acc.width();
                if width == 0.0 {
                    let eq = op1 == op2 && (v1 == v2 || (v1.is_nan() && v2.is_nan()));
                    return match self.mode {
                        DistanceMode::Dissimilarity => {
                            if eq {
                                0.0
                            } else {
                                1.0
                            }
                        }
                        DistanceMode::PaperLiteral => {
                            if eq {
                                1.0
                            } else {
                                0.0
                            }
                        }
                    };
                }
                let overlap = a1.overlap_width(&a2);
                match self.mode {
                    DistanceMode::PaperLiteral => overlap / width,
                    DistanceMode::Dissimilarity => {
                        let hull = a1.hull(&a2).width();
                        ((hull - overlap) / width).clamp(0.0, 1.0)
                    }
                }
            }
            (
                Cat {
                    col: c1,
                    set: s1,
                    access_len,
                    ..
                },
                Cat {
                    col: c2, set: s2, ..
                },
            ) if c1 == c2 => {
                let common = s1.intersection(s2).count() as f64;
                match self.mode {
                    DistanceMode::PaperLiteral => {
                        let denom = (*access_len).max(1);
                        common / denom as f64
                    }
                    DistanceMode::Dissimilarity => {
                        let union = s1.union(s2).count() as f64;
                        if union == 0.0 {
                            0.0
                        } else {
                            1.0 - common / union
                        }
                    }
                }
            }
            // Column-constant vs column-constant on the same column with
            // mixed numeric/categorical kinds: disjoint.
            (Num { .. } | Cat { .. }, Num { .. } | Cat { .. }) if p1.col() == p2.col() => {
                match self.mode {
                    DistanceMode::Dissimilarity => 1.0,
                    DistanceMode::PaperLiteral => 0.0,
                }
            }
            // Cross-column column-constant pair.
            (Num { .. } | Cat { .. }, Num { .. } | Cat { .. }) => match self.mode {
                DistanceMode::Dissimilarity => 1.0,
                DistanceMode::PaperLiteral => p1.frac() * p2.frac(),
            },
            // Join vs column-constant: no meaningful overlap.
            _ => match self.mode {
                DistanceMode::Dissimilarity => 1.0,
                DistanceMode::PaperLiteral => 0.0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_small_and_wide_agree() {
        let small = TableMask::from_bits(&[0, 3, 63]);
        assert!(small.is_small());
        assert_eq!(small.popcount(), 3);
        let wide = TableMask::from_bits(&[0, 3, 63, 64, 130]);
        assert!(!wide.is_small());
        assert_eq!(wide.popcount(), 5);
        let (inter, union) = small.inter_union(&wide);
        assert_eq!((inter, union), (3, 5));
        // Symmetric across representations.
        assert_eq!(wide.inter_union(&small), (3, 5));
    }

    #[test]
    fn jaccard_counts_corner_cases() {
        assert_eq!(jaccard_from_counts(0, 0), 0.0);
        assert_eq!(jaccard_from_counts(0, 2), 1.0);
        assert_eq!(jaccard_from_counts(2, 2), 0.0);
        assert!((jaccard_from_counts(1, 2) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn interner_ids_are_sorted_order() {
        let a = AccessArea::new(["Zeta".to_string(), "alpha".to_string()]);
        let b = AccessArea::new(["Mid".to_string()]);
        let fwd = TableInterner::build([&a, &b]);
        let rev = TableInterner::build([&b, &a]);
        for name in ["alpha", "mid", "zeta"] {
            assert_eq!(fwd.id(name), rev.id(name), "{name}");
        }
        assert_eq!(fwd.id("alpha"), Some(0));
        assert_eq!(fwd.id("mid"), Some(1));
        assert_eq!(fwd.id("zeta"), Some(2));
        assert_eq!(fwd.name(2), Some("zeta"));
    }
}

//! JSON views of the core types (the former `serde` derives, now explicit
//! and zero-dependency via [`aa_util::json`]).
//!
//! Writers exist for every type an experiment artifact may want to dump
//! (areas, constraints, intervals); [`Interval`] additionally reads back,
//! since range snapshots are the one thing experiments re-load.

use crate::area::AccessArea;
use crate::cnf::{Cnf, Disjunction};
use crate::interval::Interval;
use crate::pipeline::PipelineStats;
use crate::predicate::{AtomicPredicate, CmpOp, Constant, QualifiedColumn};
use crate::ranges::{AccessRanges, ColumnAccess};
use aa_util::{FromJson, Json, JsonError, ToJson};

fn field<'a>(json: &'a Json, ty: &str, k: &str) -> Result<&'a Json, JsonError> {
    json.get(k)
        .ok_or_else(|| JsonError(format!("{ty}: missing '{k}'")))
}

impl ToJson for Interval {
    fn to_json(&self) -> Json {
        Json::obj([
            ("lo".to_string(), Json::Num(self.lo)),
            ("hi".to_string(), Json::Num(self.hi)),
            ("lo_open".to_string(), Json::Bool(self.lo_open)),
            ("hi_open".to_string(), Json::Bool(self.hi_open)),
        ])
    }
}

impl FromJson for Interval {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let field = |k: &str| {
            json.get(k)
                .ok_or_else(|| JsonError(format!("interval: missing '{k}'")))
        };
        // Infinite bounds serialise as null (JSON has no Inf); map back.
        let num = |k: &str, inf: f64| -> Result<f64, JsonError> {
            match field(k)? {
                Json::Null => Ok(inf),
                v => f64::from_json(v),
            }
        };
        Ok(Interval {
            lo: num("lo", f64::NEG_INFINITY)?,
            hi: num("hi", f64::INFINITY)?,
            lo_open: bool::from_json(field("lo_open")?)?,
            hi_open: bool::from_json(field("hi_open")?)?,
        })
    }
}

impl ToJson for QualifiedColumn {
    fn to_json(&self) -> Json {
        Json::obj([
            ("table".to_string(), Json::Str(self.table.clone())),
            ("column".to_string(), Json::Str(self.column.clone())),
        ])
    }
}

impl ToJson for CmpOp {
    fn to_json(&self) -> Json {
        Json::Str(self.symbol().to_string())
    }
}

impl ToJson for Constant {
    fn to_json(&self) -> Json {
        match self {
            Constant::Num(x) => Json::Num(*x),
            Constant::Str(s) => Json::Str(s.clone()),
        }
    }
}

impl ToJson for AtomicPredicate {
    fn to_json(&self) -> Json {
        match self {
            AtomicPredicate::ColumnConstant { column, op, value } => Json::obj([
                ("kind".to_string(), Json::Str("column_constant".into())),
                ("column".to_string(), column.to_json()),
                ("op".to_string(), op.to_json()),
                ("value".to_string(), value.to_json()),
            ]),
            AtomicPredicate::ColumnColumn { left, op, right } => Json::obj([
                ("kind".to_string(), Json::Str("column_column".into())),
                ("left".to_string(), left.to_json()),
                ("op".to_string(), op.to_json()),
                ("right".to_string(), right.to_json()),
            ]),
        }
    }
}

impl ToJson for Disjunction {
    fn to_json(&self) -> Json {
        Json::arr(self.atoms.iter())
    }
}

impl ToJson for Cnf {
    fn to_json(&self) -> Json {
        Json::arr(self.clauses.iter())
    }
}

impl ToJson for AccessArea {
    fn to_json(&self) -> Json {
        Json::obj([
            (
                "tables".to_string(),
                Json::Arr(
                    self.table_names()
                        .map(|t| Json::Str(t.to_string()))
                        .collect(),
                ),
            ),
            ("constraint".to_string(), self.constraint.to_json()),
            ("exact".to_string(), Json::Bool(self.exact)),
            (
                "provably_empty".to_string(),
                Json::Bool(self.provably_empty),
            ),
            (
                "intermediate_sql".to_string(),
                Json::Str(self.to_intermediate_sql()),
            ),
        ])
    }
}

impl FromJson for QualifiedColumn {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(QualifiedColumn::new(
            String::from_json(field(json, "column", "table")?)?,
            String::from_json(field(json, "column", "column")?)?,
        ))
    }
}

impl FromJson for CmpOp {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json.as_str() {
            Some("=") => Ok(CmpOp::Eq),
            Some("<>") => Ok(CmpOp::Neq),
            Some("<") => Ok(CmpOp::Lt),
            Some("<=") => Ok(CmpOp::LtEq),
            Some(">") => Ok(CmpOp::Gt),
            Some(">=") => Ok(CmpOp::GtEq),
            other => Err(JsonError(format!("op: unknown symbol {other:?}"))),
        }
    }
}

impl FromJson for Constant {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json {
            Json::Num(x) => Ok(Constant::Num(*x)),
            Json::Str(s) => Ok(Constant::Str(s.clone())),
            other => Err(JsonError(format!(
                "constant: expected number or string, got {other:?}"
            ))),
        }
    }
}

impl FromJson for AtomicPredicate {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match field(json, "atom", "kind")?.as_str() {
            Some("column_constant") => Ok(AtomicPredicate::ColumnConstant {
                column: QualifiedColumn::from_json(field(json, "atom", "column")?)?,
                op: CmpOp::from_json(field(json, "atom", "op")?)?,
                value: Constant::from_json(field(json, "atom", "value")?)?,
            }),
            Some("column_column") => Ok(AtomicPredicate::ColumnColumn {
                left: QualifiedColumn::from_json(field(json, "atom", "left")?)?,
                op: CmpOp::from_json(field(json, "atom", "op")?)?,
                right: QualifiedColumn::from_json(field(json, "atom", "right")?)?,
            }),
            other => Err(JsonError(format!("atom: unknown kind {other:?}"))),
        }
    }
}

impl FromJson for Disjunction {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Disjunction {
            atoms: Vec::<AtomicPredicate>::from_json(json)?,
        })
    }
}

impl FromJson for Cnf {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Cnf::new(Vec::<Disjunction>::from_json(json)?))
    }
}

impl FromJson for AccessArea {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let tables = Vec::<String>::from_json(field(json, "area", "tables")?)?;
        let mut area = AccessArea::new(tables);
        area.constraint = Cnf::from_json(field(json, "area", "constraint")?)?;
        area.exact = bool::from_json(field(json, "area", "exact")?)?;
        area.provably_empty = bool::from_json(field(json, "area", "provably_empty")?)?;
        // `intermediate_sql` is a derived view; it is re-rendered on demand.
        Ok(area)
    }
}

impl ToJson for ColumnAccess {
    fn to_json(&self) -> Json {
        match self {
            ColumnAccess::Numeric(iv) => Json::obj([
                ("kind".to_string(), Json::Str("numeric".into())),
                ("interval".to_string(), iv.to_json()),
            ]),
            ColumnAccess::Categorical(values) => Json::obj([
                ("kind".to_string(), Json::Str("categorical".into())),
                (
                    "values".to_string(),
                    Json::Arr(values.iter().map(|v| Json::Str(v.clone())).collect()),
                ),
            ]),
        }
    }
}

impl FromJson for ColumnAccess {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match field(json, "access", "kind")?.as_str() {
            Some("numeric") => Ok(ColumnAccess::Numeric(Interval::from_json(field(
                json, "access", "interval",
            )?)?)),
            Some("categorical") => Ok(ColumnAccess::Categorical(
                Vec::<String>::from_json(field(json, "access", "values")?)?
                    .into_iter()
                    .collect(),
            )),
            other => Err(JsonError(format!("access: unknown kind {other:?}"))),
        }
    }
}

/// Deterministic view: entries sorted by `(table, column)` key.
impl ToJson for AccessRanges {
    fn to_json(&self) -> Json {
        Json::Arr(
            self.iter()
                .map(|(col, access)| {
                    Json::obj([
                        ("column".to_string(), col.to_json()),
                        ("access".to_string(), access.to_json()),
                    ])
                })
                .collect(),
        )
    }
}

impl FromJson for AccessRanges {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let entries = json
            .as_arr()
            .ok_or_else(|| JsonError("ranges: expected an array".into()))?;
        let mut ranges = AccessRanges::new();
        for entry in entries {
            ranges.insert(
                QualifiedColumn::from_json(field(entry, "ranges", "column")?)?,
                ColumnAccess::from_json(field(entry, "ranges", "access")?)?,
            );
        }
        Ok(ranges)
    }
}

/// Deterministic fields only: counts and the diagnostic histogram.
/// Timings (`wall`, per-step ranges) are excluded on purpose — they vary
/// run to run, and this view is what checkpoints persist and what the
/// resume-equality tests compare.
impl ToJson for PipelineStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("total".to_string(), self.total.to_json()),
            ("extracted".to_string(), self.extracted.to_json()),
            ("syntax_errors".to_string(), self.syntax_errors.to_json()),
            ("not_select".to_string(), self.not_select.to_json()),
            ("udf".to_string(), self.udf.to_json()),
            ("unsupported".to_string(), self.unsupported.to_json()),
            ("semantic_errors".to_string(), self.semantic_errors.to_json()),
            ("internal_errors".to_string(), self.internal_errors.to_json()),
            ("budget_exceeded".to_string(), self.budget_exceeded.to_json()),
            ("mysql_dialect".to_string(), self.mysql_dialect.to_json()),
            ("approximate".to_string(), self.approximate.to_json()),
            ("provably_empty".to_string(), self.provably_empty.to_json()),
            (
                "diagnostic_counts".to_string(),
                Json::obj(
                    self.diagnostic_counts
                        .iter()
                        .map(|(code, n)| (code.clone(), n.to_json())),
                ),
            ),
        ])
    }
}

impl FromJson for PipelineStats {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let count = |k: &str| -> Result<usize, JsonError> {
            json.get(k)
                .ok_or_else(|| JsonError(format!("stats: missing '{k}'")))
                .and_then(f64::from_json)
                .map(|x| x as usize)
        };
        let mut stats = PipelineStats {
            total: count("total")?,
            extracted: count("extracted")?,
            syntax_errors: count("syntax_errors")?,
            not_select: count("not_select")?,
            udf: count("udf")?,
            unsupported: count("unsupported")?,
            semantic_errors: count("semantic_errors")?,
            internal_errors: count("internal_errors")?,
            budget_exceeded: count("budget_exceeded")?,
            mysql_dialect: count("mysql_dialect")?,
            approximate: count("approximate")?,
            provably_empty: count("provably_empty")?,
            ..PipelineStats::default()
        };
        match json.get("diagnostic_counts") {
            Some(Json::Obj(fields)) => {
                for (code, n) in fields {
                    stats
                        .diagnostic_counts
                        .insert(code.clone(), f64::from_json(n)? as usize);
                }
            }
            Some(_) => return Err(JsonError("diagnostic_counts must be an object".into())),
            None => return Err(JsonError("stats: missing 'diagnostic_counts'".into())),
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{Extractor, NoSchema};

    #[test]
    fn interval_json_round_trip() {
        for iv in [
            Interval::closed(-2.5, 7.0),
            Interval::point(3.0),
            Interval::below(4.0, true),
            Interval::all(),
        ] {
            let text = iv.to_json().to_string_compact();
            let back = Interval::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, iv, "{text}");
        }
    }

    #[test]
    fn area_json_carries_tables_and_constraint() {
        let area = Extractor::new(&NoSchema)
            .extract_sql("SELECT * FROM T, S WHERE T.u <= 5 AND S.cls = 'star'")
            .unwrap();
        let json = area.to_json();
        let tables: Vec<&str> = json
            .get("tables")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter_map(Json::as_str)
            .collect();
        assert_eq!(tables, vec!["S", "T"]);
        assert_eq!(
            json.get("constraint").unwrap().as_arr().unwrap().len(),
            area.constraint.len()
        );
        assert_eq!(json.get("exact").unwrap().as_bool(), Some(true));
        // The document is valid JSON and re-parses.
        let reparsed = Json::parse(&json.to_string_pretty()).unwrap();
        assert_eq!(reparsed, json);
    }

    #[test]
    fn pipeline_stats_round_trip_is_deterministic() {
        let provider = NoSchema;
        let pipeline = crate::Pipeline::new(&provider);
        let (_, _, stats) = pipeline.process_log([
            "SELECT * FROM T WHERE u > 1",
            "SELEC * FORM T",
            "SELECT objid FROM Galaxies LIMIT 10",
        ]);
        let json = stats.to_json();
        // Nondeterministic timing fields never leak into the view.
        assert!(json.get("wall").is_none());
        assert!(json.get("parse_range").is_none());
        let back = PipelineStats::from_json(&Json::parse(&json.to_string_compact()).unwrap())
            .unwrap();
        assert_eq!(back.to_json(), json);
        assert_eq!(back.total, 3);
        assert_eq!(back.extracted, 2);
        assert_eq!(back.syntax_errors, 1);
        assert_eq!(back.mysql_dialect, 1);
    }

    #[test]
    fn predicate_json_shapes() {
        let cc = AtomicPredicate::cc(
            QualifiedColumn::new("T", "u"),
            CmpOp::LtEq,
            Constant::Num(5.0),
        );
        let json = cc.to_json();
        assert_eq!(json.get("kind").unwrap().as_str(), Some("column_constant"));
        assert_eq!(json.get("op").unwrap().as_str(), Some("<="));
        let join = AtomicPredicate::join(
            QualifiedColumn::new("T", "u"),
            CmpOp::Eq,
            QualifiedColumn::new("S", "u"),
        );
        assert_eq!(
            join.to_json().get("kind").unwrap().as_str(),
            Some("column_column")
        );
    }
}

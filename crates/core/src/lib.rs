//! # aa-core — access-area extraction and query distance
//!
//! The primary contribution of *"Identifying User Interests within the
//! Data Space — a Case Study with SkyServer"* (Nguyen et al., EDBT 2015),
//! reimplemented from scratch in Rust:
//!
//! * **Access areas** (Section 2): a query's access area is the set of
//!   universal-relation tuples that influence its result in *some*
//!   schema-allowed database state — independent of the current content,
//!   which is what lets the method discover heavily-queried *empty* areas
//!   of the data space.
//! * **Extraction** (Section 4): the mapping from every query type in the
//!   log to its access area — simple queries, all join flavours, aggregate
//!   `HAVING` queries via the Lemma 1–3 case analysis, and nested
//!   `EXISTS`/`IN`/`ANY`/`ALL` queries via the Lemma 4–6 transformations —
//!   producing the intermediate format `SELECT * FROM R₁,…,R_N WHERE
//!   CNF(p₁,…,p_K)`.
//! * **Distance** (Section 5): `d = d_tables + d_conj` over table sets and
//!   CNF constraints, normalised by the tracked `access(a)` ranges.
//! * **Pipeline** (Section 4.5): parse → extract → CNF → consolidate with
//!   per-step timings and the Section 6.1 failure taxonomy.
//!
//! ```
//! use aa_core::extract::{Extractor, NoSchema};
//!
//! let provider = NoSchema;
//! let area = Extractor::new(&provider)
//!     .extract_sql("SELECT * FROM T WHERE u BETWEEN 1 AND 8")
//!     .unwrap();
//! assert_eq!(
//!     area.to_intermediate_sql(),
//!     "SELECT * FROM T WHERE T.u >= 1 AND T.u <= 8"
//! );
//! ```

#![forbid(unsafe_code)]



pub mod analysis;
pub mod area;
pub mod boolexpr;
pub mod cnf;
pub mod consolidate;
pub mod distance;
pub mod error;
pub mod extract;
pub mod interval;
pub mod jsonio;
pub mod kernel;
pub mod model;
pub mod pipeline;
pub mod predicate;
pub mod ranges;
pub mod runner;

pub use analysis::{AnalyzeMode, Diagnostic, QueryAnalyzer, Severity};
pub use area::AccessArea;
pub use boolexpr::{BoolExpr, CnfConversion};
pub use cnf::{Cnf, Disjunction};
pub use distance::{DistanceMode, QueryDistance};
pub use error::{ExtractError, ExtractResult, UnsupportedConstruct};
pub use extract::{ColumnType, ExtractConfig, Extractor, NoSchema, SchemaProvider};
pub use interval::Interval;
pub use kernel::{
    area_table_set, jaccard_from_counts, jaccard_str_sets, DistanceCounters, DistanceKernel,
    FlatQuery, TableInterner, TableMask,
};
pub use model::{ClusteredModel, ModelError};
pub use pipeline::{
    ExtractedQuery, FailedQuery, FailureKind, NoHooks, Pipeline, PipelineStats, Stage,
    StageFault, StageHooks, StepTimings,
};
pub use predicate::{AtomicPredicate, CmpOp, Constant, QualifiedColumn};
pub use ranges::{AccessRanges, ColumnAccess};
pub use runner::{
    areas_sidecar, catch_quietly, failure_histogram, read_quarantine, read_quarantine_tolerant,
    FaultKind, FaultPlan, LogRunner, QuarantineRecord, RunReport, RunnerConfig, RunnerError,
};

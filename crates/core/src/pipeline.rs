//! The end-to-end log-processing pipeline (Section 4.5): parse →
//! analyze (optional gate) → transform/extract → CNF → consolidate, with
//! per-step timing and the failure taxonomy of Section 6.1.

use crate::analysis::{AnalyzeMode, Diagnostic, QueryAnalyzer, Severity};
use crate::area::AccessArea;
use crate::error::{ExtractError, UnsupportedConstruct};
use crate::extract::{ExtractConfig, Extractor, SchemaProvider};
use aa_sql::{ParseErrorKind, Span};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Why a log entry yielded no access area, mirroring Section 6.1:
/// "(a) contain errors, (b) use user-defined SkyServer-specific functions,
/// or (c) are not SELECT queries" — extended with the two operational
/// failure domains of the hardened runner (panics, resource budgets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FailureKind {
    /// Syntax errors.
    SyntaxError,
    /// `CREATE TABLE` / `DECLARE` / other admin statements.
    NotSelect,
    /// User-defined functions the pipeline rejects.
    UserDefinedFunction,
    /// Other recognised-but-unsupported constructs (e.g. `UNION`).
    Unsupported,
    /// Parsed, but rejected by the semantic analyzer in
    /// [`AnalyzeMode::Strict`] (unknown column, incoherent types, ...).
    SemanticError,
    /// A panic (or injected synthetic error) inside the pipeline itself,
    /// caught and recorded by the hardened runner instead of crashing
    /// the whole run.
    Internal,
    /// The query exceeded its per-query fuel budget or wall-clock
    /// deadline (see [`crate::runner::RunnerConfig`]).
    BudgetExceeded,
}

impl FailureKind {
    /// Every kind, in a fixed report order.
    pub const ALL: [FailureKind; 7] = [
        FailureKind::SyntaxError,
        FailureKind::NotSelect,
        FailureKind::UserDefinedFunction,
        FailureKind::Unsupported,
        FailureKind::SemanticError,
        FailureKind::Internal,
        FailureKind::BudgetExceeded,
    ];

    /// Stable string tag used by the quarantine sidecar.
    pub fn as_str(&self) -> &'static str {
        match self {
            FailureKind::SyntaxError => "syntax-error",
            FailureKind::NotSelect => "not-select",
            FailureKind::UserDefinedFunction => "udf",
            FailureKind::Unsupported => "unsupported",
            FailureKind::SemanticError => "semantic-error",
            FailureKind::Internal => "internal",
            FailureKind::BudgetExceeded => "budget-exceeded",
        }
    }

    /// Inverse of [`FailureKind::as_str`].
    pub fn parse(tag: &str) -> Option<FailureKind> {
        FailureKind::ALL.into_iter().find(|k| k.as_str() == tag)
    }
}

/// The four pipeline stages, in execution order. Each is a fault domain
/// for the hardened runner: budgets are charged and faults injected at
/// stage granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    Parse,
    Lower,
    Cnf,
    Consolidate,
}

impl Stage {
    /// All stages, in execution order.
    pub const ALL: [Stage; 4] = [Stage::Parse, Stage::Lower, Stage::Cnf, Stage::Consolidate];

    pub fn name(&self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Lower => "lower",
            Stage::Cnf => "cnf",
            Stage::Consolidate => "consolidate",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How a [`StageHooks`] implementation aborts the in-flight query.
#[derive(Debug, Clone)]
pub enum StageFault {
    /// Abort with [`FailureKind::Internal`] (synthetic errors).
    Error(String),
    /// Abort with [`FailureKind::BudgetExceeded`] (fuel or deadline).
    Budget(String),
}

impl StageFault {
    pub fn kind(&self) -> FailureKind {
        match self {
            StageFault::Error(_) => FailureKind::Internal,
            StageFault::Budget(_) => FailureKind::BudgetExceeded,
        }
    }

    pub fn message(&self) -> &str {
        match self {
            StageFault::Error(m) | StageFault::Budget(m) => m,
        }
    }
}

/// Per-stage observation points threaded through
/// [`Pipeline::process_hooked`]. The hardened runner uses these to charge
/// deterministic fuel costs, enforce deadlines, and inject faults; the
/// default implementations do nothing.
pub trait StageHooks {
    /// Called before a stage runs. `Err` aborts the query; a panic here
    /// unwinds like a stage panic (the runner's `catch_unwind` catches it).
    fn before_stage(&mut self, _stage: Stage) -> Result<(), StageFault> {
        Ok(())
    }

    /// Called after a stage completes with its deterministic cost in fuel
    /// units (input bytes for parse, atom counts for the later stages).
    fn after_stage(&mut self, _stage: Stage, _cost: u64) -> Result<(), StageFault> {
        Ok(())
    }
}

/// The no-op hooks used by [`Pipeline::process`].
pub struct NoHooks;

impl StageHooks for NoHooks {}

/// Timings of the four pipeline steps, as reported in Section 6.6.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StepTimings {
    pub parse: Duration,
    pub extract: Duration,
    pub cnf: Duration,
    pub consolidate: Duration,
}

impl StepTimings {
    /// Total wall time of the pipeline for one query.
    pub fn total(&self) -> Duration {
        self.parse + self.extract + self.cnf + self.consolidate
    }
}

/// A successfully processed log entry.
#[derive(Debug, Clone)]
pub struct ExtractedQuery {
    /// Index of the entry in the input log.
    pub log_index: usize,
    pub area: AccessArea,
    pub timings: StepTimings,
    /// True when the statement used MySQL-only syntax (`LIMIT`), which the
    /// real SkyServer rejects but the extractor still handles
    /// (Section 6.6's quality discussion).
    pub mysql_dialect: bool,
    /// Analyzer findings (empty when the gate is [`AnalyzeMode::Off`] or
    /// no analyzer is attached).
    pub diagnostics: Vec<Diagnostic>,
}

/// A failed log entry.
#[derive(Debug, Clone)]
pub struct FailedQuery {
    pub log_index: usize,
    pub kind: FailureKind,
    pub message: String,
    /// Source span of the failure when the parser or analyzer anchored it.
    pub span: Option<Span>,
    /// Full analyzer findings for queries rejected by the strict gate
    /// (empty for parse/extract failures), so the per-code histogram
    /// covers the whole log regardless of gating outcome.
    pub diagnostics: Vec<Diagnostic>,
}

/// Aggregate statistics over a processed log.
#[derive(Debug, Clone, Default)]
pub struct PipelineStats {
    pub total: usize,
    pub extracted: usize,
    pub syntax_errors: usize,
    pub not_select: usize,
    pub udf: usize,
    pub unsupported: usize,
    /// Queries rejected by the strict analyzer gate.
    pub semantic_errors: usize,
    /// Panics or injected synthetic errors caught by the hardened runner.
    pub internal_errors: usize,
    /// Queries that ran out of fuel budget or deadline.
    pub budget_exceeded: usize,
    pub mysql_dialect: usize,
    /// Areas whose extraction was approximate.
    pub approximate: usize,
    /// Areas proven empty (contradictions, impossible HAVING).
    pub provably_empty: usize,
    /// Histogram of analyzer diagnostics over the whole log, keyed by
    /// registry code (`E0xx`/`W0xx`). BTreeMap keeps the report order
    /// deterministic. Owned `String` keys so checkpoints round-trip.
    pub diagnostic_counts: BTreeMap<String, usize>,
    /// Per-step (min, max) over all extracted queries.
    pub parse_range: Option<(Duration, Duration)>,
    pub extract_range: Option<(Duration, Duration)>,
    pub cnf_range: Option<(Duration, Duration)>,
    pub consolidate_range: Option<(Duration, Duration)>,
    /// Total pipeline wall time.
    pub wall: Duration,
}

impl PipelineStats {
    /// Fraction of the log with an extracted access area (the paper
    /// reports 99.4%+).
    pub fn extraction_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.extracted as f64 / self.total as f64
        }
    }

    fn record_failure(&mut self, kind: FailureKind) {
        match kind {
            FailureKind::SyntaxError => self.syntax_errors += 1,
            FailureKind::NotSelect => self.not_select += 1,
            FailureKind::UserDefinedFunction => self.udf += 1,
            FailureKind::Unsupported => self.unsupported += 1,
            FailureKind::SemanticError => self.semantic_errors += 1,
            FailureKind::Internal => self.internal_errors += 1,
            FailureKind::BudgetExceeded => self.budget_exceeded += 1,
        }
    }

    /// Count of failures recorded under `kind`.
    pub fn failure_count(&self, kind: FailureKind) -> usize {
        match kind {
            FailureKind::SyntaxError => self.syntax_errors,
            FailureKind::NotSelect => self.not_select,
            FailureKind::UserDefinedFunction => self.udf,
            FailureKind::Unsupported => self.unsupported,
            FailureKind::SemanticError => self.semantic_errors,
            FailureKind::Internal => self.internal_errors,
            FailureKind::BudgetExceeded => self.budget_exceeded,
        }
    }

    /// Total failures of any kind; `total == extracted + failure_total()`
    /// always holds for a fully-accounted run.
    pub fn failure_total(&self) -> usize {
        FailureKind::ALL.iter().map(|k| self.failure_count(*k)).sum()
    }

    fn record_diagnostics(&mut self, diagnostics: &[Diagnostic]) {
        for d in diagnostics {
            *self.diagnostic_counts.entry(d.code.to_string()).or_insert(0) += 1;
        }
    }

    /// Folds one processed entry into the aggregate — the single
    /// accounting path shared by [`Pipeline::process_log`] and the
    /// hardened runner, so both report identical statistics.
    pub(crate) fn absorb(&mut self, outcome: &Result<ExtractedQuery, FailedQuery>) {
        self.total += 1;
        match outcome {
            Ok(q) => {
                self.extracted += 1;
                if q.mysql_dialect {
                    self.mysql_dialect += 1;
                }
                if !q.area.exact {
                    self.approximate += 1;
                }
                if q.area.provably_empty {
                    self.provably_empty += 1;
                }
                self.record_diagnostics(&q.diagnostics);
                self.record_timing(&q.timings);
            }
            Err(f) => {
                self.record_failure(f.kind);
                self.record_diagnostics(&f.diagnostics);
            }
        }
    }

    fn record_timing(&mut self, t: &StepTimings) {
        fn upd(range: &mut Option<(Duration, Duration)>, d: Duration) {
            *range = Some(match range {
                None => (d, d),
                Some((lo, hi)) => ((*lo).min(d), (*hi).max(d)),
            });
        }
        upd(&mut self.parse_range, t.parse);
        upd(&mut self.extract_range, t.extract);
        upd(&mut self.cnf_range, t.cnf);
        upd(&mut self.consolidate_range, t.consolidate);
    }
}

/// The processing pipeline.
pub struct Pipeline<'a> {
    extractor: Extractor<'a>,
    analyzer: Option<&'a dyn QueryAnalyzer>,
    analyze_mode: AnalyzeMode,
}

impl<'a> Pipeline<'a> {
    pub fn new(provider: &'a dyn SchemaProvider) -> Self {
        Pipeline {
            extractor: Extractor::new(provider),
            analyzer: None,
            analyze_mode: AnalyzeMode::Off,
        }
    }

    pub fn with_config(provider: &'a dyn SchemaProvider, config: ExtractConfig) -> Self {
        Pipeline {
            extractor: Extractor::with_config(provider, config),
            analyzer: None,
            analyze_mode: AnalyzeMode::Off,
        }
    }

    /// Attaches a semantic analyzer as a gate between parsing and
    /// extraction. With [`AnalyzeMode::Off`] the analyzer is never called;
    /// `Warn` records diagnostics, `Strict` additionally rejects queries
    /// with `Error`-severity findings.
    pub fn with_analyzer(mut self, analyzer: &'a dyn QueryAnalyzer, mode: AnalyzeMode) -> Self {
        self.analyzer = Some(analyzer);
        self.analyze_mode = mode;
        self
    }

    /// Processes one log entry with per-step timing.
    pub fn process(&self, log_index: usize, sql: &str) -> Result<ExtractedQuery, FailedQuery> {
        self.process_hooked(log_index, sql, &mut NoHooks)
    }

    /// Processes one log entry, calling `hooks` around each stage. This is
    /// the entry point of the hardened runner: hooks charge deterministic
    /// fuel costs, enforce deadlines, and inject faults per stage.
    pub fn process_hooked(
        &self,
        log_index: usize,
        sql: &str,
        hooks: &mut dyn StageHooks,
    ) -> Result<ExtractedQuery, FailedQuery> {
        let classify = |e: ExtractError| -> FailedQuery {
            let (kind, message, span) = match &e {
                ExtractError::Parse(p) => (
                    match p.kind {
                        ParseErrorKind::Syntax => FailureKind::SyntaxError,
                        ParseErrorKind::NotSelect => FailureKind::NotSelect,
                        // Table-valued UDFs surface as unsupported parse
                        // constructs; fold them into the UDF bucket.
                        ParseErrorKind::Unsupported if p.message.contains("function") => {
                            FailureKind::UserDefinedFunction
                        }
                        ParseErrorKind::Unsupported => FailureKind::Unsupported,
                    },
                    p.to_string(),
                    Some(p.span),
                ),
                ExtractError::Unsupported(kind) => (
                    match kind {
                        UnsupportedConstruct::UserDefinedFunction(_) => {
                            FailureKind::UserDefinedFunction
                        }
                        UnsupportedConstruct::NonComparisonOperator(_) => FailureKind::Unsupported,
                    },
                    kind.to_string(),
                    None,
                ),
            };
            FailedQuery {
                log_index,
                kind,
                message,
                span,
                diagnostics: Vec::new(),
            }
        };

        let faulted = |fault: StageFault| -> FailedQuery {
            FailedQuery {
                log_index,
                kind: fault.kind(),
                message: fault.message().to_string(),
                span: None,
                diagnostics: Vec::new(),
            }
        };

        hooks.before_stage(Stage::Parse).map_err(&faulted)?;
        let t0 = Instant::now();
        let select = aa_sql::parse_select(sql).map_err(|e| classify(e.into()))?;
        let parse = t0.elapsed();
        hooks
            .after_stage(Stage::Parse, 1 + sql.len() as u64)
            .map_err(&faulted)?;

        let diagnostics = match (self.analyzer, self.analyze_mode) {
            (Some(analyzer), AnalyzeMode::Warn | AnalyzeMode::Strict) => {
                analyzer.analyze(sql, &select)
            }
            _ => Vec::new(),
        };
        if self.analyze_mode == AnalyzeMode::Strict {
            if let Some(first) = diagnostics
                .iter()
                .find(|d| d.severity == Severity::Error)
            {
                return Err(FailedQuery {
                    log_index,
                    kind: FailureKind::SemanticError,
                    message: format!("{}: {}", first.code, first.message),
                    span: first.span,
                    diagnostics,
                });
            }
        }

        hooks.before_stage(Stage::Lower).map_err(&faulted)?;
        let t1 = Instant::now();
        let lowered = self.extractor.lower(&select).map_err(classify)?;
        let extract = t1.elapsed();
        hooks
            .after_stage(Stage::Lower, 1 + lowered.constraint.atom_count() as u64)
            .map_err(&faulted)?;

        hooks.before_stage(Stage::Cnf).map_err(&faulted)?;
        let t2 = Instant::now();
        let (converted, _) = self.extractor.convert(lowered);
        let cnf = t2.elapsed();
        hooks
            .after_stage(Stage::Cnf, 1 + converted.cnf.atoms().count() as u64)
            .map_err(&faulted)?;

        hooks.before_stage(Stage::Consolidate).map_err(&faulted)?;
        let t3 = Instant::now();
        let area = self.extractor.consolidate(converted);
        let consolidate = t3.elapsed();
        hooks
            .after_stage(Stage::Consolidate, 1 + area.constraint.len() as u64)
            .map_err(&faulted)?;

        Ok(ExtractedQuery {
            log_index,
            area,
            timings: StepTimings {
                parse,
                extract,
                cnf,
                consolidate,
            },
            mysql_dialect: select.uses_mysql_dialect(),
            diagnostics,
        })
    }

    /// Processes a whole log, producing extracted areas, failures, and
    /// aggregate statistics.
    pub fn process_log<S: AsRef<str>>(
        &self,
        log: impl IntoIterator<Item = S>,
    ) -> (Vec<ExtractedQuery>, Vec<FailedQuery>, PipelineStats) {
        let start = Instant::now();
        let mut extracted = Vec::new();
        let mut failed = Vec::new();
        let mut stats = PipelineStats::default();
        for (i, sql) in log.into_iter().enumerate() {
            let outcome = self.process(i, sql.as_ref());
            stats.absorb(&outcome);
            match outcome {
                Ok(q) => extracted.push(q),
                Err(f) => failed.push(f),
            }
        }
        stats.wall = start.elapsed();
        (extracted, failed, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::NoSchema;

    #[test]
    fn pipeline_classifies_failures_like_section_6_1() {
        let provider = NoSchema;
        let pipeline = Pipeline::new(&provider);
        let log = vec![
            "SELECT * FROM SpecObjAll WHERE plate BETWEEN 296 AND 3200", // ok
            "SELEC * FORM T",                                            // syntax
            "CREATE TABLE admin_tmp (x int)",                            // not select
            "SELECT * FROM PhotoObjAll WHERE dbo.fGetNearbyObjEq(1.0, 2.0, 3.0) = 1", // UDF
            "SELECT u FROM T UNION SELECT u FROM S",                     // unsupported
            "SELECT objid FROM Galaxies LIMIT 10",                       // MySQL dialect, ok
        ];
        let (extracted, failed, stats) = pipeline.process_log(log);
        assert_eq!(stats.total, 6);
        assert_eq!(stats.extracted, 2);
        assert_eq!(extracted.len(), 2);
        assert_eq!(stats.syntax_errors, 1);
        assert_eq!(stats.not_select, 1);
        assert_eq!(stats.udf, 1);
        assert_eq!(stats.unsupported, 1);
        assert_eq!(stats.semantic_errors, 0);
        assert_eq!(stats.mysql_dialect, 1);
        assert_eq!(failed.len(), 4);
        assert!((stats.extraction_rate() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn parse_failures_carry_spans() {
        let provider = NoSchema;
        let pipeline = Pipeline::new(&provider);
        let err = pipeline.process(0, "SELECT * FROM").unwrap_err();
        assert_eq!(err.kind, FailureKind::SyntaxError);
        assert!(err.span.is_some());
    }

    #[test]
    fn timings_are_recorded() {
        let provider = NoSchema;
        let pipeline = Pipeline::new(&provider);
        let q = pipeline
            .process(0, "SELECT * FROM T WHERE u >= 1 AND u <= 8 AND s > 5")
            .unwrap();
        // Durations exist (may be sub-microsecond but total is populated).
        let _ = q.timings.total();
        let (_, _, stats) = pipeline.process_log(["SELECT * FROM T WHERE u > 1"]);
        assert!(stats.parse_range.is_some());
        assert!(stats.cnf_range.is_some());
    }

    #[test]
    fn extracted_areas_carry_log_index() {
        let provider = NoSchema;
        let pipeline = Pipeline::new(&provider);
        let (extracted, _, _) =
            pipeline.process_log(["garbage(", "SELECT * FROM T WHERE u > 1"]);
        assert_eq!(extracted.len(), 1);
        assert_eq!(extracted[0].log_index, 1);
    }

    struct StubAnalyzer;

    impl QueryAnalyzer for StubAnalyzer {
        fn analyze(&self, _sql: &str, query: &aa_sql::Select) -> Vec<Diagnostic> {
            // Flag any query touching a table called `bad`.
            let hits = query
                .from
                .iter()
                .filter_map(|twj| match &twj.base {
                    aa_sql::TableFactor::Table { name, .. }
                        if name.base_name().eq_ignore_ascii_case("bad") =>
                    {
                        Some(name.span)
                    }
                    _ => None,
                })
                .collect::<Vec<_>>();
            hits.into_iter()
                .map(|span| Diagnostic::error("E999", "table is bad", Some(span)))
                .collect()
        }
    }

    #[test]
    fn strict_gate_rejects_and_warn_gate_records() {
        let provider = NoSchema;
        let analyzer = StubAnalyzer;
        let strict =
            Pipeline::new(&provider).with_analyzer(&analyzer, AnalyzeMode::Strict);
        let err = strict.process(0, "SELECT * FROM bad WHERE u > 1").unwrap_err();
        assert_eq!(err.kind, FailureKind::SemanticError);
        assert!(err.message.starts_with("E999"));
        assert!(err.span.is_some());
        assert!(strict.process(0, "SELECT * FROM good WHERE u > 1").is_ok());

        let warn = Pipeline::new(&provider).with_analyzer(&analyzer, AnalyzeMode::Warn);
        let q = warn.process(0, "SELECT * FROM bad WHERE u > 1").unwrap();
        assert_eq!(q.diagnostics.len(), 1);
        let (_, _, stats) = warn.process_log(["SELECT * FROM bad", "SELECT * FROM good"]);
        assert_eq!(stats.diagnostic_counts.get("E999"), Some(&1));
        assert_eq!(stats.semantic_errors, 0);

        let off = Pipeline::new(&provider).with_analyzer(&analyzer, AnalyzeMode::Off);
        let q = off.process(0, "SELECT * FROM bad").unwrap();
        assert!(q.diagnostics.is_empty());
    }
}

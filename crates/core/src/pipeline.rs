//! The end-to-end log-processing pipeline (Section 4.5): parse →
//! transform/extract → CNF → consolidate, with per-step timing and the
//! failure taxonomy of Section 6.1.

use crate::area::AccessArea;
use crate::error::ExtractError;
use crate::extract::{ExtractConfig, Extractor, SchemaProvider};
use aa_sql::ParseErrorKind;
use std::time::{Duration, Instant};

/// Why a log entry yielded no access area, mirroring Section 6.1:
/// "(a) contain errors, (b) use user-defined SkyServer-specific functions,
/// or (c) are not SELECT queries".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// Syntax errors.
    SyntaxError,
    /// `CREATE TABLE` / `DECLARE` / other admin statements.
    NotSelect,
    /// User-defined functions the pipeline rejects.
    UserDefinedFunction,
    /// Other recognised-but-unsupported constructs (e.g. `UNION`).
    Unsupported,
}

/// Timings of the four pipeline steps, as reported in Section 6.6.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StepTimings {
    pub parse: Duration,
    pub extract: Duration,
    pub cnf: Duration,
    pub consolidate: Duration,
}

impl StepTimings {
    /// Total wall time of the pipeline for one query.
    pub fn total(&self) -> Duration {
        self.parse + self.extract + self.cnf + self.consolidate
    }
}

/// A successfully processed log entry.
#[derive(Debug, Clone)]
pub struct ExtractedQuery {
    /// Index of the entry in the input log.
    pub log_index: usize,
    pub area: AccessArea,
    pub timings: StepTimings,
    /// True when the statement used MySQL-only syntax (`LIMIT`), which the
    /// real SkyServer rejects but the extractor still handles
    /// (Section 6.6's quality discussion).
    pub mysql_dialect: bool,
}

/// A failed log entry.
#[derive(Debug, Clone)]
pub struct FailedQuery {
    pub log_index: usize,
    pub kind: FailureKind,
    pub message: String,
}

/// Aggregate statistics over a processed log.
#[derive(Debug, Clone, Default)]
pub struct PipelineStats {
    pub total: usize,
    pub extracted: usize,
    pub syntax_errors: usize,
    pub not_select: usize,
    pub udf: usize,
    pub unsupported: usize,
    pub mysql_dialect: usize,
    /// Areas whose extraction was approximate.
    pub approximate: usize,
    /// Areas proven empty (contradictions, impossible HAVING).
    pub provably_empty: usize,
    /// Per-step (min, max) over all extracted queries.
    pub parse_range: Option<(Duration, Duration)>,
    pub extract_range: Option<(Duration, Duration)>,
    pub cnf_range: Option<(Duration, Duration)>,
    pub consolidate_range: Option<(Duration, Duration)>,
    /// Total pipeline wall time.
    pub wall: Duration,
}

impl PipelineStats {
    /// Fraction of the log with an extracted access area (the paper
    /// reports 99.4%+).
    pub fn extraction_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.extracted as f64 / self.total as f64
        }
    }

    fn record_failure(&mut self, kind: FailureKind) {
        match kind {
            FailureKind::SyntaxError => self.syntax_errors += 1,
            FailureKind::NotSelect => self.not_select += 1,
            FailureKind::UserDefinedFunction => self.udf += 1,
            FailureKind::Unsupported => self.unsupported += 1,
        }
    }

    fn record_timing(&mut self, t: &StepTimings) {
        fn upd(range: &mut Option<(Duration, Duration)>, d: Duration) {
            *range = Some(match range {
                None => (d, d),
                Some((lo, hi)) => ((*lo).min(d), (*hi).max(d)),
            });
        }
        upd(&mut self.parse_range, t.parse);
        upd(&mut self.extract_range, t.extract);
        upd(&mut self.cnf_range, t.cnf);
        upd(&mut self.consolidate_range, t.consolidate);
    }
}

/// The processing pipeline.
pub struct Pipeline<'a> {
    extractor: Extractor<'a>,
}

impl<'a> Pipeline<'a> {
    pub fn new(provider: &'a dyn SchemaProvider) -> Self {
        Pipeline {
            extractor: Extractor::new(provider),
        }
    }

    pub fn with_config(provider: &'a dyn SchemaProvider, config: ExtractConfig) -> Self {
        Pipeline {
            extractor: Extractor::with_config(provider, config),
        }
    }

    /// Processes one log entry with per-step timing.
    pub fn process(&self, log_index: usize, sql: &str) -> Result<ExtractedQuery, FailedQuery> {
        let classify = |e: ExtractError| -> FailedQuery {
            let (kind, message) = match &e {
                ExtractError::Parse(p) => (
                    match p.kind {
                        ParseErrorKind::Syntax => FailureKind::SyntaxError,
                        ParseErrorKind::NotSelect => FailureKind::NotSelect,
                        // Table-valued UDFs surface as unsupported parse
                        // constructs; fold them into the UDF bucket.
                        ParseErrorKind::Unsupported if p.message.contains("function") => {
                            FailureKind::UserDefinedFunction
                        }
                        ParseErrorKind::Unsupported => FailureKind::Unsupported,
                    },
                    p.to_string(),
                ),
                ExtractError::Unsupported(msg) => (
                    if msg.contains("function") {
                        FailureKind::UserDefinedFunction
                    } else {
                        FailureKind::Unsupported
                    },
                    msg.clone(),
                ),
            };
            FailedQuery {
                log_index,
                kind,
                message,
            }
        };

        let t0 = Instant::now();
        let select = aa_sql::parse_select(sql).map_err(|e| classify(e.into()))?;
        let parse = t0.elapsed();

        let t1 = Instant::now();
        let lowered = self.extractor.lower(&select).map_err(classify)?;
        let extract = t1.elapsed();

        let t2 = Instant::now();
        let (converted, _) = self.extractor.convert(lowered);
        let cnf = t2.elapsed();

        let t3 = Instant::now();
        let area = self.extractor.consolidate(converted);
        let consolidate = t3.elapsed();

        Ok(ExtractedQuery {
            log_index,
            area,
            timings: StepTimings {
                parse,
                extract,
                cnf,
                consolidate,
            },
            mysql_dialect: select.uses_mysql_dialect(),
        })
    }

    /// Processes a whole log, producing extracted areas, failures, and
    /// aggregate statistics.
    pub fn process_log<S: AsRef<str>>(
        &self,
        log: impl IntoIterator<Item = S>,
    ) -> (Vec<ExtractedQuery>, Vec<FailedQuery>, PipelineStats) {
        let start = Instant::now();
        let mut extracted = Vec::new();
        let mut failed = Vec::new();
        let mut stats = PipelineStats::default();
        for (i, sql) in log.into_iter().enumerate() {
            stats.total += 1;
            match self.process(i, sql.as_ref()) {
                Ok(q) => {
                    stats.extracted += 1;
                    if q.mysql_dialect {
                        stats.mysql_dialect += 1;
                    }
                    if !q.area.exact {
                        stats.approximate += 1;
                    }
                    if q.area.provably_empty {
                        stats.provably_empty += 1;
                    }
                    stats.record_timing(&q.timings);
                    extracted.push(q);
                }
                Err(f) => {
                    stats.record_failure(f.kind);
                    failed.push(f);
                }
            }
        }
        stats.wall = start.elapsed();
        (extracted, failed, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::NoSchema;

    #[test]
    fn pipeline_classifies_failures_like_section_6_1() {
        let provider = NoSchema;
        let pipeline = Pipeline::new(&provider);
        let log = vec![
            "SELECT * FROM SpecObjAll WHERE plate BETWEEN 296 AND 3200", // ok
            "SELEC * FORM T",                                            // syntax
            "CREATE TABLE admin_tmp (x int)",                            // not select
            "SELECT * FROM PhotoObjAll WHERE dbo.fGetNearbyObjEq(1.0, 2.0, 3.0) = 1", // UDF
            "SELECT u FROM T UNION SELECT u FROM S",                     // unsupported
            "SELECT objid FROM Galaxies LIMIT 10",                       // MySQL dialect, ok
        ];
        let (extracted, failed, stats) = pipeline.process_log(log);
        assert_eq!(stats.total, 6);
        assert_eq!(stats.extracted, 2);
        assert_eq!(extracted.len(), 2);
        assert_eq!(stats.syntax_errors, 1);
        assert_eq!(stats.not_select, 1);
        assert_eq!(stats.udf, 1);
        assert_eq!(stats.unsupported, 1);
        assert_eq!(stats.mysql_dialect, 1);
        assert_eq!(failed.len(), 4);
        assert!((stats.extraction_rate() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn timings_are_recorded() {
        let provider = NoSchema;
        let pipeline = Pipeline::new(&provider);
        let q = pipeline
            .process(0, "SELECT * FROM T WHERE u >= 1 AND u <= 8 AND s > 5")
            .unwrap();
        // Durations exist (may be sub-microsecond but total is populated).
        let _ = q.timings.total();
        let (_, _, stats) = pipeline.process_log(["SELECT * FROM T WHERE u > 1"]);
        assert!(stats.parse_range.is_some());
        assert!(stats.cnf_range.is_some());
    }

    #[test]
    fn extracted_areas_carry_log_index() {
        let provider = NoSchema;
        let pipeline = Pipeline::new(&provider);
        let (extracted, _, _) =
            pipeline.process_log(["garbage(", "SELECT * FROM T WHERE u > 1"]);
        assert_eq!(extracted.len(), 1);
        assert_eq!(extracted[0].log_index, 1);
    }
}

//! `access(a)` tracking (Section 5.3).
//!
//! The distance function normalises predicate overlap by the width of
//! `access(a) = content(a) ∪ MBR(a)` — the column's (estimated) content
//! range united with everything queries in the log have touched. The paper
//! estimates `content(a)` by sampling ~100 rows and doubling the sampled
//! range, then widens `access(a)` whenever a processed query steps outside.

use crate::area::AccessArea;
use crate::interval::Interval;
use crate::predicate::{AtomicPredicate, Constant, QualifiedColumn};
use std::collections::{BTreeMap, BTreeSet};

/// Map key type: [`QualifiedColumn`] compares case-insensitively without
/// allocating, which matters because the distance function consults the
/// ranges once per predicate pair. A `BTreeMap` keeps the map in sorted
/// order at all times, so iteration — which serialisations rely on — is
/// deterministic by construction rather than by a sort at every call.
type Key = QualifiedColumn;

/// Tracked access range of one column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnAccess {
    /// Numeric interval (always finite, per the paper's data-type
    /// argument).
    Numeric(Interval),
    /// Set of accessed/contained categorical values (lower-cased).
    Categorical(BTreeSet<String>),
}

/// Per-column `access(a)` estimates for a whole database.
#[derive(Debug, Clone, Default)]
pub struct AccessRanges {
    map: BTreeMap<Key, ColumnAccess>,
}

impl AccessRanges {
    pub fn new() -> Self {
        AccessRanges::default()
    }

    /// Initialises from sampled content statistics of an engine catalog,
    /// applying the paper's doubling rule to numeric columns.
    pub fn from_catalog(catalog: &aa_engine::Catalog, sample_size: usize) -> Self {
        let mut ranges = AccessRanges::new();
        for stats in aa_engine::sample_catalog(catalog, sample_size) {
            for (column, content) in &stats.columns {
                let key = QualifiedColumn::new(stats.table.clone(), column.clone());
                match content {
                    aa_engine::ColumnContent::Numeric { .. } => {
                        let (lo, hi) = content.doubled_range().expect("numeric");
                        ranges
                            .map
                            .insert(key, ColumnAccess::Numeric(Interval::closed(lo, hi)));
                    }
                    aa_engine::ColumnContent::Categorical(values) => {
                        ranges
                            .map
                            .insert(key, ColumnAccess::Categorical(values.clone()));
                    }
                    aa_engine::ColumnContent::Empty => {}
                }
            }
        }
        ranges
    }

    /// Seeds a numeric column directly (tests, schema-only setups).
    pub fn set_numeric(&mut self, col: &QualifiedColumn, lo: f64, hi: f64) {
        self.map
            .insert(col.clone(), ColumnAccess::Numeric(Interval::closed(lo, hi)));
    }

    /// Seeds a categorical column directly.
    pub fn set_categorical(
        &mut self,
        col: &QualifiedColumn,
        values: impl IntoIterator<Item = String>,
    ) {
        self.map.insert(
            col.clone(),
            ColumnAccess::Categorical(values.into_iter().map(|v| v.to_lowercase()).collect()),
        );
    }

    /// Widens ranges with the constants a processed query accesses
    /// ("if it accesses data not falling into access(a), we update this
    /// range accordingly" — Section 5.3).
    pub fn observe_area(&mut self, area: &AccessArea) {
        for atom in area.constraint.atoms() {
            let AtomicPredicate::ColumnConstant { column, value, .. } = atom else {
                continue;
            };
            match value {
                Constant::Num(c) => {
                    if !c.is_finite() {
                        continue;
                    }
                    match self.map.get_mut(column) {
                        Some(ColumnAccess::Numeric(iv)) => {
                            *iv = iv.hull(&Interval::point(*c));
                        }
                        Some(ColumnAccess::Categorical(_)) => {}
                        None => {
                            self.map.insert(
                                column.clone(),
                                ColumnAccess::Numeric(Interval::point(*c)),
                            );
                        }
                    }
                }
                Constant::Str(s) => match self.map.get_mut(column) {
                    Some(ColumnAccess::Categorical(set)) => {
                        set.insert(s.to_lowercase());
                    }
                    Some(ColumnAccess::Numeric(_)) => {}
                    None => {
                        let mut set = BTreeSet::new();
                        set.insert(s.to_lowercase());
                        self.map
                            .insert(column.clone(), ColumnAccess::Categorical(set));
                    }
                },
            }
        }
    }

    /// Processes a whole collection of areas.
    pub fn observe_all<'a>(&mut self, areas: impl IntoIterator<Item = &'a AccessArea>) {
        for area in areas {
            self.observe_area(area);
        }
    }

    /// Applies the paper's doubling rule to every numeric range: each
    /// interval is widened symmetrically to twice its width. Use this when
    /// `access(a)` was bootstrapped from log observations alone (no
    /// database to sample): without the headroom, one-sided predicates
    /// with nearby cutoffs would appear maximally distant after clipping.
    pub fn apply_doubling(&mut self) {
        for access in self.map.values_mut() {
            if let ColumnAccess::Numeric(iv) = access {
                let half = iv.width() / 2.0;
                if half.is_finite() && half > 0.0 {
                    *iv = Interval::closed(iv.lo - half, iv.hi + half);
                }
            }
        }
    }

    /// The tracked access interval of a numeric column.
    pub fn numeric(&self, col: &QualifiedColumn) -> Option<Interval> {
        match self.map.get(col) {
            Some(ColumnAccess::Numeric(iv)) => Some(*iv),
            _ => None,
        }
    }

    /// The tracked value set of a categorical column.
    pub fn categorical(&self, col: &QualifiedColumn) -> Option<&BTreeSet<String>> {
        match self.map.get(col) {
            Some(ColumnAccess::Categorical(set)) => Some(set),
            _ => None,
        }
    }

    /// Width of `access(a)` for normalisation; `None` when untracked.
    pub fn width(&self, col: &QualifiedColumn) -> Option<f64> {
        match self.map.get(col) {
            Some(ColumnAccess::Numeric(iv)) => Some(iv.width()),
            Some(ColumnAccess::Categorical(set)) => Some(set.len() as f64),
            None => None,
        }
    }

    /// Seeds a column with an already-built access record (model loading).
    pub fn insert(&mut self, col: QualifiedColumn, access: ColumnAccess) {
        self.map.insert(col, access);
    }

    /// All tracked columns in deterministic (sorted) order — the iteration
    /// order serialisations rely on.
    pub fn iter(&self) -> impl Iterator<Item = (&QualifiedColumn, &ColumnAccess)> {
        self.map.iter()
    }

    /// Number of tracked columns.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is tracked yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{Extractor, NoSchema};

    fn area(sql: &str) -> AccessArea {
        Extractor::new(&NoSchema).extract_sql(sql).unwrap()
    }

    #[test]
    fn observe_widens_numeric_range() {
        let mut ranges = AccessRanges::new();
        let col = QualifiedColumn::new("zooSpec", "dec");
        ranges.set_numeric(&col, -90.0, 90.0);
        // The paper's anomaly: users query zooSpec.dec = -100 although the
        // domain floor is -90; access(a) must widen to include it.
        let a = area("SELECT * FROM zooSpec WHERE dec >= -100 AND dec <= -15");
        ranges.observe_area(&a);
        let iv = ranges.numeric(&col).unwrap();
        assert_eq!(iv.lo, -100.0);
        assert_eq!(iv.hi, 90.0);
    }

    #[test]
    fn observe_adds_categorical_values() {
        let mut ranges = AccessRanges::new();
        let col = QualifiedColumn::new("SpecObjAll", "class");
        ranges.set_categorical(&col, ["star".to_string(), "galaxy".to_string()]);
        let a = area("SELECT * FROM SpecObjAll WHERE class = 'QSO'");
        ranges.observe_area(&a);
        assert_eq!(ranges.width(&col), Some(3.0));
        assert!(ranges.categorical(&col).unwrap().contains("qso"));
    }

    #[test]
    fn untracked_columns_bootstrap_from_observations() {
        let mut ranges = AccessRanges::new();
        let a = area("SELECT * FROM T WHERE u >= 1 AND u <= 9");
        ranges.observe_area(&a);
        let iv = ranges.numeric(&QualifiedColumn::new("T", "u")).unwrap();
        assert_eq!((iv.lo, iv.hi), (1.0, 9.0));
    }

    #[test]
    fn manual_doubling_widens_observed_ranges() {
        let mut ranges = AccessRanges::new();
        let col = QualifiedColumn::new("T", "ra");
        ranges.set_numeric(&col, 207.0, 211.0);
        ranges.apply_doubling();
        let iv = ranges.numeric(&col).unwrap();
        assert_eq!((iv.lo, iv.hi), (205.0, 213.0));
        // Degenerate (point) ranges stay put.
        let p = QualifiedColumn::new("T", "x");
        ranges.set_numeric(&p, 5.0, 5.0);
        ranges.apply_doubling();
        assert_eq!(ranges.numeric(&p).unwrap(), Interval::point(5.0));
    }

    #[test]
    fn from_catalog_applies_doubling_rule() {
        use aa_engine::{Catalog, ColumnDef, DataType, Table, TableSchema, Value};
        let mut catalog = Catalog::new();
        let mut t = Table::new(TableSchema::new(
            "T",
            vec![ColumnDef::new("u", DataType::Float)],
        ));
        t.insert(vec![Value::Float(10.0)]).unwrap();
        t.insert(vec![Value::Float(30.0)]).unwrap();
        catalog.add_table(t);
        let ranges = AccessRanges::from_catalog(&catalog, 100);
        let iv = ranges.numeric(&QualifiedColumn::new("T", "u")).unwrap();
        // Sampled [10, 30], doubled -> [0, 40].
        assert_eq!((iv.lo, iv.hi), (0.0, 40.0));
    }
}

//! Atomic predicates — the building blocks of access areas (Section 2.1).
//!
//! Two shapes occur in the clustering sample the paper uses (Section 6.2):
//! *column-constant* predicates `a θ c` and *column-column* predicates
//! `a₁ θ a₂` (join conditions). Both compare with one of the six operators
//! `< ≤ = > ≥ <>`.

use crate::interval::Interval;
use std::fmt;

/// A fully resolved column: real (unaliased) table name plus column name.
/// Equality and hashing are case-insensitive, matching SQL Server.
#[derive(Debug, Clone)]
pub struct QualifiedColumn {
    pub table: String,
    pub column: String,
}

impl QualifiedColumn {
    pub fn new(table: impl Into<String>, column: impl Into<String>) -> Self {
        QualifiedColumn {
            table: table.into(),
            column: column.into(),
        }
    }

    /// Lower-cased `(table, column)` key for maps.
    pub fn key(&self) -> (String, String) {
        (self.table.to_lowercase(), self.column.to_lowercase())
    }
}

impl PartialEq for QualifiedColumn {
    fn eq(&self, other: &Self) -> bool {
        self.table.eq_ignore_ascii_case(&other.table)
            && self.column.eq_ignore_ascii_case(&other.column)
    }
}

impl Eq for QualifiedColumn {}

impl std::hash::Hash for QualifiedColumn {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Case-insensitive, allocation-free: this hash runs once per
        // range lookup in the distance hot path.
        for b in self.table.bytes() {
            state.write_u8(b.to_ascii_lowercase());
        }
        state.write_u8(0xff); // separator
        for b in self.column.bytes() {
            state.write_u8(b.to_ascii_lowercase());
        }
    }
}

impl PartialOrd for QualifiedColumn {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QualifiedColumn {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

impl fmt::Display for QualifiedColumn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

/// Comparison operators `θ` of atomic predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CmpOp {
    Eq,
    Neq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

impl CmpOp {
    /// Logical negation (for NOT push-down, Section 4.1): `NOT (a > c)`
    /// becomes `a <= c`, and so on.
    pub fn negate(&self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Neq,
            CmpOp::Neq => CmpOp::Eq,
            CmpOp::Lt => CmpOp::GtEq,
            CmpOp::LtEq => CmpOp::Gt,
            CmpOp::Gt => CmpOp::LtEq,
            CmpOp::GtEq => CmpOp::Lt,
        }
    }

    /// Mirror image (for flipping `c θ a` into `a θ' c`).
    pub fn flip(&self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Neq => CmpOp::Neq,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::LtEq => CmpOp::GtEq,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::GtEq => CmpOp::LtEq,
        }
    }

    /// SQL spelling.
    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Neq => "<>",
            CmpOp::Lt => "<",
            CmpOp::LtEq => "<=",
            CmpOp::Gt => ">",
            CmpOp::GtEq => ">=",
        }
    }

    /// Applies the comparison to two floats.
    pub fn eval_f64(&self, a: f64, b: f64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Neq => a != b,
            CmpOp::Lt => a < b,
            CmpOp::LtEq => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::GtEq => a >= b,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// A constant appearing in a column-constant predicate.
#[derive(Debug, Clone)]
pub enum Constant {
    Num(f64),
    Str(String),
}

impl Constant {
    /// Numeric view.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Constant::Num(x) => Some(*x),
            Constant::Str(_) => None,
        }
    }
}

impl PartialEq for Constant {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Constant::Num(a), Constant::Num(b)) => a == b || (a.is_nan() && b.is_nan()),
            (Constant::Str(a), Constant::Str(b)) => a.eq_ignore_ascii_case(b),
            _ => false,
        }
    }
}

impl Eq for Constant {}

impl std::hash::Hash for Constant {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Constant::Num(x) => {
                0u8.hash(state);
                // Canonicalise -0.0 and NaN.
                let bits = if *x == 0.0 {
                    0f64.to_bits()
                } else if x.is_nan() {
                    f64::NAN.to_bits()
                } else {
                    x.to_bits()
                };
                bits.hash(state);
            }
            Constant::Str(s) => {
                1u8.hash(state);
                s.to_lowercase().hash(state);
            }
        }
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Num(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e18 {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Constant::Str(s) => write!(f, "'{s}'"),
        }
    }
}

/// An atomic predicate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AtomicPredicate {
    /// `a θ c`.
    ColumnConstant {
        column: QualifiedColumn,
        op: CmpOp,
        value: Constant,
    },
    /// `a₁ θ a₂` (typically a join condition).
    ColumnColumn {
        left: QualifiedColumn,
        op: CmpOp,
        right: QualifiedColumn,
    },
}

impl AtomicPredicate {
    pub fn cc(column: QualifiedColumn, op: CmpOp, value: Constant) -> Self {
        AtomicPredicate::ColumnConstant { column, op, value }
    }

    pub fn join(left: QualifiedColumn, op: CmpOp, right: QualifiedColumn) -> Self {
        AtomicPredicate::ColumnColumn { left, op, right }
    }

    /// Negates the predicate by inverting the operator (Section 4.1).
    pub fn negate(&self) -> AtomicPredicate {
        match self {
            AtomicPredicate::ColumnConstant { column, op, value } => {
                AtomicPredicate::ColumnConstant {
                    column: column.clone(),
                    op: op.negate(),
                    value: value.clone(),
                }
            }
            AtomicPredicate::ColumnColumn { left, op, right } => AtomicPredicate::ColumnColumn {
                left: left.clone(),
                op: op.negate(),
                right: right.clone(),
            },
        }
    }

    /// The columns this predicate mentions.
    pub fn columns(&self) -> Vec<&QualifiedColumn> {
        match self {
            AtomicPredicate::ColumnConstant { column, .. } => vec![column],
            AtomicPredicate::ColumnColumn { left, right, .. } => vec![left, right],
        }
    }

    /// The tables this predicate mentions (lower-cased).
    pub fn tables(&self) -> Vec<String> {
        self.columns()
            .into_iter()
            .map(|c| c.table.to_lowercase())
            .collect()
    }

    /// For a numeric column-constant predicate, the interval of satisfying
    /// values. `Neq` returns the full line (its complement is measure-zero;
    /// consolidation tracks exclusions separately).
    pub fn satisfying_interval(&self) -> Option<(QualifiedColumn, Interval)> {
        let AtomicPredicate::ColumnConstant { column, .. } = self else {
            return None;
        };
        Some((column.clone(), self.interval()?))
    }

    /// The satisfying interval alone, without cloning the column — the
    /// allocation-free variant for the distance hot path (a clustering run
    /// evaluates `d_pred` hundreds of millions of times).
    pub fn interval(&self) -> Option<Interval> {
        let AtomicPredicate::ColumnConstant { op, value, .. } = self else {
            return None;
        };
        let c = value.as_num()?;
        Some(match op {
            CmpOp::Eq => Interval::point(c),
            CmpOp::Neq => Interval::all(),
            CmpOp::Lt => Interval::below(c, true),
            CmpOp::LtEq => Interval::below(c, false),
            CmpOp::Gt => Interval::above(c, true),
            CmpOp::GtEq => Interval::above(c, false),
        })
    }

    /// Evaluates the predicate given a lookup for column values.
    /// Returns `None` when a column value is unavailable.
    pub fn evaluate(
        &self,
        lookup: &dyn Fn(&QualifiedColumn) -> Option<Constant>,
    ) -> Option<bool> {
        match self {
            AtomicPredicate::ColumnConstant { column, op, value } => {
                let v = lookup(column)?;
                Some(compare_constants(&v, *op, value))
            }
            AtomicPredicate::ColumnColumn { left, op, right } => {
                let l = lookup(left)?;
                let r = lookup(right)?;
                Some(compare_constants(&l, *op, &r))
            }
        }
    }
}

/// Compares two constants under an operator (numeric when both numeric,
/// case-insensitive string otherwise).
pub fn compare_constants(a: &Constant, op: CmpOp, b: &Constant) -> bool {
    match (a, b) {
        (Constant::Num(x), Constant::Num(y)) => op.eval_f64(*x, *y),
        (Constant::Str(x), Constant::Str(y)) => {
            let (x, y) = (x.to_lowercase(), y.to_lowercase());
            match op {
                CmpOp::Eq => x == y,
                CmpOp::Neq => x != y,
                CmpOp::Lt => x < y,
                CmpOp::LtEq => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::GtEq => x >= y,
            }
        }
        // Mixed types never compare equal.
        _ => op == CmpOp::Neq,
    }
}

impl fmt::Display for AtomicPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtomicPredicate::ColumnConstant { column, op, value } => {
                write!(f, "{column} {op} {value}")
            }
            AtomicPredicate::ColumnColumn { left, op, right } => {
                write!(f, "{left} {op} {right}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(t: &str, c: &str) -> QualifiedColumn {
        QualifiedColumn::new(t, c)
    }

    #[test]
    fn qualified_column_case_insensitive() {
        assert_eq!(col("PhotoObjAll", "RA"), col("photoobjall", "ra"));
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(col("T", "u"));
        assert!(set.contains(&col("t", "U")));
    }

    #[test]
    fn op_negation_is_involutive() {
        for op in [
            CmpOp::Eq,
            CmpOp::Neq,
            CmpOp::Lt,
            CmpOp::LtEq,
            CmpOp::Gt,
            CmpOp::GtEq,
        ] {
            assert_eq!(op.negate().negate(), op);
            assert_eq!(op.flip().flip(), op);
        }
    }

    #[test]
    fn not_pushdown_example_from_paper() {
        // NOT (T.u > 5) becomes T.u <= 5.
        let p = AtomicPredicate::cc(col("T", "u"), CmpOp::Gt, Constant::Num(5.0));
        let n = p.negate();
        assert_eq!(
            n,
            AtomicPredicate::cc(col("T", "u"), CmpOp::LtEq, Constant::Num(5.0))
        );
    }

    #[test]
    fn satisfying_intervals() {
        let p = AtomicPredicate::cc(col("T", "u"), CmpOp::Lt, Constant::Num(3.0));
        let (_, i) = p.satisfying_interval().unwrap();
        assert!(i.contains(2.9));
        assert!(!i.contains(3.0));
        let p = AtomicPredicate::cc(col("T", "u"), CmpOp::GtEq, Constant::Num(1.0));
        let (_, i) = p.satisfying_interval().unwrap();
        assert!(i.contains(1.0));
        // categorical predicates have no interval
        let p = AtomicPredicate::cc(col("T", "class"), CmpOp::Eq, Constant::Str("star".into()));
        assert!(p.satisfying_interval().is_none());
    }

    #[test]
    fn evaluation() {
        let p = AtomicPredicate::cc(col("T", "u"), CmpOp::GtEq, Constant::Num(1.0));
        let lookup = |_: &QualifiedColumn| Some(Constant::Num(5.0));
        assert_eq!(p.evaluate(&lookup), Some(true));
        let join = AtomicPredicate::join(col("T", "u"), CmpOp::Eq, col("S", "u"));
        let lookup = |c: &QualifiedColumn| {
            Some(Constant::Num(if c.table.eq_ignore_ascii_case("t") {
                1.0
            } else {
                2.0
            }))
        };
        assert_eq!(join.evaluate(&lookup), Some(false));
    }

    #[test]
    fn string_constants_compare_case_insensitively() {
        assert!(compare_constants(
            &Constant::Str("STAR".into()),
            CmpOp::Eq,
            &Constant::Str("star".into())
        ));
        assert_eq!(Constant::Str("A".into()), Constant::Str("a".into()));
    }

    #[test]
    fn display_round_trip_shapes() {
        let p = AtomicPredicate::cc(col("SpecObjAll", "plate"), CmpOp::LtEq, Constant::Num(3200.0));
        assert_eq!(p.to_string(), "SpecObjAll.plate <= 3200");
        let j = AtomicPredicate::join(col("T", "u"), CmpOp::Eq, col("S", "u"));
        assert_eq!(j.to_string(), "T.u = S.u");
    }
}

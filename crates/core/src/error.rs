//! Extraction errors.

use aa_sql::ParseError;
use std::fmt;

/// Why an access area could not be extracted from a query.
#[derive(Debug, Clone, PartialEq)]
pub enum ExtractError {
    /// The statement did not parse (carries the parser's classification:
    /// syntax error / non-SELECT / unsupported construct — Section 6.1's
    /// failure taxonomy).
    Parse(ParseError),
    /// Parsed, but contains a construct the extractor cannot map to an
    /// access area even approximately.
    Unsupported(UnsupportedConstruct),
}

/// The machine-countable taxonomy of constructs the extractor rejects
/// outright (as opposed to ones it merely approximates). Section 6.1's
/// failure histogram buckets on these variants rather than string-matching
/// error messages.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum UnsupportedConstruct {
    /// A user-defined function call (SkyServer UDFs such as
    /// `fGetNearbyObjEq`) in a position the extractor must understand.
    UserDefinedFunction(String),
    /// A binary operator that is neither a comparison nor arithmetic the
    /// affine rewrite handles, in predicate operand position.
    NonComparisonOperator(String),
}

impl fmt::Display for UnsupportedConstruct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnsupportedConstruct::UserDefinedFunction(name) => {
                write!(f, "user-defined function {name}")
            }
            UnsupportedConstruct::NonComparisonOperator(op) => {
                write!(f, "non-comparison operator {op} in predicate")
            }
        }
    }
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractError::Parse(e) => write!(f, "parse: {e}"),
            ExtractError::Unsupported(kind) => write!(f, "unsupported: {kind}"),
        }
    }
}

impl std::error::Error for ExtractError {}

impl From<ParseError> for ExtractError {
    fn from(e: ParseError) -> Self {
        ExtractError::Parse(e)
    }
}

impl From<UnsupportedConstruct> for ExtractError {
    fn from(kind: UnsupportedConstruct) -> Self {
        ExtractError::Unsupported(kind)
    }
}

/// Result alias for extraction.
pub type ExtractResult<T> = Result<T, ExtractError>;

//! Extraction errors.

use aa_sql::ParseError;
use std::fmt;

/// Why an access area could not be extracted from a query.
#[derive(Debug, Clone, PartialEq)]
pub enum ExtractError {
    /// The statement did not parse (carries the parser's classification:
    /// syntax error / non-SELECT / unsupported construct — Section 6.1's
    /// failure taxonomy).
    Parse(ParseError),
    /// Parsed, but contains a construct the extractor cannot map to an
    /// access area even approximately.
    Unsupported(String),
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractError::Parse(e) => write!(f, "parse: {e}"),
            ExtractError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for ExtractError {}

impl From<ParseError> for ExtractError {
    fn from(e: ParseError) -> Self {
        ExtractError::Parse(e)
    }
}

/// Result alias for extraction.
pub type ExtractResult<T> = Result<T, ExtractError>;

//! Persisted clustered models: the artifact an offline clustering run
//! produces and the online serving layer loads.
//!
//! A [`ClusteredModel`] bundles everything a server needs to answer
//! classify/neighbors queries under the paper's distance: the extracted
//! access areas, their DBSCAN labels, the `access(a)` ranges the distance
//! normalises against, and the clustering parameters that produced the
//! labels. The JSON encoding is deterministic (sorted ranges, insertion
//! -ordered fields) so identical runs produce byte-identical model files.

use crate::area::AccessArea;
use crate::distance::DistanceMode;
use crate::ranges::AccessRanges;
use aa_util::{FromJson, Json, JsonError, ToJson};
use std::fmt;
use std::path::Path;

/// A clustering artifact: areas, labels, ranges, and parameters.
#[derive(Debug, Clone)]
pub struct ClusteredModel {
    /// Extracted access areas, in log order.
    pub areas: Vec<AccessArea>,
    /// Cluster label per area (parallel to `areas`); `None` = noise.
    pub labels: Vec<Option<usize>>,
    /// Number of clusters (labels range over `0..cluster_count`).
    pub cluster_count: usize,
    /// The `access(a)` tracker the distance normalises against.
    pub ranges: AccessRanges,
    /// DBSCAN radius used to produce the labels.
    pub eps: f64,
    /// DBSCAN density threshold used to produce the labels.
    pub min_pts: usize,
    /// Distance-formula reading the labels were computed under.
    pub mode: DistanceMode,
}

/// Why a model failed to load or validate.
#[derive(Debug)]
pub enum ModelError {
    Io(std::io::Error),
    Json(JsonError),
    Invalid(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Io(e) => write!(f, "model io error: {e}"),
            ModelError::Json(e) => write!(f, "model json error: {e}"),
            ModelError::Invalid(msg) => write!(f, "invalid model: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<std::io::Error> for ModelError {
    fn from(e: std::io::Error) -> Self {
        ModelError::Io(e)
    }
}

impl From<JsonError> for ModelError {
    fn from(e: JsonError) -> Self {
        ModelError::Json(e)
    }
}

impl ClusteredModel {
    /// Structural invariants every loaded or constructed model must hold.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.labels.len() != self.areas.len() {
            return Err(ModelError::Invalid(format!(
                "{} labels for {} areas",
                self.labels.len(),
                self.areas.len()
            )));
        }
        if let Some(bad) = self
            .labels
            .iter()
            .flatten()
            .find(|&&c| c >= self.cluster_count)
        {
            return Err(ModelError::Invalid(format!(
                "label {bad} out of range (cluster_count {})",
                self.cluster_count
            )));
        }
        if !self.eps.is_finite() || self.eps < 0.0 {
            return Err(ModelError::Invalid(format!("eps {} not usable", self.eps)));
        }
        Ok(())
    }

    /// Number of areas carrying a cluster label.
    pub fn clustered_count(&self) -> usize {
        self.labels.iter().flatten().count()
    }

    /// Number of noise areas.
    pub fn noise_count(&self) -> usize {
        self.labels.iter().filter(|l| l.is_none()).count()
    }

    /// Parses a model from JSON text and validates it.
    pub fn from_json_text(text: &str) -> Result<Self, ModelError> {
        let model = ClusteredModel::from_json(&Json::parse(text)?)?;
        model.validate()?;
        Ok(model)
    }

    /// Loads and validates a model file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ModelError> {
        let text = std::fs::read_to_string(path)?;
        ClusteredModel::from_json_text(&text)
    }

    /// The canonical serialized bytes of the model: deterministic pretty
    /// JSON plus a trailing newline. [`save`] writes exactly these bytes
    /// and [`content_hash`] hashes exactly these bytes.
    ///
    /// [`save`]: ClusteredModel::save
    /// [`content_hash`]: ClusteredModel::content_hash
    pub fn to_canonical_text(&self) -> String {
        let mut text = self.to_json().to_string_pretty();
        text.push('\n');
        text
    }

    /// FNV-1a checksum of the canonical serialization. Two models with
    /// equal hashes serialized by the same build are byte-identical; the
    /// model store records this next to every generation so a torn write
    /// is detected on load.
    pub fn content_hash(&self) -> u64 {
        aa_util::fnv1a_64(self.to_canonical_text().as_bytes())
    }

    /// Writes the model as pretty JSON (deterministic byte-for-byte).
    ///
    /// The write is crash-consistent: bytes go to a `<path>.tmp` sibling
    /// first and are renamed into place, so a reader never observes a
    /// half-written model at `path` — it sees either the old file or the
    /// new one. (The rename is atomic on POSIX filesystems; a crash can
    /// at worst leave a stale `.tmp` sibling behind.)
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ModelError> {
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.to_canonical_text())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }
}

impl ToJson for ClusteredModel {
    fn to_json(&self) -> Json {
        Json::obj([
            ("areas".to_string(), Json::arr(self.areas.iter())),
            (
                // -1 encodes noise; JSON has no native Option.
                "labels".to_string(),
                Json::Arr(
                    self.labels
                        .iter()
                        .map(|l| Json::Num(l.map_or(-1.0, |c| c as f64)))
                        .collect(),
                ),
            ),
            (
                "cluster_count".to_string(),
                Json::Num(self.cluster_count as f64),
            ),
            ("ranges".to_string(), self.ranges.to_json()),
            ("eps".to_string(), Json::Num(self.eps)),
            ("min_pts".to_string(), Json::Num(self.min_pts as f64)),
            ("mode".to_string(), Json::Str(self.mode.as_str().to_string())),
        ])
    }
}

impl FromJson for ClusteredModel {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let field = |k: &str| {
            json.get(k)
                .ok_or_else(|| JsonError(format!("model: missing '{k}'")))
        };
        let labels = field("labels")?
            .as_arr()
            .ok_or_else(|| JsonError("model: labels must be an array".into()))?
            .iter()
            .map(|l| {
                let x = f64::from_json(l)?;
                Ok(if x < 0.0 { None } else { Some(x as usize) })
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        let mode_str = String::from_json(field("mode")?)?;
        let mode = DistanceMode::parse(&mode_str)
            .ok_or_else(|| JsonError(format!("model: unknown mode '{mode_str}'")))?;
        Ok(ClusteredModel {
            areas: Vec::<AccessArea>::from_json(field("areas")?)?,
            labels,
            cluster_count: f64::from_json(field("cluster_count")?)? as usize,
            ranges: AccessRanges::from_json(field("ranges")?)?,
            eps: f64::from_json(field("eps")?)?,
            min_pts: f64::from_json(field("min_pts")?)? as usize,
            mode,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{Extractor, NoSchema};
    use crate::predicate::QualifiedColumn;

    fn sample_model() -> ClusteredModel {
        let ex = Extractor::new(&NoSchema);
        let areas: Vec<AccessArea> = [
            "SELECT * FROM PhotoObjAll WHERE ra BETWEEN 150 AND 200 AND dec > -5",
            "SELECT * FROM PhotoObjAll WHERE ra BETWEEN 151 AND 199",
            "SELECT * FROM SpecObjAll WHERE class = 'qso' AND z > 2",
            "SELECT * FROM T WHERE T.u = 1 OR T.u = 2",
        ]
        .iter()
        .map(|s| ex.extract_sql(s).unwrap())
        .collect();
        let mut ranges = AccessRanges::new();
        ranges.observe_all(areas.iter());
        ranges.apply_doubling();
        ranges.set_categorical(
            &QualifiedColumn::new("SpecObjAll", "class"),
            ["star".to_string(), "qso".to_string()],
        );
        ClusteredModel {
            labels: vec![Some(0), Some(0), Some(1), None],
            cluster_count: 2,
            areas,
            ranges,
            eps: 0.25,
            min_pts: 2,
            mode: DistanceMode::Dissimilarity,
        }
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let model = sample_model();
        let text = model.to_json().to_string_pretty();
        let back = ClusteredModel::from_json_text(&text).unwrap();
        assert_eq!(back.labels, model.labels);
        assert_eq!(back.cluster_count, 2);
        assert_eq!(back.eps, 0.25);
        assert_eq!(back.min_pts, 2);
        assert_eq!(back.mode, model.mode);
        assert_eq!(back.areas, model.areas);
        assert_eq!(back.ranges.len(), model.ranges.len());
        for (col, access) in model.ranges.iter() {
            match access {
                crate::ranges::ColumnAccess::Numeric(iv) => {
                    assert_eq!(back.ranges.numeric(col), Some(*iv), "{col}");
                }
                crate::ranges::ColumnAccess::Categorical(set) => {
                    assert_eq!(back.ranges.categorical(col), Some(set), "{col}");
                }
            }
        }
        // Serialisation is deterministic: a round trip re-emits the bytes.
        assert_eq!(back.to_json().to_string_pretty(), text);
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("aa-model-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        let model = sample_model();
        model.save(&path).unwrap();
        let back = ClusteredModel::load(&path).unwrap();
        assert_eq!(back.areas, model.areas);
        assert_eq!(back.labels, model.labels);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn validation_rejects_malformed_models() {
        let mut model = sample_model();
        model.labels.pop();
        assert!(matches!(model.validate(), Err(ModelError::Invalid(_))));
        let mut model = sample_model();
        model.labels[0] = Some(7);
        assert!(matches!(model.validate(), Err(ModelError::Invalid(_))));
        let mut model = sample_model();
        model.eps = f64::NAN;
        assert!(matches!(model.validate(), Err(ModelError::Invalid(_))));
    }

    #[test]
    fn distance_mode_spellings_round_trip() {
        for mode in [DistanceMode::PaperLiteral, DistanceMode::Dissimilarity] {
            assert_eq!(DistanceMode::parse(mode.as_str()), Some(mode));
        }
        assert_eq!(DistanceMode::parse("nope"), None);
    }
}

//! Constraint consolidation — the cleanup step of Section 4.5: "we remove
//! redundant constraints, merge overlapping constraints, and check the set
//! of constraints for contradictions."

use crate::cnf::{Cnf, Disjunction};
use crate::interval::Interval;
use crate::predicate::{AtomicPredicate, CmpOp, Constant, QualifiedColumn};
use std::collections::BTreeMap;

/// What consolidation discovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConsolidateOutcome {
    /// The conjunction of constraints is unsatisfiable (e.g. `a < 0 AND
    /// a > 1`, or `class = 'star' AND class = 'galaxy'`).
    pub contradiction: bool,
}

/// Consolidates a CNF in place.
pub fn consolidate(cnf: &mut Cnf) -> ConsolidateOutcome {
    let mut outcome = ConsolidateOutcome::default();

    // 1. Simplify each disjunction (merge same-column interval atoms).
    let clauses = std::mem::take(&mut cnf.clauses);
    let mut simplified = Vec::with_capacity(clauses.len());
    for clause in clauses {
        match simplify_disjunction(clause) {
            DisjOutcome::Tautology => {} // drop always-true clauses
            DisjOutcome::Clause(c) => simplified.push(c),
        }
    }
    cnf.clauses = simplified;

    // 2. Structural dedup + subsumption. Subsumption checking is
    // quadratic in clauses and atoms; skip it for pathological CNFs (the
    // clause-capped blowup queries) where it would dominate the pipeline.
    cnf.dedup();
    if cnf.len() <= 512 {
        cnf.remove_subsumed();
    }

    // 3. Merge singleton numeric clauses per column, detect contradictions.
    merge_singletons(cnf, &mut outcome);

    if cnf.is_unsatisfiable_form() {
        outcome.contradiction = true;
    }
    // A detected contradiction must leave the CNF itself unsatisfiable —
    // the per-column merge drops the conflicting atoms, so without this
    // the constraint would degrade to TRUE.
    if outcome.contradiction {
        cnf.clauses = vec![Disjunction::new(Vec::new())];
    }
    outcome
}

enum DisjOutcome {
    Tautology,
    Clause(Disjunction),
}

/// Within one disjunction: merge same-column numeric atoms whose intervals
/// union contiguously (`a < 3 OR a < 5` → `a < 5`; `a < 2 OR a >= 2` →
/// tautology), and drop atoms subsumed by another atom.
fn simplify_disjunction(clause: Disjunction) -> DisjOutcome {
    // Group numeric atoms per column; keep everything else verbatim.
    let mut numeric: BTreeMap<QualifiedColumn, Vec<(Interval, AtomicPredicate)>> = BTreeMap::new();
    let mut rest: Vec<AtomicPredicate> = Vec::new();
    for atom in clause.atoms {
        match atom.satisfying_interval() {
            // `Neq` is handled conservatively as "whole line" by
            // satisfying_interval; keep it verbatim instead.
            Some((col, iv))
                if !matches!(
                    atom,
                    AtomicPredicate::ColumnConstant {
                        op: CmpOp::Neq,
                        ..
                    }
                ) =>
            {
                numeric.entry(col).or_default().push((iv, atom));
            }
            _ => rest.push(atom),
        }
    }

    let mut out: Vec<AtomicPredicate> = Vec::new();
    for (col, mut atoms) in numeric {
        // Repeatedly merge contiguous unions.
        let mut merged: Vec<Interval> = Vec::new();
        atoms.sort_by(|a, b| a.0.lo.total_cmp(&b.0.lo));
        for (iv, _) in &atoms {
            if let Some(last) = merged.last_mut() {
                if let Some(u) = last.union(iv) {
                    *last = u;
                    continue;
                }
            }
            merged.push(*iv);
        }
        if merged.iter().any(Interval::is_all) {
            return DisjOutcome::Tautology;
        }
        for iv in merged {
            out.extend(interval_to_atoms(&col, &iv));
        }
    }
    out.extend(rest);
    DisjOutcome::Clause(Disjunction::new(out))
}

/// Renders an interval back into canonical atoms on a column.
///
/// Intervals bounded on both sides need two atoms; in a *disjunction* that
/// changes semantics (OR of the bounds is weaker than their AND), so this
/// is only safe when the original atoms were half-lines or points — which
/// is the case for atoms produced from single comparisons. Double-bounded
/// intervals only arise in `merge_singletons`, which installs the atoms as
/// separate conjunctive clauses. Within a disjunction, a double-bounded
/// merge result can only come from merging half-lines that already covered
/// it, so the wider of the two originals is reproduced instead.
fn interval_to_atoms(col: &QualifiedColumn, iv: &Interval) -> Vec<AtomicPredicate> {
    let mut atoms = Vec::new();
    if iv.is_empty() {
        return atoms;
    }
    if iv.lo == iv.hi {
        atoms.push(AtomicPredicate::cc(
            col.clone(),
            CmpOp::Eq,
            Constant::Num(iv.lo),
        ));
        return atoms;
    }
    let lo_finite = iv.lo.is_finite();
    let hi_finite = iv.hi.is_finite();
    if lo_finite && hi_finite {
        // Double-bounded inside a disjunction: emit both atoms; callers in
        // conjunctive position (merge_singletons) rely on exactly this.
        atoms.push(AtomicPredicate::cc(
            col.clone(),
            if iv.lo_open { CmpOp::Gt } else { CmpOp::GtEq },
            Constant::Num(iv.lo),
        ));
        atoms.push(AtomicPredicate::cc(
            col.clone(),
            if iv.hi_open { CmpOp::Lt } else { CmpOp::LtEq },
            Constant::Num(iv.hi),
        ));
    } else if lo_finite {
        atoms.push(AtomicPredicate::cc(
            col.clone(),
            if iv.lo_open { CmpOp::Gt } else { CmpOp::GtEq },
            Constant::Num(iv.lo),
        ));
    } else if hi_finite {
        atoms.push(AtomicPredicate::cc(
            col.clone(),
            if iv.hi_open { CmpOp::Lt } else { CmpOp::LtEq },
            Constant::Num(iv.hi),
        ));
    }
    atoms
}

/// Merges singleton clauses (conjunctive atoms): numeric intervals per
/// column intersect; categorical equalities must agree. Original clause
/// order is preserved — each column's merged constraint is emitted at the
/// position of its first occurrence, so the paper's worked examples print
/// in their original shape.
fn merge_singletons(cnf: &mut Cnf, outcome: &mut ConsolidateOutcome) {
    // Pass 1: accumulate per-column conjunctive facts.
    let mut numeric: BTreeMap<QualifiedColumn, Interval> = BTreeMap::new();
    let mut cat_eq: BTreeMap<QualifiedColumn, String> = BTreeMap::new();
    for clause in &cnf.clauses {
        if clause.len() != 1 {
            continue;
        }
        match &clause.atoms[0] {
            atom @ AtomicPredicate::ColumnConstant {
                column,
                op,
                value: Constant::Num(_),
            } if *op != CmpOp::Neq => {
                let iv = atom
                    .satisfying_interval()
                    .map(|(_, iv)| iv)
                    .unwrap_or_else(Interval::all);
                numeric
                    .entry(column.clone())
                    .and_modify(|e| *e = e.intersect(&iv))
                    .or_insert(iv);
            }
            AtomicPredicate::ColumnConstant {
                column,
                op: CmpOp::Eq,
                value: Constant::Str(s),
            } => {
                if let Some(prev) = cat_eq.get(column) {
                    if !prev.eq_ignore_ascii_case(s) {
                        outcome.contradiction = true;
                    }
                } else {
                    cat_eq.insert(column.clone(), s.clone());
                }
            }
            _ => {}
        }
    }
    for iv in numeric.values() {
        if iv.is_empty() {
            outcome.contradiction = true;
        }
    }

    // Pass 2: re-emit clauses in order; merged columns appear once, at
    // their first occurrence.
    let clauses = std::mem::take(&mut cnf.clauses);
    let mut emitted_num: std::collections::HashSet<QualifiedColumn> =
        std::collections::HashSet::new();
    let mut emitted_cat: std::collections::HashSet<QualifiedColumn> =
        std::collections::HashSet::new();
    let mut kept: Vec<Disjunction> = Vec::with_capacity(clauses.len());

    for clause in clauses {
        if clause.len() != 1 {
            kept.push(clause);
            continue;
        }
        match &clause.atoms[0] {
            AtomicPredicate::ColumnConstant {
                column,
                op,
                value: Constant::Num(c),
            } => {
                if *op == CmpOp::Neq {
                    // `a <> c`: redundant when c is outside the merged
                    // interval; contradictory when the interval is {c}.
                    let iv = numeric.get(column).copied().unwrap_or_else(Interval::all);
                    if iv.lo == *c && iv.hi == *c {
                        outcome.contradiction = true;
                    }
                    if iv.contains(*c) {
                        kept.push(clause);
                    }
                } else if emitted_num.insert(column.clone()) {
                    let iv = numeric.get(column).copied().unwrap_or_else(Interval::all);
                    for atom in interval_to_atoms(column, &iv) {
                        kept.push(Disjunction::singleton(atom));
                    }
                }
            }
            AtomicPredicate::ColumnConstant {
                column,
                op: CmpOp::Eq,
                value: Constant::Str(_),
            } => {
                if emitted_cat.insert(column.clone()) {
                    if let Some(s) = cat_eq.get(column) {
                        kept.push(Disjunction::singleton(AtomicPredicate::cc(
                            column.clone(),
                            CmpOp::Eq,
                            Constant::Str(s.clone()),
                        )));
                    }
                }
            }
            AtomicPredicate::ColumnConstant {
                column,
                op: CmpOp::Neq,
                value: Constant::Str(s),
            } => match cat_eq.get(column) {
                Some(eq) if eq.eq_ignore_ascii_case(s) => outcome.contradiction = true,
                Some(_) => {} // already pinned to a different value
                None => kept.push(clause),
            },
            _ => kept.push(clause),
        }
    }

    cnf.clauses = kept;
    cnf.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(c: &str) -> QualifiedColumn {
        QualifiedColumn::new("T", c)
    }

    fn num(c: &str, op: CmpOp, v: f64) -> AtomicPredicate {
        AtomicPredicate::cc(col(c), op, Constant::Num(v))
    }

    fn cat(c: &str, op: CmpOp, v: &str) -> AtomicPredicate {
        AtomicPredicate::cc(col(c), op, Constant::Str(v.into()))
    }

    #[test]
    fn merges_redundant_conjunctive_bounds() {
        // u < 5 AND u < 3  ->  u < 3
        let mut cnf = Cnf::new(vec![
            Disjunction::singleton(num("u", CmpOp::Lt, 5.0)),
            Disjunction::singleton(num("u", CmpOp::Lt, 3.0)),
        ]);
        let out = consolidate(&mut cnf);
        assert!(!out.contradiction);
        assert_eq!(cnf.to_string(), "T.u < 3");
    }

    #[test]
    fn between_style_bounds_survive() {
        let mut cnf = Cnf::new(vec![
            Disjunction::singleton(num("u", CmpOp::GtEq, 1.0)),
            Disjunction::singleton(num("u", CmpOp::LtEq, 8.0)),
        ]);
        consolidate(&mut cnf);
        assert_eq!(cnf.to_string(), "T.u >= 1 AND T.u <= 8");
    }

    #[test]
    fn detects_numeric_contradiction() {
        let mut cnf = Cnf::new(vec![
            Disjunction::singleton(num("u", CmpOp::Lt, 0.0)),
            Disjunction::singleton(num("u", CmpOp::Gt, 1.0)),
        ]);
        let out = consolidate(&mut cnf);
        assert!(out.contradiction);
    }

    #[test]
    fn open_closed_boundary_contradictions() {
        // u < 3 AND u > 3 contradicts; u <= 3 AND u >= 3 pins u = 3.
        let mut c1 = Cnf::new(vec![
            Disjunction::singleton(num("u", CmpOp::Lt, 3.0)),
            Disjunction::singleton(num("u", CmpOp::Gt, 3.0)),
        ]);
        assert!(consolidate(&mut c1).contradiction);
        let mut c2 = Cnf::new(vec![
            Disjunction::singleton(num("u", CmpOp::LtEq, 3.0)),
            Disjunction::singleton(num("u", CmpOp::GtEq, 3.0)),
        ]);
        let out = consolidate(&mut c2);
        assert!(!out.contradiction);
        assert_eq!(c2.to_string(), "T.u = 3");
    }

    #[test]
    fn detects_categorical_contradiction() {
        let mut cnf = Cnf::new(vec![
            Disjunction::singleton(cat("class", CmpOp::Eq, "star")),
            Disjunction::singleton(cat("class", CmpOp::Eq, "galaxy")),
        ]);
        assert!(consolidate(&mut cnf).contradiction);
        // Same value twice is fine (and deduped).
        let mut ok = Cnf::new(vec![
            Disjunction::singleton(cat("class", CmpOp::Eq, "star")),
            Disjunction::singleton(cat("class", CmpOp::Eq, "STAR")),
        ]);
        let out = consolidate(&mut ok);
        assert!(!out.contradiction);
        assert_eq!(ok.len(), 1);
    }

    #[test]
    fn eq_and_neq_same_value_contradicts() {
        let mut cnf = Cnf::new(vec![
            Disjunction::singleton(cat("class", CmpOp::Eq, "star")),
            Disjunction::singleton(cat("class", CmpOp::Neq, "star")),
        ]);
        assert!(consolidate(&mut cnf).contradiction);
        let mut num_case = Cnf::new(vec![
            Disjunction::singleton(num("u", CmpOp::Eq, 3.0)),
            Disjunction::singleton(num("u", CmpOp::Neq, 3.0)),
        ]);
        assert!(consolidate(&mut num_case).contradiction);
    }

    #[test]
    fn disjunction_merges_overlapping_atoms() {
        // (u < 3 OR u < 5) -> u < 5
        let mut cnf = Cnf::new(vec![Disjunction::new(vec![
            num("u", CmpOp::Lt, 3.0),
            num("u", CmpOp::Lt, 5.0),
        ])]);
        consolidate(&mut cnf);
        assert_eq!(cnf.to_string(), "T.u < 5");
    }

    #[test]
    fn covering_disjunction_is_dropped() {
        // (u < 3 OR u >= 2) covers the line -> clause is a tautology.
        let mut cnf = Cnf::new(vec![
            Disjunction::new(vec![num("u", CmpOp::Lt, 3.0), num("u", CmpOp::GtEq, 2.0)]),
            Disjunction::singleton(num("v", CmpOp::Gt, 0.0)),
        ]);
        consolidate(&mut cnf);
        assert_eq!(cnf.to_string(), "T.v > 0");
    }

    #[test]
    fn disjoint_disjunction_atoms_are_kept() {
        // (u <= 5 OR u >= 10) must survive as-is — the paper's running
        // intermediate-format example.
        let mut cnf = Cnf::new(vec![Disjunction::new(vec![
            num("u", CmpOp::LtEq, 5.0),
            num("u", CmpOp::GtEq, 10.0),
        ])]);
        let out = consolidate(&mut cnf);
        assert!(!out.contradiction);
        assert_eq!(cnf.to_string(), "(T.u <= 5 OR T.u >= 10)");
    }

    #[test]
    fn redundant_neq_is_dropped() {
        // u < 5 AND u <> 100: the exclusion is outside the interval.
        let mut cnf = Cnf::new(vec![
            Disjunction::singleton(num("u", CmpOp::Lt, 5.0)),
            Disjunction::singleton(num("u", CmpOp::Neq, 100.0)),
        ]);
        consolidate(&mut cnf);
        assert_eq!(cnf.to_string(), "T.u < 5");
        // But a relevant exclusion is kept.
        let mut cnf = Cnf::new(vec![
            Disjunction::singleton(num("u", CmpOp::Lt, 5.0)),
            Disjunction::singleton(num("u", CmpOp::Neq, 2.0)),
        ]);
        consolidate(&mut cnf);
        assert!(cnf.to_string().contains("<> 2"));
    }

    #[test]
    fn join_predicates_pass_through() {
        let mut cnf = Cnf::new(vec![Disjunction::singleton(AtomicPredicate::join(
            col("u"),
            CmpOp::Eq,
            QualifiedColumn::new("S", "u"),
        ))]);
        let out = consolidate(&mut cnf);
        assert!(!out.contradiction);
        assert_eq!(cnf.len(), 1);
    }
}

//! Extractor conformance tests against the paper's worked examples and
//! lemmas (Sections 2.4, 4.1–4.4).

use aa_core::extract::{ExtractConfig, Extractor, NoSchema, SchemaProvider};
use aa_core::{AccessArea, Interval};

fn extract(sql: &str) -> AccessArea {
    Extractor::new(&NoSchema)
        .extract_sql(sql)
        .unwrap_or_else(|e| panic!("{sql}: {e}"))
}

/// A provider that knows two tables T(u, v, class) and S(u, v, w) with a
/// configurable domain for T.v (used by the aggregate lemma tests).
struct TestSchema {
    t_v_domain: Option<(f64, f64)>,
}

impl SchemaProvider for TestSchema {
    fn table_columns(&self, table: &str) -> Option<Vec<String>> {
        match table.to_lowercase().as_str() {
            "t" => Some(vec!["u".into(), "v".into(), "class".into()]),
            "s" => Some(vec!["u".into(), "v".into(), "w".into()]),
            "r" => Some(vec!["v".into(), "x".into()]),
            _ => None,
        }
    }

    fn column_domain(&self, table: &str, column: &str) -> Option<Interval> {
        if table.eq_ignore_ascii_case("t") && column.eq_ignore_ascii_case("v") {
            self.t_v_domain.map(|(lo, hi)| Interval::closed(lo, hi))
        } else {
            None
        }
    }
}

// ---------------------------------------------------------------- simple --

#[test]
fn simple_query_exact_area() {
    // Section 4.1's example.
    let area = extract("SELECT u FROM T WHERE u >= 1 AND u <= 8 AND s > 5");
    assert!(area.exact);
    assert_eq!(
        area.to_intermediate_sql(),
        "SELECT * FROM T WHERE T.u >= 1 AND T.u <= 8 AND T.s > 5"
    );
}

#[test]
fn intermediate_format_passthrough() {
    // Section 2.4's example is already in intermediate format.
    let area = extract("SELECT * FROM T WHERE (T.u <= 5 OR T.u >= 10) AND T.v <= 5");
    assert_eq!(
        area.to_intermediate_sql(),
        "SELECT * FROM T WHERE (T.u <= 5 OR T.u >= 10) AND T.v <= 5"
    );
}

#[test]
fn between_expands_to_two_predicates() {
    // Section 2.3's example: u BETWEEN 1 AND 8.
    let area = extract("SELECT * FROM T WHERE u BETWEEN 1 AND 8");
    assert_eq!(
        area.to_intermediate_sql(),
        "SELECT * FROM T WHERE T.u >= 1 AND T.u <= 8"
    );
}

#[test]
fn not_is_pushed_down_with_operator_inversion() {
    // Section 4.1: NOT (T.u > 5 AND T.v <= 10) -> T.u <= 5 OR T.v > 10.
    let area = extract("SELECT * FROM T WHERE NOT (T.u > 5 AND T.v <= 10)");
    assert_eq!(
        area.to_intermediate_sql(),
        "SELECT * FROM T WHERE (T.u <= 5 OR T.v > 10)"
    );
}

#[test]
fn not_between_inverts() {
    let area = extract("SELECT * FROM T WHERE T.u NOT BETWEEN 5 AND 10");
    assert_eq!(
        area.to_intermediate_sql(),
        "SELECT * FROM T WHERE (T.u < 5 OR T.u > 10)"
    );
}

#[test]
fn in_list_becomes_disjunction() {
    let area = extract("SELECT * FROM T WHERE class IN ('star', 'galaxy')");
    assert_eq!(
        area.to_intermediate_sql(),
        "SELECT * FROM T WHERE (T.class = 'star' OR T.class = 'galaxy')"
    );
}

#[test]
fn constants_flip_onto_columns() {
    let area = extract("SELECT * FROM T WHERE 5 < u");
    assert_eq!(area.to_intermediate_sql(), "SELECT * FROM T WHERE T.u > 5");
}

#[test]
fn affine_arithmetic_normalises() {
    let area = extract("SELECT * FROM T WHERE u + 10 < 20");
    assert_eq!(area.to_intermediate_sql(), "SELECT * FROM T WHERE T.u < 10");
    let area = extract("SELECT * FROM T WHERE 2 * u >= 30");
    assert_eq!(
        area.to_intermediate_sql(),
        "SELECT * FROM T WHERE T.u >= 15"
    );
    // Negative multiplier flips the comparison.
    let area = extract("SELECT * FROM T WHERE -u < 5");
    assert_eq!(area.to_intermediate_sql(), "SELECT * FROM T WHERE T.u > -5");
}

#[test]
fn contradictions_are_detected() {
    let area = extract("SELECT * FROM T WHERE u < 0 AND u > 10");
    assert!(area.provably_empty);
}

#[test]
fn aliases_are_resolved_to_real_names() {
    // Section 4.5: "we replace any remaining alias with the real name".
    let area = extract("SELECT * FROM SpecObjAll AS s WHERE s.plate > 296");
    assert_eq!(
        area.to_intermediate_sql(),
        "SELECT * FROM SpecObjAll WHERE SpecObjAll.plate > 296"
    );
}

#[test]
fn tables_are_ordered_alphabetically() {
    let area = extract("SELECT * FROM Zoo, Alpha, M WHERE Zoo.x > 1");
    let names: Vec<&str> = area.table_names().collect();
    assert_eq!(names, vec!["Alpha", "M", "Zoo"]);
}

// ----------------------------------------------------------------- joins --

#[test]
fn inner_join_condition_moves_to_where() {
    let area = extract("SELECT * FROM T INNER JOIN S ON T.u = S.u WHERE T.v > 2");
    assert_eq!(
        area.to_intermediate_sql(),
        "SELECT * FROM S, T WHERE T.u = S.u AND T.v > 2"
    );
}

#[test]
fn full_outer_join_drops_constraint() {
    // Example 2: access area is the whole T x S.
    let area = extract("SELECT * FROM T FULL OUTER JOIN S ON (T.u = S.u)");
    assert_eq!(area.to_intermediate_sql(), "SELECT * FROM S, T");
    assert!(area.constraint.is_empty());
}

#[test]
fn right_outer_join_keeps_linking_constraint() {
    // Example 3: reduces to T.u IN (SELECT S.u FROM S), i.e. T.u = S.u.
    let area = extract("SELECT * FROM T RIGHT OUTER JOIN S ON (T.u = S.u)");
    assert_eq!(
        area.to_intermediate_sql(),
        "SELECT * FROM S, T WHERE T.u = S.u"
    );
}

#[test]
fn natural_join_uses_schema_common_columns() {
    let provider = TestSchema { t_v_domain: None };
    let area = Extractor::new(&provider)
        .extract_sql("SELECT * FROM T NATURAL JOIN S")
        .unwrap();
    // Common columns of T and S are u and v.
    let sql = area.to_intermediate_sql();
    assert!(sql.contains("T.u = S.u"), "{sql}");
    assert!(sql.contains("T.v = S.v"), "{sql}");
}

#[test]
fn cross_join_and_comma_are_unconstrained() {
    for sql in ["SELECT * FROM T CROSS JOIN S", "SELECT * FROM T, S"] {
        let area = extract(sql);
        assert_eq!(area.to_intermediate_sql(), "SELECT * FROM S, T", "{sql}");
    }
}

// ------------------------------------------------------------ aggregates --

#[test]
fn lemma1_sum_with_positive_domain_is_unconstrained() {
    // Lemma 1, supp > 0: access area is T.
    let provider = TestSchema {
        t_v_domain: Some((-100.0, 100.0)),
    };
    let area = Extractor::new(&provider)
        .extract_sql("SELECT T.u, SUM(T.v) FROM T GROUP BY T.u HAVING SUM(T.v) > 5")
        .unwrap();
    assert!(area.constraint.is_empty(), "{}", area.constraint);
    assert!(!area.provably_empty);
}

#[test]
fn lemma1_sum_with_nonpositive_domain_constrains() {
    // Lemma 1, supp <= 0, c in dom: access area is sigma_{v > c}.
    let provider = TestSchema {
        t_v_domain: Some((-100.0, 0.0)),
    };
    let area = Extractor::new(&provider)
        .extract_sql("SELECT T.u, SUM(T.v) FROM T GROUP BY T.u HAVING SUM(T.v) > -5")
        .unwrap();
    assert_eq!(area.constraint.to_string(), "T.v > -5");
}

#[test]
fn lemma1_sum_impossible_threshold_is_empty() {
    // Lemma 1, supp <= 0 and c > supp: empty access area.
    let provider = TestSchema {
        t_v_domain: Some((-100.0, 0.0)),
    };
    let area = Extractor::new(&provider)
        .extract_sql("SELECT T.u, SUM(T.v) FROM T GROUP BY T.u HAVING SUM(T.v) > 5")
        .unwrap();
    assert!(area.provably_empty);
}

#[test]
fn lemma2_where_upper_bound_interacts_with_having() {
    let provider = TestSchema { t_v_domain: None }; // dom = (-inf, inf)
    let ex = Extractor::new(&provider);
    // c1 > 0: no extra constraint beyond WHERE (Lemma 2 case 1).
    let area = ex
        .extract_sql(
            "SELECT T.u, SUM(T.v) FROM T WHERE T.v < 3 GROUP BY T.u HAVING SUM(T.v) > 100",
        )
        .unwrap();
    assert_eq!(area.constraint.to_string(), "T.v < 3");
    // c1 <= 0, c2 >= 0: empty (Lemma 2 case 2).
    let area = ex
        .extract_sql(
            "SELECT T.u, SUM(T.v) FROM T WHERE T.v < -1 GROUP BY T.u HAVING SUM(T.v) > 0",
        )
        .unwrap();
    assert!(area.provably_empty);
    // c1 <= 0, c2 < 0, c2 < c1: sigma_{c2 < v < c1} (Lemma 2 case 3).
    let area = ex
        .extract_sql(
            "SELECT T.u, SUM(T.v) FROM T WHERE T.v < -1 GROUP BY T.u HAVING SUM(T.v) > -10",
        )
        .unwrap();
    let sql = area.constraint.to_string();
    assert!(sql.contains("T.v < -1"), "{sql}");
    assert!(sql.contains("T.v > -10"), "{sql}");
    // c2 >= c1: empty.
    let area = ex
        .extract_sql(
            "SELECT T.u, SUM(T.v) FROM T WHERE T.v < -10 GROUP BY T.u HAVING SUM(T.v) > -5",
        )
        .unwrap();
    assert!(area.provably_empty);
}

#[test]
fn lemma3_where_lower_bound_gives_where_only() {
    // Lemma 3: WHERE v > c1, HAVING SUM(v) > c2 -> sigma_{v > c1}.
    let provider = TestSchema { t_v_domain: None };
    let area = Extractor::new(&provider)
        .extract_sql(
            "SELECT T.u, SUM(T.v) FROM T WHERE T.v > -7 GROUP BY T.u HAVING SUM(T.v) > 1000",
        )
        .unwrap();
    assert_eq!(area.constraint.to_string(), "T.v > -7");
}

#[test]
fn count_having_is_unconstrained_or_empty() {
    let provider = TestSchema { t_v_domain: None };
    let ex = Extractor::new(&provider);
    let area = ex
        .extract_sql("SELECT u, COUNT(*) FROM T GROUP BY u HAVING COUNT(*) > 100")
        .unwrap();
    assert!(area.constraint.is_empty());
    // COUNT(*) < 1 is unsatisfiable for a group containing the tuple.
    let area = ex
        .extract_sql("SELECT u, COUNT(*) FROM T GROUP BY u HAVING COUNT(*) < 1")
        .unwrap();
    assert!(area.provably_empty);
}

#[test]
fn min_max_having_cases() {
    let provider = TestSchema { t_v_domain: None };
    let ex = Extractor::new(&provider);
    // MIN(v) > c: only tuples with v > c can be in such a group.
    let area = ex
        .extract_sql("SELECT u, MIN(v) FROM T GROUP BY u HAVING MIN(v) > 4")
        .unwrap();
    assert_eq!(area.constraint.to_string(), "T.v > 4");
    // MIN(v) < c with unbounded domain: any tuple (pad with small value).
    let area = ex
        .extract_sql("SELECT u, MIN(v) FROM T GROUP BY u HAVING MIN(v) < 4")
        .unwrap();
    assert!(area.constraint.is_empty());
    // MAX(v) < c mirrors MIN(v) > c.
    let area = ex
        .extract_sql("SELECT u, MAX(v) FROM T GROUP BY u HAVING MAX(v) < 4")
        .unwrap();
    assert_eq!(area.constraint.to_string(), "T.v < 4");
}

#[test]
fn avg_having_cases() {
    let provider = TestSchema {
        t_v_domain: Some((0.0, 10.0)),
    };
    let ex = Extractor::new(&provider);
    // AVG(v) > 5 with domain [0,10]: achievable for any tuple.
    let area = ex
        .extract_sql("SELECT u, AVG(v) FROM T GROUP BY u HAVING AVG(v) > 5")
        .unwrap();
    assert!(area.constraint.is_empty());
    // AVG(v) > 20: impossible.
    let area = ex
        .extract_sql("SELECT u, AVG(v) FROM T GROUP BY u HAVING AVG(v) > 20")
        .unwrap();
    assert!(area.provably_empty);
}

// ---------------------------------------------------------------- nested --

#[test]
fn lemma4_exists_pulls_up_subquery_where() {
    let area = extract(
        "SELECT * FROM T WHERE T.u > 7 AND EXISTS \
         (SELECT * FROM S WHERE S.u = T.u AND S.v < 3)",
    );
    assert_eq!(
        area.to_intermediate_sql(),
        "SELECT * FROM S, T WHERE T.u > 7 AND S.u = T.u AND S.v < 3"
    );
    assert!(area.exact);
}

#[test]
fn lemma5_and_connected_exists_on_same_relation_or_their_wheres() {
    let area = extract(
        "SELECT * FROM T WHERE T.u > 1 \
         AND EXISTS (SELECT * FROM S WHERE S.v < 2 AND S.u = T.u) \
         AND EXISTS (SELECT * FROM S WHERE S.v >= 5 AND S.u = T.u)",
    );
    assert!(!area.provably_empty);
    let sql = area.to_intermediate_sql();
    // The two subquery WHEREs are OR-ed: (v<2 AND u=T.u) OR (v>=5 AND u=T.u),
    // which in CNF contains the clause (S.v < 2 OR S.v >= 5).
    assert!(
        sql.contains("S.v < 2 OR S.v >= 5") || sql.contains("S.v >= 5 OR S.v < 2"),
        "{sql}"
    );
    assert!(sql.contains("S.u = T.u"), "{sql}");
}

#[test]
fn lemma6_or_connected_exists() {
    let area = extract(
        "SELECT * FROM T WHERE T.u > 1 \
         OR EXISTS (SELECT * FROM S WHERE S.v < 2 AND S.u = T.u) \
         OR EXISTS (SELECT * FROM S WHERE S.v >= 5 AND S.u = T.u)",
    );
    let sql = area.to_intermediate_sql();
    // CNF of T.u>1 OR (S.u=T.u AND (S.v<2 OR S.v>=5)):
    // (T.u>1 OR S.u=T.u) AND (T.u>1 OR S.v<2 OR S.v>=5).
    assert!(sql.contains("T.u > 1 OR S.u = T.u") || sql.contains("S.u = T.u OR T.u > 1"), "{sql}");
}

#[test]
fn example4_multi_level_nesting() {
    let area = extract(
        "SELECT * FROM T WHERE T.u > 7 AND EXISTS \
         (SELECT * FROM S WHERE S.u = T.u AND S.v < 3 AND EXISTS \
          (SELECT * FROM R WHERE R.v = S.v AND R.x < 9))",
    );
    assert_eq!(
        area.to_intermediate_sql(),
        "SELECT * FROM R, S, T WHERE T.u > 7 AND S.u = T.u AND S.v < 3 AND R.v = S.v AND R.x < 9"
    );
}

#[test]
fn in_subquery_reduces_to_exists_form() {
    let area = extract("SELECT * FROM T WHERE T.u IN (SELECT S.u FROM S WHERE S.v = 12)");
    assert_eq!(
        area.to_intermediate_sql(),
        "SELECT * FROM S, T WHERE S.v = 12 AND T.u = S.u"
    );
}

#[test]
fn scalar_subquery_comparison() {
    // The implicit nested form of Section 4.4's intro.
    let area = extract("SELECT * FROM T WHERE T.u = (SELECT S.u FROM S WHERE S.v = 12)");
    assert_eq!(
        area.to_intermediate_sql(),
        "SELECT * FROM S, T WHERE S.v = 12 AND T.u = S.u"
    );
}

#[test]
fn any_quantifier() {
    let area = extract("SELECT * FROM T WHERE T.u > ANY (SELECT S.u FROM S WHERE S.v < 4)");
    assert_eq!(
        area.to_intermediate_sql(),
        "SELECT * FROM S, T WHERE S.v < 4 AND T.u > S.u"
    );
}

#[test]
fn all_quantifier_uses_violating_form() {
    let area = extract("SELECT * FROM T WHERE T.u > ALL (SELECT S.u FROM S WHERE S.v < 4)");
    let sql = area.to_intermediate_sql();
    assert!(sql.contains("S.v < 4"), "{sql}");
    assert!(sql.contains("T.u <= S.u"), "{sql}");
    assert!(!area.exact, "ALL handling is an approximation");
}

#[test]
fn not_exists_keeps_inspected_area() {
    let area = extract("SELECT * FROM T WHERE NOT EXISTS (SELECT * FROM S WHERE S.u = T.u)");
    let sql = area.to_intermediate_sql();
    assert!(sql.contains("S.u = T.u"), "{sql}");
    assert!(!area.exact);
}

#[test]
fn derived_table_is_inlined() {
    let area = extract("SELECT * FROM (SELECT u FROM T WHERE T.v > 3) AS sub WHERE sub.u < 9");
    assert_eq!(
        area.to_intermediate_sql(),
        "SELECT * FROM T WHERE T.v > 3 AND T.u < 9"
    );
}

#[test]
fn projection_scalar_subquery_contributes_area() {
    let area = extract("SELECT (SELECT MAX(S.w) FROM S WHERE S.v > 2) FROM T WHERE T.u = 1");
    let sql = area.to_intermediate_sql();
    assert!(area.has_table("S"), "{sql}");
    assert!(sql.contains("S.v > 2"), "{sql}");
    assert!(sql.contains("T.u = 1"), "{sql}");
}

// -------------------------------------------------------------- failures --

#[test]
fn udf_queries_fail_extraction() {
    let err = Extractor::new(&NoSchema)
        .extract_sql("SELECT * FROM T WHERE dbo.fGetNearbyObjEq(185.0, -0.5, 1.0) = 1")
        .unwrap_err();
    assert!(err.to_string().contains("function"));
}

#[test]
fn error_queries_still_extract() {
    // Section 6.6: access areas are extracted even from queries that error
    // on SkyServer (rate limit / row cap) or use the MySQL dialect.
    let area = extract("SELECT objid FROM Galaxies LIMIT 10");
    assert_eq!(area.to_intermediate_sql(), "SELECT * FROM Galaxies");
}

#[test]
fn predicate_cap_truncates_large_queries() {
    let mut clauses: Vec<String> = Vec::new();
    for i in 0..50 {
        clauses.push(format!("c{i} > {i}"));
    }
    let sql = format!("SELECT * FROM T WHERE {}", clauses.join(" AND "));
    let area = Extractor::with_config(
        &NoSchema,
        ExtractConfig {
            atom_cap: 35,
            ..ExtractConfig::default()
        },
    )
    .extract_sql(&sql)
    .unwrap();
    assert!(!area.exact);
    assert_eq!(area.constraint.len(), 35);
}

#[test]
fn order_by_and_top_do_not_affect_area() {
    let a = extract("SELECT * FROM T WHERE u > 1");
    let b = extract("SELECT TOP 10 * FROM T WHERE u > 1 ORDER BY v DESC");
    assert_eq!(a.to_intermediate_sql(), b.to_intermediate_sql());
}

// ------------------------------------------------------- extension cases --

#[test]
fn having_with_conjunction_of_aggregates() {
    // Extension beyond the paper's one-aggregate-per-HAVING restriction:
    // AND-connected AGG terms are analysed term-wise.
    let provider = TestSchema {
        t_v_domain: Some((-100.0, 0.0)),
    };
    let area = Extractor::new(&provider)
        .extract_sql(
            "SELECT u, SUM(v) FROM T GROUP BY u \
             HAVING SUM(v) > -5 AND COUNT(*) > 3",
        )
        .unwrap();
    // SUM case constrains v > -5; COUNT case adds nothing.
    assert_eq!(area.constraint.to_string(), "T.v > -5");
}

#[test]
fn having_mixing_aggregate_and_plain_predicate() {
    let provider = TestSchema { t_v_domain: None };
    let area = Extractor::new(&provider)
        .extract_sql("SELECT u, COUNT(*) FROM T GROUP BY u HAVING COUNT(*) > 2 AND u > 7")
        .unwrap();
    // COUNT adds nothing; the plain group-key predicate constrains u.
    assert_eq!(area.constraint.to_string(), "T.u > 7");
}

#[test]
fn having_with_flipped_constant_side() {
    let provider = TestSchema { t_v_domain: None };
    let area = Extractor::new(&provider)
        .extract_sql("SELECT u, MIN(v) FROM T GROUP BY u HAVING 4 < MIN(v)")
        .unwrap();
    assert_eq!(area.constraint.to_string(), "T.v > 4");
}

#[test]
fn affine_division_normalises() {
    let area = extract("SELECT * FROM T WHERE u / 4 >= 5");
    assert_eq!(area.to_intermediate_sql(), "SELECT * FROM T WHERE T.u >= 20");
    // Division by a negative flips.
    let area = extract("SELECT * FROM T WHERE u / -2 < 3");
    assert_eq!(area.to_intermediate_sql(), "SELECT * FROM T WHERE T.u > -6");
}

#[test]
fn constant_folding_in_comparisons() {
    let area = extract("SELECT * FROM T WHERE 1 + 1 = 2 AND u > 3");
    assert_eq!(area.to_intermediate_sql(), "SELECT * FROM T WHERE T.u > 3");
    // A constant contradiction empties the area.
    let area = extract("SELECT * FROM T WHERE 1 = 2 AND u > 3");
    assert!(area.provably_empty);
}

#[test]
fn like_without_wildcards_is_equality() {
    let area = extract("SELECT * FROM T WHERE class LIKE 'star'");
    assert_eq!(
        area.to_intermediate_sql(),
        "SELECT * FROM T WHERE T.class = 'star'"
    );
    // With wildcards it constrains nothing (approximation).
    let area = extract("SELECT * FROM T WHERE name LIKE 'NGC%'");
    assert!(area.constraint.is_empty());
    assert!(!area.exact);
}

#[test]
fn not_in_list_inverts_each_alternative() {
    let area = extract("SELECT * FROM T WHERE class NOT IN ('star', 'qso')");
    // NOT(a OR b) -> NOT a AND NOT b.
    assert_eq!(
        area.to_intermediate_sql(),
        "SELECT * FROM T WHERE T.class <> 'star' AND T.class <> 'qso'"
    );
}

#[test]
fn cast_is_transparent_for_extraction() {
    let area = extract("SELECT * FROM T WHERE CAST(u AS float) > 5");
    assert_eq!(area.to_intermediate_sql(), "SELECT * FROM T WHERE T.u > 5");
}

#[test]
fn in_subquery_with_local_where_and_outer_between() {
    let area = extract(
        "SELECT * FROM T WHERE T.u BETWEEN 1 AND 9 \
         AND T.v IN (SELECT S.v FROM S WHERE S.w >= 100)",
    );
    let sql = area.to_intermediate_sql();
    assert!(sql.contains("T.u >= 1"), "{sql}");
    assert!(sql.contains("S.w >= 100"), "{sql}");
    assert!(sql.contains("T.v = S.v"), "{sql}");
}

#[test]
fn duplicate_table_mentions_collapse_in_universal_relation() {
    // The same relation via subquery and FROM: table set stays deduped.
    let area = extract("SELECT * FROM S WHERE S.u IN (SELECT S.u FROM S WHERE S.v > 1)");
    assert_eq!(area.table_count(), 1);
}

#[test]
fn empty_in_list_never_matches() {
    // `IN ()` is not legal SQL and the parser rejects it.
    assert!(Extractor::new(&NoSchema)
        .extract_sql("SELECT * FROM T WHERE u IN ()")
        .is_err());
}

#[test]
fn three_level_nesting() {
    let area = extract(
        "SELECT * FROM A WHERE A.x > 1 AND EXISTS (\
           SELECT * FROM B WHERE B.x = A.x AND EXISTS (\
             SELECT * FROM C WHERE C.x = B.x AND EXISTS (\
               SELECT * FROM D WHERE D.x = C.x AND D.y < 0)))",
    );
    assert_eq!(area.table_count(), 4);
    let sql = area.to_intermediate_sql();
    assert!(sql.contains("D.y < 0"), "{sql}");
    assert!(sql.contains("C.x = B.x"), "{sql}");
}

// --------------------------------------------- full aggregate case matrix --

#[test]
fn sum_less_than_mirrors_lemma1() {
    // Mirror of Lemma 1 for `SUM(v) < c`: with negative values available
    // the sum can be dragged down for any tuple.
    let provider = TestSchema {
        t_v_domain: Some((-100.0, 100.0)),
    };
    let area = Extractor::new(&provider)
        .extract_sql("SELECT u, SUM(v) FROM T GROUP BY u HAVING SUM(v) < -5")
        .unwrap();
    assert!(area.constraint.is_empty());
    // All values >= 0: best (lowest) sum is the tuple's own value.
    let provider = TestSchema {
        t_v_domain: Some((0.0, 100.0)),
    };
    let area = Extractor::new(&provider)
        .extract_sql("SELECT u, SUM(v) FROM T GROUP BY u HAVING SUM(v) < 5")
        .unwrap();
    assert_eq!(area.constraint.to_string(), "T.v < 5");
    // ... and an impossible threshold empties the area.
    let area = Extractor::new(&provider)
        .extract_sql("SELECT u, SUM(v) FROM T GROUP BY u HAVING SUM(v) < -1")
        .unwrap();
    assert!(area.provably_empty);
}

#[test]
fn min_eq_and_max_eq_cases() {
    let provider = TestSchema {
        t_v_domain: Some((0.0, 10.0)),
    };
    let ex = Extractor::new(&provider);
    // MIN(v) = 4: only tuples with v >= 4 can sit in such a group.
    let area = ex
        .extract_sql("SELECT u, MIN(v) FROM T GROUP BY u HAVING MIN(v) = 4")
        .unwrap();
    assert_eq!(area.constraint.to_string(), "T.v >= 4");
    // MIN(v) = 40 is outside the domain: empty.
    let area = ex
        .extract_sql("SELECT u, MIN(v) FROM T GROUP BY u HAVING MIN(v) = 40")
        .unwrap();
    assert!(area.provably_empty);
    // MAX(v) = 4 mirrors: v <= 4.
    let area = ex
        .extract_sql("SELECT u, MAX(v) FROM T GROUP BY u HAVING MAX(v) = 4")
        .unwrap();
    assert_eq!(area.constraint.to_string(), "T.v <= 4");
}

#[test]
fn min_neq_with_bounded_domain() {
    // All values >= c: a tuple at exactly c pins MIN = c, so only v > c
    // survives MIN <> c.
    let provider = TestSchema {
        t_v_domain: Some((4.0, 10.0)),
    };
    let area = Extractor::new(&provider)
        .extract_sql("SELECT u, MIN(v) FROM T GROUP BY u HAVING MIN(v) <> 4")
        .unwrap();
    assert_eq!(area.constraint.to_string(), "T.v > 4");
    // With room below c any tuple works.
    let provider = TestSchema {
        t_v_domain: Some((0.0, 10.0)),
    };
    let area = Extractor::new(&provider)
        .extract_sql("SELECT u, MIN(v) FROM T GROUP BY u HAVING MIN(v) <> 4")
        .unwrap();
    assert!(area.constraint.is_empty());
}

#[test]
fn avg_boundary_cases() {
    let provider = TestSchema {
        t_v_domain: Some((0.0, 10.0)),
    };
    let ex = Extractor::new(&provider);
    // AVG(v) >= 10 (the supremum): every member must equal 10.
    let area = ex
        .extract_sql("SELECT u, AVG(v) FROM T GROUP BY u HAVING AVG(v) >= 10")
        .unwrap();
    assert_eq!(area.constraint.to_string(), "T.v >= 10");
    // AVG(v) = 5 (interior): reachable for any tuple.
    let area = ex
        .extract_sql("SELECT u, AVG(v) FROM T GROUP BY u HAVING AVG(v) = 5")
        .unwrap();
    assert!(area.constraint.is_empty());
    // AVG(v) = 12 (outside): empty.
    let area = ex
        .extract_sql("SELECT u, AVG(v) FROM T GROUP BY u HAVING AVG(v) = 12")
        .unwrap();
    assert!(area.provably_empty);
}

#[test]
fn count_eq_and_lteq_cases() {
    let provider = TestSchema { t_v_domain: None };
    let ex = Extractor::new(&provider);
    for (sql, empty) in [
        ("SELECT u, COUNT(*) FROM T GROUP BY u HAVING COUNT(*) = 3", false),
        ("SELECT u, COUNT(*) FROM T GROUP BY u HAVING COUNT(*) = 0", true),
        ("SELECT u, COUNT(*) FROM T GROUP BY u HAVING COUNT(*) <= 5", false),
        ("SELECT u, COUNT(*) FROM T GROUP BY u HAVING COUNT(*) <= 0", true),
        ("SELECT u, COUNT(*) FROM T GROUP BY u HAVING COUNT(*) <> 7", false),
    ] {
        let area = ex.extract_sql(sql).unwrap();
        assert_eq!(area.provably_empty, empty, "{sql}");
        if !empty {
            assert!(area.constraint.is_empty(), "{sql}");
        }
    }
}

#[test]
fn count_column_behaves_like_count_star() {
    let provider = TestSchema { t_v_domain: None };
    let area = Extractor::new(&provider)
        .extract_sql("SELECT u, COUNT(v) FROM T GROUP BY u HAVING COUNT(v) > 10")
        .unwrap();
    assert!(area.constraint.is_empty());
    assert!(!area.provably_empty);
}

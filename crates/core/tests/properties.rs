//! Property tests for the core transformation machinery:
//!
//! * CNF conversion preserves logical equivalence (checked by exhaustive
//!   assignment over independent categorical atoms);
//! * consolidation preserves the satisfying set;
//! * interval algebra laws;
//! * NNF conversion is involutive on negations.

use aa_core::boolexpr::BoolExpr;
use aa_core::consolidate::consolidate;
use aa_core::{AtomicPredicate, CmpOp, Constant, Interval, QualifiedColumn};
use aa_prop::{check, Config, Source};

const CMP_OPS: &[CmpOp] = &[
    CmpOp::Eq,
    CmpOp::Neq,
    CmpOp::Lt,
    CmpOp::LtEq,
    CmpOp::Gt,
    CmpOp::GtEq,
];

// ---- random boolean expressions over independent atoms --------------------

/// Atom i is the categorical predicate `T.c{i} = 'x'`; assignments set
/// each column independently to 'x' or 'y', making atoms independent
/// boolean variables.
fn atom(i: usize) -> BoolExpr {
    BoolExpr::Atom(AtomicPredicate::cc(
        QualifiedColumn::new("T", format!("c{i}")),
        CmpOp::Eq,
        Constant::Str("x".into()),
    ))
}

fn leaf_expr(src: &mut Source, num_atoms: usize) -> BoolExpr {
    match src.usize_in(0, num_atoms + 2) {
        0 => BoolExpr::True,
        1 => BoolExpr::False,
        n => atom(n - 2),
    }
}

fn gen_expr(src: &mut Source, num_atoms: usize, depth: u32) -> BoolExpr {
    if depth == 0 || !src.bool(0.65) {
        return leaf_expr(src, num_atoms);
    }
    match src.usize_in(0, 3) {
        0 => BoolExpr::and(src.vec_of(2, 4, |s| gen_expr(s, num_atoms, depth - 1))),
        1 => BoolExpr::or(src.vec_of(2, 4, |s| gen_expr(s, num_atoms, depth - 1))),
        _ => BoolExpr::not(gen_expr(src, num_atoms, depth - 1)),
    }
}

/// Evaluates an expression or CNF under a bitmask assignment.
fn lookup_for(mask: u32) -> impl Fn(&QualifiedColumn) -> Option<Constant> {
    move |col: &QualifiedColumn| {
        let idx: usize = col.column.trim_start_matches('c').parse().ok()?;
        Some(Constant::Str(
            if mask & (1 << idx) != 0 { "x" } else { "y" }.into(),
        ))
    }
}

const NUM_ATOMS: usize = 6;

/// CNF conversion (uncapped) is logically equivalent to the input.
#[test]
fn cnf_preserves_equivalence() {
    check(Config::cases(256), |src| {
        let expr = gen_expr(src, NUM_ATOMS, 4);
        let conv = expr.to_cnf_capped(usize::MAX, usize::MAX);
        assert!(conv.exact);
        for mask in 0..(1u32 << NUM_ATOMS) {
            let lookup = lookup_for(mask);
            let original = expr.evaluate(&lookup);
            let converted = conv.cnf.evaluate(&lookup);
            assert_eq!(
                original, converted,
                "mask {mask:06b}: {expr} vs CNF {}",
                conv.cnf
            );
        }
    });
}

/// NNF conversion is logically equivalent and free of Not nodes.
#[test]
fn nnf_preserves_equivalence() {
    check(Config::cases(256), |src| {
        let expr = gen_expr(src, NUM_ATOMS, 4);
        let nnf = expr.to_nnf();
        fn has_not(e: &BoolExpr) -> bool {
            match e {
                BoolExpr::Not(_) => true,
                BoolExpr::And(xs) | BoolExpr::Or(xs) => xs.iter().any(has_not),
                _ => false,
            }
        }
        assert!(!has_not(&nnf), "NNF still contains NOT: {nnf}");
        for mask in 0..(1u32 << NUM_ATOMS) {
            let lookup = lookup_for(mask);
            assert_eq!(expr.evaluate(&lookup), nnf.evaluate(&lookup));
        }
    });
}

/// Consolidation never changes the satisfying set of a CNF (checked on
/// numeric single-column constraints over a small grid).
#[test]
fn consolidation_preserves_satisfying_set() {
    check(Config::cases(256), |src| {
        use aa_core::{Cnf, Disjunction};
        let constraints = src.vec_of(1, 6, |s| {
            (
                s.usize_in(0, 2), // column u or v
                *s.choice(CMP_OPS),
                s.int_in(-3, 8),
            )
        });
        let cols = ["u", "v"];
        let clauses: Vec<Disjunction> = constraints
            .iter()
            .map(|(c, op, k)| {
                Disjunction::singleton(AtomicPredicate::cc(
                    QualifiedColumn::new("T", cols[*c]),
                    *op,
                    Constant::Num(*k as f64),
                ))
            })
            .collect();
        let original = Cnf::new(clauses);
        let mut consolidated = original.clone();
        let outcome = consolidate(&mut consolidated);

        let mut any_sat = false;
        for u in -5i64..10 {
            for v in -5i64..10 {
                let lookup = |col: &QualifiedColumn| -> Option<Constant> {
                    Some(Constant::Num(match col.column.as_str() {
                        "u" => u as f64,
                        "v" => v as f64,
                        _ => return None,
                    }))
                };
                let before = original.evaluate(&lookup);
                let after = consolidated.evaluate(&lookup);
                assert_eq!(before, after, "({u}, {v}): {original} vs {consolidated}");
                if before == Some(true) {
                    any_sat = true;
                }
            }
        }
        // A detected contradiction implies nothing on the grid satisfies
        // the constraint (the converse need not hold: satisfying points
        // may lie off-grid, and detection is best-effort anyway).
        if outcome.contradiction {
            assert!(!any_sat, "contradiction claimed but {original} satisfiable");
        }
    });
}

// ---- interval algebra laws -------------------------------------------------

#[test]
fn interval_intersection_laws() {
    check(Config::cases(256), |src| {
        let (a_lo, a_w) = (src.f64_in(-50.0, 50.0), src.f64_in(0.0, 40.0));
        let (b_lo, b_w) = (src.f64_in(-50.0, 50.0), src.f64_in(0.0, 40.0));
        let probe = src.f64_in(-100.0, 100.0);
        let a = Interval::closed(a_lo, a_lo + a_w);
        let b = Interval::closed(b_lo, b_lo + b_w);
        let i = a.intersect(&b);
        // Commutativity.
        assert_eq!(i, b.intersect(&a));
        // Membership: x in a∩b iff x in a and x in b.
        assert_eq!(i.contains(probe), a.contains(probe) && b.contains(probe));
        // Idempotence and identity.
        assert_eq!(a.intersect(&a), a);
        assert_eq!(a.intersect(&Interval::all()), a);
        // Intersection is a subset of both.
        assert!(i.subset_of(&a));
        assert!(i.subset_of(&b));
    });
}

#[test]
fn interval_hull_laws() {
    check(Config::cases(256), |src| {
        let (a_lo, a_w) = (src.f64_in(-50.0, 50.0), src.f64_in(0.0, 40.0));
        let (b_lo, b_w) = (src.f64_in(-50.0, 50.0), src.f64_in(0.0, 40.0));
        let probe = src.f64_in(-100.0, 100.0);
        let a = Interval::closed(a_lo, a_lo + a_w);
        let b = Interval::closed(b_lo, b_lo + b_w);
        let h = a.hull(&b);
        assert_eq!(h, b.hull(&a));
        assert!(a.subset_of(&h));
        assert!(b.subset_of(&h));
        // Hull width >= overlap width, and their difference is what the
        // dissimilarity d_pred normalises.
        assert!(h.width() + 1e-12 >= a.overlap_width(&b));
        if a.contains(probe) || b.contains(probe) {
            assert!(h.contains(probe));
        }
        // Union agrees with hull exactly when defined.
        if let Some(u) = a.union(&b) {
            assert_eq!(u, h);
        }
    });
}

#[test]
fn predicate_negation_flips_satisfaction() {
    check(Config::cases(256), |src| {
        let op = *src.choice(CMP_OPS);
        let c = src.int_in(-10, 10);
        let x = src.int_in(-15, 15);
        let p = AtomicPredicate::cc(
            QualifiedColumn::new("T", "u"),
            op,
            Constant::Num(c as f64),
        );
        let lookup = |_: &QualifiedColumn| Some(Constant::Num(x as f64));
        let sat = p.evaluate(&lookup).unwrap();
        let neg_sat = p.negate().evaluate(&lookup).unwrap();
        assert_ne!(sat, neg_sat);
    });
}

// ---- extractor robustness over generated SQL -------------------------------

/// Random valid-looking SELECT statements covering the grammar: joins,
/// aggregates, nesting, NOT, BETWEEN, IN-lists.
fn pred_sql(src: &mut Source) -> String {
    let t = *src.choice(&["T", "S", "R"]);
    let c = *src.choice(&["u", "v", "w"]);
    let o = *src.choice(&["=", "<>", "<", "<=", ">", ">="]);
    let k = src.int_in(-100, 100);
    format!("{t}.{c} {o} {k}")
}

fn clause_sql(src: &mut Source, depth: u32) -> String {
    if depth == 0 || !src.bool(0.6) {
        return pred_sql(src);
    }
    match src.usize_in(0, 3) {
        0 => format!(
            "({} AND {})",
            clause_sql(src, depth - 1),
            clause_sql(src, depth - 1)
        ),
        1 => format!(
            "({} OR {})",
            clause_sql(src, depth - 1),
            clause_sql(src, depth - 1)
        ),
        _ => format!("NOT ({})", clause_sql(src, depth - 1)),
    }
}

fn sql_statement(src: &mut Source) -> String {
    let where_clause = clause_sql(src, 3);
    let shape = src.usize_in(0, 6) as u8;
    let k = src.int_in(-50, 50);
    match shape {
        0 => format!("SELECT * FROM T, S, R WHERE {where_clause}"),
        1 => format!("SELECT * FROM T INNER JOIN S ON T.u = S.u WHERE {where_clause}"),
        2 => format!("SELECT * FROM T FULL OUTER JOIN S ON T.u = S.u WHERE {where_clause}"),
        3 => format!(
            "SELECT T.u, SUM(T.v) FROM T, S, R WHERE {where_clause} \
             GROUP BY T.u HAVING SUM(T.v) > {k}"
        ),
        4 => format!(
            "SELECT * FROM T WHERE T.u > {k} AND EXISTS \
             (SELECT * FROM S WHERE S.u = T.u AND ({where_clause}))"
        ),
        _ => format!("SELECT * FROM T WHERE T.v IN (SELECT S.v FROM S WHERE {where_clause})"),
    }
}

/// The extractor never panics on grammar-valid queries, and the
/// universal relation always contains every FROM-clause table.
#[test]
fn extractor_is_total_over_generated_sql() {
    check(Config::cases(256), |src| {
        use aa_core::extract::{Extractor, NoSchema};
        let sql = sql_statement(src);
        let parsed = aa_sql::parse_select(&sql).expect("generator emits valid SQL");
        let area = Extractor::new(&NoSchema)
            .extract(&parsed)
            .unwrap_or_else(|e| panic!("{sql}: {e}"));
        assert!(area.has_table("T"), "{sql}");
        // Consolidated constraints never mention unknown tables.
        for atom in area.constraint.atoms() {
            for col in atom.columns() {
                assert!(
                    area.has_table(&col.table),
                    "atom {atom} references table outside U in {sql}"
                );
            }
        }
        // Display of the intermediate form is itself parseable SQL.
        let rendered = area.to_intermediate_sql();
        aa_sql::parse_select(&rendered)
            .unwrap_or_else(|e| panic!("rendered `{rendered}` unparseable: {e}"));
    });
}

/// On queries without aggregates, outer joins, or subqueries, the
/// naive (Section 6.5) extractor and the faithful one must agree —
/// the transformations only differ on the Section 4.2-4.4 shapes.
#[test]
fn naive_equals_faithful_on_simple_queries() {
    check(Config::cases(128), |src| {
        use aa_core::extract::naive::naive_extractor;
        use aa_core::extract::{Extractor, NoSchema};
        let preds = src.vec_of(1, 5, |s| {
            (
                *s.choice(&["u", "v"]),
                *s.choice(&["=", "<>", "<", "<=", ">", ">="]),
                s.int_in(-50, 50),
            )
        });
        let connector_mask = src.int_in(0, 16) as u8;
        let mut clause = String::new();
        for (i, (c, o, k)) in preds.iter().enumerate() {
            if i > 0 {
                clause.push_str(if connector_mask & (1 << i) != 0 {
                    " AND "
                } else {
                    " OR "
                });
            }
            clause.push_str(&format!("T.{c} {o} {k}"));
        }
        let sql = format!("SELECT * FROM T WHERE {clause}");
        let provider = NoSchema;
        let faithful = Extractor::new(&provider).extract_sql(&sql).unwrap();
        let naive = naive_extractor(&provider).extract_sql(&sql).unwrap();
        assert_eq!(
            faithful.to_intermediate_sql(),
            naive.to_intermediate_sql(),
            "{sql}"
        );
    });
}

//! Property tests for the core transformation machinery:
//!
//! * CNF conversion preserves logical equivalence (checked by exhaustive
//!   assignment over independent categorical atoms);
//! * consolidation preserves the satisfying set;
//! * interval algebra laws;
//! * NNF conversion is involutive on negations.

use aa_core::boolexpr::BoolExpr;
use aa_core::consolidate::consolidate;
use aa_core::{AtomicPredicate, CmpOp, Constant, Interval, QualifiedColumn};
use proptest::prelude::*;

// ---- random boolean expressions over independent atoms --------------------

/// Atom i is the categorical predicate `T.c{i} = 'x'`; assignments set
/// each column independently to 'x' or 'y', making atoms independent
/// boolean variables.
fn atom(i: usize) -> BoolExpr {
    BoolExpr::Atom(AtomicPredicate::cc(
        QualifiedColumn::new("T", format!("c{i}")),
        CmpOp::Eq,
        Constant::Str("x".into()),
    ))
}

fn expr_strategy(num_atoms: usize) -> impl Strategy<Value = BoolExpr> {
    let leaf = prop_oneof![
        (0..num_atoms).prop_map(atom),
        Just(BoolExpr::True),
        Just(BoolExpr::False),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(BoolExpr::and),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(BoolExpr::or),
            inner.prop_map(BoolExpr::not),
        ]
    })
}

/// Evaluates an expression or CNF under a bitmask assignment.
fn lookup_for(mask: u32) -> impl Fn(&QualifiedColumn) -> Option<Constant> {
    move |col: &QualifiedColumn| {
        let idx: usize = col.column.trim_start_matches('c').parse().ok()?;
        Some(Constant::Str(
            if mask & (1 << idx) != 0 { "x" } else { "y" }.into(),
        ))
    }
}

const NUM_ATOMS: usize = 6;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// CNF conversion (uncapped) is logically equivalent to the input.
    #[test]
    fn cnf_preserves_equivalence(expr in expr_strategy(NUM_ATOMS)) {
        let conv = expr.to_cnf_capped(usize::MAX, usize::MAX);
        prop_assert!(conv.exact);
        for mask in 0..(1u32 << NUM_ATOMS) {
            let lookup = lookup_for(mask);
            let original = expr.evaluate(&lookup);
            let converted = conv.cnf.evaluate(&lookup);
            prop_assert_eq!(original, converted,
                "mask {:06b}: {} vs CNF {}", mask, expr, conv.cnf);
        }
    }

    /// NNF conversion is logically equivalent and free of Not nodes.
    #[test]
    fn nnf_preserves_equivalence(expr in expr_strategy(NUM_ATOMS)) {
        let nnf = expr.to_nnf();
        fn has_not(e: &BoolExpr) -> bool {
            match e {
                BoolExpr::Not(_) => true,
                BoolExpr::And(xs) | BoolExpr::Or(xs) => xs.iter().any(has_not),
                _ => false,
            }
        }
        prop_assert!(!has_not(&nnf), "NNF still contains NOT: {}", nnf);
        for mask in 0..(1u32 << NUM_ATOMS) {
            let lookup = lookup_for(mask);
            prop_assert_eq!(expr.evaluate(&lookup), nnf.evaluate(&lookup));
        }
    }

    /// Consolidation never changes the satisfying set of a CNF (checked on
    /// numeric single-column constraints over a small grid).
    #[test]
    fn consolidation_preserves_satisfying_set(
        constraints in proptest::collection::vec(
            (
                0usize..2, // column u or v
                prop_oneof![
                    Just(CmpOp::Eq), Just(CmpOp::Neq), Just(CmpOp::Lt),
                    Just(CmpOp::LtEq), Just(CmpOp::Gt), Just(CmpOp::GtEq)
                ],
                -3i64..8,
            ),
            1..6,
        )
    ) {
        use aa_core::{Cnf, Disjunction};
        let cols = ["u", "v"];
        let clauses: Vec<Disjunction> = constraints
            .iter()
            .map(|(c, op, k)| {
                Disjunction::singleton(AtomicPredicate::cc(
                    QualifiedColumn::new("T", cols[*c]),
                    *op,
                    Constant::Num(*k as f64),
                ))
            })
            .collect();
        let original = Cnf::new(clauses);
        let mut consolidated = original.clone();
        let outcome = consolidate(&mut consolidated);

        let mut any_sat = false;
        for u in -5i64..10 {
            for v in -5i64..10 {
                let lookup = |col: &QualifiedColumn| -> Option<Constant> {
                    Some(Constant::Num(match col.column.as_str() {
                        "u" => u as f64,
                        "v" => v as f64,
                        _ => return None,
                    }))
                };
                let before = original.evaluate(&lookup);
                let after = consolidated.evaluate(&lookup);
                prop_assert_eq!(before, after,
                    "({}, {}): {} vs {}", u, v, original, consolidated);
                if before == Some(true) {
                    any_sat = true;
                }
            }
        }
        // A detected contradiction implies nothing on the grid satisfies
        // the constraint (the converse need not hold: satisfying points
        // may lie off-grid, and detection is best-effort anyway).
        if outcome.contradiction {
            prop_assert!(!any_sat, "contradiction claimed but {} satisfiable", original);
        }
    }

    // ---- interval algebra laws ---------------------------------------------

    #[test]
    fn interval_intersection_laws(
        (a_lo, a_w) in (-50.0..50.0f64, 0.0..40.0f64),
        (b_lo, b_w) in (-50.0..50.0f64, 0.0..40.0f64),
        probe in -100.0..100.0f64,
    ) {
        let a = Interval::closed(a_lo, a_lo + a_w);
        let b = Interval::closed(b_lo, b_lo + b_w);
        let i = a.intersect(&b);
        // Commutativity.
        prop_assert_eq!(i, b.intersect(&a));
        // Membership: x in a∩b iff x in a and x in b.
        prop_assert_eq!(i.contains(probe), a.contains(probe) && b.contains(probe));
        // Idempotence and identity.
        prop_assert_eq!(a.intersect(&a), a);
        prop_assert_eq!(a.intersect(&Interval::all()), a);
        // Intersection is a subset of both.
        prop_assert!(i.subset_of(&a));
        prop_assert!(i.subset_of(&b));
    }

    #[test]
    fn interval_hull_laws(
        (a_lo, a_w) in (-50.0..50.0f64, 0.0..40.0f64),
        (b_lo, b_w) in (-50.0..50.0f64, 0.0..40.0f64),
        probe in -100.0..100.0f64,
    ) {
        let a = Interval::closed(a_lo, a_lo + a_w);
        let b = Interval::closed(b_lo, b_lo + b_w);
        let h = a.hull(&b);
        prop_assert_eq!(h, b.hull(&a));
        prop_assert!(a.subset_of(&h));
        prop_assert!(b.subset_of(&h));
        // Hull width >= overlap width, and their difference is what the
        // dissimilarity d_pred normalises.
        prop_assert!(h.width() + 1e-12 >= a.overlap_width(&b));
        if a.contains(probe) || b.contains(probe) {
            prop_assert!(h.contains(probe));
        }
        // Union agrees with hull exactly when defined.
        if let Some(u) = a.union(&b) {
            prop_assert_eq!(u, h);
        }
    }

    #[test]
    fn predicate_negation_flips_satisfaction(
        op in prop_oneof![
            Just(CmpOp::Eq), Just(CmpOp::Neq), Just(CmpOp::Lt),
            Just(CmpOp::LtEq), Just(CmpOp::Gt), Just(CmpOp::GtEq)
        ],
        c in -10i64..10,
        x in -15i64..15,
    ) {
        let p = AtomicPredicate::cc(
            QualifiedColumn::new("T", "u"),
            op,
            Constant::Num(c as f64),
        );
        let lookup = |_: &QualifiedColumn| Some(Constant::Num(x as f64));
        let sat = p.evaluate(&lookup).unwrap();
        let neg_sat = p.negate().evaluate(&lookup).unwrap();
        prop_assert_ne!(sat, neg_sat);
    }
}

// ---- extractor robustness over generated SQL -------------------------------

/// Random valid-looking SELECT statements covering the grammar: joins,
/// aggregates, nesting, NOT, BETWEEN, IN-lists.
fn sql_strategy() -> impl Strategy<Value = String> {
    let table = prop_oneof![Just("T"), Just("S"), Just("R")];
    let column = prop_oneof![Just("u"), Just("v"), Just("w")];
    let op = prop_oneof![Just("="), Just("<>"), Just("<"), Just("<="), Just(">"), Just(">=")];
    let pred = (table.clone(), column.clone(), op, -100i64..100)
        .prop_map(|(t, c, o, k)| format!("{t}.{c} {o} {k}"));
    let clause = pred.clone().prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} AND {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} OR {b})")),
            inner.prop_map(|a| format!("NOT ({a})")),
        ]
    });
    (clause, 0u8..6, -50i64..50).prop_map(|(where_clause, shape, k)| match shape {
        0 => format!("SELECT * FROM T, S, R WHERE {where_clause}"),
        1 => format!("SELECT * FROM T INNER JOIN S ON T.u = S.u WHERE {where_clause}"),
        2 => format!("SELECT * FROM T FULL OUTER JOIN S ON T.u = S.u WHERE {where_clause}"),
        3 => format!(
            "SELECT T.u, SUM(T.v) FROM T, S, R WHERE {where_clause} \
             GROUP BY T.u HAVING SUM(T.v) > {k}"
        ),
        4 => format!(
            "SELECT * FROM T WHERE T.u > {k} AND EXISTS \
             (SELECT * FROM S WHERE S.u = T.u AND ({where_clause}))"
        ),
        _ => format!(
            "SELECT * FROM T WHERE T.v IN (SELECT S.v FROM S WHERE {where_clause})"
        ),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The extractor never panics on grammar-valid queries, and the
    /// universal relation always contains every FROM-clause table.
    #[test]
    fn extractor_is_total_over_generated_sql(sql in sql_strategy()) {
        use aa_core::extract::{Extractor, NoSchema};
        let parsed = aa_sql::parse_select(&sql).expect("generator emits valid SQL");
        let area = Extractor::new(&NoSchema)
            .extract(&parsed)
            .unwrap_or_else(|e| panic!("{sql}: {e}"));
        prop_assert!(area.has_table("T"), "{}", sql);
        // Consolidated constraints never mention unknown tables.
        for atom in area.constraint.atoms() {
            for col in atom.columns() {
                prop_assert!(
                    area.has_table(&col.table),
                    "atom {} references table outside U in {}",
                    atom,
                    sql
                );
            }
        }
        // Display of the intermediate form is itself parseable SQL.
        let rendered = area.to_intermediate_sql();
        aa_sql::parse_select(&rendered)
            .unwrap_or_else(|e| panic!("rendered `{rendered}` unparseable: {e}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// On queries without aggregates, outer joins, or subqueries, the
    /// naive (Section 6.5) extractor and the faithful one must agree —
    /// the transformations only differ on the Section 4.2-4.4 shapes.
    #[test]
    fn naive_equals_faithful_on_simple_queries(
        preds in proptest::collection::vec(
            (
                prop_oneof![Just("u"), Just("v")],
                prop_oneof![Just("="), Just("<>"), Just("<"), Just("<="), Just(">"), Just(">=")],
                -50i64..50,
            ),
            1..5,
        ),
        connector_mask in 0u8..16,
    ) {
        use aa_core::extract::naive::naive_extractor;
        use aa_core::extract::{Extractor, NoSchema};
        let mut clause = String::new();
        for (i, (c, o, k)) in preds.iter().enumerate() {
            if i > 0 {
                clause.push_str(if connector_mask & (1 << i) != 0 { " AND " } else { " OR " });
            }
            clause.push_str(&format!("T.{c} {o} {k}"));
        }
        let sql = format!("SELECT * FROM T WHERE {clause}");
        let provider = NoSchema;
        let faithful = Extractor::new(&provider).extract_sql(&sql).unwrap();
        let naive = naive_extractor(&provider).extract_sql(&sql).unwrap();
        prop_assert_eq!(
            faithful.to_intermediate_sql(),
            naive.to_intermediate_sql(),
            "{}", sql
        );
    }
}

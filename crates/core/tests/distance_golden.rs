//! Golden-value tests for the Section 5 distance function.
//!
//! Every expected value here is hand-computed from the definitions (not
//! captured from the implementation), so these tests pin the arithmetic
//! itself: interval clipping against `access(a)`, hull/overlap widths,
//! the clause-matching sums of `d_conj`/`d_disj`, and the Jaccard table
//! distance. Tolerances are 1e-12 — the computations are exact in f64.

use aa_core::distance::{DistanceMode, QueryDistance};
use aa_core::extract::{Extractor, NoSchema};
use aa_core::ranges::AccessRanges;
use aa_core::{AccessArea, AtomicPredicate, DistanceKernel, QualifiedColumn, TableInterner};

fn area(sql: &str) -> AccessArea {
    Extractor::new(&NoSchema).extract_sql(sql).unwrap()
}

/// Single-atom WHERE clause -> its atomic predicate.
fn pred(sql_where: &str) -> AtomicPredicate {
    let a = area(&format!("SELECT * FROM T WHERE {sql_where}"));
    assert_eq!(a.constraint.len(), 1, "{sql_where}");
    a.constraint.clauses[0].atoms[0].clone()
}

/// access(T.a) = [0,10], access(T.b) = [0,10], access(S.x) = [0,10],
/// access(T.class) = {star, galaxy, qso}.
fn ranges() -> AccessRanges {
    let mut r = AccessRanges::new();
    r.set_numeric(&QualifiedColumn::new("T", "a"), 0.0, 10.0);
    r.set_numeric(&QualifiedColumn::new("T", "b"), 0.0, 10.0);
    r.set_numeric(&QualifiedColumn::new("S", "x"), 0.0, 10.0);
    r.set_categorical(
        &QualifiedColumn::new("T", "class"),
        ["star".to_string(), "galaxy".to_string(), "qso".to_string()],
    );
    r
}

fn assert_close(got: f64, want: f64, what: &str) {
    assert!(
        (got - want).abs() < 1e-12,
        "{what}: got {got}, hand-computed {want}"
    );
}

#[test]
fn d_pred_same_direction_inequalities() {
    // a < 4: clipped to [0,4), width 4.   a < 6: clipped to [0,6), width 6.
    // overlap = 4, hull = [0,6) width 6, |access| = 10.
    let r = ranges();
    let p1 = pred("a < 4");
    let p2 = pred("a < 6");
    // Dissimilarity: (hull - overlap) / |access| = (6 - 4) / 10.
    let d = QueryDistance::new(&r);
    assert_close(d.d_pred(&p1, &p2), 0.2, "dissimilarity a<4 vs a<6");
    // Paper-literal: overlap / |access| = 4 / 10.
    let lit = QueryDistance::with_mode(&r, DistanceMode::PaperLiteral);
    assert_close(lit.d_pred(&p1, &p2), 0.4, "literal a<4 vs a<6");
}

#[test]
fn d_pred_opposing_inequalities() {
    // a >= 2: [2,10] width 8.   a <= 8: [0,8] width 8.
    // overlap = [2,8] width 6, hull = [0,10] width 10, |access| = 10.
    let r = ranges();
    let p1 = pred("a >= 2");
    let p2 = pred("a <= 8");
    let d = QueryDistance::new(&r);
    assert_close(d.d_pred(&p1, &p2), 0.4, "dissimilarity a>=2 vs a<=8");
    let lit = QueryDistance::with_mode(&r, DistanceMode::PaperLiteral);
    assert_close(lit.d_pred(&p1, &p2), 0.6, "literal a>=2 vs a<=8");
}

#[test]
fn d_pred_point_predicates() {
    // a = 3 vs a = 7 on [0,10]: overlap 0, hull [3,7] width 4 -> 0.4.
    let r = ranges();
    let d = QueryDistance::new(&r);
    assert_close(d.d_pred(&pred("a = 3"), &pred("a = 7")), 0.4, "a=3 vs a=7");
    // Identical points: hull width 0 -> 0.
    assert_close(d.d_pred(&pred("a = 3"), &pred("a = 3")), 0.0, "a=3 vs a=3");
}

#[test]
fn d_pred_widens_access_to_cover_out_of_range_constants() {
    // a = 15 lies outside access [0,10]: access widens to [0,15].
    // a = 5 vs a = 15: overlap 0, hull [5,15] width 10, |access| = 15.
    let r = ranges();
    let d = QueryDistance::new(&r);
    assert_close(
        d.d_pred(&pred("a = 5"), &pred("a = 15")),
        10.0 / 15.0,
        "a=5 vs a=15 with widened access",
    );
}

#[test]
fn d_pred_categorical_jaccard() {
    let r = ranges();
    let d = QueryDistance::new(&r);
    // {star} vs {galaxy, qso}: disjoint -> 1.
    assert_close(
        d.d_pred(&pred("class = 'star'"), &pred("class <> 'star'")),
        1.0,
        "star vs NOT star",
    );
    // {galaxy, qso} vs {star, qso}: common {qso}, union 3 -> 1 - 1/3.
    assert_close(
        d.d_pred(&pred("class <> 'star'"), &pred("class <> 'galaxy'")),
        2.0 / 3.0,
        "NOT star vs NOT galaxy",
    );
    // Paper-literal normalizes the overlap by |access| = 3: 1/3.
    let lit = QueryDistance::with_mode(&r, DistanceMode::PaperLiteral);
    assert_close(
        lit.d_pred(&pred("class <> 'star'"), &pred("class <> 'galaxy'")),
        1.0 / 3.0,
        "literal NOT star vs NOT galaxy",
    );
}

#[test]
fn d_disj_clause_matching_sum() {
    // o1 = (a < 4 OR b > 2), o2 = (a < 6).
    // d(a<4, a<6) = 0.2 (above); d(b>2, a<6) = 1 (cross-column).
    // sum1 = 0.2 + 1 = 1.2; sum2 = min(0.2, 1) = 0.2.
    // d_disj = (1.2 + 0.2) / (2 + 1) = 1.4/3.
    let r = ranges();
    let d = QueryDistance::new(&r);
    let a1 = area("SELECT * FROM T WHERE a < 4 OR b > 2");
    let a2 = area("SELECT * FROM T WHERE a < 6");
    assert_eq!(a1.constraint.len(), 1);
    let got = d.d_disj(&a1.constraint.clauses[0], &a2.constraint.clauses[0]);
    assert_close(got, 1.4 / 3.0, "d_disj two-atom vs one-atom");
}

#[test]
fn d_conj_clause_matching_sum() {
    // b1 = {a < 4} ∧ {b > 2}, b2 = {a < 6}.
    // Clause distances: d({a<4},{a<6}) = 0.2; d({b>2},{a<6}) = 1.
    // sum1 = 0.2 + 1 = 1.2; sum2 = min = 0.2.
    // d_conj = (1.2 + 0.2) / (2 + 1) = 1.4/3.
    let r = ranges();
    let d = QueryDistance::new(&r);
    let a1 = area("SELECT * FROM T WHERE a < 4 AND b > 2");
    let a2 = area("SELECT * FROM T WHERE a < 6");
    assert_close(
        d.d_conj(&a1.constraint, &a2.constraint),
        1.4 / 3.0,
        "d_conj 2 clauses vs 1",
    );
}

#[test]
fn d_tables_jaccard_goldens() {
    let r = ranges();
    let d = QueryDistance::new(&r);
    let t = area("SELECT * FROM T");
    let ts = area("SELECT * FROM T, S");
    let sr = area("SELECT * FROM S, R");
    let tsr = area("SELECT * FROM T, S, R");
    // {T} vs {T,S}: 1 - 1/2.
    assert_close(d.d_tables(&t, &ts), 0.5, "{T} vs {T,S}");
    // {T,S} vs {S,R}: 1 - 1/3.
    assert_close(d.d_tables(&ts, &sr), 2.0 / 3.0, "{T,S} vs {S,R}");
    // {T,S,R} vs {T,S}: 1 - 2/3.
    assert_close(d.d_tables(&tsr, &ts), 1.0 / 3.0, "{T,S,R} vs {T,S}");
}

#[test]
fn full_distance_equation_1() {
    // q1 = SELECT ... FROM T WHERE a < 4
    // q2 = SELECT ... FROM S, T WHERE T.a < 6 AND S.x = 1
    // d_tables({T}, {S,T}) = 1 - 1/2 = 0.5.
    // d_conj({a<4} ; {T.a<6}, {S.x=1}):
    //   sum1 = min(0.2, 1) = 0.2; sum2 = 0.2 + 1 = 1.2 -> 1.4/3.
    // d = 0.5 + 1.4/3.
    let r = ranges();
    let d = QueryDistance::new(&r);
    let q1 = area("SELECT * FROM T WHERE a < 4");
    let q2 = area("SELECT * FROM S, T WHERE T.a < 6 AND S.x = 1");
    assert_close(d.distance(&q1, &q2), 0.5 + 1.4 / 3.0, "full distance");
    // Symmetry of the whole equation on this pair.
    assert_close(
        d.distance(&q2, &q1),
        d.distance(&q1, &q2),
        "distance symmetry",
    );
}

#[test]
fn paper_worked_example_both_modes() {
    // The paper's own numbers, on its own access range [0,5]:
    // p1 = a < 3, p2 = a > 2 -> literal 1/5 = 0.2;
    // dissimilarity = (5 - 1)/5 = 0.8 = 1 - 0.2 (intervals span access).
    let mut r = AccessRanges::new();
    r.set_numeric(&QualifiedColumn::new("T", "a"), 0.0, 5.0);
    let lit = QueryDistance::with_mode(&r, DistanceMode::PaperLiteral);
    assert_close(lit.d_pred(&pred("a < 3"), &pred("a > 2")), 0.2, "paper 5.2");
    let d = QueryDistance::new(&r);
    assert_close(d.d_pred(&pred("a < 3"), &pred("a > 2")), 0.8, "1 - paper");
}

// --------------------------------------------------------------------
// Kernel edge cases: the bitset/arena layer against the same goldens.
// --------------------------------------------------------------------

#[test]
fn kernel_empty_table_sets() {
    // Two table-less areas: d_tables = 0 (both empty), and the whole
    // distance is 0 because there is nothing to mismatch on.
    let r = ranges();
    let areas = vec![AccessArea::new([]), AccessArea::new([]), area("SELECT * FROM T")];
    let kernel = DistanceKernel::build(&areas, &r, DistanceMode::Dissimilarity);
    let scalar = QueryDistance::new(&r);
    assert_close(kernel.d_tables(0, 1), 0.0, "empty vs empty");
    assert_close(kernel.distance(0, 1), 0.0, "empty vs empty full distance");
    // Empty vs {T}: Jaccard 1 (nothing shared, union nonempty).
    assert_close(kernel.d_tables(0, 2), 1.0, "empty vs {T}");
    for i in 0..areas.len() {
        for j in 0..areas.len() {
            assert_eq!(
                kernel.distance(i, j).to_bits(),
                scalar.distance(&areas[i], &areas[j]).to_bits(),
                "kernel vs scalar ({i},{j})"
            );
        }
    }
}

#[test]
fn kernel_wide_masks_past_64_tables() {
    // A 70-table universe forces the Vec<u64> overflow masks; Jaccard
    // must keep matching the scalar set computation exactly.
    let r = AccessRanges::new();
    let mut areas: Vec<AccessArea> = (0..70)
        .map(|i| area(&format!("SELECT * FROM Tab{i}")))
        .collect();
    areas.push(area(&format!(
        "SELECT * FROM {}",
        (0..70).map(|i| format!("Tab{i}")).collect::<Vec<_>>().join(", ")
    )));
    let kernel = DistanceKernel::build(&areas, &r, DistanceMode::Dissimilarity);
    let scalar = QueryDistance::new(&r);
    assert!(kernel.tables().len() == 70, "universe spans 70 tables");
    assert!(
        !kernel.mask_of(70).is_small(),
        "the all-tables area must take the wide-mask path"
    );
    for i in [0usize, 35, 69, 70] {
        for j in [0usize, 35, 69, 70] {
            assert_eq!(
                kernel.d_tables(i, j).to_bits(),
                scalar.d_tables(&areas[i], &areas[j]).to_bits(),
                "wide d_tables ({i},{j})"
            );
        }
    }
    // Singleton 0 vs all-70: share one table -> 1 - 1/70.
    assert_close(kernel.d_tables(0, 70), 1.0 - 1.0 / 70.0, "singleton vs all");
}

#[test]
fn interner_ids_deterministic_across_insertion_orders() {
    // Table ids come from the sorted name universe, so any area order
    // produces the same interner (and therefore the same masks).
    let a = area("SELECT * FROM Zeta, Alpha");
    let b = area("SELECT * FROM Mid");
    let c = area("SELECT * FROM Alpha, Mid");
    let forward = TableInterner::build([&a, &b, &c]);
    let backward = TableInterner::build([&c, &b, &a]);
    assert_eq!(forward.len(), backward.len());
    for name in ["alpha", "mid", "zeta"] {
        assert_eq!(forward.id(name), backward.id(name), "{name}");
        assert!(forward.id(name).is_some(), "{name} interned");
    }
    // Sorted universe: alpha < mid < zeta.
    assert_eq!(forward.id("alpha"), Some(0));
    assert_eq!(forward.id("mid"), Some(1));
    assert_eq!(forward.id("zeta"), Some(2));
    assert_eq!(forward.id("unknown"), None);
}

#[test]
fn kernel_mode_parity_matches_scalar_goldens() {
    // The kernel must reproduce the same PaperLiteral / Dissimilarity
    // split the goldens above pin for the scalar path.
    let r = ranges();
    let areas = vec![
        area("SELECT * FROM T WHERE a < 4"),
        area("SELECT * FROM T WHERE a < 6"),
    ];
    let lit = DistanceKernel::build(&areas, &r, DistanceMode::PaperLiteral);
    let dis = DistanceKernel::build(&areas, &r, DistanceMode::Dissimilarity);
    // d_conj over single-atom constraints: (d + d) / 2 = d_pred.
    assert_close(dis.distance(0, 1), 0.2, "kernel dissimilarity a<4 vs a<6");
    assert_close(lit.distance(0, 1), 0.4, "kernel literal a<4 vs a<6");
    assert_eq!(lit.mode(), DistanceMode::PaperLiteral);
    assert_eq!(dis.mode(), DistanceMode::Dissimilarity);
}

//! Satellite tests for the `BENCH_*.json` emission layer (`perf`):
//! round-trip through aa-util JSON, schema stability, counter
//! determinism, and the `AA_BENCH_FAST` env contract.

use aa_bench::perf::{
    gate_reports, kernels_report, BenchRecord, BenchReport, Sampling, KERNELS_SCHEMA, SERVE_SCHEMA,
};
use aa_util::Json;

fn sample_report() -> BenchReport {
    let mut r = BenchReport::new(KERNELS_SCHEMA, 42);
    r.records.push(
        BenchRecord::time("d_tables/64/kernel", (12.5, 14.0))
            .counter("bitset_fast_path", 4096)
            .counter("pairs", 2016),
    );
    r.records
        .push(BenchRecord::time("d_tables/64/scalar", (80.0, 91.25)));
    r
}

#[test]
fn report_round_trips_through_json() {
    let report = sample_report();
    let text = report.to_json().to_string_pretty();
    let back = BenchReport::from_json(&Json::parse(&text).unwrap()).unwrap();
    assert_eq!(back, report);
    // Compact form round-trips too.
    let compact = report.to_json().to_string_compact();
    let back = BenchReport::from_json(&Json::parse(&compact).unwrap()).unwrap();
    assert_eq!(back, report);
}

#[test]
fn report_save_load_round_trips() {
    let dir = std::env::temp_dir().join(format!("aa_perf_report_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("BENCH_test.json");
    let report = sample_report();
    report.save(&path).unwrap();
    let back = BenchReport::load(&path).unwrap();
    assert_eq!(back, report);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn schema_tags_are_stable() {
    // The gate and any external tooling key on these exact strings; a
    // change is a format break and must bump the version suffix.
    assert_eq!(KERNELS_SCHEMA, "aa-bench/kernels/v1");
    assert_eq!(SERVE_SCHEMA, "aa-bench/serve/v1");
    // Top-level and per-record field names are part of the contract.
    let json = sample_report().to_json();
    let Json::Obj(fields) = &json else { panic!("report is an object") };
    let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(keys, ["schema", "seed", "records"]);
    let Some(Json::Arr(records)) = json.get("records") else { panic!("records array") };
    let Json::Obj(rec) = &records[0] else { panic!("record is an object") };
    let keys: Vec<&str> = rec.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(keys, ["name", "median_ns", "p95_ns", "counters"]);
}

#[test]
fn kernel_counters_deterministic_for_fixed_seed() {
    // Two fully independent runs: timings may differ, work counters must
    // not (they come from fixed sweeps outside the timing loops).
    let a = kernels_report(7, &Sampling::fast());
    let b = kernels_report(7, &Sampling::fast());
    assert_eq!(a.records.len(), b.records.len());
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra.name, rb.name);
        assert_eq!(ra.counters, rb.counters, "{}", ra.name);
    }
    // And the counted sweeps are non-trivial.
    let kernel64 = a.record("d_tables/64/kernel").unwrap();
    assert!(kernel64.counters.iter().any(|&(_, v)| v > 0), "{kernel64:?}");
}

#[test]
fn gate_passes_on_identity_and_catches_counter_drift() {
    let base = sample_report();
    assert!(gate_reports(&base, &base).is_empty(), "identity must pass");

    let mut drifted = base.clone();
    drifted.records[0].counters[0].1 += 1;
    let failures = gate_reports(&drifted, &base);
    assert!(
        failures.iter().any(|f| f.contains("counter change")),
        "{failures:?}"
    );

    // A kernel slowdown past the band trips the ratio rule.
    let mut slow = base.clone();
    slow.records[0].median_ns *= 2.0;
    let failures = gate_reports(&slow, &base);
    assert!(
        failures.iter().any(|f| f.contains("regressed")),
        "{failures:?}"
    );

    // Speedup below the absolute floor trips even with a matching baseline.
    let mut floor_base = sample_report();
    floor_base.records[0].median_ns = 40.0; // speedup 2x in both reports
    let failures = gate_reports(&floor_base, &floor_base);
    assert!(
        failures.iter().any(|f| f.contains("below the 4x floor")),
        "{failures:?}"
    );

    let missing = BenchReport::new(KERNELS_SCHEMA, 42);
    let failures = gate_reports(&missing, &base);
    assert!(failures.iter().any(|f| f.contains("missing")), "{failures:?}");

    let other = BenchReport::new(SERVE_SCHEMA, 42);
    let failures = gate_reports(&other, &base);
    assert!(failures.iter().any(|f| f.contains("schema mismatch")), "{failures:?}");
}

#[test]
fn sampling_honors_bench_fast_env() {
    // `Sampling::fast()` is the pinned AA_BENCH_FAST=1 shape.
    let fast = Sampling::fast();
    assert_eq!(fast.sample_size, 5);
    assert_eq!(fast.warmup.as_millis(), 5);

    // From the environment: only this test touches these variables (the
    // other tests use explicit Sampling values), so the mutation is safe.
    std::env::set_var("AA_BENCH_FAST", "1");
    let s = Sampling::from_env();
    assert_eq!(s.sample_size, 5);
    assert_eq!(s.warmup.as_millis(), 5);

    std::env::set_var("AA_BENCH_SAMPLE_SIZE", "9");
    std::env::set_var("AA_BENCH_WARMUP_MS", "17");
    let s = Sampling::from_env();
    assert_eq!(s.sample_size, 9);
    assert_eq!(s.warmup.as_millis(), 17);

    std::env::remove_var("AA_BENCH_FAST");
    std::env::remove_var("AA_BENCH_SAMPLE_SIZE");
    std::env::remove_var("AA_BENCH_WARMUP_MS");
    let s = Sampling::from_env();
    assert_eq!(s.sample_size, 60);
    assert_eq!(s.warmup.as_millis(), 120);
}

//! # aa-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (see DESIGN.md
//! §3 for the experiment index) plus Criterion microbenches:
//!
//! | binary            | reproduces                                       |
//! |-------------------|--------------------------------------------------|
//! | `table1`          | Table 1 (24 aggregated access areas)             |
//! | `figure1`         | Figure 1(a)/(b)/(c) subspace geometry            |
//! | `coverage`        | Section 6.1 extraction-rate breakdown            |
//! | `olapclus_exact`  | Section 6.4 OLAPClus cluster explosion           |
//! | `olapclus_raw`    | Section 6.5 naive-extraction cluster breakage    |
//! | `efficiency`      | Section 6.6 throughput & per-step timings        |
//! | `requery_quality` | Section 6.6 re-querying quality comparison       |
//! | `ablation`        | DESIGN.md §2.1 distance-mode ablation            |
//!
//! The shared machinery lives here: [`harness`] (catalog + log + pipeline +
//! blocked clustering), [`aggregate`] (cluster → MBR with the 3σ rule),
//! [`coverage`](mod@crate::coverage) (area/object coverage), and [`report`] (text tables).

#![forbid(unsafe_code)]

pub mod aggregate;
pub mod coverage;
pub mod density;
pub mod harness;
pub mod micro;
pub mod perf;
pub mod report;

pub use aggregate::{aggregate_cluster, AggregatedArea};
pub use coverage::{area_coverage, coverage, object_coverage, Coverage};
pub use density::{density_contrast, DensityContrast};
pub use harness::{
    cluster_areas, cluster_areas_scalar, cluster_areas_with_kernel, prepare, ExperimentConfig,
    ExperimentData,
};
pub use perf::{
    gate_reports, kernels_report, measure_ns, serve_report, BenchRecord, BenchReport, Sampling,
    KERNELS_SCHEMA, SERVE_SCHEMA,
};
pub use report::{banner, fmt_coverage, TextTable};

//! Shared experiment harness: build catalog + log, run the pipeline,
//! track ranges, cluster with the blocking index.

use aa_core::{
    AccessArea, AccessRanges, DistanceKernel, DistanceMode, ExtractedQuery, FailedQuery, Pipeline,
    PipelineStats, QueryDistance,
};
use aa_dbscan::parallel::PrecomputedNeighbors;
use aa_dbscan::{dbscan_with_index, DbscanParams, DbscanResult, KeyedBuckets};
use aa_engine::Catalog;
use aa_skyserver::{build_catalog, generate_log, GroundTruth, LogConfig, LogEntry};
use std::collections::BTreeSet;

/// Configuration shared by the experiment binaries.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    pub log: LogConfig,
    /// Row-count multiplier for the synthetic catalog.
    pub catalog_scale: f64,
    pub catalog_seed: u64,
    /// Sample size for the Section 5.3 content estimator.
    pub stat_sample_rows: usize,
    pub dbscan: DbscanParams,
    pub distance_mode: DistanceMode,
    /// Worker threads for neighbour precomputation.
    pub threads: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            log: LogConfig::default(),
            catalog_scale: 0.2,
            catalog_seed: 1337,
            stat_sample_rows: 100,
            dbscan: DbscanParams {
                eps: 0.06,
                min_pts: 8,
            },
            distance_mode: DistanceMode::Dissimilarity,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        }
    }
}

impl ExperimentConfig {
    /// Reads `AA_LOG_TOTAL`, `AA_SEED`, `AA_SCALE`, `AA_EPS`, `AA_MINPTS`
    /// from the environment so the binaries are tunable without flags.
    pub fn from_env() -> Self {
        let mut cfg = ExperimentConfig::default();
        if let Some(v) = env_parse::<usize>("AA_LOG_TOTAL") {
            cfg.log.total = v;
        }
        if let Some(v) = env_parse::<u64>("AA_SEED") {
            cfg.log.seed = v;
            cfg.catalog_seed = v.wrapping_mul(31).wrapping_add(7);
        }
        if let Some(v) = env_parse::<f64>("AA_SCALE") {
            cfg.catalog_scale = v;
        }
        if let Some(v) = env_parse::<f64>("AA_EPS") {
            cfg.dbscan.eps = v;
        }
        if let Some(v) = env_parse::<usize>("AA_MINPTS") {
            cfg.dbscan.min_pts = v;
        }
        cfg
    }
}

fn env_parse<T: std::str::FromStr>(key: &str) -> Option<T> {
    std::env::var(key).ok().and_then(|v| v.parse().ok())
}

/// Everything a table/figure binary needs.
pub struct ExperimentData {
    pub catalog: Catalog,
    pub log: Vec<LogEntry>,
    pub extracted: Vec<ExtractedQuery>,
    pub failed: Vec<FailedQuery>,
    pub stats: PipelineStats,
    pub ranges: AccessRanges,
    /// Ground truth parallel to `extracted`.
    pub truths: Vec<GroundTruth>,
}

impl ExperimentData {
    /// The extracted areas (parallel to `truths`).
    pub fn areas(&self) -> Vec<&AccessArea> {
        self.extracted.iter().map(|q| &q.area).collect()
    }
}

/// Builds the catalog, generates the log, runs the pipeline, and prepares
/// `access(a)` ranges (content sample + log observation, Section 5.3).
pub fn prepare(config: &ExperimentConfig) -> ExperimentData {
    let catalog = build_catalog(config.catalog_scale, config.catalog_seed);
    let log = generate_log(&config.log);

    // The engine catalog doubles as the schema provider: it knows column
    // lists and domains.
    let pipeline = Pipeline::new(&catalog);
    let (extracted, failed, stats) = pipeline.process_log(log.iter().map(|e| e.sql.as_str()));

    let mut ranges = AccessRanges::from_catalog(&catalog, config.stat_sample_rows);
    for q in &extracted {
        ranges.observe_area(&q.area);
    }

    let truths: Vec<GroundTruth> = extracted.iter().map(|q| log[q.log_index].truth).collect();

    ExperimentData {
        catalog,
        log,
        extracted,
        failed,
        stats,
        ranges,
        truths,
    }
}

/// Clusters areas under the paper's distance with table-set blocking and
/// parallel neighbour precomputation, riding the bitset kernel
/// ([`aa_core::DistanceKernel`]). Bit-exact with [`cluster_areas_scalar`]
/// (the differential suite asserts identical labels).
pub fn cluster_areas(
    areas: &[AccessArea],
    ranges: &AccessRanges,
    params: &DbscanParams,
    mode: DistanceMode,
    threads: usize,
) -> DbscanResult {
    let kernel = DistanceKernel::build(areas, ranges, mode);
    cluster_areas_with_kernel(&kernel, areas, params, threads)
}

/// [`cluster_areas`] against a caller-built kernel (so benches can read
/// the kernel's work counters after the run).
pub fn cluster_areas_with_kernel(
    kernel: &DistanceKernel,
    areas: &[AccessArea],
    params: &DbscanParams,
    threads: usize,
) -> DbscanResult {
    assert_eq!(kernel.len(), areas.len(), "kernel built over these areas");
    let positions: Vec<usize> = (0..areas.len()).collect();
    let distance = |a: &usize, b: &usize| kernel.distance(*a, *b);
    let (buckets, keys) = blocking_buckets(areas);
    let allowed = allowed_by_bucket(&buckets, &keys, params.eps);
    let candidates = |i: usize| allowed[buckets.key_of_item(i)].clone();
    let pre =
        PrecomputedNeighbors::compute(&positions, params.eps, &distance, threads, Some(&candidates));
    dbscan_with_index(&positions, params, &distance, &pre)
}

/// The pre-kernel scalar path, kept as the reference oracle for the
/// differential suite.
pub fn cluster_areas_scalar(
    areas: &[AccessArea],
    ranges: &AccessRanges,
    params: &DbscanParams,
    mode: DistanceMode,
    threads: usize,
) -> DbscanResult {
    let metric = QueryDistance::with_mode(ranges, mode);
    let distance = |a: &AccessArea, b: &AccessArea| metric.distance(a, b);
    let (buckets, keys) = blocking_buckets(areas);
    let allowed = allowed_by_bucket(&buckets, &keys, params.eps);
    let candidates = |i: usize| allowed[buckets.key_of_item(i)].clone();
    let pre =
        PrecomputedNeighbors::compute(areas, params.eps, &distance, threads, Some(&candidates));
    dbscan_with_index(areas, params, &distance, &pre)
}

/// Blocking: bucket by table set; only buckets within eps Jaccard are
/// candidate neighbours (d >= d_tables).
fn blocking_buckets(areas: &[AccessArea]) -> (KeyedBuckets, Vec<BTreeSet<String>>) {
    KeyedBuckets::build(areas, |a: &AccessArea| {
        a.table_keys().map(str::to_string).collect::<BTreeSet<String>>()
    })
}

/// Per-key candidate lists: all items of every bucket within eps.
fn allowed_by_bucket(
    buckets: &KeyedBuckets,
    keys: &[BTreeSet<String>],
    eps: f64,
) -> Vec<Vec<usize>> {
    let k = buckets.bucket_count();
    let mut allowed: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (ka, av) in allowed.iter_mut().enumerate() {
        for kb in 0..k {
            if aa_baselines::jaccard_tables(&keys[ka], &keys[kb]) <= eps {
                av.extend_from_slice(buckets.bucket(kb));
            }
        }
    }
    allowed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            log: LogConfig::small(1_200, 5),
            catalog_scale: 0.02,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn prepare_runs_end_to_end() {
        let data = prepare(&tiny_config());
        assert!(data.stats.extraction_rate() > 0.98, "{:?}", data.stats);
        assert_eq!(data.extracted.len(), data.truths.len());
        assert!(!data.ranges.is_empty());
        assert!(data.catalog.has_table("Photoz"));
    }

    #[test]
    fn clustering_recovers_some_planted_clusters() {
        let config = tiny_config();
        let data = prepare(&config);
        let areas: Vec<AccessArea> =
            data.extracted.iter().map(|q| q.area.clone()).collect();
        let result = cluster_areas(
            &areas,
            &data.ranges,
            &config.dbscan,
            DistanceMode::Dissimilarity,
            2,
        );
        assert!(result.cluster_count >= 10, "{}", result.cluster_count);
        let report = aa_skyserver::evaluate(&data.truths, &result.labels, result.cluster_count);
        assert!(
            report.recovered_count() >= 12,
            "only {} of 24 clusters recovered ({} dbscan clusters)",
            report.recovered_count(),
            result.cluster_count
        );
    }
}

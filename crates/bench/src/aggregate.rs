//! Cluster aggregation (Section 6.2): from a DBSCAN cluster of access
//! areas to one aggregated access area — the minimum bounding
//! hyper-rectangle of the members' boxes, with the paper's 3-standard-
//! deviation trim on range bounds.

use aa_core::{AccessArea, AtomicPredicate, Interval, QualifiedColumn};
use std::collections::{BTreeMap, BTreeSet};

/// An aggregated access area for one cluster.
#[derive(Debug, Clone)]
pub struct AggregatedArea {
    /// DBSCAN cluster id.
    pub cluster_id: usize,
    /// Number of member queries.
    pub cardinality: usize,
    /// Tables of the members' universal relations (display names).
    pub tables: BTreeSet<String>,
    /// Per-column aggregated numeric ranges.
    pub numeric: Vec<(QualifiedColumn, Interval)>,
    /// Per-column aggregated categorical value sets.
    pub categorical: Vec<(QualifiedColumn, BTreeSet<String>)>,
    /// Join predicates present in at least half the members.
    pub joins: Vec<AtomicPredicate>,
}

/// Drops values outside mean ± 3σ ("we leave out extreme range bounds by
/// applying the 3-standard deviation rule").
fn three_sigma_trim(values: &[f64]) -> Vec<f64> {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.len() < 3 {
        return finite;
    }
    let n = finite.len() as f64;
    let mean = finite.iter().sum::<f64>() / n;
    let var = finite.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    let sd = var.sqrt();
    if sd == 0.0 {
        return finite;
    }
    finite
        .into_iter()
        .filter(|v| (v - mean).abs() <= 3.0 * sd)
        .collect()
}

/// Aggregates the access areas of one cluster.
pub fn aggregate_cluster(
    cluster_id: usize,
    members: &[&AccessArea],
) -> AggregatedArea {
    let mut tables: BTreeSet<String> = BTreeSet::new();
    let mut los: BTreeMap<QualifiedColumn, Vec<f64>> = BTreeMap::new();
    let mut his: BTreeMap<QualifiedColumn, Vec<f64>> = BTreeMap::new();
    let mut cats: BTreeMap<QualifiedColumn, BTreeSet<String>> = BTreeMap::new();
    let mut join_counts: BTreeMap<String, (AtomicPredicate, usize)> = BTreeMap::new();

    for area in members {
        tables.extend(area.table_names().map(str::to_string));
        for (col, iv) in area.conjunctive_intervals() {
            los.entry(col.clone()).or_default().push(iv.lo);
            his.entry(col).or_default().push(iv.hi);
        }
        for (col, values) in area.categorical_values() {
            cats.entry(col).or_default().extend(values);
        }
        for join in area.join_atoms() {
            let key = join.to_string().to_lowercase();
            join_counts
                .entry(key)
                .and_modify(|(_, n)| *n += 1)
                .or_insert(((*join).clone(), 1));
        }
    }

    let mut numeric = Vec::new();
    for (col, lo_vals) in &los {
        let hi_vals = &his[col];
        // Unbounded members keep the aggregated side unbounded.
        let lo_unbounded = lo_vals.contains(&f64::NEG_INFINITY);
        let hi_unbounded = hi_vals.contains(&f64::INFINITY);
        let lo_trimmed = three_sigma_trim(lo_vals);
        let hi_trimmed = three_sigma_trim(hi_vals);
        let lo = if lo_unbounded {
            f64::NEG_INFINITY
        } else {
            lo_trimmed.iter().copied().fold(f64::INFINITY, f64::min)
        };
        let hi = if hi_unbounded {
            f64::INFINITY
        } else {
            hi_trimmed.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        };
        if lo == f64::INFINITY && hi == f64::NEG_INFINITY {
            continue; // everything trimmed away
        }
        numeric.push((
            col.clone(),
            Interval {
                lo,
                hi,
                lo_open: false,
                hi_open: false,
            },
        ));
    }

    let half = members.len().div_ceil(2);
    let joins = join_counts
        .into_values()
        .filter(|(_, n)| *n >= half)
        .map(|(p, _)| p)
        .collect();

    AggregatedArea {
        cluster_id,
        cardinality: members.len(),
        tables,
        numeric,
        categorical: cats.into_iter().collect(),
        joins,
    }
}

impl std::fmt::Display for AggregatedArea {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        for (col, iv) in &self.numeric {
            let part = match (iv.lo.is_finite(), iv.hi.is_finite()) {
                (true, true) if iv.lo == iv.hi => format!("{col} = {}", fmt_num(iv.lo)),
                (true, true) => {
                    format!("{} <= {col} <= {}", fmt_num(iv.lo), fmt_num(iv.hi))
                }
                (true, false) => format!("{col} >= {}", fmt_num(iv.lo)),
                (false, true) => format!("{col} <= {}", fmt_num(iv.hi)),
                (false, false) => continue,
            };
            parts.push(part);
        }
        for (col, values) in &self.categorical {
            if values.len() == 1 {
                parts.push(format!(
                    "{col} = '{}'",
                    values.iter().next().expect("len 1")
                ));
            } else {
                let alts: Vec<String> =
                    values.iter().map(|v| format!("{col} = '{v}'")).collect();
                parts.push(format!("({})", alts.join(" OR ")));
            }
        }
        for join in &self.joins {
            parts.push(join.to_string());
        }
        if parts.is_empty() {
            write!(f, "TRUE")
        } else {
            write!(f, "{}", parts.join(" AND "))
        }
    }
}

/// Formats a bound with thousands separators for id-scale integers.
fn fmt_num(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 9.3e18 {
        let i = x as i64;
        if i.abs() >= 10_000 {
            // Group digits by threes, as Table 1 prints ids.
            let s = i.abs().to_string();
            let mut grouped = String::new();
            for (idx, ch) in s.chars().enumerate() {
                if idx > 0 && (s.len() - idx).is_multiple_of(3) {
                    grouped.push(',');
                }
                grouped.push(ch);
            }
            if i < 0 {
                format!("-{grouped}")
            } else {
                grouped
            }
        } else {
            i.to_string()
        }
    } else {
        format!("{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aa_core::extract::{Extractor, NoSchema};

    fn areas(sqls: &[String]) -> Vec<AccessArea> {
        let ex = Extractor::new(&NoSchema);
        sqls.iter().map(|s| ex.extract_sql(s).unwrap()).collect()
    }

    #[test]
    fn aggregates_point_queries_into_a_range() {
        let sqls: Vec<String> = (0..20)
            .map(|i| format!("SELECT * FROM Photoz WHERE objid = {}", 1000 + i * 10))
            .collect();
        let list = areas(&sqls);
        let refs: Vec<&AccessArea> = list.iter().collect();
        let agg = aggregate_cluster(0, &refs);
        assert_eq!(agg.cardinality, 20);
        let (_, iv) = &agg.numeric[0];
        assert_eq!((iv.lo, iv.hi), (1000.0, 1190.0));
    }

    #[test]
    fn three_sigma_drops_extreme_bounds() {
        // 30 tight ranges plus one wild outlier bound.
        let mut sqls: Vec<String> = (0..30)
            .map(|i| {
                format!(
                    "SELECT * FROM T WHERE u >= {} AND u <= {}",
                    100 + i,
                    200 + i
                )
            })
            .collect();
        sqls.push("SELECT * FROM T WHERE u >= -1000000 AND u <= 200".to_string());
        let list = areas(&sqls);
        let refs: Vec<&AccessArea> = list.iter().collect();
        let agg = aggregate_cluster(0, &refs);
        let (_, iv) = &agg.numeric[0];
        assert_eq!(iv.lo, 100.0, "outlier bound trimmed");
        assert_eq!(iv.hi, 229.0);
    }

    #[test]
    fn one_sided_ranges_stay_one_sided() {
        let sqls: Vec<String> = (0..10)
            .map(|i| format!("SELECT * FROM PhotoObjAll WHERE ra <= {}", 200 + i))
            .collect();
        let list = areas(&sqls);
        let refs: Vec<&AccessArea> = list.iter().collect();
        let agg = aggregate_cluster(0, &refs);
        let (_, iv) = &agg.numeric[0];
        assert!(iv.lo == f64::NEG_INFINITY);
        assert_eq!(iv.hi, 209.0);
        assert!(agg.to_string().contains("ra <= 209"));
    }

    #[test]
    fn categorical_and_joins_aggregate() {
        let sqls: Vec<String> = (0..6)
            .map(|i| {
                format!(
                    "SELECT * FROM A, B WHERE A.class IN ('star', 'qso') \
                     AND A.id = B.id AND A.x > {i}"
                )
            })
            .collect();
        let list = areas(&sqls);
        let refs: Vec<&AccessArea> = list.iter().collect();
        let agg = aggregate_cluster(0, &refs);
        assert_eq!(agg.categorical.len(), 1);
        assert_eq!(agg.categorical[0].1.len(), 2);
        assert_eq!(agg.joins.len(), 1);
        let shown = agg.to_string();
        assert!(shown.contains("A.id = B.id"), "{shown}");
        assert!(shown.contains("A.class = 'qso'"), "{shown}");
    }

    #[test]
    fn id_bounds_format_with_separators() {
        // (the id rounds to the nearest f64-representable integer)
        assert_eq!(
            fmt_num(1_237_657_855_534_432_934f64.round()),
            "1,237,657,855,534,433,024"
        );
        assert_eq!(fmt_num(209.0), "209");
        assert_eq!(fmt_num(0.1), "0.1");
        assert_eq!(fmt_num(-12_345.0), "-12,345");
    }
}

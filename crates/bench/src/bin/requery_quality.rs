//! **E9 — Section 6.6 (quality & runtime vs re-querying)**: comparing
//! log-only extraction against re-issuing queries.
//!
//! The paper's findings reproduced here:
//! 1. re-querying is orders of magnitude slower;
//! 2. re-querying cannot see the empty-area clusters 18–24 (their queries
//!    return no rows);
//! 3. extraction handles queries that *error* on the server (rate limit,
//!    row cap — 1,220,358 in the paper's log) and MySQL-dialect queries.

#![forbid(unsafe_code)]

use aa_baselines::{requery_log, RequeryConfig, RequeryFailure};
use aa_bench::{banner, prepare, ExperimentConfig, TextTable};
use aa_core::Pipeline;
use aa_skyserver::{GroundTruth, TABLE1};
use std::time::Instant;

fn main() {
    let mut config = ExperimentConfig::from_env();
    if std::env::var("AA_LOG_TOTAL").is_err() {
        config.log.total = 6_000; // re-querying is the slow path by design
    }
    banner("Section 6.6 reproduction: extraction vs re-querying");
    let data = prepare(&config);

    // --- runtime ---------------------------------------------------------
    let provider = &data.catalog;
    let pipeline = Pipeline::new(provider);
    let t0 = Instant::now();
    let (_, _, extract_stats) =
        pipeline.process_log(data.log.iter().map(|e| e.sql.as_str()));
    let extract_wall = t0.elapsed();

    let requery_config = RequeryConfig::default();
    let t1 = Instant::now();
    let (outcomes, requery_stats) = requery_log(
        &data.catalog,
        data.log.iter().map(|e| e.sql.as_str()),
        &requery_config,
    );
    let requery_wall = t1.elapsed();

    let mut table = TextTable::new(&["Approach", "Wall time", "Queries/s", "Areas obtained"]);
    table.row(vec![
        "log-only extraction".into(),
        format!("{extract_wall:.2?}"),
        format!(
            "{:.0}",
            extract_stats.total as f64 / extract_wall.as_secs_f64()
        ),
        extract_stats.extracted.to_string(),
    ]);
    table.row(vec![
        "re-querying".into(),
        format!("{requery_wall:.2?}"),
        format!(
            "{:.0}",
            requery_stats.total as f64 / requery_wall.as_secs_f64()
        ),
        requery_stats.with_mbr.to_string(),
    ]);
    print!("{}", table.render());
    println!(
        "speedup: {:.1}x (and the in-memory engine flatters re-querying — the paper ran \
         against the production SkyServer where the gap is orders of magnitude)",
        requery_wall.as_secs_f64() / extract_wall.as_secs_f64()
    );

    // --- empty-area blindness ---------------------------------------------
    banner("Empty-area clusters (18-24): what re-querying sees");
    let mut blind = TextTable::new(&[
        "Cluster",
        "Queries",
        "Extraction got area",
        "Re-query got MBR",
        "Re-query empty/err",
    ]);
    for spec in TABLE1.iter().filter(|s| s.empty_area) {
        let indices: Vec<usize> = data
            .log
            .iter()
            .enumerate()
            .filter(|(_, e)| e.truth == GroundTruth::Cluster(spec.id))
            .map(|(i, _)| i)
            .collect();
        let extracted_n = data
            .extracted
            .iter()
            .filter(|q| indices.contains(&q.log_index))
            .count();
        let mbr_n = indices
            .iter()
            .filter(|&&i| outcomes[i].is_ok())
            .count();
        let empty_n = indices.len() - mbr_n;
        blind.row(vec![
            spec.id.to_string(),
            indices.len().to_string(),
            extracted_n.to_string(),
            mbr_n.to_string(),
            empty_n.to_string(),
        ]);
    }
    print!("{}", blind.render());
    println!("-> the areas many users asked about simply do not exist in any result set.");

    // --- error-query handling ----------------------------------------------
    banner("Queries that error on the server (paper: 1,220,358 in the log)");
    let rate_limited = requery_stats.rate_limited;
    let row_capped = requery_stats.row_capped;
    let exec_errors = requery_stats.execution_errors;
    println!("re-query failures: {rate_limited} rate-limited, {row_capped} row-capped, {exec_errors} execution errors");
    let mut recovered = 0usize;
    for (i, outcome) in outcomes.iter().enumerate() {
        if matches!(
            outcome,
            Err(RequeryFailure::RateLimited | RequeryFailure::RowCapExceeded)
        ) && data.extracted.iter().any(|q| q.log_index == i)
        {
            recovered += 1;
        }
    }
    println!(
        "of those, extraction still produced an access area for: {recovered} \
         (100% of the parseable ones)"
    );

    // --- dialect handling ----------------------------------------------------
    let dialect = data.stats.mysql_dialect;
    let dialect_requery_ok = data
        .log
        .iter()
        .enumerate()
        .filter(|(i, e)| e.truth == GroundTruth::MySqlDialect && outcomes[*i].is_ok())
        .count();
    println!(
        "MySQL-dialect queries: {dialect} extracted from the log; a strict MSSQL server \
         executes 0 of them (our lenient engine ran {dialect_requery_ok})"
    );
}

//! **E5 — Section 6.1**: extraction coverage and failure taxonomy.
//!
//! The paper: 12,442,989 log entries, 12,375,426 extracted (99.46%);
//! the 67,563 failures "(a) contain errors, (b) use user-defined
//! SkyServer-specific functions, or (c) are not SELECT queries".

#![forbid(unsafe_code)]

use aa_bench::{banner, prepare, ExperimentConfig, TextTable};
use aa_skyserver::{GroundTruth, PathologicalKind};

fn main() {
    let config = ExperimentConfig::from_env();
    banner("Section 6.1 reproduction: extraction coverage");
    let data = prepare(&config);

    let paper_total = 12_442_989u64;
    let paper_extracted = 12_375_426u64;

    let mut table = TextTable::new(&["Metric", "Paper", "Ours"]);
    table.row(vec![
        "log entries".into(),
        paper_total.to_string(),
        data.stats.total.to_string(),
    ]);
    table.row(vec![
        "areas extracted".into(),
        paper_extracted.to_string(),
        data.stats.extracted.to_string(),
    ]);
    table.row(vec![
        "extraction rate".into(),
        format!("{:.2}%", 100.0 * paper_extracted as f64 / paper_total as f64),
        format!("{:.2}%", 100.0 * data.stats.extraction_rate()),
    ]);
    print!("{}", table.render());

    banner("Failure taxonomy (the paper's classes (a)/(b)/(c))");
    let mut fails = TextTable::new(&["Class", "Count", "Expected (ground truth)"]);
    let truth_count = |kind: PathologicalKind| {
        data.log
            .iter()
            .filter(|e| e.truth == GroundTruth::Pathological(kind))
            .count()
    };
    fails.row(vec![
        "(a) syntax errors".into(),
        data.stats.syntax_errors.to_string(),
        truth_count(PathologicalKind::SyntaxError).to_string(),
    ]);
    fails.row(vec![
        "(b) user-defined functions".into(),
        data.stats.udf.to_string(),
        truth_count(PathologicalKind::UserDefinedFunction).to_string(),
    ]);
    fails.row(vec![
        "(c) non-SELECT statements".into(),
        data.stats.not_select.to_string(),
        truth_count(PathologicalKind::AdminStatement).to_string(),
    ]);
    fails.row(vec![
        "other unsupported".into(),
        data.stats.unsupported.to_string(),
        "0".into(),
    ]);
    print!("{}", fails.render());

    banner("Extraction quality flags");
    println!(
        "approximate areas      : {} ({:.2}% of extracted)",
        data.stats.approximate,
        100.0 * data.stats.approximate as f64 / data.stats.extracted.max(1) as f64
    );
    println!(
        "provably empty areas   : {}",
        data.stats.provably_empty
    );
    println!(
        "MySQL-dialect queries  : {} (parsed and extracted despite being MSSQL-invalid)",
        data.stats.mysql_dialect
    );
    println!(
        "pipeline wall time     : {:.2?} for {} entries ({:.0} queries/s)",
        data.stats.wall,
        data.stats.total,
        data.stats.total as f64 / data.stats.wall.as_secs_f64()
    );

    // Cross-check: every failure should be a planted pathological entry.
    let misclassified = data
        .failed
        .iter()
        .filter(|f| {
            !matches!(
                data.log[f.log_index].truth,
                GroundTruth::Pathological(_)
            )
        })
        .count();
    println!(
        "\nnon-pathological entries that failed extraction: {misclassified} (should be 0)"
    );
}

//! **E2–E4 — Figure 1**: access areas vs database content in three 2-D
//! subspaces of the data space:
//!
//! * (a) `SpecObjAll.plate × SpecObjAll.mjd` — accessed box inside the
//!   content (Example 1 / Cluster 9);
//! * (b) `PhotoObjAll.ra × PhotoObjAll.dec` — access spans the content
//!   *and* a contiguous empty area (Clusters 5 + 18);
//! * (c) `zooSpec.ra × zooSpec.dec` — non-contiguous empty areas larger
//!   than the content (Clusters 14 + 22).
//!
//! Prints the numeric boxes (the figure's data) and an ASCII rendering.
//! Pass `a`, `b`, or `c` to select one panel; default renders all three.

#![forbid(unsafe_code)]

use aa_bench::{aggregate_cluster, banner, cluster_areas, prepare, ExperimentConfig};
use aa_core::{AccessArea, Interval, QualifiedColumn};
use aa_engine::{exact_column_content, ColumnContent};

struct Panel {
    name: &'static str,
    table: &'static str,
    x: &'static str,
    y: &'static str,
    /// Domain shown on the plot (the data space).
    x_domain: (f64, f64),
    y_domain: (f64, f64),
}

const PANELS: &[Panel] = &[
    Panel {
        name: "a",
        table: "SpecObjAll",
        x: "plate",
        y: "mjd",
        x_domain: (0.0, 10_000.0),
        y_domain: (50_000.0, 60_000.0),
    },
    Panel {
        name: "b",
        table: "PhotoObjAll",
        x: "ra",
        y: "dec",
        x_domain: (0.0, 360.0),
        y_domain: (-90.0, 90.0),
    },
    Panel {
        name: "c",
        table: "zooSpec",
        x: "ra",
        y: "dec",
        x_domain: (0.0, 360.0),
        y_domain: (-100.0, 90.0),
    },
];

fn main() {
    let selected: Option<String> = std::env::args().nth(1);
    let config = ExperimentConfig::from_env();
    banner("Figure 1 reproduction: subspace content vs clustered access areas");
    let data = prepare(&config);
    let areas: Vec<AccessArea> = data.extracted.iter().map(|q| q.area.clone()).collect();
    let result = cluster_areas(
        &areas,
        &data.ranges,
        &config.dbscan,
        config.distance_mode,
        config.threads,
    );
    let clusters = result.clusters();

    for panel in PANELS {
        if let Some(sel) = &selected {
            if !sel.eq_ignore_ascii_case(panel.name) {
                continue;
            }
        }
        render_panel(panel, &data, &areas, &clusters);
    }
}

fn render_panel(
    panel: &Panel,
    data: &aa_bench::ExperimentData,
    areas: &[AccessArea],
    clusters: &[Vec<usize>],
) {
    banner(&format!(
        "Figure 1({}): {}.{} vs {}.{}",
        panel.name, panel.table, panel.x, panel.table, panel.y
    ));

    // Content box of the subspace.
    let table = data.catalog.table(panel.table).expect("table exists");
    let content_x = content_interval(exact_column_content(table, panel.x));
    let content_y = content_interval(exact_column_content(table, panel.y));
    println!(
        "data space : {} in [{}, {}], {} in [{}, {}]",
        panel.x, panel.x_domain.0, panel.x_domain.1, panel.y, panel.y_domain.0, panel.y_domain.1
    );
    println!(
        "content box: {} in [{:.0}, {:.0}], {} in [{:.0}, {:.0}]",
        panel.x, content_x.lo, content_x.hi, panel.y, content_y.lo, content_y.hi
    );

    // Aggregated cluster boxes constraining both axes of this subspace.
    let x_col = QualifiedColumn::new(panel.table, panel.x);
    let y_col = QualifiedColumn::new(panel.table, panel.y);
    let mut boxes: Vec<(usize, Interval, Interval, bool)> = Vec::new();
    for (cid, members) in clusters.iter().enumerate() {
        if members.len() < 3 {
            continue;
        }
        let member_areas: Vec<&AccessArea> = members.iter().map(|&i| &areas[i]).collect();
        if !member_areas[0].has_table(panel.table) {
            continue;
        }
        let agg = aggregate_cluster(cid, &member_areas);
        let bx = agg.numeric.iter().find(|(c, _)| *c == x_col).map(|(_, iv)| *iv);
        let by = agg.numeric.iter().find(|(c, _)| *c == y_col).map(|(_, iv)| *iv);
        if bx.is_none() && by.is_none() {
            continue;
        }
        // Unconstrained axes span the subspace's domain.
        let bx = clamp_domain(bx.unwrap_or(Interval::all()), panel.x_domain);
        let by = clamp_domain(by.unwrap_or(Interval::all()), panel.y_domain);
        let empty = !bx.overlaps(&content_x) || !by.overlaps(&content_y);
        boxes.push((cid, bx, by, empty));
    }
    boxes.sort_by(|a, b| (b.1.width() * b.2.width()).total_cmp(&(a.1.width() * a.2.width())));

    println!("\naccessed cluster boxes in this subspace:");
    for (cid, bx, by, empty) in &boxes {
        println!(
            "  cluster {:>3} ({} members): {} in [{:.0}, {:.0}], {} in [{:.0}, {:.0}]{}",
            cid,
            clusters[*cid].len(),
            panel.x,
            bx.lo,
            bx.hi,
            panel.y,
            by.lo,
            by.hi,
            if *empty { "  <- EMPTY AREA" } else { "" }
        );
    }

    // ASCII rendering: '.' content, letters for access boxes, '#' overlap.
    const W: usize = 72;
    const H: usize = 22;
    let mut grid = vec![vec![' '; W]; H];
    let to_cell = |x: f64, y: f64| -> (usize, usize) {
        let cx = ((x - panel.x_domain.0) / (panel.x_domain.1 - panel.x_domain.0)
            * (W as f64 - 1.0))
            .clamp(0.0, W as f64 - 1.0) as usize;
        let cy = ((y - panel.y_domain.0) / (panel.y_domain.1 - panel.y_domain.0)
            * (H as f64 - 1.0))
            .clamp(0.0, H as f64 - 1.0) as usize;
        (cx, H - 1 - cy)
    };
    // Content region.
    let (cx0, cy1) = to_cell(content_x.lo, content_y.lo);
    let (cx1, cy0) = to_cell(content_x.hi, content_y.hi);
    for row in grid.iter_mut().take(cy1 + 1).skip(cy0) {
        for cell in row.iter_mut().take(cx1 + 1).skip(cx0) {
            *cell = '.';
        }
    }
    // Access boxes (largest first so small ones stay visible).
    for (i, (_, bx, by, _)) in boxes.iter().enumerate().take(8) {
        let label = (b'A' + i as u8) as char;
        let (x0, y1) = to_cell(bx.lo.max(panel.x_domain.0), by.lo.max(panel.y_domain.0));
        let (x1, y0) = to_cell(bx.hi.min(panel.x_domain.1), by.hi.min(panel.y_domain.1));
        for row in grid.iter_mut().take(y1 + 1).skip(y0) {
            for cell in row.iter_mut().take(x1 + 1).skip(x0) {
                *cell = if *cell == '.' || *cell == '#' { '#' } else { label };
            }
        }
    }
    println!(
        "\n  legend: '.' content, '#' accessed content, letters = accessed empty area\n"
    );
    println!(
        "  ^ {} = {:.0}",
        panel.y, panel.y_domain.1
    );
    for row in &grid {
        println!("  |{}", row.iter().collect::<String>());
    }
    println!(
        "  +{} > {} = {:.0}",
        "-".repeat(W),
        panel.x,
        panel.x_domain.1
    );
}

fn content_interval(content: ColumnContent) -> Interval {
    match content {
        ColumnContent::Numeric { min, max } => Interval::closed(min, max),
        _ => Interval::closed(0.0, 0.0),
    }
}

fn clamp_domain(iv: Interval, domain: (f64, f64)) -> Interval {
    Interval {
        lo: iv.lo.max(domain.0),
        hi: iv.hi.min(domain.1),
        lo_open: false,
        hi_open: false,
    }
}

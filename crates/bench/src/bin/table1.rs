//! **E1 — Table 1**: the paper's 24 aggregated access areas.
//!
//! Pipeline: synthetic DR9 catalog + calibrated log → parse/extract →
//! `access(a)` tracking → DBSCAN under the overlap distance → per-cluster
//! MBR aggregation (3σ rule) → area/object coverage against the content.
//!
//! Environment knobs: `AA_LOG_TOTAL` (default 20000), `AA_SEED`,
//! `AA_SCALE`, `AA_EPS`, `AA_MINPTS`.

#![forbid(unsafe_code)]

use aa_bench::{
    aggregate_cluster, banner, cluster_areas, coverage, density_contrast, fmt_coverage,
    prepare, ExperimentConfig, TextTable,
};
use aa_core::AccessArea;
use aa_skyserver::{GroundTruth, TABLE1};
use std::collections::HashMap;

fn main() {
    let config = ExperimentConfig::from_env();
    banner("Table 1 reproduction: aggregated access areas from the query log");
    println!(
        "log: {} entries (seed {}), catalog scale {}, DBSCAN eps={} minPts={}",
        config.log.total,
        config.log.seed,
        config.catalog_scale,
        config.dbscan.eps,
        config.dbscan.min_pts
    );

    let data = prepare(&config);
    println!(
        "extracted {} / {} queries ({:.2}%)",
        data.stats.extracted,
        data.stats.total,
        100.0 * data.stats.extraction_rate()
    );

    let areas: Vec<AccessArea> = data.extracted.iter().map(|q| q.area.clone()).collect();
    let result = cluster_areas(
        &areas,
        &data.ranges,
        &config.dbscan,
        config.distance_mode,
        config.threads,
    );
    println!(
        "DBSCAN: {} clusters, {} noise points (paper: 403 clusters on the full 5.6M sample)",
        result.cluster_count,
        result.noise_count()
    );

    // Aggregate every cluster and attach ground truth by plurality.
    let clusters = result.clusters();
    let mut rows: Vec<(Option<u8>, aa_bench::AggregatedArea, aa_bench::Coverage)> = Vec::new();
    for (cid, members) in clusters.iter().enumerate() {
        if members.is_empty() {
            continue;
        }
        let member_areas: Vec<&AccessArea> = members.iter().map(|&i| &areas[i]).collect();
        let agg = aggregate_cluster(cid, &member_areas);
        let cov = coverage(&agg, &data.catalog);
        // Plurality ground-truth label.
        let mut hist: HashMap<Option<u8>, usize> = HashMap::new();
        for &i in members {
            let key = match data.truths[i] {
                GroundTruth::Cluster(id) => Some(id),
                _ => None,
            };
            *hist.entry(key).or_default() += 1;
        }
        let plurality = hist
            .into_iter()
            .max_by_key(|(_, n)| *n)
            .and_then(|(k, _)| k);
        rows.push((plurality, agg, cov));
    }
    rows.sort_by_key(|r| std::cmp::Reverse(r.1.cardinality));

    banner("Recovered clusters (sorted by cardinality; Planted = Table 1 id)");
    // "Density" answers the Section 6.3 expert question: how much denser
    // is the cluster than its immediate surroundings (3x inflated ring)?
    let mut table = TextTable::new(&[
        "Planted", "Cardinality", "Users", "AreaCov", "ObjCov", "Density", "Access area",
    ]);
    // Distinct users per DBSCAN cluster (the paper: "most queries in each
    // cluster are issued by different users").
    let users_of = |cid: usize| -> usize {
        clusters[cid]
            .iter()
            .map(|&i| data.log[data.extracted[i].log_index].user)
            .collect::<std::collections::HashSet<u32>>()
            .len()
    };
    for (planted, agg, cov) in rows.iter().take(40) {
        let dc = density_contrast(agg, &areas, &data.ranges, 3.0);
        let density = if dc.ratio.is_infinite() {
            "isolated".to_string()
        } else {
            format!("{:.0}x", dc.ratio)
        };
        table.row(vec![
            planted.map_or("-".to_string(), |id| id.to_string()),
            agg.cardinality.to_string(),
            users_of(agg.cluster_id).to_string(),
            fmt_coverage(cov.area),
            fmt_coverage(cov.object),
            density,
            truncate(&agg.to_string(), 85),
        ]);
    }
    print!("{}", table.render());

    // Side-by-side with the paper.
    banner("Paper vs measured, per Table 1 cluster");
    let report = aa_skyserver::evaluate(&data.truths, &result.labels, result.cluster_count);
    let mut cmp = TextTable::new(&[
        "Cluster",
        "Recovered",
        "Recall",
        "Precision",
        "AreaCov paper",
        "AreaCov ours",
        "ObjCov paper",
        "ObjCov ours",
    ]);
    let by_planted: HashMap<u8, &(Option<u8>, aa_bench::AggregatedArea, aa_bench::Coverage)> =
        rows.iter().filter_map(|r| r.0.map(|id| (id, r))).collect();
    for spec in TABLE1 {
        let rec = report
            .per_cluster
            .iter()
            .find(|c| c.planted == spec.id);
        let found = by_planted.get(&spec.id);
        cmp.row(vec![
            spec.id.to_string(),
            rec.map_or("no".into(), |r| {
                if r.is_recovered() { "yes".into() } else { "no".to_string() }
            }),
            rec.map_or("0.00".into(), |r| format!("{:.2}", r.recall)),
            rec.map_or("0.00".into(), |r| format!("{:.2}", r.precision)),
            fmt_coverage(spec.area_coverage),
            found.map_or("-".into(), |(_, _, cov)| fmt_coverage(cov.area)),
            fmt_coverage(spec.object_coverage),
            found.map_or("-".into(), |(_, _, cov)| fmt_coverage(cov.object)),
        ]);
    }
    print!("{}", cmp.render());

    println!(
        "\nrecovered {}/24 planted clusters; background noise rate {:.2} \
         (the exploratory background mostly forms diffuse whole-range clusters — \
         the analogue of the paper's 403 - 24 clusters it left uninterpreted)",
        report.recovered_count(),
        report.background_noise_rate
    );
    let empty_recovered = report
        .per_cluster
        .iter()
        .filter(|c| c.is_recovered() && TABLE1.iter().any(|s| s.id == c.planted && s.empty_area))
        .count();
    println!(
        "empty-area clusters (18-24) recovered: {empty_recovered}/7 \
         — these are invisible to result-set-based methods"
    );
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_string()
    } else {
        format!("{}...", &s[..max])
    }
}

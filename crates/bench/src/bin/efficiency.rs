//! **E8 — Section 6.6 (efficiency)**: extraction throughput and per-step
//! timings, including the CNF-blowup pathology and its 35-predicate cap.
//!
//! The paper: "Our method processes 100,000 queries in about 45 seconds"
//! (2009-era Intel i5-750); per-step times — Parsing <1–94 ms, Extraction
//! <1–1333 ms, CNF <1 ms–hours (unbounded without the cap), Consolidation
//! <1–95 ms; "only 471 queries with more than 35 predicates".

#![forbid(unsafe_code)]

use aa_bench::{banner, ExperimentConfig, TextTable};
use aa_core::{ExtractConfig, Pipeline};
use aa_skyserver::{generate_log, Dr9Schema, LogConfig};
use aa_util::SeededRng;
use std::time::Duration;

fn main() {
    let config = ExperimentConfig::from_env();
    let total = if std::env::var("AA_LOG_TOTAL").is_ok() {
        config.log.total
    } else {
        100_000 // the paper's headline batch size
    };
    banner("Section 6.6 reproduction: extraction efficiency");

    let log_config = LogConfig {
        total,
        ..config.log.clone()
    };
    let log = generate_log(&log_config);
    let provider = Dr9Schema::new();
    let pipeline = Pipeline::new(&provider);

    let (extracted, _failed, stats) =
        pipeline.process_log(log.iter().map(|e| e.sql.as_str()));
    println!(
        "processed {} queries in {:.2?} ({:.0} queries/s); extracted {}",
        stats.total,
        stats.wall,
        stats.total as f64 / stats.wall.as_secs_f64(),
        stats.extracted,
    );
    println!(
        "paper: 100,000 queries ≈ 45 s on an Intel i5-750 (≈2,200 queries/s)"
    );

    banner("Per-step timings (min .. max over the batch)");
    let mut table = TextTable::new(&["Step", "Ours min", "Ours max", "Paper min", "Paper max"]);
    let fmt = |d: Duration| format!("{:.3} ms", d.as_secs_f64() * 1e3);
    let row = |name: &str,
               range: Option<(Duration, Duration)>,
               paper: (&str, &str),
               table: &mut TextTable| {
        let (lo, hi) = range.unwrap_or_default();
        table.row(vec![
            name.into(),
            fmt(lo),
            fmt(hi),
            paper.0.into(),
            paper.1.into(),
        ]);
    };
    row("Parsing", stats.parse_range, ("<1 ms", "94 ms"), &mut table);
    row(
        "Extraction",
        stats.extract_range,
        ("<1 ms", "1333 ms"),
        &mut table,
    );
    row("CNF", stats.cnf_range, ("<1 ms", "undefined"), &mut table);
    row(
        "Consolidation",
        stats.consolidate_range,
        ("<1 ms", "95 ms"),
        &mut table,
    );
    print!("{}", table.render());

    // The CNF pathology: queries whose OR-of-AND structure explodes under
    // distribution. With the paper's 35-atom cap the conversion stays
    // bounded; uncapped it blows past the clause guard.
    banner("CNF blowup pathology (the paper's 471 >35-predicate queries)");
    let mut rng = SeededRng::seed_from_u64(9);
    let adversarial: Vec<String> = (0..20).map(|_| adversarial_query(&mut rng)).collect();

    for (name, cfg) in [
        ("with 35-atom cap (paper's workaround)", ExtractConfig::default()),
        (
            "uncapped atoms (clause guard only)",
            ExtractConfig {
                atom_cap: usize::MAX,
                ..ExtractConfig::default()
            },
        ),
    ] {
        let pipeline = Pipeline::with_config(&provider, cfg);
        let start = std::time::Instant::now();
        let (ok, _, s) = pipeline.process_log(adversarial.iter().map(String::as_str));
        let approx = ok.iter().filter(|q| !q.area.exact).count();
        println!(
            "  {name}: {} queries in {:.2?} ({} flagged approximate), max CNF step {:.3} ms",
            s.total,
            start.elapsed(),
            approx,
            s.cnf_range.map_or(0.0, |(_, hi)| hi.as_secs_f64() * 1e3),
        );
    }

    // Keep the extracted areas alive so the optimizer cannot drop the work.
    assert!(extracted.len() > total / 2);
}

/// An OR-of-ANDs WHERE clause with ~48 predicates: CNF has 2^24 clauses
/// uncapped.
fn adversarial_query(rng: &mut SeededRng) -> String {
    let mut ors = Vec::new();
    for i in 0..24 {
        let a = rng.gen_range(0..1000);
        let b = rng.gen_range(0..1000);
        ors.push(format!("(c{i} > {a} AND d{i} < {b})"));
    }
    format!("SELECT * FROM PhotoObjAll WHERE {}", ors.join(" OR "))
}

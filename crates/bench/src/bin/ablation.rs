//! **E10 — distance-mode ablation** (DESIGN.md §2, deviation 1).
//!
//! Section 5.2's `d_pred` formula, read literally, makes *overlapping*
//! predicates distant and *disjoint* predicates close. This binary runs
//! the full Table 1 pipeline under both readings and scores cluster
//! recovery, demonstrating why the default is the dissimilarity reading.

#![forbid(unsafe_code)]

use aa_bench::{banner, cluster_areas, prepare, ExperimentConfig, TextTable};
use aa_core::{AccessArea, DistanceMode};
use aa_skyserver::evaluate;

fn main() {
    let mut config = ExperimentConfig::from_env();
    if std::env::var("AA_LOG_TOTAL").is_err() {
        config.log.total = 8_000;
    }
    banner("Distance-mode ablation: PaperLiteral vs Dissimilarity");
    let data = prepare(&config);
    let areas: Vec<AccessArea> = data.extracted.iter().map(|q| q.area.clone()).collect();

    let mut table = TextTable::new(&[
        "Mode",
        "DBSCAN clusters",
        "Noise",
        "Planted recovered (of 24)",
        "Mean recall",
        "Mean precision",
    ]);
    for mode in [DistanceMode::Dissimilarity, DistanceMode::PaperLiteral] {
        let result = cluster_areas(&areas, &data.ranges, &config.dbscan, mode, config.threads);
        let report = evaluate(&data.truths, &result.labels, result.cluster_count);
        let n = report.per_cluster.len().max(1) as f64;
        let mean_recall: f64 =
            report.per_cluster.iter().map(|c| c.recall).sum::<f64>() / n;
        let mean_precision: f64 =
            report.per_cluster.iter().map(|c| c.precision).sum::<f64>() / n;
        table.row(vec![
            format!("{mode:?}"),
            result.cluster_count.to_string(),
            result.noise_count().to_string(),
            report.recovered_count().to_string(),
            format!("{mean_recall:.2}"),
            format!("{mean_precision:.2}"),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nUnder the literal reading, disjoint predicates are at distance 0, so DBSCAN \
         fuses unrelated areas per table while splitting genuinely overlapping ranges — \
         none of Table 1's structure survives. The dissimilarity reading (the default) \
         recovers it."
    );

    banner("eps sensitivity (Dissimilarity mode)");
    let mut sweep = TextTable::new(&["eps", "Clusters", "Noise", "Planted recovered"]);
    for eps in [0.02, 0.04, 0.06, 0.08, 0.12, 0.2] {
        let params = aa_dbscan::DbscanParams {
            eps,
            min_pts: config.dbscan.min_pts,
        };
        let result = cluster_areas(
            &areas,
            &data.ranges,
            &params,
            DistanceMode::Dissimilarity,
            config.threads,
        );
        let report = evaluate(&data.truths, &result.labels, result.cluster_count);
        sweep.row(vec![
            format!("{eps}"),
            result.cluster_count.to_string(),
            result.noise_count().to_string(),
            format!("{}/24", report.recovered_count()),
        ]);
    }
    print!("{}", sweep.render());
}

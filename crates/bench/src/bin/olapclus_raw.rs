//! **E7 — Section 6.5**: the paper's own overlap distance applied to
//! *raw* (as-is) predicates breaks Clusters 2, 5, 8, 9, 11, 12, 18, 19,
//! 20 and 22 — exactly the clusters containing Section 4.3-form queries.
//!
//! Here "raw" means the naive extractor: outer-join conditions kept,
//! `HAVING AGG(a) θ c` mapped to `a θ c`, EXISTS subqueries ungrouped.

#![forbid(unsafe_code)]

use aa_bench::{banner, cluster_areas, prepare, ExperimentConfig, TextTable};
use aa_core::AccessArea;
use aa_skyserver::{evaluate, TABLE1};

fn main() {
    let config = ExperimentConfig::from_env();
    banner("Section 6.5 reproduction: faithful vs as-is predicate extraction");
    let data = prepare(&config);

    // Faithful areas come from `prepare`; naive areas from the naive
    // extractor over the same log (aligned via log_index).
    let naive_all = aa_baselines::naive_areas(
        data.log.iter().map(|e| e.sql.as_str()),
        &data.catalog,
    );
    let mut naive_areas: Vec<AccessArea> = Vec::new();
    let mut naive_truths = Vec::new();
    for (i, area) in naive_all.into_iter().enumerate() {
        if let Some(a) = area {
            naive_areas.push(a);
            naive_truths.push(data.log[i].truth);
        }
    }
    let mut naive_ranges = aa_core::AccessRanges::from_catalog(&data.catalog, 100);
    naive_ranges.observe_all(naive_areas.iter());

    let faithful_areas: Vec<AccessArea> =
        data.extracted.iter().map(|q| q.area.clone()).collect();

    let faithful = cluster_areas(
        &faithful_areas,
        &data.ranges,
        &config.dbscan,
        config.distance_mode,
        config.threads,
    );
    let naive = cluster_areas(
        &naive_areas,
        &naive_ranges,
        &config.dbscan,
        config.distance_mode,
        config.threads,
    );

    let faithful_report = evaluate(&data.truths, &faithful.labels, faithful.cluster_count);
    let naive_report = evaluate(&naive_truths, &naive.labels, naive.cluster_count);

    let mut table = TextTable::new(&[
        "Cluster",
        "Aggregate-form share",
        "Faithful recall",
        "Naive recall",
        "Broken by naive",
        "Paper says broken",
    ]);
    let mut broken_matches = 0usize;
    let mut broken_total = 0usize;
    for spec in TABLE1 {
        let f = faithful_report
            .per_cluster
            .iter()
            .find(|c| c.planted == spec.id);
        let n = naive_report
            .per_cluster
            .iter()
            .find(|c| c.planted == spec.id);
        let f_ok = f.is_some_and(|c| c.is_recovered());
        let n_ok = n.is_some_and(|c| c.is_recovered());
        // Broken: the naive cluster sheds a meaningful share of its
        // queries (the as-is-extracted variants drift away), or is no
        // longer recovered at all.
        let f_recall = f.map_or(0.0, |c| c.recall);
        let n_recall = n.map_or(0.0, |c| c.recall);
        let broken = f_ok && (!n_ok || n_recall < f_recall - 0.05);
        if spec.breakable {
            broken_total += 1;
            if broken {
                broken_matches += 1;
            }
        }
        table.row(vec![
            spec.id.to_string(),
            if spec.breakable {
                format!("{:.0}%", 100.0 * aa_skyserver::AGGREGATE_VARIANT_SHARE)
            } else {
                "0%".into()
            },
            f.map_or("0.00".into(), |c| format!("{:.2}", c.recall)),
            n.map_or("0.00".into(), |c| format!("{:.2}", c.recall)),
            if broken { "YES" } else { "no" }.into(),
            if spec.breakable { "YES" } else { "no" }.into(),
        ]);
    }
    print!("{}", table.render());

    println!(
        "\nfaithful: {} clusters, {}/24 recovered; naive: {} clusters, {}/24 recovered",
        faithful.cluster_count,
        faithful_report.recovered_count(),
        naive.cluster_count,
        naive_report.recovered_count()
    );
    println!(
        "clusters the paper lists as broken that we also break: {broken_matches}/{broken_total}"
    );
    println!(
        "\nNote: 'broken' here means the planted cluster is no longer recovered as one \
         coherent DBSCAN cluster once predicates are used as-is — the aggregate-form \
         share of its queries acquires spurious `a θ c` atoms (or Lemma-5 contradictions) \
         and drifts out of the cluster, mirroring the paper's observation."
    );
}

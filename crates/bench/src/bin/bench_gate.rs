//! CI bench gate: compares freshly measured `BENCH_*.json` reports
//! against the checked-in baselines.
//!
//! ```text
//! bench_gate <fresh_dir> <baseline_dir>
//! ```
//!
//! Fails (exit 1) on any counter drift, on a `d_tables/64` kernel speedup
//! below the 4x floor, or on a >25% regression of any kernel-vs-scalar or
//! cold-vs-warm time ratio. See `aa_bench::perf::gate_reports` for the
//! exact rules.

#![forbid(unsafe_code)]

use aa_bench::perf::{gate_reports, BenchReport};
use std::path::Path;

const REPORTS: [&str; 4] = [
    "BENCH_kernels.json",
    "BENCH_serve.json",
    "BENCH_evolve.json",
    "BENCH_wal.json",
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 3 {
        eprintln!("usage: bench_gate <fresh_dir> <baseline_dir>");
        std::process::exit(2);
    }
    let fresh_dir = Path::new(&args[1]);
    let baseline_dir = Path::new(&args[2]);
    let mut failures: Vec<String> = Vec::new();
    for name in REPORTS {
        let fresh = match BenchReport::load(&fresh_dir.join(name)) {
            Ok(r) => r,
            Err(e) => {
                failures.push(format!("{name}: cannot load fresh report: {e}"));
                continue;
            }
        };
        let baseline = match BenchReport::load(&baseline_dir.join(name)) {
            Ok(r) => r,
            Err(e) => {
                failures.push(format!("{name}: cannot load baseline: {e}"));
                continue;
            }
        };
        for f in gate_reports(&fresh, &baseline) {
            failures.push(format!("{name}: {f}"));
        }
        eprintln!("bench gate: {name} checked ({} baseline records)", baseline.records.len());
    }
    if failures.is_empty() {
        eprintln!("bench gate: OK");
    } else {
        for f in &failures {
            eprintln!("bench gate FAIL: {f}");
        }
        std::process::exit(1);
    }
}

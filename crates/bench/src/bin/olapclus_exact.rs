//! **E6 — Section 6.4**: OLAPClus's exact predicate matching shatters the
//! id-lookup clusters.
//!
//! The paper: "OLAPClus produces approximately 100,000 clusters for
//! Cluster 1 of our method ... for each of the Clusters 2–4, OLAPClus
//! outputs about 50,000 clusters." The mechanism: almost every Cluster 1
//! query is `Photoz.objid = c` with a distinct constant, and exact
//! matching puts every distinct constant in its own cluster.

#![forbid(unsafe_code)]

use aa_bench::{banner, cluster_areas, ExperimentConfig, TextTable};
use aa_core::{AccessArea, AccessRanges, Extractor};
use aa_dbscan::DbscanParams;
use aa_skyserver::cluster_query;
use aa_util::SeededRng;

fn main() {
    let config = ExperimentConfig::from_env();
    banner("Section 6.4 reproduction: OLAPClus exact matching vs our overlap distance");
    let per_cluster = (config.log.total / 4).clamp(200, 20_000);
    println!("{per_cluster} queries per planted cluster (scale the paper's counts accordingly)\n");

    // Schema-free extraction suffices: the templates fully qualify columns.
    let provider = aa_core::NoSchema;
    let extractor = Extractor::new(&provider);
    let mut rng = SeededRng::seed_from_u64(config.log.seed);

    let mut table = TextTable::new(&[
        "Planted cluster",
        "Queries",
        "Distinct predicates",
        "Our clusters",
        "OLAPClus clusters",
        "Paper (OLAPClus)",
    ]);

    for (cluster_id, paper_clusters) in [(1u8, "~100,000"), (2, "~50,000"), (3, "~50,000"), (4, "~50,000")] {
        let areas: Vec<AccessArea> = (0..per_cluster)
            .map(|_| {
                extractor
                    .extract_sql(&cluster_query(cluster_id, &mut rng))
                    .expect("template queries extract")
            })
            .collect();
        let mut ranges = AccessRanges::new();
        ranges.observe_all(areas.iter());

        let distinct: std::collections::HashSet<String> = areas
            .iter()
            .map(|a| a.constraint.to_string().to_lowercase())
            .collect();

        // Our method: overlap distance; min_pts=1 mirrors the pathological
        // setting where every query matters.
        let params = DbscanParams {
            eps: config.dbscan.eps,
            min_pts: 1,
        };
        let ours = cluster_areas(
            &areas,
            &ranges,
            &params,
            config.distance_mode,
            config.threads,
        );
        let olap = aa_baselines::cluster_olapclus(&areas, &params);

        table.row(vec![
            cluster_id.to_string(),
            per_cluster.to_string(),
            distinct.len().to_string(),
            ours.cluster_count.to_string(),
            olap.cluster_count.to_string(),
            paper_clusters.to_string(),
        ]);
    }
    print!("{}", table.render());

    println!(
        "\nExpected shape: our method aggregates each planted workload into ~1 cluster; \
         OLAPClus produces one cluster per distinct predicate (the Section 6.4 explosion)."
    );
}

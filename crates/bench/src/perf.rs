//! `BENCH_*.json` emission and the CI bench gate.
//!
//! Four seed-pinned perf reports anchor the repo's perf trajectory:
//!
//! * `BENCH_kernels.json` ([`KERNELS_SCHEMA`]) — the bitset kernel vs the
//!   scalar reference on synthetic area sets at 8/64/128 distinct tables
//!   (128 exercises the wide-mask overflow path).
//! * `BENCH_serve.json` ([`SERVE_SCHEMA`]) — serve-side kernel build and
//!   warm classify/neighbors latency plus the work counters of one fixed
//!   request session.
//! * `BENCH_evolve.json` ([`EVOLVE_SCHEMA`]) — evolving-model seeding
//!   cost, amortized steady-state ingest latency, and the drift/work
//!   counters of one fixed ingest stream.
//! * `BENCH_wal.json` ([`WAL_SCHEMA`]) — durable-ingest log costs:
//!   amortized append-before-ack latency (rotation + GC included),
//!   recovery-scan time, and the shape counters of one fixed journaled
//!   stream with a torn tail.
//!
//! Every record carries wall time (median/p95 ns) *and* work counters
//! (pairs evaluated, atoms scanned, bitset fast-path hits, …). Counters
//! are measured on a separate single pass with the counters reset, never
//! inside the timing loop, so they are exactly reproducible for a fixed
//! seed while timings float with the machine. The CI gate
//! ([`gate_reports`]) exploits that split: counters must match the
//! checked-in baseline bit-for-bit, while time is compared through
//! machine-portable *ratios* (kernel vs scalar speedup, cold vs warm) with
//! a 25% regression band and a hard ≥4x floor for `d_tables` at 64
//! tables.
//!
//! ## File format (stable)
//!
//! ```json
//! {
//!   "schema": "aa-bench/kernels/v1",
//!   "seed": 42,
//!   "records": [
//!     {
//!       "name": "d_tables/64/kernel",
//!       "median_ns": 12.5,
//!       "p95_ns": 14.0,
//!       "counters": { "bitset_fast_path": 4096 }
//!     }
//!   ]
//! }
//! ```
//!
//! `schema` is bumped on any shape change; `records[].counters` is an
//! ordered object of deterministic work counts (may be empty).

use crate::harness;
use aa_core::{
    AccessArea, AccessRanges, DistanceKernel, DistanceMode, Extractor, NoSchema, QueryDistance,
};
use aa_dbscan::DbscanParams;
use aa_util::{Json, JsonError, SeededRng, ToJson};
use std::time::{Duration, Instant};

/// Schema tag of `BENCH_kernels.json`.
pub const KERNELS_SCHEMA: &str = "aa-bench/kernels/v1";
/// Schema tag of `BENCH_serve.json`.
pub const SERVE_SCHEMA: &str = "aa-bench/serve/v1";
/// Schema tag of `BENCH_evolve.json`.
pub const EVOLVE_SCHEMA: &str = "aa-bench/evolve/v1";
/// Schema tag of `BENCH_wal.json`.
pub const WAL_SCHEMA: &str = "aa-bench/wal/v1";

/// Hard floor the gate enforces for the `d_tables/64` kernel-vs-scalar
/// speedup (ISSUE 6 acceptance criterion).
pub const D_TABLES_64_SPEEDUP_FLOOR: f64 = 4.0;
/// Allowed relative regression of any gated time ratio vs the baseline.
pub const RATIO_REGRESSION_BAND: f64 = 1.25;

/// Sampling parameters for [`measure_ns`], mirroring the `micro` harness
/// env knobs (`AA_BENCH_SAMPLE_SIZE`, `AA_BENCH_WARMUP_MS`,
/// `AA_BENCH_FAST=1`).
#[derive(Debug, Clone, Copy)]
pub struct Sampling {
    pub sample_size: usize,
    pub warmup: Duration,
}

impl Sampling {
    /// Reads the environment knobs (same defaults as `micro::Criterion`).
    pub fn from_env() -> Sampling {
        let fast = std::env::var("AA_BENCH_FAST").is_ok_and(|v| v == "1");
        let sample_size = std::env::var("AA_BENCH_SAMPLE_SIZE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(if fast { 5 } else { 60 });
        let warmup_ms = std::env::var("AA_BENCH_WARMUP_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(if fast { 5 } else { 120 });
        Sampling {
            sample_size: sample_size.max(2),
            warmup: Duration::from_millis(warmup_ms),
        }
    }

    /// The `AA_BENCH_FAST=1` settings, without touching the environment
    /// (tests use this to stay hermetic).
    pub fn fast() -> Sampling {
        Sampling {
            sample_size: 5,
            warmup: Duration::from_millis(5),
        }
    }
}

/// Times `routine` with the `micro` methodology (warmup, calibrated
/// batches, median/p95 over samples) and returns `(median_ns, p95_ns)`
/// per routine call.
pub fn measure_ns(sampling: &Sampling, mut routine: impl FnMut()) -> (f64, f64) {
    let warmup_start = Instant::now();
    let mut warmup_iters: u64 = 0;
    while warmup_start.elapsed() < sampling.warmup || warmup_iters == 0 {
        routine();
        warmup_iters += 1;
    }
    let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
    let iters_per_sample = ((2e-3 / per_iter).round() as u64).clamp(1, 1_000_000);
    let mut samples: Vec<f64> = Vec::with_capacity(sampling.sample_size);
    for _ in 0..sampling.sample_size {
        let start = Instant::now();
        for _ in 0..iters_per_sample {
            routine();
        }
        samples.push(start.elapsed().as_secs_f64() / iters_per_sample as f64);
    }
    samples.sort_by(f64::total_cmp);
    let idx = |q: f64| ((samples.len() as f64 - 1.0) * q).round() as usize;
    (samples[idx(0.5)] * 1e9, samples[idx(0.95)] * 1e9)
}

/// One benchmark record: a name, wall time, and deterministic work
/// counters.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    pub name: String,
    pub median_ns: f64,
    pub p95_ns: f64,
    /// Ordered `(counter name, count)` pairs; empty for time-only records.
    pub counters: Vec<(String, u64)>,
}

impl BenchRecord {
    /// A time-only record.
    pub fn time(name: impl Into<String>, (median_ns, p95_ns): (f64, f64)) -> BenchRecord {
        BenchRecord {
            name: name.into(),
            median_ns,
            p95_ns,
            counters: Vec::new(),
        }
    }

    /// Attaches a counter (builder style).
    pub fn counter(mut self, name: impl Into<String>, value: u64) -> BenchRecord {
        self.counters.push((name.into(), value));
        self
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("name".to_string(), Json::Str(self.name.clone())),
            ("median_ns".to_string(), Json::Num(self.median_ns)),
            ("p95_ns".to_string(), Json::Num(self.p95_ns)),
            (
                "counters".to_string(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<BenchRecord, JsonError> {
        let field = |k: &str| v.get(k).ok_or_else(|| JsonError(format!("missing {k}")));
        let name = field("name")?
            .as_str()
            .ok_or_else(|| JsonError("name not a string".into()))?
            .to_string();
        let median_ns = field("median_ns")?
            .as_f64()
            .ok_or_else(|| JsonError("median_ns not a number".into()))?;
        let p95_ns = field("p95_ns")?
            .as_f64()
            .ok_or_else(|| JsonError("p95_ns not a number".into()))?;
        let Json::Obj(fields) = field("counters")? else {
            return Err(JsonError("counters not an object".into()));
        };
        let mut counters = Vec::with_capacity(fields.len());
        for (k, c) in fields {
            let n = c
                .as_f64()
                .ok_or_else(|| JsonError(format!("counter {k} not a number")))?;
            counters.push((k.clone(), n as u64));
        }
        Ok(BenchRecord {
            name,
            median_ns,
            p95_ns,
            counters,
        })
    }
}

/// A whole `BENCH_*.json` report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    pub schema: String,
    pub seed: u64,
    pub records: Vec<BenchRecord>,
}

impl BenchReport {
    pub fn new(schema: &str, seed: u64) -> BenchReport {
        BenchReport {
            schema: schema.to_string(),
            seed,
            records: Vec::new(),
        }
    }

    /// Looks a record up by name.
    pub fn record(&self, name: &str) -> Option<&BenchRecord> {
        self.records.iter().find(|r| r.name == name)
    }

    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema".to_string(), Json::Str(self.schema.clone())),
            ("seed".to_string(), Json::Num(self.seed as f64)),
            (
                "records".to_string(),
                Json::Arr(self.records.iter().map(BenchRecord::to_json).collect()),
            ),
        ])
    }

    pub fn from_json(v: &Json) -> Result<BenchReport, JsonError> {
        let field = |k: &str| v.get(k).ok_or_else(|| JsonError(format!("missing {k}")));
        let schema = field("schema")?
            .as_str()
            .ok_or_else(|| JsonError("schema not a string".into()))?
            .to_string();
        let seed = field("seed")?
            .as_f64()
            .ok_or_else(|| JsonError("seed not a number".into()))? as u64;
        let records = field("records")?
            .as_arr()
            .ok_or_else(|| JsonError("records not an array".into()))?
            .iter()
            .map(BenchRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BenchReport {
            schema,
            seed,
            records,
        })
    }

    /// Writes the report as pretty JSON (trailing newline included).
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut text = self.to_json().to_string_pretty();
        text.push('\n');
        std::fs::write(path, text)
    }

    /// Loads and parses a report file.
    pub fn load(path: &std::path::Path) -> Result<BenchReport, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let json = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        BenchReport::from_json(&json).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Table universes the kernels workload sweeps: one comfortably inside a
/// word, the word boundary itself (the ≥4x acceptance point), and one
/// forcing the wide-mask overflow path.
pub const KERNEL_TABLE_COUNTS: [usize; 3] = [8, 64, 128];

/// Synthetic workload for one table-universe size: seeded areas over
/// exactly `tables` distinct tables with small numeric CNFs, plus the
/// observed ranges.
pub struct KernelWorkload {
    pub areas: Vec<AccessArea>,
    pub ranges: AccessRanges,
    /// Index pairs every sweep walks (fixed, seed-derived).
    pub pairs: Vec<(usize, usize)>,
}

/// Builds the seed-pinned workload for `tables` distinct tables.
pub fn kernel_workload(tables: usize, seed: u64) -> KernelWorkload {
    let mut rng = SeededRng::seed_from_u64(seed ^ (tables as u64).wrapping_mul(0x9E37_79B9));
    let extractor = Extractor::new(&NoSchema);
    let n_areas = 192;
    let mut areas = Vec::with_capacity(n_areas);
    for _ in 0..n_areas {
        let k = rng.gen_range(1..=4usize);
        let mut names: Vec<usize> = Vec::with_capacity(k);
        for _ in 0..k {
            names.push(rng.gen_range(0..tables));
        }
        names.sort_unstable();
        names.dedup();
        let from: Vec<String> = names.iter().map(|i| format!("Tab{i}")).collect();
        let t0 = &from[0];
        let lo = rng.gen_range(0..900u32);
        let hi = lo + rng.gen_range(1..100u32);
        let sql = format!(
            "SELECT * FROM {} WHERE {t0}.val >= {lo} AND {t0}.val <= {hi}",
            from.join(", ")
        );
        areas.push(extractor.extract_sql(&sql).expect("synthetic sql extracts"));
    }
    let mut ranges = AccessRanges::new();
    ranges.observe_all(areas.iter());
    ranges.apply_doubling();
    // A fixed pair list: every pair of the first 64 areas (2016 pairs).
    let mut pairs = Vec::new();
    for i in 0..64usize.min(n_areas) {
        for j in (i + 1)..64usize.min(n_areas) {
            pairs.push((i, j));
        }
    }
    KernelWorkload {
        areas,
        ranges,
        pairs,
    }
}

/// Builds `BENCH_kernels.json`: kernel vs scalar `d_tables` at each table
/// count, full `distance` at 64 tables, with counters from one counted
/// sweep per kernel record.
pub fn kernels_report(seed: u64, sampling: &Sampling) -> BenchReport {
    let mut report = BenchReport::new(KERNELS_SCHEMA, seed);
    for &tables in &KERNEL_TABLE_COUNTS {
        let w = kernel_workload(tables, seed);
        let kernel = DistanceKernel::build(&w.areas, &w.ranges, DistanceMode::Dissimilarity);
        let scalar = QueryDistance::with_mode(&w.ranges, DistanceMode::Dissimilarity);
        let pairs = &w.pairs;
        let np = pairs.len() as f64;

        let (m, p) = measure_ns(sampling, || {
            let mut acc = 0.0;
            for &(i, j) in pairs {
                acc += scalar.d_tables(&w.areas[i], &w.areas[j]);
            }
            std::hint::black_box(acc);
        });
        report
            .records
            .push(BenchRecord::time(format!("d_tables/{tables}/scalar"), (m / np, p / np)));

        let (m, p) = measure_ns(sampling, || {
            let mut acc = 0.0;
            for &(i, j) in pairs {
                acc += kernel.d_tables(i, j);
            }
            std::hint::black_box(acc);
        });
        // Counter sweep: one fixed pass, outside the timing loop.
        kernel.reset_counters();
        for &(i, j) in pairs {
            std::hint::black_box(kernel.d_tables(i, j));
        }
        let counters = kernel.counters();
        report.records.push(
            BenchRecord::time(format!("d_tables/{tables}/kernel"), (m / np, p / np))
                .counter("bitset_fast_path", counters.bitset_fast_path),
        );

        if tables == 64 {
            let (m, p) = measure_ns(sampling, || {
                let mut acc = 0.0;
                for &(i, j) in pairs {
                    acc += scalar.distance(&w.areas[i], &w.areas[j]);
                }
                std::hint::black_box(acc);
            });
            report
                .records
                .push(BenchRecord::time("distance/64/scalar", (m / np, p / np)));

            let (m, p) = measure_ns(sampling, || {
                let mut acc = 0.0;
                for &(i, j) in pairs {
                    acc += kernel.distance(i, j);
                }
                std::hint::black_box(acc);
            });
            kernel.reset_counters();
            for &(i, j) in pairs {
                std::hint::black_box(kernel.distance(i, j));
            }
            let counters = kernel.counters();
            report.records.push(
                BenchRecord::time("distance/64/kernel", (m / np, p / np))
                    .counter("pairs", counters.pairs)
                    .counter("atoms_scanned", counters.atoms_scanned)
                    .counter("bitset_fast_path", counters.bitset_fast_path),
            );
        }
    }
    report
}

/// Builds `BENCH_serve.json`: serve-side kernel/index build time, warm
/// classify/neighbors latency, and the deterministic work counters of one
/// fixed request session against a seed-pinned model of `total` log
/// queries.
pub fn serve_report(seed: u64, total: usize, sampling: &Sampling) -> BenchReport {
    let mut report = BenchReport::new(SERVE_SCHEMA, seed);
    let model = aa_serve::build_model(total, seed, 0.06, 8, DistanceMode::Dissimilarity);

    let (m, p) = measure_ns(sampling, || {
        std::hint::black_box(DistanceKernel::build(
            &model.areas,
            &model.ranges,
            model.mode,
        ));
    });
    report.records.push(BenchRecord::time("kernel_build", (m, p)));

    // Fixed session statements, drawn from the same generator family.
    let session: Vec<String> = aa_skyserver::generate_log(&aa_skyserver::LogConfig {
        total: 40,
        seed: seed.wrapping_add(1),
        ..aa_skyserver::LogConfig::default()
    })
    .into_iter()
    .map(|e| e.sql)
    .collect();

    // Counter session: fresh engine, one fixed pass, counters from stats.
    let engine = aa_serve::ServeEngine::new(model.clone(), 1024, None);
    for sql in &session {
        std::hint::black_box(engine.classify(sql));
    }
    for sql in session.iter().take(10) {
        std::hint::black_box(engine.neighbors(sql, 5));
    }
    let stats = engine.stats_json();
    let counter_at = |path: [&str; 2]| -> u64 {
        stats
            .get(path[0])
            .and_then(|o| o.get(path[1]))
            .and_then(Json::as_f64)
            .unwrap_or(0.0) as u64
    };
    report.records.push(
        BenchRecord::time("session/fixed", (0.0, 0.0))
            .counter("classify", counter_at(["requests", "classify"]))
            .counter("neighbors", counter_at(["requests", "neighbors"]))
            .counter("cache_hits", counter_at(["cache", "hits"]))
            .counter("cache_misses", counter_at(["cache", "misses"]))
            .counter("distance_evaluated", counter_at(["index", "evaluated"]))
            .counter("distance_pruned", counter_at(["index", "pruned"]))
            .counter("kernel_pairs", counter_at(["kernel", "pairs"]))
            .counter("kernel_atoms_scanned", counter_at(["kernel", "atoms_scanned"]))
            .counter(
                "kernel_bitset_fast_path",
                counter_at(["kernel", "bitset_fast_path"]),
            ),
    );

    // Warm-path latencies on the primed engine.
    let warm_sql = &session[0];
    std::hint::black_box(engine.classify(warm_sql));
    let (m, p) = measure_ns(sampling, || {
        std::hint::black_box(engine.classify(warm_sql));
    });
    report.records.push(BenchRecord::time("classify/warm", (m, p)));
    let (m, p) = measure_ns(sampling, || {
        std::hint::black_box(engine.neighbors(warm_sql, 5));
    });
    report.records.push(BenchRecord::time("neighbors/warm", (m, p)));

    // Cold classify: cache cleared each iteration (pays full extraction).
    let (m, p) = measure_ns(sampling, || {
        engine.clear_cache();
        std::hint::black_box(engine.classify(warm_sql));
    });
    report.records.push(BenchRecord::time("classify/cold", (m, p)));
    report
}

/// Builds `BENCH_evolve.json`: seeding cost, amortized steady-state
/// ingest latency (compactions included, so the window stays bounded),
/// and the deterministic drift/work counters of one fixed 512-statement
/// ingest stream. The counters pin the incremental-DBSCAN work profile —
/// any change in neighbourhood queries, pruning, rebuild cadence, or
/// cluster churn for the fixed seed fails the gate as a behaviour
/// change, not noise.
pub fn evolve_report(seed: u64, total: usize, sampling: &Sampling) -> BenchReport {
    use aa_evolve::{EvolveConfig, IncrementalDbscan};
    let mut report = BenchReport::new(EVOLVE_SCHEMA, seed);
    let model = aa_serve::build_model(total, seed, 0.06, 8, DistanceMode::Dissimilarity);
    let config = EvolveConfig {
        window: 256,
        compact_every: 128,
        decay_half_life: 32.0,
        ..EvolveConfig::default()
    };

    let (m, p) = measure_ns(sampling, || {
        std::hint::black_box(IncrementalDbscan::new(&model, config.clone()));
    });
    report.records.push(BenchRecord::time("seed/build", (m, p)));

    // A fixed ingest stream from the same generator family.
    let stream: Vec<AccessArea> = {
        let log: Vec<String> = aa_skyserver::generate_log(&aa_skyserver::LogConfig {
            total: 512,
            seed: seed.wrapping_add(2),
            ..aa_skyserver::LogConfig::default()
        })
        .into_iter()
        .map(|e| e.sql)
        .collect();
        let extractor = Extractor::new(&NoSchema);
        log.iter()
            .filter_map(|sql| extractor.extract_sql(sql).ok())
            .collect()
    };

    // Steady state: cycle the stream through one long-lived maintainer;
    // scheduled compactions stay inside the measured loop (they are part
    // of the amortized per-ingest cost) and keep the window bounded.
    let mut maintainer = IncrementalDbscan::new(&model, config.clone());
    let mut next = 0usize;
    let (m, p) = measure_ns(sampling, || {
        maintainer.ingest(stream[next % stream.len()].clone());
        next += 1;
        if maintainer.due_for_compaction() {
            maintainer.compact();
        }
    });
    report.records.push(BenchRecord::time("ingest/steady", (m, p)));

    // Counter pass: fresh maintainer, the fixed stream once, counters
    // from the drift stats — exactly reproducible for the seed.
    let mut counted = IncrementalDbscan::new(&model, config);
    let mut compacted_clusters = 0u64;
    for area in &stream {
        counted.ingest(area.clone());
        if counted.due_for_compaction() {
            compacted_clusters = counted.compact().clusters_after as u64;
        }
    }
    let drift = counted.stats();
    let (core, border, noise) = counted.status_counts();
    report.records.push(
        BenchRecord::time("stream/fixed", (0.0, 0.0))
            .counter("ingested", drift.ingested)
            .counter("births", drift.births)
            .counter("deaths", drift.deaths)
            .counter("merges", drift.merges)
            .counter("turnover", drift.turnover)
            .counter("compactions", drift.compactions)
            .counter("index_rebuilds", drift.index_rebuilds)
            .counter("neighborhood_queries", drift.neighborhood_queries)
            .counter("distance_evaluated", drift.distance_evaluated)
            .counter("window", counted.len() as u64)
            .counter("clusters", counted.live_clusters() as u64)
            .counter("last_compaction_clusters", compacted_clusters)
            .counter("core", core as u64)
            .counter("border", border as u64)
            .counter("noise", noise as u64),
    );
    report
}

/// Builds `BENCH_wal.json`: the durable-ingest log's cost profile.
///
/// * `append/steady` — amortized append-before-ack latency on one
///   long-lived log, with a rotation + GC cycle every 128 appends
///   (mirroring the engine's compaction cadence), so scheduled segment
///   maintenance is priced into the per-record figure;
/// * `rotate/cycle` — one rotation + collect on its own;
/// * `recover/segment` — a full open + recovery scan (checksum
///   verification and record parse) of a segment holding the fixed
///   stream;
/// * `log/fixed` — deterministic shape counters of journaling the fixed
///   canonical-area stream once, crashing with a torn final record, and
///   recovering: bytes journaled, records recovered, the truncation.
///
/// Timing-loop I/O errors are swallowed (`let _ =`) so a transient
/// hiccup skews a sample instead of killing the run; the counter pass
/// runs in `Result` land and fails the gate loudly on real breakage.
pub fn wal_report(seed: u64, total: usize, sampling: &Sampling) -> BenchReport {
    use aa_serve::SegmentWal;
    let mut report = BenchReport::new(WAL_SCHEMA, seed);
    // Canonical-area payloads from the generator family — the same bytes
    // the serve engine journals before acknowledging an ingest.
    let payloads: Vec<String> = {
        let log: Vec<String> = aa_skyserver::generate_log(&aa_skyserver::LogConfig {
            total,
            seed: seed.wrapping_add(3),
            ..aa_skyserver::LogConfig::default()
        })
        .into_iter()
        .map(|e| e.sql)
        .collect();
        let extractor = Extractor::new(&NoSchema);
        log.iter()
            .filter_map(|sql| extractor.extract_sql(sql).ok())
            .map(|area| area.to_json().to_string_compact())
            .collect()
    };
    let base = std::env::temp_dir().join(format!("aa-bench-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    // Steady state: one long-lived log, rotating every 128 appends.
    let steady = (|| -> Result<(), aa_serve::WalError> {
        let mut wal = SegmentWal::open(base.join("steady"))?;
        wal.rotate(&Json::Null)?;
        let mut next = 0usize;
        let (m, p) = measure_ns(sampling, || {
            let _ = wal.append("bench", "", &payloads[next % payloads.len()]);
            next += 1;
            if next.is_multiple_of(128) {
                let _ = wal.rotate(&Json::Null).and_then(|_| wal.collect());
            }
        });
        report.records.push(BenchRecord::time("append/steady", (m, p)));
        let (m, p) = measure_ns(sampling, || {
            let _ = wal.rotate(&Json::Null).and_then(|_| wal.collect());
        });
        report.records.push(BenchRecord::time("rotate/cycle", (m, p)));
        Ok(())
    })();
    // audit: allow(A001, bench harness: a broken temp-dir log must abort the bench run loudly)
    steady.expect("steady-state wal bench");

    // Recovery scan of a committed segment holding the fixed stream.
    let scan = (|| -> Result<(), aa_serve::WalError> {
        let dir = base.join("recover");
        let mut wal = SegmentWal::open(&dir)?;
        wal.rotate(&Json::Null)?;
        for payload in &payloads {
            wal.append("bench", "", payload)?;
        }
        drop(wal);
        let (m, p) = measure_ns(sampling, || {
            let mut wal = match SegmentWal::open(&dir) {
                Ok(wal) => wal,
                Err(_) => return,
            };
            let _ = std::hint::black_box(wal.recover());
        });
        report.records.push(BenchRecord::time("recover/segment", (m, p)));
        Ok(())
    })();
    // audit: allow(A001, bench harness: a broken temp-dir log must abort the bench run loudly)
    scan.expect("recovery-scan wal bench");

    // Counter pass: journal the fixed stream once with a rotation cycle
    // every 64 records, tear the final append, recover — every count is
    // exactly reproducible for the seed.
    let counters = (|| -> Result<BenchRecord, aa_serve::WalError> {
        let dir = base.join("fixed");
        let mut wal = SegmentWal::open(&dir)?;
        wal.rotate(&Json::Null)?;
        let mut payload_bytes = 0u64;
        let mut collected = 0u64;
        for payload in &payloads {
            wal.append("bench", "", payload)?;
            payload_bytes += payload.len() as u64;
            if wal.next_seq().is_multiple_of(64) {
                wal.rotate(&Json::Null)?;
                collected += wal.collect()? as u64;
            }
        }
        let appended = wal.next_seq();
        wal.append_torn("bench", "", "{\"torn\":true}")?;
        drop(wal);
        let mut wal = SegmentWal::open(&dir)?;
        let recovery = wal.recover()?;
        let seg = recovery
            .loaded
            .ok_or_else(|| aa_serve::WalError("no recovered segment".into()))?;
        Ok(BenchRecord::time("log/fixed", (0.0, 0.0))
            .counter("records", appended)
            .counter("payload_bytes", payload_bytes)
            .counter("segments_collected", collected)
            .counter("active_segment", seg.segment)
            .counter("recovered_records", seg.records.len() as u64)
            .counter("truncated_tails", u64::from(seg.truncated.is_some()))
            .counter("rejected_segments", recovery.rejected.len() as u64))
    })();
    // audit: allow(A001, bench harness: a broken temp-dir log must abort the bench run loudly)
    report.records.push(counters.expect("fixed-stream wal counters"));
    let _ = std::fs::remove_dir_all(&base);
    report
}

/// A DBSCAN-shaped macro record for the kernels report trajectory:
/// clusters a small seeded log with the kernel and records the work done.
pub fn clustering_counters(seed: u64, total: usize) -> BenchRecord {
    let config = harness::ExperimentConfig {
        log: aa_skyserver::LogConfig::small(total, seed),
        catalog_scale: 0.02,
        ..harness::ExperimentConfig::default()
    };
    let data = harness::prepare(&config);
    let areas: Vec<AccessArea> = data.extracted.iter().map(|q| q.area.clone()).collect();
    let kernel = DistanceKernel::build(&areas, &data.ranges, DistanceMode::Dissimilarity);
    let params = DbscanParams {
        eps: 0.06,
        min_pts: 8,
    };
    let start = Instant::now();
    let result = harness::cluster_areas_with_kernel(&kernel, &areas, &params, 1);
    let elapsed = start.elapsed().as_secs_f64() * 1e9;
    let counters = kernel.counters();
    BenchRecord::time("dbscan/kernel", (elapsed, elapsed))
        .counter("areas", areas.len() as u64)
        .counter("clusters", result.cluster_count as u64)
        .counter("pairs", counters.pairs)
        .counter("atoms_scanned", counters.atoms_scanned)
        .counter("bitset_fast_path", counters.bitset_fast_path)
}

/// Compares a freshly measured report against the checked-in baseline.
/// Returns human-readable failures (empty = gate passes).
///
/// Rules:
/// * schema strings must match;
/// * every baseline record must exist in the fresh report, and its
///   counters must match exactly (any drift in work done is a change in
///   behaviour, not noise);
/// * for every `<name>/kernel` + `<name>/scalar` sibling pair, the fresh
///   speedup (scalar median / kernel median) must be at least the
///   baseline speedup divided by [`RATIO_REGRESSION_BAND`] — a
///   machine-portable "no >25% relative time regression";
/// * `d_tables/64` additionally enforces the absolute
///   [`D_TABLES_64_SPEEDUP_FLOOR`];
/// * `classify/cold` vs `classify/warm` gets the same ratio treatment
///   (the cache must keep buying its speedup).
pub fn gate_reports(fresh: &BenchReport, baseline: &BenchReport) -> Vec<String> {
    let mut failures = Vec::new();
    if fresh.schema != baseline.schema {
        failures.push(format!(
            "schema mismatch: fresh {:?} vs baseline {:?}",
            fresh.schema, baseline.schema
        ));
        return failures;
    }
    for base in &baseline.records {
        let Some(new) = fresh.record(&base.name) else {
            failures.push(format!("record {:?} missing from fresh report", base.name));
            continue;
        };
        if new.counters != base.counters {
            failures.push(format!(
                "counter change in {:?}: fresh {:?} vs baseline {:?}",
                base.name, new.counters, base.counters
            ));
        }
    }
    let ratio = |report: &BenchReport, num: &str, den: &str| -> Option<f64> {
        let n = report.record(num)?.median_ns;
        let d = report.record(den)?.median_ns;
        if d > 0.0 {
            Some(n / d)
        } else {
            None
        }
    };
    // Kernel-vs-scalar sibling pairs, discovered from the baseline.
    for base in &baseline.records {
        let Some(prefix) = base.name.strip_suffix("/kernel") else {
            continue;
        };
        let scalar_name = format!("{prefix}/scalar");
        let (Some(fresh_speedup), Some(base_speedup)) = (
            ratio(fresh, &scalar_name, &base.name),
            ratio(baseline, &scalar_name, &base.name),
        ) else {
            continue;
        };
        if prefix == "d_tables/64" && fresh_speedup < D_TABLES_64_SPEEDUP_FLOOR {
            failures.push(format!(
                "{prefix}: kernel speedup {fresh_speedup:.2}x below the {D_TABLES_64_SPEEDUP_FLOOR}x floor"
            ));
        }
        if fresh_speedup < base_speedup / RATIO_REGRESSION_BAND {
            failures.push(format!(
                "{prefix}: kernel speedup regressed >25%: {fresh_speedup:.2}x vs baseline {base_speedup:.2}x"
            ));
        }
    }
    // Cold-vs-warm cache ratio (serve report).
    if let (Some(fresh_ratio), Some(base_ratio)) = (
        ratio(fresh, "classify/cold", "classify/warm"),
        ratio(baseline, "classify/cold", "classify/warm"),
    ) {
        if fresh_ratio < base_ratio / RATIO_REGRESSION_BAND {
            failures.push(format!(
                "classify cold/warm ratio regressed >25%: {fresh_ratio:.2}x vs baseline {base_ratio:.2}x"
            ));
        }
    }
    failures
}

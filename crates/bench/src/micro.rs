//! In-tree micro-benchmark harness.
//!
//! Keeps the shape of the criterion API the bench files were written
//! against (`Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `black_box`) so the bench sources
//! stay nearly diff-free, while depending on nothing outside `std`.
//!
//! Methodology per benchmark: a wall-clock warmup, then `sample_size`
//! timed samples where each sample runs a batch of iterations calibrated
//! from the warmup so one batch is long enough for the clock to resolve.
//! Reported statistics are the per-iteration median and p95 across
//! samples.
//!
//! Environment knobs (useful for smoke-running benches in CI):
//! - `AA_BENCH_SAMPLE_SIZE` — samples per benchmark (default 60)
//! - `AA_BENCH_WARMUP_MS` — warmup duration in milliseconds (default 120)
//! - `AA_BENCH_FAST=1` — shorthand for 5 samples / 5 ms warmup

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Top-level driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    warmup: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let fast = std::env::var("AA_BENCH_FAST").is_ok_and(|v| v == "1");
        let sample_size = std::env::var("AA_BENCH_SAMPLE_SIZE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(if fast { 5 } else { 60 });
        let warmup_ms = std::env::var("AA_BENCH_WARMUP_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(if fast { 5 } else { 120 });
        Criterion {
            sample_size: sample_size.max(2),
            warmup: Duration::from_millis(warmup_ms),
        }
    }
}

impl Criterion {
    /// Opens a named group; results print as `group/benchmark`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n{name}");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            warmup: self.warmup,
            _criterion: self,
        }
    }

    /// An ungrouped benchmark.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        run_one(&id.into(), self.sample_size, self.warmup, f);
    }
}

/// A parameterised benchmark id, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of related benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warmup: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group (expensive benches
    /// lower it, exactly as with criterion).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.sample_size, self.warmup, f);
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.warmup, |b| f(b, input));
    }

    /// No-op, kept for API compatibility (results print as they complete).
    pub fn finish(&mut self) {}
}

fn run_one(label: &str, sample_size: usize, warmup: Duration, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        sample_size,
        warmup,
        stats: None,
    };
    f(&mut bencher);
    match bencher.stats {
        Some(stats) => eprintln!(
            "  {label:<44} median {:>10}  p95 {:>10}  ({} samples x {} iters)",
            format_duration(stats.median),
            format_duration(stats.p95),
            stats.samples,
            stats.iters_per_sample,
        ),
        None => eprintln!("  {label:<44} (no measurement: bencher.iter never called)"),
    }
}

/// Per-benchmark measurement state, mirroring `criterion::Bencher`.
pub struct Bencher {
    sample_size: usize,
    warmup: Duration,
    stats: Option<Stats>,
}

#[derive(Clone, Copy)]
struct Stats {
    median: f64,
    p95: f64,
    samples: usize,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`: warmup, batch-size calibration, then
    /// `sample_size` samples of `iters_per_sample` iterations each.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warmup, counting iterations to calibrate the batch size.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < self.warmup || warmup_iters == 0 {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        // One batch should take ~2ms so Instant resolution is negligible,
        // but never fewer than 1 iteration.
        let iters_per_sample = ((2e-3 / per_iter).round() as u64).clamp(1, 1_000_000);

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            samples.push(start.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
        samples.sort_by(f64::total_cmp);
        let median = percentile(&samples, 0.5);
        let p95 = percentile(&samples, 0.95);
        self.stats = Some(Stats {
            median,
            p95,
            samples: samples.len(),
            iters_per_sample,
        });
    }
}

/// Nearest-rank percentile over sorted samples.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn format_duration(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Criterion {
        Criterion {
            sample_size: 3,
            warmup: Duration::from_millis(1),
        }
    }

    #[test]
    fn measures_a_trivial_routine() {
        let mut c = tiny();
        let mut g = c.benchmark_group("test");
        let mut ran = 0u64;
        g.bench_function("count", |b| b.iter(|| ran += 1));
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn bench_with_input_passes_the_input() {
        let mut c = tiny();
        let mut g = c.benchmark_group("test");
        let mut seen = 0usize;
        g.bench_with_input(BenchmarkId::new("sized", 42usize), &42usize, |b, &n| {
            b.iter(|| seen = n)
        });
        assert_eq!(seen, 42);
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("brute_force", 500).to_string(), "brute_force/500");
    }

    #[test]
    fn percentile_bounds() {
        let s = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&s, 0.5), 3.0);
        assert_eq!(percentile(&s, 0.95), 5.0);
        assert_eq!(percentile(&s, 0.0), 1.0);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(5e-9), "5.0 ns");
        assert_eq!(format_duration(2.5e-6), "2.50 us");
        assert_eq!(format_duration(3.25e-3), "3.25 ms");
        assert_eq!(format_duration(1.5), "1.500 s");
    }
}

//! Area and object coverage of aggregated access areas (Table 1 columns
//! "Area Coverage" and "Object Coverage").
//!
//! * **Area coverage** `v_access / v_content`: over the *constrained*
//!   dimensions, the fraction of the content bounding box the aggregated
//!   box overlaps (categorical dimensions count as `|values| / |content
//!   values|` — this is what makes Cluster 9's `class = 'star'`
//!   contribute a factor ≈ 1/3).
//! * **Object coverage** `n_access / n_content`: the fraction of database
//!   objects inside the aggregated box; for multi-table areas the
//!   per-table fractions multiply (fraction of the universal relation).

use crate::aggregate::AggregatedArea;
use aa_core::Interval;
use aa_engine::{exact_column_content, Catalog, ColumnContent, Value};

/// Coverage of one aggregated area against the database content.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Coverage {
    pub area: f64,
    pub object: f64,
}

/// Computes both coverages.
pub fn coverage(agg: &AggregatedArea, catalog: &Catalog) -> Coverage {
    Coverage {
        area: area_coverage(agg, catalog),
        object: object_coverage(agg, catalog),
    }
}

/// Area coverage: product of per-constrained-dimension content fractions.
pub fn area_coverage(agg: &AggregatedArea, catalog: &Catalog) -> f64 {
    let mut fraction = 1.0;
    let mut constrained = false;

    for (col, iv) in &agg.numeric {
        let Ok(table) = catalog.table(&col.table) else {
            continue;
        };
        let ColumnContent::Numeric { min, max } = exact_column_content(table, &col.column)
        else {
            continue;
        };
        constrained = true;
        let content = Interval::closed(min, max);
        let width = content.width();
        if width == 0.0 {
            // Degenerate content: covered iff the single point is inside.
            fraction *= if iv.contains(min) { 1.0 } else { 0.0 };
            continue;
        }
        fraction *= (iv.intersect(&content).width() / width).clamp(0.0, 1.0);
    }

    for (col, values) in &agg.categorical {
        let Ok(table) = catalog.table(&col.table) else {
            continue;
        };
        let ColumnContent::Categorical(content) = exact_column_content(table, &col.column)
        else {
            continue;
        };
        if content.is_empty() {
            continue;
        }
        constrained = true;
        let hits = values.iter().filter(|v| content.contains(*v)).count() as f64;
        fraction *= hits / content.len() as f64;
    }

    if constrained {
        fraction
    } else {
        // An unconstrained area covers its whole content.
        1.0
    }
}

/// Object coverage: per-table satisfying-row fractions, multiplied.
pub fn object_coverage(agg: &AggregatedArea, catalog: &Catalog) -> f64 {
    let mut fraction = 1.0;
    let mut any = false;

    for table_name in &agg.tables {
        let Ok(table) = catalog.table(table_name) else {
            continue;
        };
        if table.rows.is_empty() {
            continue;
        }
        // Constraints on this table's columns.
        let numeric: Vec<(usize, &Interval)> = agg
            .numeric
            .iter()
            .filter(|(c, _)| c.table.eq_ignore_ascii_case(table_name))
            .filter_map(|(c, iv)| table.schema.column_index(&c.column).map(|i| (i, iv)))
            .collect();
        let categorical: Vec<(usize, &std::collections::BTreeSet<String>)> = agg
            .categorical
            .iter()
            .filter(|(c, _)| c.table.eq_ignore_ascii_case(table_name))
            .filter_map(|(c, vs)| table.schema.column_index(&c.column).map(|i| (i, vs)))
            .collect();
        if numeric.is_empty() && categorical.is_empty() {
            continue;
        }
        any = true;
        let matching = table
            .rows
            .iter()
            .filter(|row| {
                numeric.iter().all(|(i, iv)| match row[*i].as_f64() {
                    Some(x) => iv.contains(x),
                    None => false,
                }) && categorical.iter().all(|(i, vs)| match &row[*i] {
                    Value::Str(s) => vs.contains(&s.to_lowercase()),
                    _ => false,
                })
            })
            .count();
        fraction *= matching as f64 / table.rows.len() as f64;
    }

    if any {
        fraction
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aa_core::QualifiedColumn;
    use aa_engine::{ColumnDef, DataType, Table, TableSchema};
    use std::collections::BTreeSet;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut t = Table::new(TableSchema::new(
            "T",
            vec![
                ColumnDef::new("u", DataType::Float),
                ColumnDef::new("class", DataType::Text),
            ],
        ));
        // Content: u in [0, 100], uniform-ish; classes star/galaxy.
        for i in 0..100 {
            t.insert(vec![
                Value::Float(i as f64),
                if i < 30 { "star" } else { "galaxy" }.into(),
            ])
            .unwrap();
        }
        c.add_table(t);
        c
    }

    fn agg(
        numeric: Vec<(QualifiedColumn, Interval)>,
        categorical: Vec<(QualifiedColumn, BTreeSet<String>)>,
    ) -> AggregatedArea {
        AggregatedArea {
            cluster_id: 0,
            cardinality: 10,
            tables: ["T".to_string()].into(),
            numeric,
            categorical,
            joins: vec![],
        }
    }

    #[test]
    fn numeric_area_and_object_coverage() {
        let a = agg(
            vec![(QualifiedColumn::new("T", "u"), Interval::closed(0.0, 24.75))],
            vec![],
        );
        let c = catalog();
        let cov = coverage(&a, &c);
        // Content width 99; overlap 24.75 -> 0.25.
        assert!((cov.area - 0.25).abs() < 0.01, "{}", cov.area);
        // Rows 0..=24 match -> 0.25.
        assert!((cov.object - 0.25).abs() < 0.01, "{}", cov.object);
    }

    #[test]
    fn categorical_dimension_multiplies() {
        let a = agg(
            vec![(QualifiedColumn::new("T", "u"), Interval::closed(0.0, 49.5))],
            vec![(
                QualifiedColumn::new("T", "class"),
                ["star".to_string()].into(),
            )],
        );
        let c = catalog();
        let cov = coverage(&a, &c);
        // area: 0.5 * (1 of 2 classes) = 0.25.
        assert!((cov.area - 0.25).abs() < 0.01, "{}", cov.area);
        // objects: rows with u <= 49.5 AND star = rows 0..30 -> 0.30.
        assert!((cov.object - 0.30).abs() < 0.01, "{}", cov.object);
    }

    #[test]
    fn empty_area_has_zero_coverage() {
        let a = agg(
            vec![(
                QualifiedColumn::new("T", "u"),
                Interval::closed(500.0, 900.0),
            )],
            vec![],
        );
        let c = catalog();
        let cov = coverage(&a, &c);
        assert_eq!(cov.area, 0.0);
        assert_eq!(cov.object, 0.0);
    }

    #[test]
    fn unconstrained_area_covers_everything() {
        let a = agg(vec![], vec![]);
        let c = catalog();
        let cov = coverage(&a, &c);
        assert_eq!(cov.area, 1.0);
        assert_eq!(cov.object, 1.0);
    }

    #[test]
    fn one_sided_range_clips_to_content() {
        let a = agg(
            vec![(
                QualifiedColumn::new("T", "u"),
                Interval {
                    lo: f64::NEG_INFINITY,
                    hi: 49.5,
                    lo_open: true,
                    hi_open: false,
                },
            )],
            vec![],
        );
        let c = catalog();
        let cov = coverage(&a, &c);
        assert!((cov.area - 0.5).abs() < 0.01, "{}", cov.area);
    }
}

//! Density contrast of an aggregated access area vs its surroundings.
//!
//! Section 6.3 (expert feedback): *"it would be interesting to know how
//! much denser each cluster is, in contrast to its immediate
//! surroundings"* — the paper leaves this as a refinement; we implement
//! it. For a cluster's aggregated box `B` we compare the query density
//! inside `B` with the density in the inflated ring around it
//! (`inflate(B, factor) \ B`), both normalised by box volume measured in
//! `access(a)` fractions.

use crate::aggregate::AggregatedArea;
use aa_core::{AccessArea, AccessRanges, Interval, QualifiedColumn};

/// Density-contrast report for one cluster.
#[derive(Debug, Clone, Copy)]
pub struct DensityContrast {
    /// Queries whose per-column boxes intersect the cluster box.
    pub inside: usize,
    /// Queries intersecting the inflated ring but not counted inside.
    pub ring: usize,
    /// Density ratio inside/ring (volume-normalised); `inf` when the ring
    /// is empty of queries — an isolated hotspot.
    pub ratio: f64,
}

/// Inflates an interval symmetrically by `factor` of its width (or by an
/// absolute epsilon of the access range for degenerate boxes).
fn inflate(iv: &Interval, factor: f64, access_width: f64) -> Interval {
    let pad = if iv.width().is_finite() && iv.width() > 0.0 {
        iv.width() * factor
    } else {
        access_width * 0.05
    };
    Interval {
        lo: if iv.lo.is_finite() { iv.lo - pad } else { iv.lo },
        hi: if iv.hi.is_finite() { iv.hi + pad } else { iv.hi },
        lo_open: false,
        hi_open: false,
    }
}

/// Fraction of `access(col)` covered by `iv` (1.0 when unbounded /
/// untracked — conservative).
fn volume_fraction(iv: &Interval, col: &QualifiedColumn, ranges: &AccessRanges) -> f64 {
    let Some(access) = ranges.numeric(col) else {
        return 1.0;
    };
    let w = access.width();
    if w == 0.0 || !w.is_finite() {
        return 1.0;
    }
    (iv.intersect(&access).width() / w).clamp(1e-6, 1.0)
}

/// Computes the density contrast of `agg` against all `areas` (members
/// and non-members alike; `member_count` = the cluster's cardinality).
pub fn density_contrast(
    agg: &AggregatedArea,
    areas: &[AccessArea],
    ranges: &AccessRanges,
    inflate_factor: f64,
) -> DensityContrast {
    if agg.numeric.is_empty() {
        return DensityContrast {
            inside: agg.cardinality,
            ring: 0,
            ratio: f64::INFINITY,
        };
    }

    let inflated: Vec<(QualifiedColumn, Interval, Interval)> = agg
        .numeric
        .iter()
        .map(|(col, iv)| {
            let access_w = ranges.numeric(col).map(|a| a.width()).unwrap_or(1.0);
            (col.clone(), *iv, inflate(iv, inflate_factor, access_w))
        })
        .collect();

    let mut inside = 0usize;
    let mut ring = 0usize;
    for area in areas {
        // Candidate must touch the same table set on the constrained cols.
        let cols = area.conjunctive_intervals();
        let mut relevant = false;
        let mut in_box = true;
        let mut in_ring = true;
        for (col, bx, big) in &inflated {
            let Some(qiv) = cols.get(col) else {
                continue;
            };
            relevant = true;
            if !qiv.overlaps(bx) {
                in_box = false;
            }
            if !qiv.overlaps(big) {
                in_ring = false;
            }
        }
        if !relevant {
            continue;
        }
        if in_box {
            inside += 1;
        } else if in_ring {
            ring += 1;
        }
    }

    // Volume-normalised densities.
    let box_vol: f64 = inflated
        .iter()
        .map(|(col, bx, _)| volume_fraction(bx, col, ranges))
        .product();
    let big_vol: f64 = inflated
        .iter()
        .map(|(col, _, big)| volume_fraction(big, col, ranges))
        .product();
    let ring_vol = (big_vol - box_vol).max(1e-9);

    let inside_density = inside as f64 / box_vol.max(1e-9);
    let ring_density = ring as f64 / ring_vol;
    let ratio = if ring == 0 {
        f64::INFINITY
    } else {
        inside_density / ring_density
    };
    DensityContrast {
        inside,
        ring,
        ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::aggregate_cluster;
    use aa_core::extract::{Extractor, NoSchema};

    fn areas(sqls: &[String]) -> Vec<AccessArea> {
        let ex = Extractor::new(&NoSchema);
        sqls.iter().map(|s| ex.extract_sql(s).unwrap()).collect()
    }

    #[test]
    fn dense_cluster_against_sparse_surroundings() {
        // 40 queries packed in [100, 110], 5 stragglers spread over the
        // neighbouring [80, 140] ring.
        let mut sqls: Vec<String> = (0..40)
            .map(|i| {
                format!(
                    "SELECT * FROM T WHERE u >= {} AND u <= {}",
                    100 + (i % 5),
                    105 + (i % 5)
                )
            })
            .collect();
        for i in 0..5 {
            sqls.push(format!(
                "SELECT * FROM T WHERE u >= {} AND u <= {}",
                130 + i,
                132 + i
            ));
        }
        // Far-away queries that must not count at all.
        for i in 0..10 {
            sqls.push(format!("SELECT * FROM T WHERE u = {}", 500 + i));
        }
        let all = areas(&sqls);
        let members: Vec<&AccessArea> = all[..40].iter().collect();
        let agg = aggregate_cluster(0, &members);

        let mut ranges = AccessRanges::new();
        ranges.observe_all(all.iter());
        let dc = density_contrast(&agg, &all, &ranges, 3.0);
        assert_eq!(dc.inside, 40);
        assert!(dc.ring >= 1, "{dc:?}");
        assert!(dc.ratio > 1.0, "cluster should be denser: {dc:?}");
    }

    #[test]
    fn isolated_cluster_reports_infinite_contrast() {
        let sqls: Vec<String> = (0..10)
            .map(|i| format!("SELECT * FROM T WHERE u = {}", 100 + i))
            .collect();
        let all = areas(&sqls);
        let members: Vec<&AccessArea> = all.iter().collect();
        let agg = aggregate_cluster(0, &members);
        let mut ranges = AccessRanges::new();
        ranges.observe_all(all.iter());
        let dc = density_contrast(&agg, &all, &ranges, 0.5);
        assert_eq!(dc.inside, 10);
        assert_eq!(dc.ring, 0);
        assert!(dc.ratio.is_infinite());
    }

    #[test]
    fn unconstrained_cluster_is_degenerate() {
        let sqls: Vec<String> = (0..5).map(|_| "SELECT * FROM T".to_string()).collect();
        let all = areas(&sqls);
        let members: Vec<&AccessArea> = all.iter().collect();
        let agg = aggregate_cluster(0, &members);
        let ranges = AccessRanges::new();
        let dc = density_contrast(&agg, &all, &ranges, 1.0);
        assert!(dc.ratio.is_infinite());
    }
}

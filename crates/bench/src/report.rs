//! Plain-text table rendering for the experiment binaries.

/// A simple aligned text table.
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new(headers: &[&str]) -> Self {
        TextTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Renders with column alignment; numeric-looking cells right-align.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let is_numeric: Vec<bool> = (0..cols)
            .map(|i| {
                !self.rows.is_empty()
                    && self.rows.iter().all(|r| {
                        let c = r[i].trim().trim_start_matches('-');
                        !c.is_empty()
                            && c.chars().all(|ch| {
                                ch.is_ascii_digit() || ch == '.' || ch == ',' || ch == '%'
                            })
                    })
            })
            .collect();
        let mut out = String::new();
        let fmt_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                if is_numeric[i] {
                    out.push_str(&format!("{cell:>width$}", width = widths[i]));
                } else {
                    out.push_str(&format!("{cell:<width$}", width = widths[i]));
                }
            }
            // No trailing spaces.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &mut out);
        }
        out
    }
}

/// Formats a coverage value like Table 1 (`< 0.001` below the threshold).
pub fn fmt_coverage(v: f64) -> String {
    if v == 0.0 {
        "0.0".to_string()
    } else if v < 0.001 {
        "< 0.001".to_string()
    } else {
        format!("{v:.2}")
    }
}

/// Section-header banner used by all binaries.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = TextTable::new(&["Cluster", "Cardinality", "Area"]);
        t.row(vec!["1".into(), "179,072".into(), "Photoz.objid ...".into()]);
        t.row(vec!["24".into(), "217".into(), "Photoz.z ...".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Cardinality"));
        // Numeric columns right-align.
        assert!(lines[2].contains("179,072"));
        assert!(lines[3].contains("    217"));
    }

    #[test]
    fn coverage_formatting() {
        assert_eq!(fmt_coverage(0.0), "0.0");
        assert_eq!(fmt_coverage(0.0004), "< 0.001");
        assert_eq!(fmt_coverage(0.24), "0.24");
    }
}

//! Emits `BENCH_kernels.json`: bitset kernel vs scalar reference on
//! seed-pinned synthetic workloads (8/64/128 distinct tables), plus a
//! small kernel-backed DBSCAN macro record.
//!
//! Honors `AA_BENCH_FAST=1`, `AA_BENCH_SAMPLE_SIZE`, `AA_BENCH_WARMUP_MS`
//! (sampling only — the work counters are measured on fixed sweeps and do
//! not depend on sampling). Output lands in `AA_BENCH_OUT_DIR` (default:
//! current directory).

#![forbid(unsafe_code)]

use aa_bench::perf::{clustering_counters, kernels_report, Sampling};
use std::path::PathBuf;

fn main() {
    let sampling = Sampling::from_env();
    let seed = 42;
    let mut report = kernels_report(seed, &sampling);
    report.records.push(clustering_counters(seed, 1_200));
    let out_dir = std::env::var("AA_BENCH_OUT_DIR").unwrap_or_else(|_| ".".to_string());
    let path = PathBuf::from(out_dir).join("BENCH_kernels.json");
    report.save(&path).expect("write BENCH_kernels.json");
    eprintln!("wrote {} ({} records)", path.display(), report.records.len());
    for r in &report.records {
        eprintln!("  {:<24} median {:>12.1} ns", r.name, r.median_ns);
    }
}

//! Microbenchmarks for the query distance (Section 5): per-pair cost for
//! the predicate shapes that dominate the SkyServer log.

#![forbid(unsafe_code)]

use aa_core::extract::{Extractor, NoSchema};
use aa_core::{AccessArea, AccessRanges, DistanceMode, QueryDistance};
use aa_bench::micro::{black_box, Criterion};

fn areas(sqls: &[&str]) -> Vec<AccessArea> {
    let ex = Extractor::new(&NoSchema);
    sqls.iter().map(|s| ex.extract_sql(s).unwrap()).collect()
}

fn bench_distance(c: &mut Criterion) {
    let pairs = [
        (
            "point_vs_point",
            "SELECT * FROM Photoz WHERE objid = 1237657855534432934",
            "SELECT * FROM Photoz WHERE objid = 1237666210342830434",
        ),
        (
            "range_vs_range",
            "SELECT * FROM PhotoObjAll WHERE ra <= 210 AND dec <= 10",
            "SELECT * FROM PhotoObjAll WHERE ra <= 205 AND dec <= 9",
        ),
        (
            "mixed_with_class",
            "SELECT * FROM SpecObjAll WHERE class = 'star' AND mjd BETWEEN 51578 AND 52178 AND plate BETWEEN 296 AND 3200",
            "SELECT * FROM SpecObjAll WHERE class = 'star' AND mjd BETWEEN 51600 AND 52100 AND plate BETWEEN 300 AND 3100",
        ),
        (
            "cross_table",
            "SELECT * FROM Photoz WHERE z < 0.1",
            "SELECT * FROM SpecObjAll WHERE z < 0.1",
        ),
    ];
    let mut ranges = AccessRanges::new();
    for (_, a, b) in &pairs {
        let list = areas(&[a, b]);
        ranges.observe_all(list.iter());
    }

    for mode in [DistanceMode::Dissimilarity, DistanceMode::PaperLiteral] {
        let metric = QueryDistance::with_mode(&ranges, mode);
        let mut g = c.benchmark_group(format!("distance_{mode:?}"));
        for (name, a, b) in &pairs {
            let list = areas(&[a, b]);
            g.bench_function(*name, |bencher| {
                bencher.iter(|| metric.distance(black_box(&list[0]), black_box(&list[1])))
            });
        }
        g.finish();
    }
}

fn main() {
    let mut c = Criterion::default();
    bench_distance(&mut c);
}

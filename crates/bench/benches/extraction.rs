//! Microbenchmarks for the extraction pipeline stages (supports E8):
//! parse / lower / CNF / consolidate, per query category.

#![forbid(unsafe_code)]

use aa_core::extract::{Extractor, NoSchema};
use aa_bench::micro::{black_box, Criterion};

const SIMPLE: &str = "SELECT u FROM T WHERE u >= 1 AND u <= 8 AND s > 5";
const JOIN: &str =
    "SELECT * FROM T INNER JOIN S ON T.u = S.u WHERE T.v > 2 AND S.w BETWEEN 1 AND 9";
const AGGREGATE: &str =
    "SELECT T.u, SUM(T.v) FROM T WHERE T.v < 3 GROUP BY T.u HAVING SUM(T.v) > 100";
const NESTED: &str = "SELECT * FROM T WHERE T.u > 7 AND EXISTS \
     (SELECT * FROM S WHERE S.u = T.u AND S.v < 3 AND EXISTS \
      (SELECT * FROM R WHERE R.v = S.v AND R.x < 9))";

fn wide_query(atoms: usize) -> String {
    let preds: Vec<String> = (0..atoms).map(|i| format!("c{i} > {i}")).collect();
    format!("SELECT * FROM T WHERE {}", preds.join(" AND "))
}

fn deep_or_query(pairs: usize) -> String {
    let ors: Vec<String> = (0..pairs)
        .map(|i| format!("(a{i} > {i} AND b{i} < {i})"))
        .collect();
    format!("SELECT * FROM T WHERE {}", ors.join(" OR "))
}

fn bench_parse(c: &mut Criterion) {
    let mut g = c.benchmark_group("parse");
    for (name, sql) in [
        ("simple", SIMPLE),
        ("join", JOIN),
        ("aggregate", AGGREGATE),
        ("nested", NESTED),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| aa_sql::parse_select(black_box(sql)).unwrap())
        });
    }
    g.finish();
}

fn bench_stages(c: &mut Criterion) {
    let provider = NoSchema;
    let extractor = Extractor::new(&provider);
    let mut g = c.benchmark_group("stages");
    for (name, sql) in [
        ("simple", SIMPLE),
        ("join", JOIN),
        ("aggregate", AGGREGATE),
        ("nested", NESTED),
    ] {
        let parsed = aa_sql::parse_select(sql).unwrap();
        g.bench_function(format!("lower/{name}"), |b| {
            b.iter(|| extractor.lower(black_box(&parsed)).unwrap())
        });
        let lowered = extractor.lower(&parsed).unwrap();
        g.bench_function(format!("cnf/{name}"), |b| {
            b.iter(|| extractor.convert(black_box(lowered.clone())))
        });
        let (converted, _) = extractor.convert(lowered);
        g.bench_function(format!("consolidate/{name}"), |b| {
            b.iter(|| extractor.consolidate(black_box(converted.clone())))
        });
    }
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let provider = NoSchema;
    let extractor = Extractor::new(&provider);
    let mut g = c.benchmark_group("end_to_end");
    for (name, sql) in [
        ("simple", SIMPLE.to_string()),
        ("nested", NESTED.to_string()),
        ("wide_30_atoms", wide_query(30)),
        // The CNF pathology kept finite by the 35-atom cap.
        ("deep_or_24_pairs_capped", deep_or_query(24)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| extractor.extract_sql(black_box(&sql)).unwrap())
        });
    }
    g.finish();
}

fn main() {
    let mut c = Criterion::default();
    bench_parse(&mut c);
    bench_stages(&mut c);
    bench_end_to_end(&mut c);
}

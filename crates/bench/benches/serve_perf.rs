//! Emits `BENCH_serve.json`: serve-side kernel build time, warm/cold
//! classify and warm neighbors latency, and the work counters of one
//! fixed request session.
//!
//! Honors `AA_BENCH_FAST=1`, `AA_BENCH_SAMPLE_SIZE`, `AA_BENCH_WARMUP_MS`
//! (sampling only). Output lands in `AA_BENCH_OUT_DIR` (default: current
//! directory).

#![forbid(unsafe_code)]

use aa_bench::perf::{serve_report, Sampling};
use std::path::PathBuf;

fn main() {
    let sampling = Sampling::from_env();
    let report = serve_report(42, 400, &sampling);
    let out_dir = std::env::var("AA_BENCH_OUT_DIR").unwrap_or_else(|_| ".".to_string());
    let path = PathBuf::from(out_dir).join("BENCH_serve.json");
    report.save(&path).expect("write BENCH_serve.json");
    eprintln!("wrote {} ({} records)", path.display(), report.records.len());
    for r in &report.records {
        eprintln!("  {:<24} median {:>12.1} ns", r.name, r.median_ns);
    }
}

//! E11: clustering scalability — DBSCAN over growing access-area samples,
//! with and without the table-set blocking index, single- and
//! multi-threaded. The paper reports "severe performance problems" with
//! its off-the-shelf DBSCAN; the blocking index is our answer.

#![forbid(unsafe_code)]

use aa_bench::cluster_areas;
use aa_core::{AccessArea, AccessRanges, DistanceMode, Pipeline, QueryDistance};
use aa_dbscan::{dbscan, DbscanParams};
use aa_skyserver::{generate_log, Dr9Schema, LogConfig};
use aa_bench::micro::{BenchmarkId, Criterion};

fn sample(n: usize) -> (Vec<AccessArea>, AccessRanges) {
    let provider = Dr9Schema::new();
    let pipeline = Pipeline::new(&provider);
    let log = generate_log(&LogConfig {
        total: n,
        seed: 17,
        min_cluster_size: 10,
        ..LogConfig::default()
    });
    let (extracted, _, _) = pipeline.process_log(log.iter().map(|e| e.sql.as_str()));
    let areas: Vec<AccessArea> = extracted.into_iter().map(|q| q.area).collect();
    let mut ranges = AccessRanges::new();
    ranges.observe_all(areas.iter());
    (areas, ranges)
}

fn bench_dbscan(c: &mut Criterion) {
    let params = DbscanParams {
        eps: 0.06,
        min_pts: 8,
    };
    let mut g = c.benchmark_group("dbscan");
    g.sample_size(10);
    for n in [500usize, 1_000, 2_000] {
        let (areas, ranges) = sample(n);
        g.bench_with_input(BenchmarkId::new("brute_force", n), &n, |b, _| {
            let metric = QueryDistance::with_mode(&ranges, DistanceMode::Dissimilarity);
            b.iter(|| {
                dbscan(&areas, &params, |x: &AccessArea, y: &AccessArea| {
                    metric.distance(x, y)
                })
            })
        });
        g.bench_with_input(BenchmarkId::new("blocked_parallel", n), &n, |b, _| {
            b.iter(|| cluster_areas(&areas, &ranges, &params, DistanceMode::Dissimilarity, 4))
        });
    }
    g.finish();
}

fn main() {
    let mut c = Criterion::default();
    bench_dbscan(&mut c);
}

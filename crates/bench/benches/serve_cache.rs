//! Serving-layer microbenchmark: classify latency with a cold versus a
//! warm extraction cache.
//!
//! Cold = the fingerprint misses and the request pays the full pipeline
//! (lex → parse → extract → CNF → consolidate) before the index lookup.
//! Warm = the fingerprint hits and the request pays only the cache probe
//! and the pruned nearest-neighbour search. The gap between the two is
//! exactly what the cache buys per repeated statement, which real logs
//! are full of (template re-submissions).

#![forbid(unsafe_code)]

use aa_bench::micro::{black_box, Criterion};
use aa_core::DistanceMode;
use aa_serve::{build_model, ServeEngine};
use std::time::Instant;

/// A long conjunctive statement (the shape tools like CasJobs emit:
/// template ranges repeated and tightened). Hundreds of atoms to lex,
/// parse, and consolidate — but the access area collapses to two
/// intervals, so the post-cache work is small.
fn wide_conjunction(atoms: usize) -> String {
    let mut sql = String::from("SELECT * FROM PhotoObjAll WHERE ra >= 100 AND ra <= 200");
    for i in 0..atoms {
        let slack = (i % 37) as f64 * 0.1;
        sql.push_str(&format!(
            " AND ra >= {:.1} AND ra <= {:.1} AND dec >= {:.1}",
            99.0 - slack,
            201.0 + slack,
            -5.0 - slack
        ));
    }
    sql
}

fn bench_serve_cache(c: &mut Criterion) {
    let model = build_model(400, 42, 0.06, 8, DistanceMode::Dissimilarity);
    let sql = wide_conjunction(150);
    let engine = ServeEngine::new(model, 1024, None);

    let mut g = c.benchmark_group("serve_classify");
    g.bench_function("cold_cache", |b| {
        b.iter(|| {
            engine.clear_cache();
            black_box(engine.classify(black_box(&sql)))
        })
    });
    engine.classify(&sql); // prime
    g.bench_function("warm_cache", |b| {
        b.iter(|| black_box(engine.classify(black_box(&sql))))
    });
    g.finish();

    // A one-number summary for the CI log: measured speedup of the warm
    // path over the cold path on this machine.
    let reps = 200;
    engine.clear_cache();
    let cold_start = Instant::now();
    for _ in 0..reps {
        engine.clear_cache();
        black_box(engine.classify(&sql));
    }
    let cold = cold_start.elapsed();
    engine.classify(&sql);
    let warm_start = Instant::now();
    for _ in 0..reps {
        black_box(engine.classify(&sql));
    }
    let warm = warm_start.elapsed();
    println!(
        "serve_classify summary: cold {:?}/req, warm {:?}/req, speedup {:.1}x",
        cold / reps,
        warm / reps,
        cold.as_secs_f64() / warm.as_secs_f64().max(f64::EPSILON)
    );
}

fn main() {
    let mut c = Criterion::default();
    bench_serve_cache(&mut c);
}

//! Emits `BENCH_evolve.json`: evolving-model seeding cost, amortized
//! steady-state ingest latency (scheduled compactions included), and the
//! deterministic drift/work counters of one fixed ingest stream.
//!
//! Honors `AA_BENCH_FAST=1`, `AA_BENCH_SAMPLE_SIZE`, `AA_BENCH_WARMUP_MS`
//! (sampling only). Output lands in `AA_BENCH_OUT_DIR` (default: current
//! directory).

#![forbid(unsafe_code)]

use aa_bench::perf::{evolve_report, Sampling};
use std::path::PathBuf;

fn main() {
    let sampling = Sampling::from_env();
    let report = evolve_report(42, 400, &sampling);
    let out_dir = std::env::var("AA_BENCH_OUT_DIR").unwrap_or_else(|_| ".".to_string());
    let path = PathBuf::from(out_dir).join("BENCH_evolve.json");
    report.save(&path).expect("write BENCH_evolve.json");
    eprintln!("wrote {} ({} records)", path.display(), report.records.len());
    for r in &report.records {
        eprintln!("  {:<24} median {:>12.1} ns", r.name, r.median_ns);
    }
}

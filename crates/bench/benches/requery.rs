//! E9 (efficiency half): per-query cost of log-only extraction vs
//! re-issuing the query against the database.

#![forbid(unsafe_code)]

use aa_baselines::{requery_log, RequeryConfig};
use aa_core::Pipeline;
use aa_engine::ExecOptions;
use aa_skyserver::{build_catalog, generate_log, LogConfig};
use aa_bench::micro::Criterion;

fn bench_extract_vs_requery(c: &mut Criterion) {
    let catalog = build_catalog(0.05, 3);
    let log = generate_log(&LogConfig {
        total: 200,
        seed: 23,
        pathological_fraction: 0.0,
        min_cluster_size: 5,
        ..LogConfig::default()
    });
    let sqls: Vec<&str> = log.iter().map(|e| e.sql.as_str()).collect();

    let mut g = c.benchmark_group("extract_vs_requery");
    g.sample_size(10);
    g.bench_function("extract_200_queries", |b| {
        let pipeline = Pipeline::new(&catalog);
        b.iter(|| pipeline.process_log(sqls.iter().copied()))
    });
    g.bench_function("requery_200_queries", |b| {
        let config = RequeryConfig {
            arrival_per_minute: f64::INFINITY, // don't block on the limiter
            server_per_minute: u32::MAX,
            exec: ExecOptions::default(),
        };
        b.iter(|| requery_log(&catalog, sqls.iter().copied(), &config))
    });
    g.finish();
}

fn main() {
    let mut c = Criterion::default();
    bench_extract_vs_requery(&mut c);
}

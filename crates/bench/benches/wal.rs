//! Emits `BENCH_wal.json`: durable-ingest log costs — amortized
//! append-before-ack latency (rotation + GC included), recovery-scan
//! time — and the deterministic shape counters of one fixed journaled
//! stream with a torn tail.
//!
//! Honors `AA_BENCH_FAST=1`, `AA_BENCH_SAMPLE_SIZE`, `AA_BENCH_WARMUP_MS`
//! (sampling only). Output lands in `AA_BENCH_OUT_DIR` (default: current
//! directory).

#![forbid(unsafe_code)]

use aa_bench::perf::{wal_report, Sampling};
use std::path::PathBuf;

fn main() {
    let sampling = Sampling::from_env();
    let report = wal_report(42, 384, &sampling);
    let out_dir = std::env::var("AA_BENCH_OUT_DIR").unwrap_or_else(|_| ".".to_string());
    let path = PathBuf::from(out_dir).join("BENCH_wal.json");
    report.save(&path).expect("write BENCH_wal.json");
    eprintln!("wrote {} ({} records)", path.display(), report.records.len());
    for r in &report.records {
        eprintln!("  {:<24} median {:>12.1} ns", r.name, r.median_ns);
    }
}

//! E10 (timing half): cost of the two d_pred readings and of the OLAPClus
//! exact-matching distance on identical inputs. The *quality* half of the
//! ablation is the `ablation` binary.

#![forbid(unsafe_code)]

use aa_baselines::olapclus_distance;
use aa_core::extract::{Extractor, NoSchema};
use aa_core::{AccessArea, AccessRanges, DistanceMode, QueryDistance};
use aa_bench::micro::{black_box, Criterion};

fn bench_modes(c: &mut Criterion) {
    let ex = Extractor::new(&NoSchema);
    let a = ex
        .extract_sql(
            "SELECT * FROM SpecObjAll WHERE class = 'star' \
             AND mjd BETWEEN 51578 AND 52178 AND plate BETWEEN 296 AND 3200",
        )
        .unwrap();
    let b = ex
        .extract_sql(
            "SELECT * FROM SpecObjAll WHERE class = 'star' \
             AND mjd BETWEEN 51600 AND 52150 AND plate BETWEEN 310 AND 3150",
        )
        .unwrap();
    let mut ranges = AccessRanges::new();
    ranges.observe_all([&a, &b]);

    let mut g = c.benchmark_group("ablation_distance");
    for mode in [DistanceMode::Dissimilarity, DistanceMode::PaperLiteral] {
        let metric = QueryDistance::with_mode(&ranges, mode);
        g.bench_function(format!("{mode:?}"), |bench| {
            bench.iter(|| metric.distance(black_box(&a), black_box(&b)))
        });
    }
    g.bench_function("OlapClusExact", |bench| {
        bench.iter(|| olapclus_distance(black_box(&a), black_box(&b)))
    });
    g.finish();

    let _unused: Vec<AccessArea> = vec![];
}

fn main() {
    let mut c = Criterion::default();
    bench_modes(&mut c);
}

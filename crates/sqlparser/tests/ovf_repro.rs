//! Regression tests: hostile prefix-operator chains must produce a clean
//! `Unsupported` error, never a stack overflow. `NOT` and unary sign chains
//! do not route through `parse_expr`, so they need their own iterative cap.

use aa_sql::ParseErrorKind;

#[test]
fn not_chain() {
    let sql = format!("SELECT * FROM T WHERE {}u = 1", "NOT ".repeat(200_000));
    let err = aa_sql::Parser::parse_statement(&sql).unwrap_err();
    assert_eq!(err.kind, ParseErrorKind::Unsupported);
    assert!(err.message.contains("nesting too deep"), "{}", err.message);
}

#[test]
fn unary_minus_chain() {
    let sql = format!("SELECT * FROM T WHERE u = {}1", "- ".repeat(200_000));
    let err = aa_sql::Parser::parse_statement(&sql).unwrap_err();
    assert_eq!(err.kind, ParseErrorKind::Unsupported);
    assert!(err.message.contains("nesting too deep"), "{}", err.message);
}

#[test]
fn short_chains_still_parse() {
    use aa_sql::{Expr, Literal, UnaryOp};
    let q = aa_sql::Parser::parse_statement("SELECT * FROM T WHERE u = - - - 5").unwrap();
    match q.selection.unwrap() {
        Expr::Binary { right, .. } => assert_eq!(*right, Expr::Literal(Literal::Int(-5))),
        other => panic!("unexpected {other:?}"),
    }
    let q = aa_sql::Parser::parse_statement("SELECT * FROM T WHERE NOT NOT NOT u = 1").unwrap();
    let mut depth = 0;
    let mut e = q.selection.unwrap();
    while let Expr::Unary {
        op: UnaryOp::Not,
        expr,
    } = e
    {
        depth += 1;
        e = *expr;
    }
    assert_eq!(depth, 3);
}

#[test]
fn not_chain() {
    let sql = format!("SELECT * FROM T WHERE {}u = 1", "NOT ".repeat(200_000));
    let r = aa_sql::Parser::parse_statement(&sql);
    eprintln!("not chain errored: {:?}", r.is_err());
}

#[test]
fn unary_minus_chain() {
    let sql = format!("SELECT * FROM T WHERE u = {}1", "- ".repeat(200_000));
    let r = aa_sql::Parser::parse_statement(&sql);
    eprintln!("minus chain errored: {:?}", r.is_err());
}

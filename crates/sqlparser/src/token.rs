//! Token definitions produced by the [`lexer`](crate::lexer).
//!
//! The token set covers the SQL dialect family observed in the SkyServer
//! query log: Transact-SQL (the dialect SkyServer actually accepts) plus the
//! MySQL-flavoured statements the paper reports users submit anyway (e.g.
//! `SELECT ... LIMIT 10`).

use std::fmt;

/// A half-open byte range `[start, end)` into the original SQL text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// A token together with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedToken {
    pub token: Token,
    pub span: Span,
}

/// SQL keywords recognised by the lexer.
///
/// Keyword recognition is case-insensitive; identifiers that match a keyword
/// are lexed as `Token::Keyword`. The parser decides contextually whether a
/// keyword may still act as an identifier (SkyServer logs contain column
/// names such as `class` and `type` that are not reserved in T-SQL).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Keyword {
    Select,
    From,
    Where,
    Group,
    By,
    Having,
    Order,
    Asc,
    Desc,
    And,
    Or,
    Not,
    In,
    Exists,
    Between,
    Like,
    Is,
    Null,
    Any,
    Some,
    All,
    As,
    Distinct,
    Top,
    Limit,
    Offset,
    Percent,
    Join,
    Inner,
    Left,
    Right,
    Full,
    Outer,
    Cross,
    Natural,
    On,
    Union,
    Except,
    Intersect,
    Case,
    When,
    Then,
    Else,
    End,
    Cast,
    Into,
    True,
    False,
    Count,
    Sum,
    Avg,
    Min,
    Max,
    Create,
    Table,
    Declare,
    Insert,
    Update,
    Delete,
    Drop,
    Set,
    Values,
}

impl Keyword {
    /// Looks up a keyword from an identifier-like word, case-insensitively.
    pub fn from_word(word: &str) -> Option<Keyword> {
        // The list is small enough that a match on the uppercased word is
        // both simple and fast; queries are parsed once per log entry.
        let upper = word.to_ascii_uppercase();
        Some(match upper.as_str() {
            "SELECT" => Keyword::Select,
            "FROM" => Keyword::From,
            "WHERE" => Keyword::Where,
            "GROUP" => Keyword::Group,
            "BY" => Keyword::By,
            "HAVING" => Keyword::Having,
            "ORDER" => Keyword::Order,
            "ASC" => Keyword::Asc,
            "DESC" => Keyword::Desc,
            "AND" => Keyword::And,
            "OR" => Keyword::Or,
            "NOT" => Keyword::Not,
            "IN" => Keyword::In,
            "EXISTS" => Keyword::Exists,
            "BETWEEN" => Keyword::Between,
            "LIKE" => Keyword::Like,
            "IS" => Keyword::Is,
            "NULL" => Keyword::Null,
            "ANY" => Keyword::Any,
            "SOME" => Keyword::Some,
            "ALL" => Keyword::All,
            "AS" => Keyword::As,
            "DISTINCT" => Keyword::Distinct,
            "TOP" => Keyword::Top,
            "LIMIT" => Keyword::Limit,
            "OFFSET" => Keyword::Offset,
            "PERCENT" => Keyword::Percent,
            "JOIN" => Keyword::Join,
            "INNER" => Keyword::Inner,
            "LEFT" => Keyword::Left,
            "RIGHT" => Keyword::Right,
            "FULL" => Keyword::Full,
            "OUTER" => Keyword::Outer,
            "CROSS" => Keyword::Cross,
            "NATURAL" => Keyword::Natural,
            "ON" => Keyword::On,
            "UNION" => Keyword::Union,
            "EXCEPT" => Keyword::Except,
            "INTERSECT" => Keyword::Intersect,
            "CASE" => Keyword::Case,
            "WHEN" => Keyword::When,
            "THEN" => Keyword::Then,
            "ELSE" => Keyword::Else,
            "END" => Keyword::End,
            "CAST" => Keyword::Cast,
            "INTO" => Keyword::Into,
            "TRUE" => Keyword::True,
            "FALSE" => Keyword::False,
            "COUNT" => Keyword::Count,
            "SUM" => Keyword::Sum,
            "AVG" => Keyword::Avg,
            "MIN" => Keyword::Min,
            "MAX" => Keyword::Max,
            "CREATE" => Keyword::Create,
            "TABLE" => Keyword::Table,
            "DECLARE" => Keyword::Declare,
            "INSERT" => Keyword::Insert,
            "UPDATE" => Keyword::Update,
            "DELETE" => Keyword::Delete,
            "DROP" => Keyword::Drop,
            "SET" => Keyword::Set,
            "VALUES" => Keyword::Values,
            _ => return None,
        })
    }

    /// Canonical upper-case spelling, used by the AST pretty-printer.
    pub fn as_str(&self) -> &'static str {
        match self {
            Keyword::Select => "SELECT",
            Keyword::From => "FROM",
            Keyword::Where => "WHERE",
            Keyword::Group => "GROUP",
            Keyword::By => "BY",
            Keyword::Having => "HAVING",
            Keyword::Order => "ORDER",
            Keyword::Asc => "ASC",
            Keyword::Desc => "DESC",
            Keyword::And => "AND",
            Keyword::Or => "OR",
            Keyword::Not => "NOT",
            Keyword::In => "IN",
            Keyword::Exists => "EXISTS",
            Keyword::Between => "BETWEEN",
            Keyword::Like => "LIKE",
            Keyword::Is => "IS",
            Keyword::Null => "NULL",
            Keyword::Any => "ANY",
            Keyword::Some => "SOME",
            Keyword::All => "ALL",
            Keyword::As => "AS",
            Keyword::Distinct => "DISTINCT",
            Keyword::Top => "TOP",
            Keyword::Limit => "LIMIT",
            Keyword::Offset => "OFFSET",
            Keyword::Percent => "PERCENT",
            Keyword::Join => "JOIN",
            Keyword::Inner => "INNER",
            Keyword::Left => "LEFT",
            Keyword::Right => "RIGHT",
            Keyword::Full => "FULL",
            Keyword::Outer => "OUTER",
            Keyword::Cross => "CROSS",
            Keyword::Natural => "NATURAL",
            Keyword::On => "ON",
            Keyword::Union => "UNION",
            Keyword::Except => "EXCEPT",
            Keyword::Intersect => "INTERSECT",
            Keyword::Case => "CASE",
            Keyword::When => "WHEN",
            Keyword::Then => "THEN",
            Keyword::Else => "ELSE",
            Keyword::End => "END",
            Keyword::Cast => "CAST",
            Keyword::Into => "INTO",
            Keyword::True => "TRUE",
            Keyword::False => "FALSE",
            Keyword::Count => "COUNT",
            Keyword::Sum => "SUM",
            Keyword::Avg => "AVG",
            Keyword::Min => "MIN",
            Keyword::Max => "MAX",
            Keyword::Create => "CREATE",
            Keyword::Table => "TABLE",
            Keyword::Declare => "DECLARE",
            Keyword::Insert => "INSERT",
            Keyword::Update => "UPDATE",
            Keyword::Delete => "DELETE",
            Keyword::Drop => "DROP",
            Keyword::Set => "SET",
            Keyword::Values => "VALUES",
        }
    }
}

/// Lexical tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A recognised SQL keyword (case-insensitive).
    Keyword(Keyword),
    /// An identifier. Bracketed (`[Name]`) and double-quoted (`"Name"`)
    /// identifiers are unwrapped; the `quoted` flag records that fact so
    /// keyword-named columns survive a display round-trip.
    Ident { value: String, quoted: bool },
    /// A numeric literal kept verbatim (sign handled by the parser).
    Number(String),
    /// A single-quoted string literal with `''` escapes resolved.
    String(String),
    /// A T-SQL local variable such as `@x` (appears in admin statements).
    Variable(String),
    Comma,
    Dot,
    LParen,
    RParen,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Eq,
    /// `<>` or `!=`
    Neq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Semicolon,
    Eof,
}

impl Token {
    /// Returns the keyword if this token is one.
    pub fn keyword(&self) -> Option<Keyword> {
        match self {
            Token::Keyword(k) => Some(*k),
            _ => None,
        }
    }

    /// True for tokens that may start a primary expression.
    pub fn starts_expression(&self) -> bool {
        matches!(
            self,
            Token::Ident { .. }
                | Token::Number(_)
                | Token::String(_)
                | Token::Variable(_)
                | Token::LParen
                | Token::Plus
                | Token::Minus
                | Token::Star
                | Token::Keyword(
                    Keyword::Not
                        | Keyword::Exists
                        | Keyword::Case
                        | Keyword::Cast
                        | Keyword::Null
                        | Keyword::True
                        | Keyword::False
                        | Keyword::Count
                        | Keyword::Sum
                        | Keyword::Avg
                        | Keyword::Min
                        | Keyword::Max
                )
        )
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{}", k.as_str()),
            Token::Ident { value, quoted } => {
                if *quoted {
                    write!(f, "[{value}]")
                } else {
                    write!(f, "{value}")
                }
            }
            Token::Number(n) => write!(f, "{n}"),
            Token::String(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Token::Variable(v) => write!(f, "@{v}"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Eq => write!(f, "="),
            Token::Neq => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::LtEq => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::GtEq => write!(f, ">="),
            Token::Semicolon => write!(f, ";"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_is_case_insensitive() {
        assert_eq!(Keyword::from_word("select"), Some(Keyword::Select));
        assert_eq!(Keyword::from_word("SeLeCt"), Some(Keyword::Select));
        assert_eq!(Keyword::from_word("HAVING"), Some(Keyword::Having));
        assert_eq!(Keyword::from_word("objid"), None);
    }

    #[test]
    fn keyword_round_trips_through_canonical_spelling() {
        for word in ["SELECT", "BETWEEN", "NATURAL", "LIMIT", "DECLARE"] {
            let kw = Keyword::from_word(word).unwrap();
            assert_eq!(kw.as_str(), word);
            assert_eq!(Keyword::from_word(kw.as_str()), Some(kw));
        }
    }

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn display_escapes_string_quotes() {
        let t = Token::String("it's".into());
        assert_eq!(t.to_string(), "'it''s'");
    }
}

//! Normalized SQL fingerprints.
//!
//! A fingerprint is a canonical rendering of the token stream: comments and
//! whitespace vanish (the lexer treats them as trivia), keywords case-fold to
//! their canonical upper-case spelling, and identifiers and literals are kept
//! verbatim. Two statements with equal fingerprints therefore lex to the same
//! token stream, parse to the same AST, and extract the same access area —
//! which is what makes the fingerprint a sound cache key for the serving
//! layer: a cached extraction may be reused for any statement with the same
//! fingerprint.
//!
//! ```
//! use aa_sql::fingerprint;
//!
//! assert_eq!(
//!     fingerprint("select *  from T -- trailing comment\n where u=1"),
//!     fingerprint("SELECT * FROM T WHERE u = 1"),
//! );
//! ```

use crate::lexer::Lexer;
use crate::token::Token;
use std::fmt::Write as _;

/// Returns the normalized fingerprint of `sql`.
///
/// Statements that fail to lex (unterminated strings, stray characters) still
/// get a deterministic fingerprint — the raw text with whitespace runs
/// collapsed, marked with a `!lex:` prefix so it can never collide with a
/// token-stream fingerprint. Such statements fail extraction identically, so
/// caching their failure under the fallback key stays sound.
pub fn fingerprint(sql: &str) -> String {
    let tokens = match Lexer::tokenize(sql) {
        Ok(tokens) => tokens,
        Err(_) => {
            let mut out = String::with_capacity(sql.len() + 5);
            out.push_str("!lex:");
            let mut in_gap = true;
            for ch in sql.chars() {
                if ch.is_whitespace() {
                    if !in_gap {
                        out.push(' ');
                        in_gap = true;
                    }
                } else {
                    out.push(ch);
                    in_gap = false;
                }
            }
            return out.trim_end().to_string();
        }
    };

    let mut out = String::with_capacity(sql.len());
    let mut tokens = tokens
        .iter()
        .map(|st| &st.token)
        .filter(|t| !matches!(t, Token::Eof));
    if let Some(first) = tokens.next() {
        let _ = write!(out, "{first}");
    }
    for token in tokens {
        out.push(' ');
        let _ = write!(out, "{token}");
    }
    // A trailing statement terminator does not change meaning.
    while let Some(stripped) = out.strip_suffix(" ;") {
        out.truncate(stripped.len());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_whitespace_are_invisible() {
        let a = fingerprint(
            "SELECT /* block\ncomment */ ra, dec\n  FROM PhotoObjAll -- tail\nWHERE ra < 180",
        );
        let b = fingerprint("SELECT ra, dec FROM PhotoObjAll WHERE ra < 180");
        assert_eq!(a, b);
    }

    #[test]
    fn keywords_case_fold_identifiers_do_not() {
        assert_eq!(
            fingerprint("select ra from T"),
            fingerprint("SELECT ra FROM T"),
        );
        // Identifier spelling is meaningful to the rendered atoms, so it is
        // preserved.
        assert_ne!(fingerprint("SELECT RA FROM T"), fingerprint("SELECT ra FROM T"));
    }

    #[test]
    fn literals_are_kept() {
        assert_ne!(
            fingerprint("SELECT * FROM T WHERE u = 1"),
            fingerprint("SELECT * FROM T WHERE u = 2"),
        );
        assert_ne!(
            fingerprint("SELECT * FROM T WHERE c = 'star'"),
            fingerprint("SELECT * FROM T WHERE c = 'galaxy'"),
        );
    }

    #[test]
    fn trailing_semicolons_ignored() {
        assert_eq!(
            fingerprint("SELECT * FROM T;"),
            fingerprint("SELECT * FROM T"),
        );
        assert_eq!(
            fingerprint("SELECT * FROM T ; ;"),
            fingerprint("SELECT * FROM T"),
        );
    }

    #[test]
    fn lex_failures_get_stable_fallback() {
        let a = fingerprint("SELECT 'unterminated");
        let b = fingerprint("SELECT   'unterminated");
        assert_eq!(a, b);
        assert!(a.starts_with("!lex:"));
        // The fallback prefix cannot collide with a real token stream: no
        // token renders with a leading `!`.
        assert_ne!(fingerprint("SELECT 1"), fingerprint("!lex:SELECT 1"));
    }

    #[test]
    fn quoted_identifiers_stay_distinct_from_keywords() {
        assert_ne!(
            fingerprint("SELECT [select] FROM T"),
            fingerprint("SELECT select FROM T"),
        );
    }
}

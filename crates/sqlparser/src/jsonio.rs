//! JSON views of the AST (the former `serde` derives, now explicit and
//! zero-dependency via [`aa_util::json`]).
//!
//! Expressions serialise as kind-tagged objects so downstream tooling can
//! walk the tree; statements additionally carry their rendered SQL, which
//! is the form the experiment artifacts actually consume.

use crate::ast::{
    AggFunc, BinaryOp, ColumnRef, Expr, Literal, ObjectName, Quantifier, Select, UnaryOp,
};
use aa_util::{Json, ToJson};

fn tagged(kind: &str, fields: Vec<(String, Json)>) -> Json {
    let mut all = vec![("kind".to_string(), Json::Str(kind.to_string()))];
    all.extend(fields);
    Json::obj(all)
}

impl ToJson for ObjectName {
    fn to_json(&self) -> Json {
        Json::Arr(self.parts.iter().map(|p| Json::Str(p.clone())).collect())
    }
}

impl ToJson for ColumnRef {
    fn to_json(&self) -> Json {
        Json::obj([
            (
                "qualifier".to_string(),
                match &self.qualifier {
                    Some(q) => Json::Str(q.clone()),
                    None => Json::Null,
                },
            ),
            ("column".to_string(), Json::Str(self.column.clone())),
        ])
    }
}

impl ToJson for Literal {
    fn to_json(&self) -> Json {
        match self {
            Literal::Int(i) => Json::Num(*i as f64),
            Literal::Float(f) => Json::Num(*f),
            Literal::String(s) => Json::Str(s.clone()),
            Literal::Bool(b) => Json::Bool(*b),
            Literal::Null => Json::Null,
        }
    }
}

impl ToJson for BinaryOp {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for UnaryOp {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                UnaryOp::Not => "NOT",
                UnaryOp::Neg => "-",
                UnaryOp::Plus => "+",
            }
            .to_string(),
        )
    }
}

impl ToJson for AggFunc {
    fn to_json(&self) -> Json {
        Json::Str(self.name().to_string())
    }
}

impl ToJson for Quantifier {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Quantifier::Any => "ANY",
                Quantifier::All => "ALL",
            }
            .to_string(),
        )
    }
}

impl ToJson for Expr {
    fn to_json(&self) -> Json {
        let f = |k: &str, v: Json| (k.to_string(), v);
        match self {
            Expr::Column(c) => tagged("column", vec![f("ref", c.to_json())]),
            Expr::Literal(l) => tagged("literal", vec![f("value", l.to_json())]),
            Expr::Variable(name) => {
                tagged("variable", vec![f("name", Json::Str(name.clone()))])
            }
            Expr::Unary { op, expr } => tagged(
                "unary",
                vec![f("op", op.to_json()), f("expr", expr.to_json())],
            ),
            Expr::Binary { left, op, right } => tagged(
                "binary",
                vec![
                    f("op", op.to_json()),
                    f("left", left.to_json()),
                    f("right", right.to_json()),
                ],
            ),
            Expr::Between {
                expr,
                negated,
                low,
                high,
            } => tagged(
                "between",
                vec![
                    f("negated", Json::Bool(*negated)),
                    f("expr", expr.to_json()),
                    f("low", low.to_json()),
                    f("high", high.to_json()),
                ],
            ),
            Expr::InList {
                expr,
                negated,
                list,
            } => tagged(
                "in_list",
                vec![
                    f("negated", Json::Bool(*negated)),
                    f("expr", expr.to_json()),
                    f("list", Json::arr(list.iter())),
                ],
            ),
            Expr::InSubquery {
                expr,
                negated,
                subquery,
            } => tagged(
                "in_subquery",
                vec![
                    f("negated", Json::Bool(*negated)),
                    f("expr", expr.to_json()),
                    f("subquery", subquery.to_json()),
                ],
            ),
            Expr::Exists { negated, subquery } => tagged(
                "exists",
                vec![
                    f("negated", Json::Bool(*negated)),
                    f("subquery", subquery.to_json()),
                ],
            ),
            Expr::Quantified {
                left,
                op,
                quantifier,
                subquery,
            } => tagged(
                "quantified",
                vec![
                    f("left", left.to_json()),
                    f("op", op.to_json()),
                    f("quantifier", quantifier.to_json()),
                    f("subquery", subquery.to_json()),
                ],
            ),
            Expr::ScalarSubquery(subquery) => {
                tagged("scalar_subquery", vec![f("subquery", subquery.to_json())])
            }
            Expr::IsNull { expr, negated } => tagged(
                "is_null",
                vec![
                    f("negated", Json::Bool(*negated)),
                    f("expr", expr.to_json()),
                ],
            ),
            Expr::Like {
                expr,
                negated,
                pattern,
            } => tagged(
                "like",
                vec![
                    f("negated", Json::Bool(*negated)),
                    f("expr", expr.to_json()),
                    f("pattern", pattern.to_json()),
                ],
            ),
            Expr::Aggregate {
                func,
                arg,
                distinct,
            } => tagged(
                "aggregate",
                vec![
                    f("func", func.to_json()),
                    f(
                        "arg",
                        match arg {
                            Some(a) => a.to_json(),
                            None => Json::Null,
                        },
                    ),
                    f("distinct", Json::Bool(*distinct)),
                ],
            ),
            Expr::Function { name, args } => tagged(
                "function",
                vec![
                    f("name", Json::Str(name.clone())),
                    f("args", Json::arr(args.iter())),
                ],
            ),
            Expr::Case {
                operand,
                branches,
                else_result,
            } => tagged(
                "case",
                vec![
                    f(
                        "operand",
                        match operand {
                            Some(o) => o.to_json(),
                            None => Json::Null,
                        },
                    ),
                    f(
                        "branches",
                        Json::Arr(
                            branches
                                .iter()
                                .map(|(w, t)| {
                                    Json::obj([
                                        ("when".to_string(), w.to_json()),
                                        ("then".to_string(), t.to_json()),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    f(
                        "else",
                        match else_result {
                            Some(e) => e.to_json(),
                            None => Json::Null,
                        },
                    ),
                ],
            ),
            Expr::Cast { expr, data_type } => tagged(
                "cast",
                vec![
                    f("expr", expr.to_json()),
                    f("type", Json::Str(data_type.clone())),
                ],
            ),
        }
    }
}

impl ToJson for Select {
    fn to_json(&self) -> Json {
        Json::obj([
            ("sql".to_string(), Json::Str(self.to_string())),
            ("distinct".to_string(), Json::Bool(self.distinct)),
            (
                "from".to_string(),
                Json::Arr(
                    self.from
                        .iter()
                        .map(|t| Json::Str(t.to_string()))
                        .collect(),
                ),
            ),
            (
                "where".to_string(),
                match &self.selection {
                    Some(e) => e.to_json(),
                    None => Json::Null,
                },
            ),
            (
                "having".to_string(),
                match &self.having {
                    Some(e) => e.to_json(),
                    None => Json::Null,
                },
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_select;

    #[test]
    fn parsed_query_serialises_with_kind_tags() {
        let select =
            parse_select("SELECT TOP 10 * FROM SpecObjAll WHERE z > 0.3 AND class = 'QSO'")
                .unwrap();
        let json = select.to_json();
        assert!(json.get("sql").unwrap().as_str().unwrap().contains("WHERE"));
        let where_clause = json.get("where").unwrap();
        assert_eq!(where_clause.get("kind").unwrap().as_str(), Some("binary"));
        assert_eq!(where_clause.get("op").unwrap().as_str(), Some("AND"));
        // The document is well-formed and re-parses.
        let reparsed = Json::parse(&json.to_string_pretty()).unwrap();
        assert_eq!(reparsed, json);
    }

    #[test]
    fn subquery_nesting_is_preserved() {
        let select = parse_select(
            "SELECT * FROM T WHERE EXISTS (SELECT 1 FROM S WHERE S.id = T.id)",
        )
        .unwrap();
        let json = select.to_json();
        let exists = json.get("where").unwrap();
        assert_eq!(exists.get("kind").unwrap().as_str(), Some("exists"));
        assert!(exists.get("subquery").unwrap().get("sql").is_some());
    }
}

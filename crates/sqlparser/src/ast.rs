//! Abstract syntax tree for the supported SQL subset.
//!
//! The shape mirrors what the access-area pipeline needs (Section 2 of the
//! paper): a `SELECT` statement with `FROM`/`WHERE`/`GROUP BY`/`HAVING`
//! clauses, all join flavours, and nested subqueries via `IN`, `EXISTS`,
//! `ANY`/`SOME`/`ALL` and scalar positions. `ORDER BY` and `TOP`/`LIMIT` are
//! parsed (they occur constantly in the log) but are irrelevant to access
//! areas and are ignored downstream.


use crate::token::Span;

/// A possibly multi-part object name such as `PhotoObjAll` or
/// `BESTDR9..PhotoObjAll`.
///
/// Carries the source [`Span`] it was parsed from so semantic diagnostics
/// can point at it; the span is ignored by equality and hashing so that
/// structural AST comparisons (round-trip tests, predicate dedup) are
/// unaffected by where a name happened to sit in the source text.
#[derive(Debug, Clone, Eq)]
pub struct ObjectName {
    pub parts: Vec<String>,
    pub span: Span,
}

impl PartialEq for ObjectName {
    fn eq(&self, other: &Self) -> bool {
        self.parts == other.parts
    }
}

impl std::hash::Hash for ObjectName {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.parts.hash(state);
    }
}

impl ObjectName {
    pub fn simple(name: impl Into<String>) -> Self {
        ObjectName {
            parts: vec![name.into()],
            span: Span::default(),
        }
    }

    /// Attaches a source span (builder style).
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = span;
        self
    }

    /// The unqualified relation name (last path segment). SkyServer queries
    /// qualify tables with database/schema prefixes that are irrelevant to
    /// the data space, so extraction works on the base name.
    pub fn base_name(&self) -> &str {
        self.parts.last().map(String::as_str).unwrap_or("")
    }
}

/// A column reference, optionally qualified by a table name or alias.
///
/// Like [`ObjectName`], carries a [`Span`] that equality and hashing
/// ignore.
#[derive(Debug, Clone, Eq)]
pub struct ColumnRef {
    pub qualifier: Option<String>,
    pub column: String,
    pub span: Span,
}

impl PartialEq for ColumnRef {
    fn eq(&self, other: &Self) -> bool {
        self.qualifier == other.qualifier && self.column == other.column
    }
}

impl std::hash::Hash for ColumnRef {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.qualifier.hash(state);
        self.column.hash(state);
    }
}

impl ColumnRef {
    pub fn bare(column: impl Into<String>) -> Self {
        ColumnRef {
            qualifier: None,
            column: column.into(),
            span: Span::default(),
        }
    }

    pub fn qualified(qualifier: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            qualifier: Some(qualifier.into()),
            column: column.into(),
            span: Span::default(),
        }
    }

    /// Attaches a source span (builder style).
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = span;
        self
    }
}

/// Literal values.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    Int(i64),
    Float(f64),
    String(String),
    Bool(bool),
    Null,
}

/// Binary operators, including the boolean connectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    And,
    Or,
    Eq,
    Neq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Plus,
    Minus,
    Mul,
    Div,
    Mod,
}

impl BinaryOp {
    /// True for the six comparison operators `θ` of the paper's
    /// column-constant atomic predicates.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::Neq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }

    /// True for `AND` / `OR`.
    pub fn is_logical(&self) -> bool {
        matches!(self, BinaryOp::And | BinaryOp::Or)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    Not,
    Neg,
    Plus,
}

/// The five aggregate functions covered by the paper (Section 4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// `ANY`/`SOME` vs `ALL` quantifier for quantified comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quantifier {
    Any,
    All,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Column(ColumnRef),
    Literal(Literal),
    /// A T-SQL `@variable`; treated as an opaque constant downstream.
    Variable(String),
    Unary {
        op: UnaryOp,
        expr: Box<Expr>,
    },
    Binary {
        left: Box<Expr>,
        op: BinaryOp,
        right: Box<Expr>,
    },
    Between {
        expr: Box<Expr>,
        negated: bool,
        low: Box<Expr>,
        high: Box<Expr>,
    },
    InList {
        expr: Box<Expr>,
        negated: bool,
        list: Vec<Expr>,
    },
    InSubquery {
        expr: Box<Expr>,
        negated: bool,
        subquery: Box<Select>,
    },
    Exists {
        negated: bool,
        subquery: Box<Select>,
    },
    /// `left θ ANY (subquery)` / `left θ ALL (subquery)`.
    Quantified {
        left: Box<Expr>,
        op: BinaryOp,
        quantifier: Quantifier,
        subquery: Box<Select>,
    },
    /// A subquery in a scalar position, e.g. `T.u = (SELECT ...)`.
    ScalarSubquery(Box<Select>),
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    Like {
        expr: Box<Expr>,
        negated: bool,
        pattern: Box<Expr>,
    },
    /// Aggregate function application; `arg == None` encodes `COUNT(*)`.
    Aggregate {
        func: AggFunc,
        arg: Option<Box<Expr>>,
        distinct: bool,
    },
    /// Any other function call (SkyServer UDFs such as `fGetNearbyObjEq`
    /// reach the parser but are rejected later by the extractor).
    Function {
        name: String,
        args: Vec<Expr>,
    },
    Case {
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_result: Option<Box<Expr>>,
    },
    Cast {
        expr: Box<Expr>,
        data_type: String,
    },
}

impl Expr {
    /// Convenience constructor for `left op right`.
    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::binary(left, BinaryOp::And, right)
    }

    pub fn or(left: Expr, right: Expr) -> Expr {
        Expr::binary(left, BinaryOp::Or, right)
    }

    #[allow(clippy::should_implement_trait)] // semantic negation, not std::ops::Not
    pub fn not(expr: Expr) -> Expr {
        Expr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(expr),
        }
    }

    /// Folds a non-empty iterator of expressions with `AND`; returns `None`
    /// for an empty iterator.
    pub fn conjoin(exprs: impl IntoIterator<Item = Expr>) -> Option<Expr> {
        exprs.into_iter().reduce(Expr::and)
    }

    /// Folds a non-empty iterator of expressions with `OR`.
    pub fn disjoin(exprs: impl IntoIterator<Item = Expr>) -> Option<Expr> {
        exprs.into_iter().reduce(Expr::or)
    }

    /// True if the expression contains any subquery.
    pub fn has_subquery(&self) -> bool {
        match self {
            Expr::InSubquery { .. }
            | Expr::Exists { .. }
            | Expr::Quantified { .. }
            | Expr::ScalarSubquery(_) => true,
            Expr::Unary { expr, .. } => expr.has_subquery(),
            Expr::Binary { left, right, .. } => left.has_subquery() || right.has_subquery(),
            Expr::Between {
                expr, low, high, ..
            } => expr.has_subquery() || low.has_subquery() || high.has_subquery(),
            Expr::InList { expr, list, .. } => {
                expr.has_subquery() || list.iter().any(Expr::has_subquery)
            }
            Expr::IsNull { expr, .. } => expr.has_subquery(),
            Expr::Like { expr, pattern, .. } => expr.has_subquery() || pattern.has_subquery(),
            Expr::Aggregate { arg, .. } => {
                arg.as_deref().is_some_and(Expr::has_subquery)
            }
            Expr::Function { args, .. } => args.iter().any(Expr::has_subquery),
            Expr::Case {
                operand,
                branches,
                else_result,
            } => {
                operand.as_deref().is_some_and(Expr::has_subquery)
                    || branches
                        .iter()
                        .any(|(w, t)| w.has_subquery() || t.has_subquery())
                    || else_result.as_deref().is_some_and(Expr::has_subquery)
            }
            Expr::Cast { expr, .. } => expr.has_subquery(),
            Expr::Column(_) | Expr::Literal(_) | Expr::Variable(_) => false,
        }
    }

    /// True if the expression contains an aggregate function call at any
    /// depth that is not inside a subquery (those belong to the subquery).
    pub fn has_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Unary { expr, .. } => expr.has_aggregate(),
            Expr::Binary { left, right, .. } => left.has_aggregate() || right.has_aggregate(),
            Expr::Between {
                expr, low, high, ..
            } => expr.has_aggregate() || low.has_aggregate() || high.has_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.has_aggregate() || list.iter().any(Expr::has_aggregate)
            }
            Expr::IsNull { expr, .. } => expr.has_aggregate(),
            Expr::Like { expr, pattern, .. } => expr.has_aggregate() || pattern.has_aggregate(),
            Expr::Function { args, .. } => args.iter().any(Expr::has_aggregate),
            Expr::Case {
                operand,
                branches,
                else_result,
            } => {
                operand.as_deref().is_some_and(Expr::has_aggregate)
                    || branches
                        .iter()
                        .any(|(w, t)| w.has_aggregate() || t.has_aggregate())
                    || else_result.as_deref().is_some_and(Expr::has_aggregate)
            }
            Expr::Cast { expr, .. } => expr.has_aggregate(),
            _ => false,
        }
    }

    /// Collects every column reference in the expression, excluding those
    /// inside subqueries (a subquery has its own scope).
    pub fn collect_columns(&self, out: &mut Vec<ColumnRef>) {
        match self {
            Expr::Column(c) => out.push(c.clone()),
            Expr::Unary { expr, .. } => expr.collect_columns(out),
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.collect_columns(out);
                low.collect_columns(out);
                high.collect_columns(out);
            }
            Expr::InList { expr, list, .. } => {
                expr.collect_columns(out);
                for e in list {
                    e.collect_columns(out);
                }
            }
            Expr::InSubquery { expr, .. } => expr.collect_columns(out),
            Expr::Quantified { left, .. } => left.collect_columns(out),
            Expr::IsNull { expr, .. } => expr.collect_columns(out),
            Expr::Like { expr, pattern, .. } => {
                expr.collect_columns(out);
                pattern.collect_columns(out);
            }
            Expr::Aggregate { arg, .. } => {
                if let Some(a) = arg {
                    a.collect_columns(out);
                }
            }
            Expr::Function { args, .. } => {
                for a in args {
                    a.collect_columns(out);
                }
            }
            Expr::Case {
                operand,
                branches,
                else_result,
            } => {
                if let Some(o) = operand {
                    o.collect_columns(out);
                }
                for (w, t) in branches {
                    w.collect_columns(out);
                    t.collect_columns(out);
                }
                if let Some(e) = else_result {
                    e.collect_columns(out);
                }
            }
            Expr::Cast { expr, .. } => expr.collect_columns(out),
            Expr::Exists { .. }
            | Expr::ScalarSubquery(_)
            | Expr::Literal(_)
            | Expr::Variable(_) => {}
        }
    }

    /// The smallest source span covering every column reference in the
    /// expression (subquery scopes excluded), or `None` when the expression
    /// mentions no spanned column — e.g. a pure literal comparison.
    pub fn span(&self) -> Option<Span> {
        let mut cols = Vec::new();
        self.collect_columns(&mut cols);
        cols.iter()
            .map(|c| c.span)
            .filter(|s| s.end > s.start)
            .reduce(Span::merge)
    }
}

/// One item of the projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `T.*`
    QualifiedWildcard(String),
    /// An expression with an optional `AS` alias.
    Expr { expr: Expr, alias: Option<String> },
}

/// A table or derived table in the `FROM` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum TableFactor {
    Table {
        name: ObjectName,
        alias: Option<String>,
    },
    Derived {
        subquery: Box<Select>,
        alias: Option<String>,
    },
}

impl TableFactor {
    /// The name this factor is visible under in the query's scope.
    pub fn scope_name(&self) -> Option<&str> {
        match self {
            TableFactor::Table { name, alias } => {
                Some(alias.as_deref().unwrap_or(name.base_name()))
            }
            TableFactor::Derived { alias, .. } => alias.as_deref(),
        }
    }
}

/// Join flavours (Section 4.2 of the paper handles each differently).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinOperator {
    Inner,
    LeftOuter,
    RightOuter,
    FullOuter,
    Cross,
}

/// The join condition.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinConstraint {
    On(Expr),
    /// `NATURAL JOIN` — equality over the common columns, resolved during
    /// extraction/execution where schemas are known.
    Natural,
    /// `CROSS JOIN` / comma syntax.
    None,
}

/// A single join step applied to the preceding factor chain.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    pub op: JoinOperator,
    pub factor: TableFactor,
    pub constraint: JoinConstraint,
}

/// A `FROM`-clause element: a base factor plus zero or more joins.
#[derive(Debug, Clone, PartialEq)]
pub struct TableWithJoins {
    pub base: TableFactor,
    pub joins: Vec<Join>,
}

/// `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    pub expr: Expr,
    pub desc: bool,
}

/// Row-limiting clause and which dialect spelled it.
///
/// T-SQL uses `SELECT TOP n ...`; MySQL (which SkyServer does *not* accept,
/// but users submit anyway — Section 6.6) uses `... LIMIT n`. Recording the
/// syntax lets the coverage experiment count dialect-mismatch queries.
#[derive(Debug, Clone, PartialEq)]
pub struct RowLimit {
    pub rows: u64,
    pub percent: bool,
    pub syntax: LimitSyntax,
}

/// Which spelling produced the [`RowLimit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LimitSyntax {
    Top,
    Limit,
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub distinct: bool,
    pub projection: Vec<SelectItem>,
    pub from: Vec<TableWithJoins>,
    pub selection: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderByItem>,
    pub limit: Option<RowLimit>,
    /// `SELECT ... INTO #temp` target, parsed and ignored downstream.
    pub into: Option<ObjectName>,
}

impl Select {
    /// An empty `SELECT *` skeleton, useful for constructing intermediate
    /// queries programmatically.
    pub fn star_from(tables: impl IntoIterator<Item = ObjectName>) -> Select {
        Select {
            distinct: false,
            projection: vec![SelectItem::Wildcard],
            from: tables
                .into_iter()
                .map(|name| TableWithJoins {
                    base: TableFactor::Table { name, alias: None },
                    joins: Vec::new(),
                })
                .collect(),
            selection: None,
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
            limit: None,
            into: None,
        }
    }

    /// True when the statement uses MySQL-only syntax that the real
    /// SkyServer (MS SQL Server) would reject with an execution error.
    pub fn uses_mysql_dialect(&self) -> bool {
        self.limit
            .as_ref()
            .is_some_and(|l| l.syntax == LimitSyntax::Limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_name_base() {
        let n = ObjectName {
            parts: vec!["BESTDR9".into(), "dbo".into(), "PhotoObjAll".into()],
            span: Span::default(),
        };
        assert_eq!(n.base_name(), "PhotoObjAll");
        assert_eq!(ObjectName::simple("T").base_name(), "T");
    }

    #[test]
    fn conjoin_and_disjoin() {
        let a = Expr::Column(ColumnRef::bare("a"));
        let b = Expr::Column(ColumnRef::bare("b"));
        let c = Expr::Column(ColumnRef::bare("c"));
        let conj = Expr::conjoin([a.clone(), b.clone(), c.clone()]).unwrap();
        match conj {
            Expr::Binary {
                op: BinaryOp::And, ..
            } => {}
            other => panic!("expected AND, got {other:?}"),
        }
        assert_eq!(Expr::conjoin(std::iter::empty()), None);
        assert!(Expr::disjoin([a]).is_some());
    }

    #[test]
    fn has_subquery_sees_through_nesting() {
        let sub = Select::star_from([ObjectName::simple("S")]);
        let e = Expr::not(Expr::Exists {
            negated: false,
            subquery: Box::new(sub),
        });
        assert!(e.has_subquery());
        assert!(!Expr::Literal(Literal::Int(1)).has_subquery());
    }

    #[test]
    fn collect_columns_skips_subquery_scope() {
        let sub = Select::star_from([ObjectName::simple("S")]);
        let e = Expr::and(
            Expr::binary(
                Expr::Column(ColumnRef::qualified("T", "u")),
                BinaryOp::Gt,
                Expr::Literal(Literal::Int(5)),
            ),
            Expr::Exists {
                negated: false,
                subquery: Box::new(sub),
            },
        );
        let mut cols = Vec::new();
        e.collect_columns(&mut cols);
        assert_eq!(cols, vec![ColumnRef::qualified("T", "u")]);
    }

    #[test]
    fn mysql_dialect_detection() {
        let mut q = Select::star_from([ObjectName::simple("Galaxies")]);
        assert!(!q.uses_mysql_dialect());
        q.limit = Some(RowLimit {
            rows: 10,
            percent: false,
            syntax: LimitSyntax::Limit,
        });
        assert!(q.uses_mysql_dialect());
        q.limit = Some(RowLimit {
            rows: 10,
            percent: false,
            syntax: LimitSyntax::Top,
        });
        assert!(!q.uses_mysql_dialect());
    }
}

//! # aa-sql — SQL parsing substrate
//!
//! A from-scratch lexer and recursive-descent parser for the SQL dialect
//! family found in the SDSS SkyServer query log: the Transact-SQL subset
//! SkyServer accepts (including `TOP`, bracketed identifiers, compound
//! object names) plus the MySQL-flavoured statements users submit anyway
//! (`LIMIT`, backtick identifiers).
//!
//! This crate is the first stage of the access-area extraction pipeline of
//! *"Identifying User Interests within the Data Space — a Case Study with
//! SkyServer"* (EDBT 2015). The paper used JSqlParser; this is an
//! independent implementation with the same job: turn a raw log entry into
//! a structured [`ast::Select`] or a classified [`error::ParseError`]
//! (syntax error / non-`SELECT` statement / unsupported construct), so the
//! coverage experiment (Section 6.1) can reproduce the paper's 99.4%
//! extraction rate and its failure taxonomy.
//!
//! ## Quick example
//!
//! ```
//! use aa_sql::parse_select;
//!
//! let q = parse_select(
//!     "SELECT TOP 10 ra, dec FROM PhotoObjAll WHERE ra <= 210 AND dec <= 10",
//! ).unwrap();
//! assert_eq!(q.from.len(), 1);
//! assert!(q.selection.is_some());
//! ```

#![forbid(unsafe_code)]



pub mod ast;
pub mod display;
pub mod error;
pub mod fingerprint;
pub mod jsonio;
pub mod lexer;
pub mod parser;
pub mod token;

pub use fingerprint::fingerprint;

pub use ast::{
    AggFunc, BinaryOp, ColumnRef, Expr, Join, JoinConstraint, JoinOperator, LimitSyntax, Literal,
    ObjectName, OrderByItem, Quantifier, RowLimit, Select, SelectItem, TableFactor,
    TableWithJoins, UnaryOp,
};
pub use error::{ParseError, ParseErrorKind, ParseResult};
pub use parser::Parser;
pub use token::Span;

/// Parses a single SQL statement into a [`Select`], classifying failures.
///
/// This is the main entry point used by the extraction pipeline: each log
/// entry goes through here exactly once.
pub fn parse_select(sql: &str) -> ParseResult<Select> {
    Parser::parse_statement(sql)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_entry_point_parses() {
        assert!(parse_select("SELECT * FROM SpecObjAll WHERE plate > 296").is_ok());
        assert!(parse_select("CREATE TABLE x (y int)").is_err());
    }
}

//! Expression parsing with precedence climbing.
//!
//! Precedence, loosest first: `OR` < `AND` < `NOT` < comparisons /
//! `BETWEEN` / `IN` / `LIKE` / `IS` < `+ -` < `* / %` < unary sign.

use crate::ast::*;
use crate::error::{ParseError, ParseResult};
use crate::token::{Keyword, Token};

use super::{Parser, MAX_EXPR_DEPTH};

impl Parser {
    /// Parses a full boolean/value expression.
    pub fn parse_expr(&mut self) -> ParseResult<Expr> {
        self.expr_depth += 1;
        if self.expr_depth > MAX_EXPR_DEPTH {
            self.expr_depth -= 1;
            return Err(ParseError::unsupported(
                format!("expression nesting too deep (limit {MAX_EXPR_DEPTH})"),
                self.peek_span(),
            ));
        }
        let result = self.parse_or();
        self.expr_depth -= 1;
        result
    }

    fn parse_or(&mut self) -> ParseResult<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_keyword(Keyword::Or) {
            let right = self.parse_and()?;
            left = Expr::or(left, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> ParseResult<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_keyword(Keyword::And) {
            let right = self.parse_not()?;
            left = Expr::and(left, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> ParseResult<Expr> {
        // Consume the whole prefix chain iteratively: `NOT` does not route
        // through `parse_expr`, so a recursive formulation would bypass the
        // depth guard and a hostile `NOT NOT NOT ...` chain could overflow
        // the stack. The chain length shares the expression nesting cap.
        let mut nots = 0usize;
        while self.peek().keyword() == Some(Keyword::Not) {
            if nots >= MAX_EXPR_DEPTH {
                return Err(ParseError::unsupported(
                    format!("expression nesting too deep (limit {MAX_EXPR_DEPTH})"),
                    self.peek_span(),
                ));
            }
            self.advance();
            nots += 1;
        }
        let mut expr = self.parse_comparison()?;
        for _ in 0..nots {
            expr = Expr::not(expr);
        }
        Ok(expr)
    }

    fn parse_comparison(&mut self) -> ParseResult<Expr> {
        let left = self.parse_additive()?;

        // Postfix predicates, possibly preceded by NOT.
        let negated = if self.peek().keyword() == Some(Keyword::Not)
            && matches!(
                self.peek_ahead(1).keyword(),
                Some(Keyword::Between | Keyword::In | Keyword::Like)
            ) {
            self.advance();
            true
        } else {
            false
        };

        if self.eat_keyword(Keyword::Between) {
            let low = self.parse_additive()?;
            self.expect_keyword(Keyword::And)?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                negated,
                low: Box::new(low),
                high: Box::new(high),
            });
        }

        if self.eat_keyword(Keyword::In) {
            self.expect(&Token::LParen)?;
            if self.peek().keyword() == Some(Keyword::Select) {
                let subquery = Box::new(self.parse_select()?);
                self.expect(&Token::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    negated,
                    subquery,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.parse_additive()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                negated,
                list,
            });
        }

        if self.eat_keyword(Keyword::Like) {
            let pattern = self.parse_additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                negated,
                pattern: Box::new(pattern),
            });
        }

        if negated {
            return Err(ParseError::syntax(
                "expected BETWEEN, IN or LIKE after NOT",
                self.peek_span(),
            ));
        }

        if self.eat_keyword(Keyword::Is) {
            let negated = self.eat_keyword(Keyword::Not);
            self.expect_keyword(Keyword::Null)?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }

        let op = match self.peek() {
            Token::Eq => BinaryOp::Eq,
            Token::Neq => BinaryOp::Neq,
            Token::Lt => BinaryOp::Lt,
            Token::LtEq => BinaryOp::LtEq,
            Token::Gt => BinaryOp::Gt,
            Token::GtEq => BinaryOp::GtEq,
            _ => return Ok(left),
        };
        self.advance();

        // Quantified comparison: `θ ANY (SELECT ...)` / `θ ALL (SELECT ...)`.
        if let Some(kw) = self.peek().keyword() {
            if matches!(kw, Keyword::Any | Keyword::Some | Keyword::All) {
                self.advance();
                let quantifier = if kw == Keyword::All {
                    Quantifier::All
                } else {
                    Quantifier::Any
                };
                self.expect(&Token::LParen)?;
                let subquery = Box::new(self.parse_select()?);
                self.expect(&Token::RParen)?;
                return Ok(Expr::Quantified {
                    left: Box::new(left),
                    op,
                    quantifier,
                    subquery,
                });
            }
        }

        let right = self.parse_additive()?;
        Ok(Expr::binary(left, op, right))
    }

    fn parse_additive(&mut self) -> ParseResult<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinaryOp::Plus,
                Token::Minus => BinaryOp::Minus,
                _ => break,
            };
            self.advance();
            let right = self.parse_multiplicative()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> ParseResult<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinaryOp::Mul,
                Token::Slash => BinaryOp::Div,
                Token::Percent => BinaryOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.parse_unary()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> ParseResult<Expr> {
        // Like `parse_not`, prefix signs are consumed iteratively so a
        // `- - - ...` chain cannot recurse past the depth guard; the chain
        // length shares the expression nesting cap.
        let mut signs = 0usize;
        let mut minuses = 0usize;
        loop {
            match self.peek() {
                Token::Minus => {
                    self.advance();
                    minuses += 1;
                }
                Token::Plus => {
                    self.advance();
                }
                _ => break,
            }
            signs += 1;
            if signs > MAX_EXPR_DEPTH {
                return Err(ParseError::unsupported(
                    format!("expression nesting too deep (limit {MAX_EXPR_DEPTH})"),
                    self.peek_span(),
                ));
            }
        }
        let mut expr = self.parse_primary()?;
        // Fold signs into numeric literals so that `-5` is a constant (the
        // paper's atomic predicates compare against constants; keeping `-5`
        // as Neg(5) would obscure that). `--5` folds back to `5`.
        match expr {
            Expr::Literal(Literal::Int(i)) if minuses % 2 == 1 => {
                return Ok(Expr::Literal(Literal::Int(-i)));
            }
            Expr::Literal(Literal::Float(f)) if minuses % 2 == 1 => {
                return Ok(Expr::Literal(Literal::Float(-f)));
            }
            Expr::Literal(Literal::Int(_) | Literal::Float(_)) => return Ok(expr),
            _ => {}
        }
        for _ in 0..minuses {
            expr = Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(expr),
            };
        }
        Ok(expr)
    }

    fn parse_primary(&mut self) -> ParseResult<Expr> {
        match self.peek().clone() {
            Token::Number(text) => {
                self.advance();
                Ok(Expr::Literal(parse_number(&text).ok_or_else(|| {
                    ParseError::syntax(format!("invalid number literal {text}"), self.peek_span())
                })?))
            }
            Token::String(s) => {
                self.advance();
                Ok(Expr::Literal(Literal::String(s)))
            }
            Token::Variable(v) => {
                self.advance();
                Ok(Expr::Variable(v))
            }
            Token::Keyword(Keyword::Null) => {
                self.advance();
                Ok(Expr::Literal(Literal::Null))
            }
            Token::Keyword(Keyword::True) => {
                self.advance();
                Ok(Expr::Literal(Literal::Bool(true)))
            }
            Token::Keyword(Keyword::False) => {
                self.advance();
                Ok(Expr::Literal(Literal::Bool(false)))
            }
            Token::Keyword(Keyword::Exists) => {
                self.advance();
                self.expect(&Token::LParen)?;
                let subquery = Box::new(self.parse_select()?);
                self.expect(&Token::RParen)?;
                Ok(Expr::Exists {
                    negated: false,
                    subquery,
                })
            }
            Token::Keyword(
                kw @ (Keyword::Count | Keyword::Sum | Keyword::Avg | Keyword::Min | Keyword::Max),
            ) => {
                // Aggregate call if followed by `(`; otherwise an identifier
                // (e.g. a column named `count`).
                if self.peek_ahead(1) == &Token::LParen {
                    self.advance();
                    self.advance(); // (
                    let func = match kw {
                        Keyword::Count => AggFunc::Count,
                        Keyword::Sum => AggFunc::Sum,
                        Keyword::Avg => AggFunc::Avg,
                        Keyword::Min => AggFunc::Min,
                        Keyword::Max => AggFunc::Max,
                        _ => unreachable!(),
                    };
                    let distinct = self.eat_keyword(Keyword::Distinct);
                    let arg = if self.eat(&Token::Star) {
                        None
                    } else {
                        Some(Box::new(self.parse_expr()?))
                    };
                    self.expect(&Token::RParen)?;
                    Ok(Expr::Aggregate {
                        func,
                        arg,
                        distinct,
                    })
                } else {
                    let span = self.peek_span();
                    self.advance();
                    Ok(Expr::Column(
                        ColumnRef::bare(kw.as_str().to_ascii_lowercase()).with_span(span),
                    ))
                }
            }
            Token::Keyword(Keyword::Case) => self.parse_case(),
            Token::Keyword(Keyword::Cast) => {
                self.advance();
                self.expect(&Token::LParen)?;
                let expr = self.parse_expr()?;
                self.expect_keyword(Keyword::As)?;
                let mut data_type = self.expect_ident()?;
                // `CAST(x AS numeric(10, 2))` — swallow the type arguments.
                if self.eat(&Token::LParen) {
                    data_type.push('(');
                    loop {
                        match self.advance() {
                            Token::RParen => break,
                            Token::Eof => {
                                return Err(ParseError::syntax(
                                    "unterminated CAST type",
                                    self.peek_span(),
                                ))
                            }
                            tok => data_type.push_str(&tok.to_string()),
                        }
                    }
                    data_type.push(')');
                }
                self.expect(&Token::RParen)?;
                Ok(Expr::Cast {
                    expr: Box::new(expr),
                    data_type,
                })
            }
            Token::LParen => {
                self.advance();
                if self.peek().keyword() == Some(Keyword::Select) {
                    let subquery = Box::new(self.parse_select()?);
                    self.expect(&Token::RParen)?;
                    return Ok(Expr::ScalarSubquery(subquery));
                }
                let inner = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            Token::Ident { .. } => self.parse_ident_expr(),
            other => Err(ParseError::syntax(
                format!("expected expression, found {other}"),
                self.peek_span(),
            )),
        }
    }

    /// Parses an identifier chain: a column reference or a function call.
    fn parse_ident_expr(&mut self) -> ParseResult<Expr> {
        let (first, mut span) = self.expect_ident_spanned()?;
        let mut parts = vec![first];
        while self.peek() == &Token::Dot {
            // Stop before `T.*` — handled by the projection parser.
            if self.peek_ahead(1) == &Token::Star {
                break;
            }
            self.advance();
            let (part, part_span) = self.expect_ident_spanned()?;
            parts.push(part);
            span = span.merge(part_span);
        }
        if self.peek() == &Token::LParen {
            self.advance();
            let mut args = Vec::new();
            if self.peek() != &Token::RParen {
                loop {
                    args.push(self.parse_expr()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::Function {
                name: parts.join("."),
                args,
            });
        }
        let column = parts.pop().expect("at least one part");
        let qualifier = match parts.len() {
            0 => None,
            // `db.schema.table.column`: only the table segment matters.
            _ => Some(parts.pop().expect("non-empty")),
        };
        Ok(Expr::Column(ColumnRef {
            qualifier,
            column,
            span,
        }))
    }

    fn parse_case(&mut self) -> ParseResult<Expr> {
        self.expect_keyword(Keyword::Case)?;
        let operand = if self.peek().keyword() != Some(Keyword::When) {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        let mut branches = Vec::new();
        while self.eat_keyword(Keyword::When) {
            let when = self.parse_expr()?;
            self.expect_keyword(Keyword::Then)?;
            let then = self.parse_expr()?;
            branches.push((when, then));
        }
        if branches.is_empty() {
            return Err(ParseError::syntax(
                "CASE requires at least one WHEN branch",
                self.peek_span(),
            ));
        }
        let else_result = if self.eat_keyword(Keyword::Else) {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_keyword(Keyword::End)?;
        Ok(Expr::Case {
            operand,
            branches,
            else_result,
        })
    }
}

/// Parses a numeric literal into an [`Literal::Int`] when it fits i64 and has
/// no fractional part, otherwise [`Literal::Float`].
fn parse_number(text: &str) -> Option<Literal> {
    if !text.contains('.') && !text.contains(['e', 'E']) {
        if let Ok(i) = text.parse::<i64>() {
            return Some(Literal::Int(i));
        }
        // Larger than i64 (objid arithmetic overflow in user queries):
        // degrade to float rather than failing the whole query.
    }
    text.parse::<f64>().ok().map(Literal::Float)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::Parser;

    fn expr(sql: &str) -> Expr {
        let full = format!("SELECT * FROM T WHERE {sql}");
        Parser::parse_statement(&full)
            .unwrap_or_else(|e| panic!("{sql}: {e}"))
            .selection
            .unwrap()
    }

    #[test]
    fn precedence_or_and() {
        // a OR b AND c  ==  a OR (b AND c)
        let e = expr("u = 1 OR v = 2 AND w = 3");
        match e {
            Expr::Binary {
                op: BinaryOp::Or,
                right,
                ..
            } => match *right {
                Expr::Binary {
                    op: BinaryOp::And, ..
                } => {}
                other => panic!("expected AND on the right, got {other:?}"),
            },
            other => panic!("expected OR at top, got {other:?}"),
        }
    }

    #[test]
    fn parens_override_precedence() {
        let e = expr("(u = 1 OR v = 2) AND w = 3");
        match e {
            Expr::Binary {
                op: BinaryOp::And,
                left,
                ..
            } => match *left {
                Expr::Binary {
                    op: BinaryOp::Or, ..
                } => {}
                other => panic!("expected OR inside, got {other:?}"),
            },
            other => panic!("expected AND at top, got {other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        // 1 + 2 * 3 parses as 1 + (2 * 3)
        let e = expr("u = 1 + 2 * 3");
        match e {
            Expr::Binary { right, .. } => match *right {
                Expr::Binary {
                    op: BinaryOp::Plus,
                    right: mul,
                    ..
                } => match *mul {
                    Expr::Binary {
                        op: BinaryOp::Mul, ..
                    } => {}
                    other => panic!("expected Mul, got {other:?}"),
                },
                other => panic!("expected Plus, got {other:?}"),
            },
            other => panic!("expected Eq, got {other:?}"),
        }
    }

    #[test]
    fn between_and_not_between() {
        let e = expr("u BETWEEN 1 AND 8");
        assert!(matches!(e, Expr::Between { negated: false, .. }));
        let e = expr("u NOT BETWEEN 1 AND 8");
        assert!(matches!(e, Expr::Between { negated: true, .. }));
    }

    #[test]
    fn between_binds_tighter_than_and() {
        let e = expr("u BETWEEN 1 AND 8 AND v = 2");
        match e {
            Expr::Binary {
                op: BinaryOp::And,
                left,
                ..
            } => assert!(matches!(*left, Expr::Between { .. })),
            other => panic!("expected AND at top, got {other:?}"),
        }
    }

    #[test]
    fn in_list_and_subquery() {
        let e = expr("class IN ('star', 'galaxy')");
        assert!(matches!(e, Expr::InList { ref list, .. } if list.len() == 2));
        let e = expr("u IN (SELECT u FROM S)");
        assert!(matches!(e, Expr::InSubquery { negated: false, .. }));
        let e = expr("u NOT IN (SELECT u FROM S)");
        assert!(matches!(e, Expr::InSubquery { negated: true, .. }));
    }

    #[test]
    fn exists_and_not_exists() {
        let e = expr("EXISTS (SELECT * FROM S WHERE S.u = T.u)");
        assert!(matches!(e, Expr::Exists { negated: false, .. }));
        let e = expr("NOT EXISTS (SELECT * FROM S)");
        // NOT wraps the Exists node at the unary level.
        match e {
            Expr::Unary {
                op: UnaryOp::Not,
                expr,
            } => assert!(matches!(*expr, Expr::Exists { .. })),
            other => panic!("expected NOT(EXISTS), got {other:?}"),
        }
    }

    #[test]
    fn quantified_comparisons() {
        let e = expr("u > ANY (SELECT u FROM S)");
        assert!(matches!(
            e,
            Expr::Quantified {
                quantifier: Quantifier::Any,
                op: BinaryOp::Gt,
                ..
            }
        ));
        let e = expr("u <= ALL (SELECT u FROM S)");
        assert!(matches!(
            e,
            Expr::Quantified {
                quantifier: Quantifier::All,
                ..
            }
        ));
        let e = expr("u = SOME (SELECT u FROM S)");
        assert!(matches!(
            e,
            Expr::Quantified {
                quantifier: Quantifier::Any,
                ..
            }
        ));
    }

    #[test]
    fn scalar_subquery() {
        let e = expr("u = (SELECT s FROM S WHERE S.v = 12)");
        match e {
            Expr::Binary { right, .. } => {
                assert!(matches!(*right, Expr::ScalarSubquery(_)))
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negative_literals_fold() {
        let e = expr("dec >= -90");
        match e {
            Expr::Binary { right, .. } => {
                assert_eq!(*right, Expr::Literal(Literal::Int(-90)))
            }
            other => panic!("unexpected {other:?}"),
        }
        let e = expr("z > -0.98");
        match e {
            Expr::Binary { right, .. } => {
                assert_eq!(*right, Expr::Literal(Literal::Float(-0.98)))
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn huge_integers_degrade_to_float() {
        // specobjid values exceed i64 in some user queries.
        let e = expr("specobjid <= 99999999999999999999");
        match e {
            Expr::Binary { right, .. } => {
                assert!(matches!(*right, Expr::Literal(Literal::Float(_))))
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn aggregates_parse() {
        let q = Parser::parse_statement(
            "SELECT u, COUNT(*), SUM(v), AVG(DISTINCT w) FROM T GROUP BY u",
        )
        .unwrap();
        let agg_count = q
            .projection
            .iter()
            .filter(|item| {
                matches!(
                    item,
                    SelectItem::Expr {
                        expr: Expr::Aggregate { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(agg_count, 3);
    }

    #[test]
    fn udf_calls_parse_as_functions() {
        let e = expr("dbo.fGetNearbyObjEq(185.0, -0.5, 1.0) = 1");
        match e {
            Expr::Binary { left, .. } => match *left {
                Expr::Function { ref name, ref args } => {
                    assert_eq!(name, "dbo.fGetNearbyObjEq");
                    assert_eq!(args.len(), 3);
                }
                ref other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn case_expression() {
        let e = expr("u = CASE WHEN v > 0 THEN 1 ELSE 0 END");
        match e {
            Expr::Binary { right, .. } => match *right {
                Expr::Case {
                    ref branches,
                    ref else_result,
                    ..
                } => {
                    assert_eq!(branches.len(), 1);
                    assert!(else_result.is_some());
                }
                ref other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cast_with_type_arguments() {
        let e = expr("CAST(z AS numeric(10,3)) > 0.5");
        match e {
            Expr::Binary { left, .. } => match *left {
                Expr::Cast { ref data_type, .. } => {
                    assert!(data_type.starts_with("numeric("));
                }
                ref other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn is_null_predicates() {
        assert!(matches!(
            expr("z IS NULL"),
            Expr::IsNull { negated: false, .. }
        ));
        assert!(matches!(
            expr("z IS NOT NULL"),
            Expr::IsNull { negated: true, .. }
        ));
    }

    #[test]
    fn like_predicates() {
        assert!(matches!(
            expr("name LIKE 'NGC%'"),
            Expr::Like { negated: false, .. }
        ));
        assert!(matches!(
            expr("name NOT LIKE 'NGC%'"),
            Expr::Like { negated: true, .. }
        ));
    }

    #[test]
    fn double_not_parses() {
        let e = expr("NOT NOT u = 1");
        match e {
            Expr::Unary {
                op: UnaryOp::Not,
                expr,
            } => assert!(matches!(*expr, Expr::Unary { .. })),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn expression_nesting_depth_is_capped() {
        use crate::error::ParseErrorKind;
        use crate::parser::MAX_EXPR_DEPTH;
        // N parentheses around an atom cost N + 1 expression levels (the
        // WHERE clause itself is level one), so the deepest accepted
        // nesting is exactly MAX_EXPR_DEPTH - 1 parentheses.
        let nested = |parens: usize| {
            format!(
                "SELECT * FROM T WHERE {}u = 1{}",
                "(".repeat(parens),
                ")".repeat(parens)
            )
        };
        Parser::parse_statement(&nested(MAX_EXPR_DEPTH - 1))
            .expect("nesting at the limit must parse");
        let err = Parser::parse_statement(&nested(MAX_EXPR_DEPTH)).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::Unsupported);
        assert!(err.message.contains("nesting too deep"), "{}", err.message);
        // Far past the limit: still a clean error, never a stack overflow.
        let err = Parser::parse_statement(&nested(20_000)).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::Unsupported);
    }

    #[test]
    fn deeply_nested_subqueries_hit_depth_cap() {
        let mut sql = String::from("SELECT * FROM T WHERE u IN ");
        for _ in 0..40 {
            sql.push_str("(SELECT u FROM S WHERE u IN ");
        }
        sql.push_str("(SELECT u FROM R)");
        for _ in 0..40 {
            sql.push(')');
        }
        let err = Parser::parse_statement(&sql).unwrap_err();
        assert!(err.message.contains("nesting too deep"));
    }
}

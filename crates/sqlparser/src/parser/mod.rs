//! Recursive-descent parser for the supported SQL subset.
//!
//! Entry points are [`Parser::parse_statement`] (classifies non-`SELECT`
//! statements per Section 6.1 of the paper) and [`Parser::parse_select`].

mod expr;

use crate::ast::*;
use crate::error::{ParseError, ParseResult};
use crate::lexer::Lexer;
use crate::token::{Keyword, Span, SpannedToken, Token};

/// Maximum subquery nesting depth accepted before bailing out. The deepest
/// query in the SkyServer log nests three levels; the cap guards against
/// pathological inputs in the error-query portion of the log.
const MAX_DEPTH: usize = 32;

/// Maximum *expression* recursion depth (each nested parenthesis, CASE,
/// or operand recursion counts one level). The recursive-descent
/// expression grammar otherwise consumes a stack frame chain per
/// parenthesis, so a machine-generated `((((…))))` in the error portion
/// of the log could overflow the stack instead of failing cleanly. Depth
/// overruns are reported as [`ParseErrorKind::Unsupported`]
/// (`crate::error::ParseErrorKind`), matching the pipeline's taxonomy for
/// recognised-but-rejected constructs. The limit is sized so the full
/// recursion fits comfortably inside a 2 MiB test-thread stack even in
/// debug builds (~9 frames per level); real log queries nest well under
/// ten levels. Pinned by `expression_nesting_depth_is_capped`.
pub const MAX_EXPR_DEPTH: usize = 64;

/// Token-cursor based parser.
pub struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
    depth: usize,
    expr_depth: usize,
}

impl Parser {
    /// Lexes and wraps `sql` in a parser.
    pub fn new(sql: &str) -> ParseResult<Self> {
        Ok(Parser {
            tokens: Lexer::tokenize(sql)?,
            pos: 0,
            depth: 0,
            expr_depth: 0,
        })
    }

    /// Parses a full statement: a single `SELECT`, with non-SELECT statement
    /// kinds reported as [`ParseErrorKind::NotSelect`](crate::error::ParseErrorKind).
    pub fn parse_statement(sql: &str) -> ParseResult<Select> {
        let mut p = Parser::new(sql)?;
        if let Some(kw) = p.peek().keyword() {
            match kw {
                Keyword::Create
                | Keyword::Declare
                | Keyword::Insert
                | Keyword::Update
                | Keyword::Delete
                | Keyword::Drop
                | Keyword::Set => {
                    return Err(ParseError::not_select(
                        format!("statement starts with {}", kw.as_str()),
                        p.peek_span(),
                    ));
                }
                _ => {}
            }
        }
        let select = p.parse_select()?;
        // Set operations are recognised but unsupported by the pipeline.
        if let Some(kw) = p.peek().keyword() {
            if matches!(kw, Keyword::Union | Keyword::Except | Keyword::Intersect) {
                return Err(ParseError::unsupported(
                    format!("set operation {}", kw.as_str()),
                    p.peek_span(),
                ));
            }
        }
        p.eat(&Token::Semicolon);
        p.expect_eof()?;
        Ok(select)
    }

    // ---- cursor primitives -------------------------------------------------

    pub(crate) fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].token
    }

    pub(crate) fn peek_ahead(&self, n: usize) -> &Token {
        let idx = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[idx].token
    }

    pub(crate) fn peek_span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    pub(crate) fn advance(&mut self) -> Token {
        let tok = self.tokens[self.pos.min(self.tokens.len() - 1)].token.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        tok
    }

    /// Consumes the next token if it equals `tok`.
    pub(crate) fn eat(&mut self, tok: &Token) -> bool {
        if self.peek() == tok {
            self.advance();
            true
        } else {
            false
        }
    }

    /// Consumes the next token if it is keyword `kw`.
    pub(crate) fn eat_keyword(&mut self, kw: Keyword) -> bool {
        if self.peek().keyword() == Some(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    pub(crate) fn expect(&mut self, tok: &Token) -> ParseResult<()> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(ParseError::syntax(
                format!("expected {tok}, found {}", self.peek()),
                self.peek_span(),
            ))
        }
    }

    pub(crate) fn expect_keyword(&mut self, kw: Keyword) -> ParseResult<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(ParseError::syntax(
                format!("expected {}, found {}", kw.as_str(), self.peek()),
                self.peek_span(),
            ))
        }
    }

    fn expect_eof(&mut self) -> ParseResult<()> {
        if self.peek() == &Token::Eof {
            Ok(())
        } else {
            Err(ParseError::syntax(
                format!("unexpected trailing input: {}", self.peek()),
                self.peek_span(),
            ))
        }
    }

    /// Consumes an identifier (or a keyword allowed in identifier position).
    pub(crate) fn expect_ident(&mut self) -> ParseResult<String> {
        self.expect_ident_spanned().map(|(value, _)| value)
    }

    /// Like [`expect_ident`](Self::expect_ident), but also returns the
    /// source span of the consumed token so AST nodes can be anchored.
    pub(crate) fn expect_ident_spanned(&mut self) -> ParseResult<(String, Span)> {
        let span = self.peek_span();
        match self.peek().clone() {
            Token::Ident { value, .. } => {
                self.advance();
                Ok((value, span))
            }
            // A handful of our keywords are legal T-SQL identifiers and do
            // appear as column/table names in logs.
            Token::Keyword(
                kw @ (Keyword::Values | Keyword::Percent | Keyword::Count | Keyword::Min
                | Keyword::Max | Keyword::Sum | Keyword::Avg),
            ) => {
                self.advance();
                Ok((kw.as_str().to_ascii_lowercase(), span))
            }
            other => Err(ParseError::syntax(
                format!("expected identifier, found {other}"),
                span,
            )),
        }
    }

    // ---- SELECT ------------------------------------------------------------

    /// Parses a `SELECT` statement (without trailing set operations).
    pub fn parse_select(&mut self) -> ParseResult<Select> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(ParseError::syntax(
                "query nesting too deep",
                self.peek_span(),
            ));
        }
        let result = self.parse_select_inner();
        self.depth -= 1;
        result
    }

    fn parse_select_inner(&mut self) -> ParseResult<Select> {
        self.expect_keyword(Keyword::Select)?;

        let distinct = if self.eat_keyword(Keyword::Distinct) {
            true
        } else {
            // `SELECT ALL` is the explicit default.
            self.eat_keyword(Keyword::All);
            false
        };

        let mut limit = None;
        if self.eat_keyword(Keyword::Top) {
            let rows = self.parse_u64("TOP")?;
            let percent = self.eat_keyword(Keyword::Percent);
            limit = Some(RowLimit {
                rows,
                percent,
                syntax: LimitSyntax::Top,
            });
        }

        let projection = self.parse_projection()?;

        let into = if self.eat_keyword(Keyword::Into) {
            Some(self.parse_object_name()?)
        } else {
            None
        };

        let from = if self.eat_keyword(Keyword::From) {
            self.parse_from()?
        } else {
            Vec::new()
        };

        let selection = if self.eat_keyword(Keyword::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_keyword(Keyword::Group) {
            self.expect_keyword(Keyword::By)?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }

        let having = if self.eat_keyword(Keyword::Having) {
            Some(self.parse_expr()?)
        } else {
            None
        };

        let mut order_by = Vec::new();
        if self.eat_keyword(Keyword::Order) {
            self.expect_keyword(Keyword::By)?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_keyword(Keyword::Desc) {
                    true
                } else {
                    self.eat_keyword(Keyword::Asc);
                    false
                };
                order_by.push(OrderByItem { expr, desc });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }

        if self.eat_keyword(Keyword::Limit) {
            let rows = self.parse_u64("LIMIT")?;
            if self.eat_keyword(Keyword::Offset) {
                self.parse_u64("OFFSET")?; // parsed, irrelevant downstream
            } else if self.eat(&Token::Comma) {
                // MySQL `LIMIT offset, rows`.
                self.parse_u64("LIMIT")?;
            }
            if limit.is_some() {
                return Err(ParseError::syntax(
                    "both TOP and LIMIT specified",
                    self.peek_span(),
                ));
            }
            limit = Some(RowLimit {
                rows,
                percent: false,
                syntax: LimitSyntax::Limit,
            });
        }

        Ok(Select {
            distinct,
            projection,
            from,
            selection,
            group_by,
            having,
            order_by,
            limit,
            into,
        })
    }

    fn parse_u64(&mut self, clause: &str) -> ParseResult<u64> {
        // T-SQL allows `TOP (n)` with parentheses.
        let parenthesised = self.eat(&Token::LParen);
        let value = match self.peek().clone() {
            Token::Number(n) => {
                self.advance();
                n.parse::<u64>().map_err(|_| {
                    ParseError::syntax(
                        format!("{clause} expects a non-negative integer, got {n}"),
                        self.peek_span(),
                    )
                })
            }
            other => Err(ParseError::syntax(
                format!("{clause} expects a number, found {other}"),
                self.peek_span(),
            )),
        }?;
        if parenthesised {
            self.expect(&Token::RParen)?;
        }
        Ok(value)
    }

    fn parse_projection(&mut self) -> ParseResult<Vec<SelectItem>> {
        let mut items = Vec::new();
        loop {
            items.push(self.parse_select_item()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn parse_select_item(&mut self) -> ParseResult<SelectItem> {
        if self.eat(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `T.*`
        if let Token::Ident { value, .. } = self.peek().clone() {
            if self.peek_ahead(1) == &Token::Dot && self.peek_ahead(2) == &Token::Star {
                self.advance();
                self.advance();
                self.advance();
                return Ok(SelectItem::QualifiedWildcard(value));
            }
        }
        let expr = self.parse_expr()?;
        let alias = self.parse_optional_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_optional_alias(&mut self) -> ParseResult<Option<String>> {
        if self.eat_keyword(Keyword::As) {
            return Ok(Some(self.expect_ident()?));
        }
        // Bare alias: an identifier not starting a new clause.
        if let Token::Ident { value, .. } = self.peek().clone() {
            self.advance();
            return Ok(Some(value));
        }
        Ok(None)
    }

    // ---- FROM --------------------------------------------------------------

    fn parse_from(&mut self) -> ParseResult<Vec<TableWithJoins>> {
        let mut out = Vec::new();
        loop {
            out.push(self.parse_table_with_joins()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(out)
    }

    fn parse_table_with_joins(&mut self) -> ParseResult<TableWithJoins> {
        let base = self.parse_table_factor()?;
        let mut joins = Vec::new();
        loop {
            let natural = self.eat_keyword(Keyword::Natural);
            let op = if self.eat_keyword(Keyword::Join) {
                JoinOperator::Inner
            } else if self.eat_keyword(Keyword::Inner) {
                self.expect_keyword(Keyword::Join)?;
                JoinOperator::Inner
            } else if self.eat_keyword(Keyword::Left) {
                self.eat_keyword(Keyword::Outer);
                self.expect_keyword(Keyword::Join)?;
                JoinOperator::LeftOuter
            } else if self.eat_keyword(Keyword::Right) {
                self.eat_keyword(Keyword::Outer);
                self.expect_keyword(Keyword::Join)?;
                JoinOperator::RightOuter
            } else if self.eat_keyword(Keyword::Full) {
                self.eat_keyword(Keyword::Outer);
                self.expect_keyword(Keyword::Join)?;
                JoinOperator::FullOuter
            } else if self.eat_keyword(Keyword::Cross) {
                self.expect_keyword(Keyword::Join)?;
                JoinOperator::Cross
            } else {
                if natural {
                    return Err(ParseError::syntax(
                        "NATURAL must be followed by a join",
                        self.peek_span(),
                    ));
                }
                break;
            };
            if natural && !matches!(op, JoinOperator::Inner) {
                return Err(ParseError::unsupported(
                    "NATURAL is only supported with INNER JOIN",
                    self.peek_span(),
                ));
            }
            let factor = self.parse_table_factor()?;
            let constraint = if natural {
                JoinConstraint::Natural
            } else if self.eat_keyword(Keyword::On) {
                JoinConstraint::On(self.parse_expr()?)
            } else if matches!(op, JoinOperator::Cross) {
                JoinConstraint::None
            } else {
                return Err(ParseError::syntax(
                    "expected ON condition for join",
                    self.peek_span(),
                ));
            };
            joins.push(Join {
                op,
                factor,
                constraint,
            });
        }
        Ok(TableWithJoins { base, joins })
    }

    fn parse_table_factor(&mut self) -> ParseResult<TableFactor> {
        if self.peek() == &Token::LParen {
            // Either a derived table or a parenthesised factor.
            if self.peek_ahead(1).keyword() == Some(Keyword::Select) {
                self.advance(); // (
                let subquery = Box::new(self.parse_select()?);
                self.expect(&Token::RParen)?;
                self.eat_keyword(Keyword::As);
                let alias = match self.peek() {
                    Token::Ident { .. } => Some(self.expect_ident()?),
                    _ => None,
                };
                return Ok(TableFactor::Derived { subquery, alias });
            }
            self.advance(); // (
            let inner = self.parse_table_factor()?;
            self.expect(&Token::RParen)?;
            return Ok(inner);
        }
        let name = self.parse_object_name()?;
        // Table-valued functions (SkyServer UDFs like `dbo.fGetNearbyObjEq`)
        // are recognised but not supported — the paper's parser rejects
        // them too, and the coverage experiment counts them separately.
        if self.peek() == &Token::LParen {
            return Err(ParseError::unsupported(
                format!("table-valued function {name}"),
                self.peek_span(),
            ));
        }
        let alias = if self.eat_keyword(Keyword::As) {
            Some(self.expect_ident()?)
        } else if let Token::Ident { value, .. } = self.peek().clone() {
            self.advance();
            Some(value)
        } else {
            None
        };
        Ok(TableFactor::Table { name, alias })
    }

    pub(crate) fn parse_object_name(&mut self) -> ParseResult<ObjectName> {
        let (first, mut span) = self.expect_ident_spanned()?;
        let mut parts = vec![first];
        while self.peek() == &Token::Dot {
            self.advance();
            // `BESTDR9..PhotoObjAll` has an empty schema part.
            if self.peek() == &Token::Dot {
                self.advance();
                parts.push(String::new());
            }
            let (part, part_span) = self.expect_ident_spanned()?;
            parts.push(part);
            span = span.merge(part_span);
        }
        Ok(ObjectName { parts, span })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ParseErrorKind;

    fn sel(sql: &str) -> Select {
        Parser::parse_statement(sql).unwrap_or_else(|e| panic!("{sql}: {e}"))
    }

    #[test]
    fn parses_minimal_select() {
        let q = sel("SELECT * FROM T");
        assert_eq!(q.projection, vec![SelectItem::Wildcard]);
        assert_eq!(q.from.len(), 1);
        assert!(q.selection.is_none());
    }

    #[test]
    fn parses_projection_aliases() {
        let q = sel("SELECT u AS x, v y, T.* FROM T");
        assert_eq!(q.projection.len(), 3);
        match &q.projection[2] {
            SelectItem::QualifiedWildcard(t) => assert_eq!(t, "T"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_top_and_limit() {
        let q = sel("SELECT TOP 10 * FROM T");
        assert_eq!(
            q.limit,
            Some(RowLimit {
                rows: 10,
                percent: false,
                syntax: LimitSyntax::Top
            })
        );
        let q = sel("SELECT objid FROM Galaxies LIMIT 10");
        assert!(q.uses_mysql_dialect());
        let q = sel("SELECT TOP 5 PERCENT * FROM T");
        assert!(q.limit.unwrap().percent);
    }

    #[test]
    fn rejects_top_and_limit_together() {
        let err = Parser::parse_statement("SELECT TOP 5 * FROM T LIMIT 3").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::Syntax);
    }

    #[test]
    fn parses_where_group_having_order() {
        let q = sel(
            "SELECT u, SUM(v) FROM T WHERE v < 3 GROUP BY u HAVING SUM(v) > 5 ORDER BY u DESC",
        );
        assert!(q.selection.is_some());
        assert_eq!(q.group_by.len(), 1);
        assert!(q.having.is_some());
        assert!(q.order_by[0].desc);
    }

    #[test]
    fn parses_all_join_flavours() {
        for (sql, op) in [
            ("SELECT * FROM T JOIN S ON T.u = S.u", JoinOperator::Inner),
            (
                "SELECT * FROM T INNER JOIN S ON T.u = S.u",
                JoinOperator::Inner,
            ),
            (
                "SELECT * FROM T LEFT JOIN S ON T.u = S.u",
                JoinOperator::LeftOuter,
            ),
            (
                "SELECT * FROM T LEFT OUTER JOIN S ON T.u = S.u",
                JoinOperator::LeftOuter,
            ),
            (
                "SELECT * FROM T RIGHT OUTER JOIN S ON T.u = S.u",
                JoinOperator::RightOuter,
            ),
            (
                "SELECT * FROM T FULL OUTER JOIN S ON (T.u = S.u)",
                JoinOperator::FullOuter,
            ),
            ("SELECT * FROM T CROSS JOIN S", JoinOperator::Cross),
        ] {
            let q = sel(sql);
            assert_eq!(q.from[0].joins[0].op, op, "{sql}");
        }
        let q = sel("SELECT * FROM T NATURAL JOIN S");
        assert_eq!(q.from[0].joins[0].constraint, JoinConstraint::Natural);
    }

    #[test]
    fn parses_comma_joins_and_aliases() {
        let q = sel("SELECT * FROM T a, S AS b");
        assert_eq!(q.from.len(), 2);
        assert_eq!(q.from[0].base.scope_name(), Some("a"));
        assert_eq!(q.from[1].base.scope_name(), Some("b"));
    }

    #[test]
    fn parses_derived_table() {
        let q = sel("SELECT * FROM (SELECT u FROM T WHERE u > 1) AS sub");
        match &q.from[0].base {
            TableFactor::Derived { alias, .. } => assert_eq!(alias.as_deref(), Some("sub")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_compound_object_names() {
        let q = sel("SELECT * FROM BESTDR9..PhotoObjAll");
        match &q.from[0].base {
            TableFactor::Table { name, .. } => {
                assert_eq!(name.parts, vec!["BESTDR9", "", "PhotoObjAll"]);
                assert_eq!(name.base_name(), "PhotoObjAll");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn classifies_non_select_statements() {
        for sql in [
            "CREATE TABLE t (x int)",
            "DECLARE @x int",
            "INSERT INTO t VALUES (1)",
            "DROP TABLE t",
        ] {
            let err = Parser::parse_statement(sql).unwrap_err();
            assert_eq!(err.kind, ParseErrorKind::NotSelect, "{sql}");
        }
    }

    #[test]
    fn classifies_union_as_unsupported() {
        let err = Parser::parse_statement("SELECT u FROM T UNION SELECT u FROM S").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::Unsupported);
    }

    #[test]
    fn rejects_trailing_garbage() {
        let err = Parser::parse_statement("SELECT * FROM T garbage garbage").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::Syntax);
    }

    #[test]
    fn parses_select_into() {
        let q = sel("SELECT * INTO #mytmp FROM T WHERE u > 2");
        assert_eq!(q.into.unwrap().base_name(), "#mytmp");
    }

    #[test]
    fn accepts_trailing_semicolon() {
        sel("SELECT * FROM T;");
    }

    #[test]
    fn parses_parenthesised_top() {
        let q = sel("SELECT TOP (25) * FROM T");
        assert_eq!(q.limit.unwrap().rows, 25);
        let err = Parser::parse_statement("SELECT TOP (25 * FROM T").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::Syntax);
    }
}

//! Pretty-printing of AST nodes back to SQL text.
//!
//! The printer emits canonical SQL that re-parses to an equal AST
//! (`parse(display(ast)) == ast`), which the property tests rely on, and
//! which the intermediate-format machinery in `aa-core` uses to render
//! transformed queries for reports.

use crate::ast::*;
use std::fmt;

impl fmt::Display for ObjectName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, part) in self.parts.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{part}")?;
        }
        Ok(())
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(q) = &self.qualifier {
            write!(f, "{q}.")?;
        }
        write!(f, "{}", self.column)
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    // Keep a decimal point so the literal re-parses as Float.
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Literal::String(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Literal::Null => write!(f, "NULL"),
        }
    }
}

impl BinaryOp {
    /// SQL spelling of the operator.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Eq => "=",
            BinaryOp::Neq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::Plus => "+",
            BinaryOp::Minus => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
        }
    }

    /// Binding strength used by the printer to decide where parentheses are
    /// required. Larger binds tighter.
    fn precedence(&self) -> u8 {
        match self {
            BinaryOp::Or => 1,
            BinaryOp::And => 2,
            BinaryOp::Eq
            | BinaryOp::Neq
            | BinaryOp::Lt
            | BinaryOp::LtEq
            | BinaryOp::Gt
            | BinaryOp::GtEq => 4,
            BinaryOp::Plus | BinaryOp::Minus => 5,
            BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => 6,
        }
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// Precedence of an expression node, for parenthesisation.
fn expr_precedence(e: &Expr) -> u8 {
    match e {
        Expr::Binary { op, .. } => op.precedence(),
        Expr::Unary {
            op: UnaryOp::Not, ..
        } => 3,
        // BETWEEN/IN/LIKE/IS sit at comparison level.
        Expr::Between { .. }
        | Expr::InList { .. }
        | Expr::InSubquery { .. }
        | Expr::Quantified { .. }
        | Expr::IsNull { .. }
        | Expr::Like { .. } => 4,
        _ => 10,
    }
}

/// Writes `child` parenthesised if it binds looser than `parent_prec`.
fn write_child(f: &mut fmt::Formatter<'_>, child: &Expr, parent_prec: u8) -> fmt::Result {
    if expr_precedence(child) < parent_prec {
        write!(f, "({child})")
    } else {
        write!(f, "{child}")
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(l) => write!(f, "{l}"),
            Expr::Variable(v) => write!(f, "@{v}"),
            Expr::Unary { op, expr } => match op {
                UnaryOp::Not => {
                    write!(f, "NOT ")?;
                    write_child(f, expr, 3 + 1)
                }
                UnaryOp::Neg => {
                    write!(f, "-")?;
                    write_child(f, expr, 7)
                }
                UnaryOp::Plus => {
                    write!(f, "+")?;
                    write_child(f, expr, 7)
                }
            },
            Expr::Binary { left, op, right } => {
                let prec = op.precedence();
                write_child(f, left, prec)?;
                write!(f, " {op} ")?;
                // The right child needs parens at *equal* precedence to
                // preserve the tree shape: the parser is left-associative,
                // so `a OR (b OR c)` and `a - (b - c)` must keep their
                // explicit grouping through a round trip.
                if expr_precedence(right) <= prec {
                    write!(f, "({right})")
                } else {
                    write!(f, "{right}")
                }
            }
            Expr::Between {
                expr,
                negated,
                low,
                high,
            } => {
                write_child(f, expr, 5)?;
                if *negated {
                    write!(f, " NOT")?;
                }
                write!(f, " BETWEEN ")?;
                write_child(f, low, 5)?;
                write!(f, " AND ")?;
                write_child(f, high, 5)
            }
            Expr::InList {
                expr,
                negated,
                list,
            } => {
                write_child(f, expr, 5)?;
                if *negated {
                    write!(f, " NOT")?;
                }
                write!(f, " IN (")?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::InSubquery {
                expr,
                negated,
                subquery,
            } => {
                write_child(f, expr, 5)?;
                if *negated {
                    write!(f, " NOT")?;
                }
                write!(f, " IN ({subquery})")
            }
            Expr::Exists { negated, subquery } => {
                if *negated {
                    write!(f, "NOT ")?;
                }
                write!(f, "EXISTS ({subquery})")
            }
            Expr::Quantified {
                left,
                op,
                quantifier,
                subquery,
            } => {
                write_child(f, left, 5)?;
                let q = match quantifier {
                    Quantifier::Any => "ANY",
                    Quantifier::All => "ALL",
                };
                write!(f, " {op} {q} ({subquery})")
            }
            Expr::ScalarSubquery(subquery) => write!(f, "({subquery})"),
            Expr::IsNull { expr, negated } => {
                write_child(f, expr, 5)?;
                write!(f, " IS {}NULL", if *negated { "NOT " } else { "" })
            }
            Expr::Like {
                expr,
                negated,
                pattern,
            } => {
                write_child(f, expr, 5)?;
                if *negated {
                    write!(f, " NOT")?;
                }
                write!(f, " LIKE ")?;
                write_child(f, pattern, 5)
            }
            Expr::Aggregate {
                func,
                arg,
                distinct,
            } => {
                write!(f, "{}(", func.name())?;
                if *distinct {
                    write!(f, "DISTINCT ")?;
                }
                match arg {
                    Some(a) => write!(f, "{a}")?,
                    None => write!(f, "*")?,
                }
                write!(f, ")")
            }
            Expr::Function { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Case {
                operand,
                branches,
                else_result,
            } => {
                write!(f, "CASE")?;
                if let Some(o) = operand {
                    write!(f, " {o}")?;
                }
                for (w, t) in branches {
                    write!(f, " WHEN {w} THEN {t}")?;
                }
                if let Some(e) = else_result {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            Expr::Cast { expr, data_type } => write!(f, "CAST({expr} AS {data_type})"),
        }
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => write!(f, "*"),
            SelectItem::QualifiedWildcard(t) => write!(f, "{t}.*"),
            SelectItem::Expr { expr, alias } => {
                write!(f, "{expr}")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for TableFactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableFactor::Table { name, alias } => {
                write!(f, "{name}")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
            TableFactor::Derived { subquery, alias } => {
                write!(f, "({subquery})")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for TableWithJoins {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.base)?;
        for join in &self.joins {
            match (&join.op, &join.constraint) {
                (JoinOperator::Cross, JoinConstraint::None) => {
                    write!(f, " CROSS JOIN {}", join.factor)?
                }
                (op, JoinConstraint::Natural) => {
                    debug_assert_eq!(*op, JoinOperator::Inner);
                    write!(f, " NATURAL JOIN {}", join.factor)?;
                }
                (op, JoinConstraint::On(cond)) => {
                    let kw = match op {
                        JoinOperator::Inner => "INNER JOIN",
                        JoinOperator::LeftOuter => "LEFT OUTER JOIN",
                        JoinOperator::RightOuter => "RIGHT OUTER JOIN",
                        JoinOperator::FullOuter => "FULL OUTER JOIN",
                        JoinOperator::Cross => "CROSS JOIN",
                    };
                    write!(f, " {kw} {} ON {cond}", join.factor)?;
                }
                (op, JoinConstraint::None) => {
                    let kw = match op {
                        JoinOperator::Cross => "CROSS JOIN",
                        // Shouldn't happen out of the parser; render
                        // something re-parseable anyway.
                        _ => "CROSS JOIN",
                    };
                    write!(f, " {kw} {}", join.factor)?;
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        if let Some(limit) = &self.limit {
            if limit.syntax == LimitSyntax::Top {
                write!(f, "TOP {}", limit.rows)?;
                if limit.percent {
                    write!(f, " PERCENT")?;
                }
                write!(f, " ")?;
            }
        }
        for (i, item) in self.projection.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        if let Some(into) = &self.into {
            write!(f, " INTO {into}")?;
        }
        if !self.from.is_empty() {
            write!(f, " FROM ")?;
            for (i, t) in self.from.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{t}")?;
            }
        }
        if let Some(w) = &self.selection {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", o.expr)?;
                if o.desc {
                    write!(f, " DESC")?;
                }
            }
        }
        if let Some(limit) = &self.limit {
            if limit.syntax == LimitSyntax::Limit {
                write!(f, " LIMIT {}", limit.rows)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::Parser;

    /// Round-trip helper: parse, print, re-parse, and require equality.
    fn round_trip(sql: &str) {
        let ast = Parser::parse_statement(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let printed = ast.to_string();
        let reparsed = Parser::parse_statement(&printed)
            .unwrap_or_else(|e| panic!("printed `{printed}` failed to parse: {e}"));
        assert_eq!(ast, reparsed, "round trip changed AST for `{sql}` -> `{printed}`");
    }

    #[test]
    fn round_trips_representative_queries() {
        for sql in [
            "SELECT * FROM T",
            "SELECT u FROM T WHERE u >= 1 AND u <= 8 AND s > 5",
            "SELECT * FROM T WHERE (T.u <= 5 OR T.u >= 10) AND T.v <= 5",
            "SELECT * FROM T WHERE u BETWEEN 1 AND 8",
            "SELECT * FROM T WHERE NOT (T.u > 5 AND T.v <= 10)",
            "SELECT * FROM T FULL OUTER JOIN S ON T.u = S.u",
            "SELECT * FROM T RIGHT OUTER JOIN S ON T.u = S.u",
            "SELECT * FROM T NATURAL JOIN S",
            "SELECT T.u, SUM(T.v) FROM T GROUP BY T.u HAVING SUM(T.v) > 10",
            "SELECT * FROM T WHERE T.u > 5 AND EXISTS (SELECT * FROM S WHERE S.u = T.u AND S.v < 3)",
            "SELECT * FROM T WHERE u IN (SELECT u FROM S)",
            "SELECT * FROM T WHERE class IN ('star', 'galaxy', 'qso')",
            "SELECT * FROM T WHERE u > ANY (SELECT u FROM S)",
            "SELECT * FROM T WHERE u = (SELECT s FROM S WHERE S.v = 12)",
            "SELECT TOP 10 ra, dec FROM PhotoObjAll WHERE ra <= 210.0 AND dec <= 10.0 ORDER BY ra",
            "SELECT objid FROM Galaxies LIMIT 10",
            "SELECT DISTINCT class FROM SpecObjAll",
            "SELECT COUNT(*) FROM T",
            "SELECT u, CASE WHEN v > 0 THEN 1 ELSE 0 END FROM T",
            "SELECT * FROM (SELECT u FROM T WHERE u > 1) AS sub WHERE sub.u < 5",
            "SELECT * FROM T WHERE z IS NOT NULL",
            "SELECT * FROM T WHERE name LIKE 'NGC%'",
            "SELECT * FROM T WHERE u = 1 OR v = 2 AND w = 3",
            "SELECT * FROM T WHERE (u = 1 OR v = 2) AND w = 3",
            "SELECT * FROM T WHERE dec >= -90 AND dec <= -50.5",
            "SELECT * FROM BESTDR9..PhotoObjAll WHERE ra < 1",
        ] {
            round_trip(sql);
        }
    }

    #[test]
    fn printed_sql_is_canonical() {
        let ast = Parser::parse_statement("select   u from t where u>=1").unwrap();
        assert_eq!(ast.to_string(), "SELECT u FROM t WHERE u >= 1");
    }
}

//! A hand-written SQL lexer.
//!
//! Supports the lexical features seen in the SkyServer query log:
//!
//! * `--` line comments and `/* ... */` block comments (nesting tolerated),
//! * single-quoted strings with `''` escapes,
//! * bracketed identifiers `[Name]` (T-SQL), double-quoted identifiers, and
//!   backtick identifiers (MySQL dialect statements users paste in),
//! * integer, decimal and scientific-notation number literals,
//! * `@variables` from admin scripts,
//! * the operator set `= <> != < <= > >= + - * / %`.

use crate::error::{ParseError, ParseResult};
use crate::token::{Keyword, Span, SpannedToken, Token};

/// Streaming lexer over a SQL string.
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    /// Lexes the whole input into a token vector terminated by [`Token::Eof`].
    pub fn tokenize(src: &'a str) -> ParseResult<Vec<SpannedToken>> {
        let mut lexer = Lexer::new(src);
        let mut out = Vec::with_capacity(src.len() / 4 + 4);
        loop {
            let tok = lexer.next_token()?;
            let is_eof = tok.token == Token::Eof;
            out.push(tok);
            if is_eof {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_trivia(&mut self) -> ParseResult<()> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                Some(b'-') if self.peek2() == Some(b'-') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    let mut depth = 1usize;
                    while depth > 0 {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                depth -= 1;
                                self.pos += 2;
                            }
                            (Some(b'/'), Some(b'*')) => {
                                depth += 1;
                                self.pos += 2;
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => {
                                return Err(ParseError::syntax(
                                    "unterminated block comment",
                                    Span::new(start, self.pos),
                                ))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Produces the next token (skipping whitespace and comments).
    pub fn next_token(&mut self) -> ParseResult<SpannedToken> {
        self.skip_trivia()?;
        let start = self.pos;
        let Some(b) = self.peek() else {
            return Ok(SpannedToken {
                token: Token::Eof,
                span: Span::new(start, start),
            });
        };

        let token = match b {
            b'\'' => return self.lex_string(start),
            b'[' => return self.lex_bracketed(start),
            b'"' => return self.lex_quoted(start, b'"'),
            b'`' => return self.lex_quoted(start, b'`'),
            b'@' => return self.lex_variable(start),
            b'0'..=b'9' => return self.lex_number(start),
            // `.5` style decimals.
            b'.' if self.peek2().is_some_and(|c| c.is_ascii_digit()) => {
                return self.lex_number(start)
            }
            b',' => {
                self.pos += 1;
                Token::Comma
            }
            b'.' => {
                self.pos += 1;
                Token::Dot
            }
            b'(' => {
                self.pos += 1;
                Token::LParen
            }
            b')' => {
                self.pos += 1;
                Token::RParen
            }
            b'+' => {
                self.pos += 1;
                Token::Plus
            }
            b'-' => {
                self.pos += 1;
                Token::Minus
            }
            b'*' => {
                self.pos += 1;
                Token::Star
            }
            b'/' => {
                self.pos += 1;
                Token::Slash
            }
            b'%' => {
                self.pos += 1;
                Token::Percent
            }
            b';' => {
                self.pos += 1;
                Token::Semicolon
            }
            b'=' => {
                self.pos += 1;
                // Tolerate `==`, which shows up in copy-pasted code.
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                }
                Token::Eq
            }
            b'<' => {
                self.pos += 1;
                match self.peek() {
                    Some(b'=') => {
                        self.pos += 1;
                        Token::LtEq
                    }
                    Some(b'>') => {
                        self.pos += 1;
                        Token::Neq
                    }
                    _ => Token::Lt,
                }
            }
            b'>' => {
                self.pos += 1;
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    Token::GtEq
                } else {
                    Token::Gt
                }
            }
            b'!' => {
                self.pos += 1;
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    Token::Neq
                } else {
                    return Err(ParseError::syntax(
                        "unexpected character '!'",
                        Span::new(start, self.pos),
                    ));
                }
            }
            b if b.is_ascii_alphabetic() || b == b'_' || b == b'#' => {
                return self.lex_word(start)
            }
            other => {
                return Err(ParseError::syntax(
                    format!("unexpected character '{}'", other as char),
                    Span::new(start, start + 1),
                ))
            }
        };
        Ok(SpannedToken {
            token,
            span: Span::new(start, self.pos),
        })
    }

    fn lex_word(&mut self, start: usize) -> ParseResult<SpannedToken> {
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'#' || b == b'$' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let word = &self.src[start..self.pos];
        let token = match Keyword::from_word(word) {
            Some(kw) => Token::Keyword(kw),
            None => Token::Ident {
                value: word.to_string(),
                quoted: false,
            },
        };
        Ok(SpannedToken {
            token,
            span: Span::new(start, self.pos),
        })
    }

    fn lex_number(&mut self, start: usize) -> ParseResult<SpannedToken> {
        let mut seen_dot = false;
        let mut seen_exp = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' if !seen_dot && !seen_exp => {
                    // Don't swallow `1..2` (not valid SQL, but fail later).
                    seen_dot = true;
                    self.pos += 1;
                }
                b'e' | b'E' if !seen_exp => {
                    let next = self.peek2();
                    let is_exp = match next {
                        Some(c) if c.is_ascii_digit() => true,
                        Some(b'+') | Some(b'-') => self
                            .bytes
                            .get(self.pos + 2)
                            .is_some_and(|c| c.is_ascii_digit()),
                        _ => false,
                    };
                    if !is_exp {
                        break;
                    }
                    seen_exp = true;
                    self.pos += 1; // e
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        let text = &self.src[start..self.pos];
        Ok(SpannedToken {
            token: Token::Number(text.to_string()),
            span: Span::new(start, self.pos),
        })
    }

    fn lex_string(&mut self, start: usize) -> ParseResult<SpannedToken> {
        debug_assert_eq!(self.peek(), Some(b'\''));
        self.pos += 1;
        let mut value = String::new();
        loop {
            match self.bump() {
                Some(b'\'') => {
                    if self.peek() == Some(b'\'') {
                        value.push('\'');
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                Some(b) => value.push(b as char),
                None => {
                    return Err(ParseError::syntax(
                        "unterminated string literal",
                        Span::new(start, self.pos),
                    ))
                }
            }
        }
        Ok(SpannedToken {
            token: Token::String(value),
            span: Span::new(start, self.pos),
        })
    }

    fn lex_bracketed(&mut self, start: usize) -> ParseResult<SpannedToken> {
        debug_assert_eq!(self.peek(), Some(b'['));
        self.pos += 1;
        let content_start = self.pos;
        while let Some(b) = self.peek() {
            if b == b']' {
                let value = self.src[content_start..self.pos].to_string();
                self.pos += 1;
                return Ok(SpannedToken {
                    token: Token::Ident {
                        value,
                        quoted: true,
                    },
                    span: Span::new(start, self.pos),
                });
            }
            self.pos += 1;
        }
        Err(ParseError::syntax(
            "unterminated bracketed identifier",
            Span::new(start, self.pos),
        ))
    }

    fn lex_variable(&mut self, start: usize) -> ParseResult<SpannedToken> {
        debug_assert_eq!(self.peek(), Some(b'@'));
        self.pos += 1;
        // `@@rowcount`-style globals keep the second `@` in the name.
        if self.peek() == Some(b'@') {
            self.pos += 1;
        }
        let name_start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == name_start {
            return Err(ParseError::syntax(
                "expected variable name after '@'",
                Span::new(start, self.pos),
            ));
        }
        Ok(SpannedToken {
            token: Token::Variable(self.src[name_start..self.pos].to_string()),
            span: Span::new(start, self.pos),
        })
    }

    fn lex_quoted(&mut self, start: usize, quote: u8) -> ParseResult<SpannedToken> {
        debug_assert_eq!(self.peek(), Some(quote));
        self.pos += 1;
        let content_start = self.pos;
        while let Some(b) = self.peek() {
            if b == quote {
                let value = self.src[content_start..self.pos].to_string();
                self.pos += 1;
                return Ok(SpannedToken {
                    token: Token::Ident {
                        value,
                        quoted: true,
                    },
                    span: Span::new(start, self.pos),
                });
            }
            self.pos += 1;
        }
        Err(ParseError::syntax(
            "unterminated quoted identifier",
            Span::new(start, self.pos),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        Lexer::tokenize(src)
            .unwrap()
            .into_iter()
            .map(|t| t.token)
            .collect()
    }

    #[test]
    fn lexes_simple_select() {
        let t = toks("SELECT u FROM T WHERE u >= 1");
        assert_eq!(
            t,
            vec![
                Token::Keyword(Keyword::Select),
                Token::Ident {
                    value: "u".into(),
                    quoted: false
                },
                Token::Keyword(Keyword::From),
                Token::Ident {
                    value: "T".into(),
                    quoted: false
                },
                Token::Keyword(Keyword::Where),
                Token::Ident {
                    value: "u".into(),
                    quoted: false
                },
                Token::GtEq,
                Token::Number("1".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        let t = toks("= <> != < <= > >= + - * / %");
        assert_eq!(
            t,
            vec![
                Token::Eq,
                Token::Neq,
                Token::Neq,
                Token::Lt,
                Token::LtEq,
                Token::Gt,
                Token::GtEq,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
                Token::Percent,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        let t = toks("1 3.25 .5 1e9 6.02e23 1E-3 1237657855534432934");
        let nums: Vec<String> = t
            .into_iter()
            .filter_map(|t| match t {
                Token::Number(n) => Some(n),
                _ => None,
            })
            .collect();
        assert_eq!(
            nums,
            vec![
                "1",
                "3.25",
                ".5",
                "1e9",
                "6.02e23",
                "1E-3",
                "1237657855534432934"
            ]
        );
    }

    #[test]
    fn number_followed_by_ident_does_not_eat_e() {
        // `2east` is nonsense, but `1e` must not swallow a non-exponent.
        let t = toks("1e x");
        assert_eq!(t[0], Token::Number("1".into()));
        assert_eq!(
            t[1],
            Token::Ident {
                value: "e".into(),
                quoted: false
            }
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        let t = toks("'star' 'it''s'");
        assert_eq!(t[0], Token::String("star".into()));
        assert_eq!(t[1], Token::String("it's".into()));
    }

    #[test]
    fn lexes_bracketed_and_quoted_identifiers() {
        let t = toks("[PhotoObjAll] \"dec\" `objid`");
        for (tok, expect) in t.iter().zip(["PhotoObjAll", "dec", "objid"]) {
            assert_eq!(
                tok,
                &Token::Ident {
                    value: expect.into(),
                    quoted: true
                }
            );
        }
    }

    #[test]
    fn skips_comments() {
        let t = toks("SELECT -- trailing\n/* block /* nested */ */ 1");
        assert_eq!(
            t,
            vec![
                Token::Keyword(Keyword::Select),
                Token::Number("1".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn reports_unterminated_string() {
        let err = Lexer::tokenize("SELECT 'oops").unwrap_err();
        assert!(err.message.contains("unterminated string"));
    }

    #[test]
    fn reports_unterminated_comment() {
        let err = Lexer::tokenize("SELECT /* oops").unwrap_err();
        assert!(err.message.contains("block comment"));
    }

    #[test]
    fn lexes_variables() {
        let t = toks("DECLARE @x");
        assert_eq!(t[1], Token::Variable("x".into()));
    }

    #[test]
    fn spans_point_into_source() {
        let src = "SELECT plate FROM SpecObjAll";
        let spanned = Lexer::tokenize(src).unwrap();
        let plate = &spanned[1];
        assert_eq!(&src[plate.span.start..plate.span.end], "plate");
    }
}

//! Error types shared by the lexer and the parser.

use crate::token::Span;
use std::fmt;

/// An error raised while lexing or parsing a SQL statement.
///
/// The paper reports that ~0.54% of the SkyServer log is rejected by the
/// parser (syntax errors, user-defined functions, DDL issued by admins).
/// [`ParseErrorKind`] preserves that taxonomy so the coverage experiment
/// (Section 6.1) can report the same breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub kind: ParseErrorKind,
    pub message: String,
    pub span: Span,
}

/// Classification of parse failures, mirroring Section 6.1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParseErrorKind {
    /// Malformed SQL the grammar cannot accept at all.
    Syntax,
    /// Statements that are syntactically DDL/DML rather than `SELECT`
    /// (`CREATE TABLE`, `DECLARE`, `INSERT`, ...) — issued by administrators
    /// in the real log, and deliberately not handled by the extractor.
    NotSelect,
    /// Constructs the grammar recognises but the pipeline does not support
    /// (e.g. set operations like `UNION`).
    Unsupported,
}

impl ParseError {
    pub fn syntax(message: impl Into<String>, span: Span) -> Self {
        ParseError {
            kind: ParseErrorKind::Syntax,
            message: message.into(),
            span,
        }
    }

    pub fn not_select(message: impl Into<String>, span: Span) -> Self {
        ParseError {
            kind: ParseErrorKind::NotSelect,
            message: message.into(),
            span,
        }
    }

    pub fn unsupported(message: impl Into<String>, span: Span) -> Self {
        ParseError {
            kind: ParseErrorKind::Unsupported,
            message: message.into(),
            span,
        }
    }

    /// Computes the 1-based line and column of the error within `source`.
    pub fn line_col(&self, source: &str) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for (i, ch) in source.char_indices() {
            if i >= self.span.start {
                break;
            }
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            ParseErrorKind::Syntax => "syntax error",
            ParseErrorKind::NotSelect => "not a SELECT statement",
            ParseErrorKind::Unsupported => "unsupported construct",
        };
        write!(f, "{kind}: {} (at byte {})", self.message, self.span.start)
    }
}

impl std::error::Error for ParseError {}

/// Convenient alias used across the crate.
pub type ParseResult<T> = Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_accounts_for_newlines() {
        let src = "SELECT *\nFROM T\nWHERE x ~ 1";
        let err = ParseError::syntax("bad char", Span::new(24, 25));
        assert_eq!(err.line_col(src), (3, 9));
    }

    #[test]
    fn display_includes_kind_and_offset() {
        let err = ParseError::not_select("CREATE TABLE", Span::new(0, 6));
        let shown = err.to_string();
        assert!(shown.contains("not a SELECT"));
        assert!(shown.contains("byte 0"));
    }
}

#![forbid(unsafe_code)]
//! `aa-audit` — the workspace-wide static invariant checker.
//!
//! The repo's invariants — byte-identical replay, bit-exact kernels,
//! hermetic offline builds, panic-free serving, a declared lock order —
//! are enforced dynamically by the chaos and differential suites, which
//! only catch a breach when a seed happens to hit it. This crate checks
//! the *statically decidable* shadow of each invariant on every source
//! file, every CI run:
//!
//! * [`lexer`] — a string/comment/raw-string-aware token scanner (no
//!   parse tree; passes work on token adjacency);
//! * [`codes`] — the frozen `A0xx` registry, mirroring aa-analyze's
//!   `E0xx`/`W0xx` discipline;
//! * [`passes`] — per-file passes `A001`–`A005`;
//! * [`locks`] — the `A007` intraprocedural lock-discipline checker;
//! * [`manifest`] — the `A006` hermetic-dependency check on `Cargo.toml`;
//! * [`config`] — the checked-in `audit.toml` policy;
//! * [`baseline`] — the `audit_baseline.json` ratchet: legacy findings
//!   frozen, new findings fail.
//!
//! Diagnostics reuse `aa-core::analysis` rendering, so audit findings
//! carry the same `CODE [severity] message` + caret snippet shape as
//! query-analysis diagnostics. See DESIGN.md §11.

pub mod baseline;
pub mod codes;
pub mod config;
pub mod lexer;
pub mod locks;
pub mod manifest;
pub mod passes;

pub use baseline::{Baseline, BaselineDiff};
pub use config::{AuditConfig, ConfigError};
pub use locks::LockSite;
pub use passes::{FileCx, Finding};

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Everything one audit run produced.
#[derive(Debug, Default)]
pub struct AuditOutcome {
    /// All findings, sorted by `(path, line, col, code)`.
    pub findings: Vec<Finding>,
    /// Every lock acquisition site seen (`audit --locks`), sorted.
    pub lock_sites: Vec<LockSite>,
    /// Source text per scanned file, for caret rendering.
    pub sources: BTreeMap<String, String>,
    /// How many files were scanned (`.rs` plus manifests).
    pub files_scanned: usize,
}

impl AuditOutcome {
    /// Renders one finding with its caret snippet.
    pub fn render(&self, f: &Finding) -> String {
        match self.sources.get(&f.path) {
            Some(src) => f.render(src),
            None => format!("{}:{}:{}: {} [error] {}", f.path, f.line, f.col, f.code, f.message),
        }
    }
}

/// Runs the full audit over `root` under `config`. Deterministic: files
/// are visited in sorted path order and findings are sorted.
pub fn run_audit(root: &Path, config: &AuditConfig) -> Result<AuditOutcome, String> {
    let mut outcome = AuditOutcome::default();
    let mut rs_files: Vec<PathBuf> = Vec::new();
    let mut manifests: Vec<PathBuf> = vec![root.join("Cargo.toml")];
    for scan_root in &config.scan_roots {
        walk(&root.join(scan_root), &mut rs_files, &mut manifests)?;
    }
    rs_files.sort();
    rs_files.dedup();
    manifests.sort();
    manifests.dedup();

    for file in &rs_files {
        let rel = rel_path(root, file);
        if config.excluded(&rel) {
            continue;
        }
        let src = read(file)?;
        let cx = FileCx::new(&rel, &src);
        outcome.findings.extend(passes::run_file_passes(&cx, config));
        locks::pass_locks(&cx, config, &mut outcome.lock_sites, &mut outcome.findings);
        outcome.sources.insert(rel, src);
        outcome.files_scanned += 1;
    }
    for file in &manifests {
        let rel = rel_path(root, file);
        if config.excluded(&rel) || !file.is_file() {
            continue;
        }
        let src = read(file)?;
        outcome.findings.extend(manifest::audit_manifest(&rel, &src));
        outcome.sources.insert(rel, src);
        outcome.files_scanned += 1;
    }
    outcome
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.code).cmp(&(&b.path, b.line, b.col, b.code)));
    outcome.lock_sites.sort();
    Ok(outcome)
}

/// Recursively collects `.rs` files and `Cargo.toml` manifests under
/// `dir`, in sorted order. Hidden directories and `target/` are skipped.
fn walk(dir: &Path, rs_files: &mut Vec<PathBuf>, manifests: &mut Vec<PathBuf>) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let iter = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut entries: Vec<PathBuf> = Vec::new();
    for entry in iter {
        entries.push(entry.map_err(|e| format!("{}: {e}", dir.display()))?.path());
    }
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name.starts_with('.') || name == "target" {
                continue;
            }
            walk(&path, rs_files, manifests)?;
        } else if name.ends_with(".rs") {
            rs_files.push(path);
        } else if name == "Cargo.toml" {
            manifests.push(path);
        }
    }
    Ok(())
}

fn read(path: &Path) -> Result<String, String> {
    fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))
}

/// Repo-relative `/`-separated path (the form the policy, baseline, and
/// reports all use).
fn rel_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

//! The `A0xx` invariant-code registry.
//!
//! Same contract as the `E0xx`/`W0xx` registry in `aa-analyze`: codes are
//! stable identifiers referenced by the baseline, pinned corpus tests,
//! and DESIGN.md §11, so a code is never renumbered or reused — retired
//! passes keep their number, new passes get new codes.
//!
//! Every `A0xx` finding is `Error` severity: each one is a statically
//! detectable breach of an invariant the repo otherwise only checks
//! dynamically (byte-identical replay, bit-exact kernels, hermetic
//! builds). Legacy findings live in `audit_baseline.json`; new ones fail
//! CI.

/// `A001` — `unwrap()`/`expect()` in non-test library code without an
/// `// audit: allow(A001, reason)` annotation. A stray unwrap on a worker
/// thread turns a recoverable condition into a panic the chaos suites
/// only find when a seed happens to hit it.
pub const UNWRAP_IN_LIB: &str = "A001";

/// `A002` — iteration over a `HashMap`/`HashSet` in a module that also
/// renders JSON or canonical text. Hash iteration order is randomised
/// per-process; one such loop feeding a serialised artifact breaks the
/// byte-identical replay contract. Use `BTreeMap`/`BTreeSet` or sort.
pub const HASH_ITERATION: &str = "A002";

/// `A003` — `Instant::now`/`SystemTime::now` outside the allowlisted
/// clock modules declared in `audit.toml`. Wall-clock reads in a
/// deterministic path make replays diverge.
pub const WALL_CLOCK: &str = "A003";

/// `A004` — `==`/`!=` against a float literal outside `to_bits` idioms.
/// The PR 6 kernel contract is *bit*-exactness; semantic float equality
/// in shipping code hides `-0.0`/`NaN` divergence.
pub const FLOAT_EQ: &str = "A004";

/// `A005` — crate root (lib, bin, bench, or example) missing
/// `#![forbid(unsafe_code)]`. The hermetic-build policy promises a fully
/// safe workspace; `forbid` makes that a compile error, not a convention.
pub const MISSING_FORBID_UNSAFE: &str = "A005";

/// `A006` — a `Cargo.toml` dependency that is not an in-tree path /
/// workspace dependency (version, git, or registry requirement). The
/// build environment has no crates.io access; such a dependency breaks
/// `cargo build --offline` from a cold cache.
pub const NON_HERMETIC_DEPENDENCY: &str = "A006";

/// `A007` — lock-discipline breach: a `Mutex`/`RwLock` acquisition that
/// inverts the partial order declared in `audit.toml`, re-acquires a held
/// lock, acquires an undeclared lock, or holds a guard across a blocking
/// channel call.
pub const LOCK_DISCIPLINE: &str = "A007";

/// Every registered code with its one-line description, in registry
/// order — the source of truth for reports and DESIGN.md.
pub const REGISTRY: &[(&str, &str)] = &[
    (UNWRAP_IN_LIB, "unwrap/expect in non-test code"),
    (HASH_ITERATION, "hash-order iteration in a serialising module"),
    (WALL_CLOCK, "wall-clock read outside allowlisted clock modules"),
    (FLOAT_EQ, "semantic float equality outside to_bits idioms"),
    (MISSING_FORBID_UNSAFE, "crate root missing #![forbid(unsafe_code)]"),
    (NON_HERMETIC_DEPENDENCY, "non-workspace dependency"),
    (LOCK_DISCIPLINE, "lock-order / guard-discipline breach"),
];

/// Short description of a code, if registered.
pub fn describe(code: &str) -> Option<&'static str> {
    REGISTRY.iter().find(|(c, _)| *c == code).map(|(_, d)| *d)
}

/// The registered `&'static str` for a code spelled at runtime (allow
/// annotations and baselines carry codes as text).
pub fn intern(code: &str) -> Option<&'static str> {
    REGISTRY.iter().find(|(c, _)| *c == code).map(|(c, _)| *c)
}

//! A string/char/comment/raw-string-aware Rust token scanner.
//!
//! The auditor never needs a real parse tree: every invariant pass works
//! on the token stream, and the one thing that *must* be exact is the
//! boundary between code and non-code — a `.unwrap()` inside a string
//! literal or a doc comment is not a panic site. So this lexer's contract
//! is deliberately narrow:
//!
//! * every byte of the input belongs to exactly one token or to
//!   inter-token whitespace (tokens tile the file; checked by the
//!   aa-prop round-trip suite);
//! * string literals (`"…"`, `b"…"`, `r"…"`, `r#"…"#`, `br##"…"##`),
//!   char literals (`'a'`, `'\u{1F4A9}'`), lifetimes (`'static`), line
//!   comments, and nested block comments are each one token, so no pass
//!   can fire inside their content;
//! * everything else is an identifier, a number, or a single punctuation
//!   byte — compound operators like `==` are recognised by the passes
//!   from adjacency, which keeps the lexer trivially total.
//!
//! Totality matters more than precision: the lexer never fails. Malformed
//! input (an unterminated string at EOF) closes the open token at the end
//! of the file, and the passes run on whatever tokens exist.

/// Token classes the passes distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    /// `'a` in `&'a str` (distinguished from [`TokKind::Char`] so a
    /// lifetime is never mistaken for an unterminated char literal).
    Lifetime,
    /// Any numeric literal; [`Tok::is_float_literal`] refines it.
    Num,
    /// Any string-like literal: `"…"`, `b"…"`, and all raw forms.
    Str,
    Char,
    LineComment,
    BlockComment,
    /// One punctuation byte.
    Punct,
}

/// One token: a class plus the byte range it covers in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub start: usize,
    pub end: usize,
}

impl Tok {
    /// The token's text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// Whether a [`TokKind::Num`] token is a float (not integer) literal:
    /// it contains a decimal point, a decimal exponent, or an `f32`/`f64`
    /// suffix. Hex/octal/binary literals are never floats.
    pub fn is_float_literal(&self, src: &str) -> bool {
        if self.kind != TokKind::Num {
            return false;
        }
        let text = self.text(src);
        if text.starts_with("0x") || text.starts_with("0X") || text.starts_with("0b")
            || text.starts_with("0o")
        {
            return false;
        }
        text.contains('.')
            || text.ends_with("f32")
            || text.ends_with("f64")
            || text.bytes().any(|b| b == b'e' || b == b'E')
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenizes `src`. Never fails; see the module docs for the contract.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        bytes: src.as_bytes(),
        pos: 0,
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Tok> {
        let mut toks = Vec::new();
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let b = self.bytes[self.pos];
            let kind = match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                    continue;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                b'r' | b'b' => match self.raw_or_byte_prefix() {
                    Some(kind) => kind,
                    None => self.ident(),
                },
                _ if is_ident_start(b) => self.ident(),
                b'0'..=b'9' => self.number(),
                _ => {
                    self.pos += 1;
                    TokKind::Punct
                }
            };
            toks.push(Tok {
                kind,
                start,
                end: self.pos,
            });
        }
        toks
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn line_comment(&mut self) -> TokKind {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        TokKind::LineComment
    }

    fn block_comment(&mut self) -> TokKind {
        self.pos += 2; // consume `/*`
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.pos += 1;
            }
        }
        TokKind::BlockComment
    }

    /// A `"…"` string with `\` escapes, starting at the opening quote.
    fn string(&mut self) -> TokKind {
        self.pos += 1;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos = (self.pos + 2).min(self.bytes.len()),
                b'"' => {
                    self.pos += 1;
                    return TokKind::Str;
                }
                _ => self.pos += 1,
            }
        }
        TokKind::Str // unterminated at EOF
    }

    /// Disambiguates `'a'` / `'\n'` (char) from `'a` / `'static`
    /// (lifetime), starting at the `'`.
    fn char_or_lifetime(&mut self) -> TokKind {
        self.pos += 1;
        match self.bytes.get(self.pos) {
            Some(b'\\') => {
                // Escaped char literal: scan to the closing quote, with
                // the backslash consuming its escaped character (so the
                // quote in `'\''` cannot close the literal early).
                while self.pos < self.bytes.len() {
                    match self.bytes[self.pos] {
                        b'\\' => self.pos = (self.pos + 2).min(self.bytes.len()),
                        b'\'' => {
                            self.pos += 1;
                            return TokKind::Char;
                        }
                        _ => self.pos += 1,
                    }
                }
                TokKind::Char
            }
            Some(&b) if is_ident_start(b) => {
                // `'x…`: a char literal iff a quote immediately closes a
                // single scalar; otherwise a lifetime.
                let mut end = self.pos;
                while end < self.bytes.len() && is_ident_continue(self.bytes[end]) {
                    end += 1;
                }
                if end == self.pos + utf8_len(b) && self.bytes.get(end) == Some(&b'\'') {
                    self.pos = end + 1;
                    TokKind::Char
                } else {
                    self.pos = end;
                    TokKind::Lifetime
                }
            }
            Some(_) => {
                // `'('` and friends: a one-byte char literal if closed.
                if self.peek(1) == Some(b'\'') {
                    self.pos += 2;
                } else {
                    self.pos += 1;
                }
                TokKind::Char
            }
            None => TokKind::Char,
        }
    }

    /// Handles the `r` / `b` prefixes: raw strings (`r"`, `r#"`), byte
    /// strings (`b"`, `br"`, `br#"`), byte chars (`b'`). Returns `None`
    /// when the prefix is just the start of an identifier (including raw
    /// identifiers `r#ident`).
    fn raw_or_byte_prefix(&mut self) -> Option<TokKind> {
        let b0 = self.bytes[self.pos];
        let mut at = self.pos + 1;
        if b0 == b'b' {
            match self.bytes.get(at) {
                Some(b'\'') => {
                    self.pos += 1;
                    return Some(self.char_or_lifetime());
                }
                Some(b'"') => {
                    self.pos += 1;
                    return Some(self.string());
                }
                Some(b'r') => at += 1,
                _ => return None,
            }
        }
        // At a potential raw-string opener: count hashes, require `"`.
        let mut hashes = 0usize;
        while self.bytes.get(at + hashes) == Some(&b'#') {
            hashes += 1;
        }
        if self.bytes.get(at + hashes) != Some(&b'"') {
            // `r#ident` raw identifier, or plain ident starting with r/b.
            return None;
        }
        self.pos = at + hashes + 1;
        // Scan to `"` followed by `hashes` hash bytes.
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'"' {
                let close = &self.bytes[self.pos + 1..];
                if close.len() >= hashes && close[..hashes].iter().all(|&h| h == b'#') {
                    self.pos += 1 + hashes;
                    return Some(TokKind::Str);
                }
            }
            self.pos += 1;
        }
        Some(TokKind::Str) // unterminated at EOF
    }

    fn ident(&mut self) -> TokKind {
        // Raw identifier prefix `r#` (reached when not a raw string).
        if self.bytes[self.pos] == b'r' && self.peek(1) == Some(b'#') {
            self.pos += 2;
        }
        while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
            self.pos += 1;
        }
        TokKind::Ident
    }

    fn number(&mut self) -> TokKind {
        self.pos += 1;
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.pos += 1;
            } else if b == b'.' {
                // Consume the dot only for a fractional part, never for a
                // method call (`1.max(2)`) or a range (`0..n`).
                match self.peek(1) {
                    Some(d) if d.is_ascii_digit() => self.pos += 1,
                    _ => break,
                }
            } else if (b == b'+' || b == b'-')
                && matches!(self.bytes[self.pos - 1], b'e' | b'E')
            {
                self.pos += 1; // exponent sign in `1e-3`
            } else {
                break;
            }
        }
        TokKind::Num
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn strings_comments_and_chars_are_single_tokens() {
        let src = r##"let s = "a // not a comment"; // real
let c = '\''; let lt: &'static str = r#"raw "x" here"#; /* block /* nested */ done */"##;
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("not a comment")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::LineComment && t.contains("real")));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Char && t == r"'\''"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "'static"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("raw \"x\" here")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::BlockComment && t.contains("nested")));
    }

    #[test]
    fn byte_and_hashed_raw_strings() {
        let src = r###"let a = b"bytes"; let b = br##"raw ## inside"##; let c = b'x';"###;
        let toks = kinds(src);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Str && t == "b\"bytes\""));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("raw ## inside")));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Char && t == "b'x'"));
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let toks = kinds("let r#type = 1;");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "r#type"));
    }

    #[test]
    fn float_detection() {
        let src = "1.5 2 0x1f 1e-3 7f64 1_000 0.0";
        let toks = lex(src);
        let floats: Vec<&str> = toks
            .iter()
            .filter(|t| t.is_float_literal(src))
            .map(|t| t.text(src))
            .collect();
        assert_eq!(floats, vec!["1.5", "1e-3", "7f64", "0.0"]);
    }

    #[test]
    fn method_calls_on_int_literals_keep_the_dot_out() {
        let src = "1.max(2); 0..n; 3.5.floor()";
        let toks = kinds(src);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "1"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "3.5"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "floor"));
    }

    #[test]
    fn tokens_tile_the_input() {
        let src = "fn f() { let x = \"s\"; // c\n x.unwrap() }";
        let toks = lex(src);
        let mut prev_end = 0;
        for t in &toks {
            assert!(t.start >= prev_end, "overlap at {}", t.start);
            assert!(
                src[prev_end..t.start].bytes().all(|b| b.is_ascii_whitespace()),
                "gap {}..{} not whitespace",
                prev_end,
                t.start
            );
            prev_end = t.end;
        }
        assert!(src[prev_end..].bytes().all(|b| b.is_ascii_whitespace()));
    }

    #[test]
    fn unterminated_tokens_close_at_eof() {
        for src in ["\"never closed", "/* open", "r#\"raw open", "'"] {
            let toks = lex(src);
            assert_eq!(toks.last().map(|t| t.end), Some(src.len()), "{src:?}");
        }
    }
}

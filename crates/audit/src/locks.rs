//! `A007` — the conservative intraprocedural lock-discipline checker.
//!
//! An *acquisition site* is an identifier receiver followed by `.lock()`,
//! `.read()`, or `.write()` with an **empty** argument list — the empty
//! parens are what separate `Mutex::lock` / `RwLock::{read,write}` from
//! `io::Read::read(buf)` / `io::Write::write(buf)`, and the identifier
//! receiver is what skips `stdout().lock()`. Every site is recorded in
//! the [`LockSite`] report (`audit --locks`, pinned for aa-serve by the
//! `serve_locks` test) whether or not it produces a finding.
//!
//! The guard model is deliberately simple and errs toward *under*-
//! approximating hold ranges (missing a finding) rather than inventing
//! overlap that is not there:
//!
//! * `let g = x.lock().unwrap();` — a chain of only `unwrap`/`expect`
//!   calls bound by a plain `let` is a **persistent** guard: held until
//!   its enclosing brace scope closes or an explicit `drop(g)`.
//! * any other acquisition (a longer chain like
//!   `x.lock().unwrap().clone()`, an unbound expression, a pattern
//!   binding) is a **statement temporary**: held until the next `;`.
//!
//! Findings, against the partial order declared in `audit.toml`
//! (`[locks] order`, earlier = acquired first):
//!
//! * acquiring a lock ranked *earlier* than one already held (inversion);
//! * re-acquiring a lock already held (self-deadlock with `Mutex`);
//! * acquiring a lock whose name is not declared at all;
//! * calling a `[locks] blocking` method (`.send(`, `.recv(`, `.join(`)
//!   while any guard is held. `Condvar::wait` is deliberately *not* in
//!   the default blocking list: it releases the guard while parked.
//!
//! All four respect `// audit: allow(A007, reason)` annotations.

use crate::codes;
use crate::config::AuditConfig;
use crate::lexer::TokKind;
use crate::passes::{FileCx, Finding};
use aa_core::analysis::line_col;

/// One lock acquisition site (reported by `audit --locks`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockSite {
    /// Repo-relative `/`-separated path.
    pub path: String,
    /// Receiver identifier (`stats` in `self.stats.lock()`).
    pub lock: String,
    /// `lock`, `read`, or `write`.
    pub method: String,
    /// 1-based, at the receiver identifier.
    pub line: usize,
    pub col: usize,
    /// Rank in the declared order, if declared.
    pub rank: Option<usize>,
}

/// A guard currently modelled as held.
struct Held {
    lock: String,
    rank: Option<usize>,
    /// `let` binder for persistent guards (what `drop(...)` releases).
    binder: Option<String>,
    /// Brace depth the guard was created at (persistent guards die when
    /// the enclosing scope closes).
    depth: usize,
    persistent: bool,
    line: usize,
}

/// Runs the lock pass over one file, appending acquisition sites and
/// findings.
pub fn pass_locks(
    cx: &FileCx<'_>,
    config: &AuditConfig,
    sites: &mut Vec<LockSite>,
    findings: &mut Vec<Finding>,
) {
    if cx.test_context {
        return;
    }
    let bytes = cx.src.as_bytes();
    let mut depth = 0usize;
    let mut held: Vec<Held> = Vec::new();
    let mut i = 0;
    while i < cx.code.len() {
        let t = cx.code[i];
        if t.kind == TokKind::Punct {
            match bytes[t.start] {
                b'{' => depth += 1,
                b'}' => {
                    depth = depth.saturating_sub(1);
                    held.retain(|h| h.depth <= depth);
                }
                b';' => held.retain(|h| h.persistent),
                _ => {}
            }
            i += 1;
            continue;
        }
        if t.kind != TokKind::Ident || cx.in_test_region(t.start) {
            i += 1;
            continue;
        }
        let name = cx.txt(&t);
        // `drop(binder)` releases a persistent guard early.
        if name == "drop" && cx.punct_at(i + 1, b'(') && cx.punct_at(i + 3, b')') {
            if let Some(arg) = cx.ident_at(i + 2) {
                held.retain(|h| h.binder.as_deref() != Some(arg));
            }
            i += 1;
            continue;
        }
        // A declared-blocking method call while any guard is held.
        if config.lock_blocking.iter().any(|m| m == name)
            && i > 0
            && cx.punct_at(i - 1, b'.')
            && cx.punct_at(i + 1, b'(')
        {
            if let Some(h) = held.last() {
                if !cx.allowed(codes::LOCK_DISCIPLINE, t.start) {
                    findings.push(cx.finding(
                        codes::LOCK_DISCIPLINE,
                        &t,
                        format!(
                            "blocking call `.{name}(…)` while holding lock `{}` (acquired on line {}); release the guard first or annotate `// audit: allow(A007, reason)`",
                            h.lock, h.line
                        ),
                    ));
                }
            }
            i += 1;
            continue;
        }
        // An acquisition: `recv_ident . (lock|read|write) ( )`.
        let is_acq = matches!(name, "lock" | "read" | "write")
            && i >= 2
            && cx.punct_at(i - 1, b'.')
            && cx.ident_at(i - 2).is_some()
            && cx.punct_at(i + 1, b'(')
            && cx.punct_at(i + 2, b')');
        if !is_acq {
            i += 1;
            continue;
        }
        let recv = i - 2;
        let Some(lock) = cx.ident_at(recv) else {
            i += 1;
            continue;
        };
        let recv_tok = cx.code[recv];
        let (line, col) = line_col(cx.src, recv_tok.start);
        let rank = config.lock_rank(lock);
        sites.push(LockSite {
            path: cx.path.to_string(),
            lock: lock.to_string(),
            method: name.to_string(),
            line,
            col,
            rank,
        });
        let suppressed = cx.allowed(codes::LOCK_DISCIPLINE, recv_tok.start);
        if !suppressed {
            if rank.is_none() {
                findings.push(cx.finding(
                    codes::LOCK_DISCIPLINE,
                    &recv_tok,
                    format!(
                        "acquisition of undeclared lock `{lock}`; add it to `[locks] order` in audit.toml or annotate"
                    ),
                ));
            }
            for h in &held {
                if h.lock == lock {
                    findings.push(cx.finding(
                        codes::LOCK_DISCIPLINE,
                        &recv_tok,
                        format!(
                            "re-acquisition of lock `{lock}` already held since line {}",
                            h.line
                        ),
                    ));
                } else if let (Some(held_rank), Some(new_rank)) = (h.rank, rank) {
                    if new_rank < held_rank {
                        findings.push(cx.finding(
                            codes::LOCK_DISCIPLINE,
                            &recv_tok,
                            format!(
                                "lock-order inversion: `{lock}` (rank {new_rank}) acquired while holding `{}` (rank {held_rank}); the declared order requires `{lock}` first",
                                h.lock
                            ),
                        ));
                    }
                }
            }
        }
        // Classify the guard: persistent iff the call chain is only
        // `unwrap`/`expect` ending at `;`, bound by `let [mut] name =`.
        let (chain_end, plain_chain) = scan_chain(cx, i + 3);
        let persistent = plain_chain && cx.punct_at(chain_end, b';');
        let binder = if persistent { let_binder(cx, recv) } else { None };
        held.push(Held {
            lock: lock.to_string(),
            rank,
            persistent: persistent && binder.is_some(),
            binder,
            depth,
            line,
        });
        i += 1;
    }
}

/// Scans a trailing method-call chain starting at `j` (the token after
/// the acquisition's `)`), returning the index of the first token past
/// the chain and whether the chain contained only `unwrap`/`expect`.
fn scan_chain(cx: &FileCx<'_>, mut j: usize) -> (usize, bool) {
    let mut plain = true;
    while cx.punct_at(j, b'.') {
        let Some(method) = cx.ident_at(j + 1) else {
            break;
        };
        if !cx.punct_at(j + 2, b'(') {
            break;
        }
        if !matches!(method, "unwrap" | "expect") {
            plain = false;
        }
        // Skip the balanced argument list.
        let mut depth = 0usize;
        let mut k = j + 2;
        while k < cx.code.len() {
            let t = cx.code[k];
            if t.kind == TokKind::Punct {
                match cx.src.as_bytes()[t.start] {
                    b'(' => depth += 1,
                    b')' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            k += 1;
        }
        j = k + 1;
    }
    (j, plain)
}

/// The `let [mut] name =` binder behind an acquisition's receiver path
/// (`slot` in `let mut slot = self.state.write()…`), if the statement
/// has that exact shape.
fn let_binder(cx: &FileCx<'_>, recv: usize) -> Option<String> {
    // Walk `self . state` style paths back to their head.
    let mut head = recv;
    while head >= 2 && cx.punct_at(head - 1, b'.') && cx.ident_at(head - 2).is_some() {
        head -= 2;
    }
    if head < 2 || !cx.punct_at(head - 1, b'=') {
        return None;
    }
    let mut b = head - 2;
    let name = cx.ident_at(b)?;
    if name == "mut" {
        return None;
    }
    if b >= 1 && cx.ident_at(b - 1) == Some("mut") {
        b -= 1;
    }
    (b >= 1 && cx.ident_at(b - 1) == Some("let")).then(|| name.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> AuditConfig {
        AuditConfig {
            lock_order: vec!["alpha".into(), "beta".into()],
            lock_blocking: vec!["send".into(), "recv".into(), "join".into()],
            ..AuditConfig::default()
        }
    }

    fn run(src: &str) -> (Vec<LockSite>, Vec<Finding>) {
        let cx = FileCx::new("crates/d/src/lib.rs", src);
        let (mut sites, mut findings) = (Vec::new(), Vec::new());
        pass_locks(&cx, &config(), &mut sites, &mut findings);
        (sites, findings)
    }

    #[test]
    fn declared_nesting_in_order_is_clean() {
        let src = r#"
fn f(s: &S) {
    let a = s.alpha.lock().unwrap();
    let b = s.beta.lock().unwrap();
    drop(b);
    drop(a);
}
"#;
        let (sites, findings) = run(src);
        assert_eq!(sites.len(), 2);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn inversion_and_reentry_are_flagged() {
        let inverted = r#"
fn f(s: &S) {
    let b = s.beta.lock().unwrap();
    let a = s.alpha.lock().unwrap();
    let _ = (a, b);
}
"#;
        let (_, findings) = run(inverted);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("inversion"), "{findings:?}");
        let reentrant = r#"
fn f(s: &S) {
    let a = s.alpha.lock().unwrap();
    let a2 = s.alpha.lock().unwrap();
    let _ = (a, a2);
}
"#;
        let (_, findings) = run(reentrant);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("re-acquisition"), "{findings:?}");
    }

    #[test]
    fn scope_close_and_drop_release_guards() {
        let scoped = r#"
fn f(s: &S) {
    { let b = s.beta.lock().unwrap(); let _ = b; }
    let a = s.alpha.lock().unwrap();
    let _ = a;
}
"#;
        let (_, findings) = run(scoped);
        assert!(findings.is_empty(), "{findings:?}");
        let dropped = r#"
fn f(s: &S) {
    let b = s.beta.lock().unwrap();
    drop(b);
    let a = s.alpha.lock().unwrap();
    let _ = a;
}
"#;
        let (_, findings) = run(dropped);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn statement_temporary_dies_at_the_semicolon() {
        // `beta` is a temporary (chain goes past unwrap), so the later
        // `alpha` acquisition does not overlap it.
        let src = r#"
fn f(s: &S) -> u32 {
    let snapshot = s.beta.lock().unwrap().clone();
    let a = s.alpha.lock().unwrap();
    let _ = a;
    snapshot
}
"#;
        let (_, findings) = run(src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn blocking_call_while_held_is_flagged_and_allowable() {
        let src = r#"
fn f(s: &S) {
    let next = s.alpha.lock().unwrap().recv();
    let _ = next;
}
"#;
        let (_, findings) = run(src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("blocking"), "{findings:?}");
        let allowed = r#"
fn f(s: &S) {
    // audit: allow(A007, single consumer; guard must span the recv)
    let next = s.alpha.lock().unwrap().recv();
    let _ = next;
}
"#;
        let (_, findings) = run(allowed);
        assert!(findings.is_empty(), "{findings:?}");
        // The same blocking call with no guard held is clean.
        let unheld = "fn f(tx: &Sender<u32>) { tx.send(1).unwrap(); }";
        let (sites, findings) = run(unheld);
        assert!(sites.is_empty() && findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn undeclared_lock_and_io_write_are_distinguished() {
        let undeclared = "fn f(s: &S) { let g = s.gamma.lock().unwrap(); let _ = g; }";
        let (sites, findings) = run(undeclared);
        assert_eq!(sites.len(), 1);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("undeclared"), "{findings:?}");
        // io-style read/write take a buffer argument: not acquisitions.
        let io = "fn f(mut f: File, buf: &mut [u8]) { f.read(buf).unwrap(); f.write(buf).unwrap(); }";
        let (sites, findings) = run(io);
        assert!(sites.is_empty() && findings.is_empty(), "{findings:?}");
        // Non-identifier receivers are skipped.
        let stdout = "fn f() { let g = stdout().lock(); let _ = g; }";
        let (sites, _) = run(stdout);
        assert!(sites.is_empty());
    }
}

//! `A006` — hermetic-dependency audit over `Cargo.toml` manifests.
//!
//! The build environment has no registry access: `cargo build --offline`
//! from a cold cache is the contract. So every dependency in every
//! manifest must resolve in-tree — `{ workspace = true }` in crates,
//! `{ path = "…" }` in the root `[workspace.dependencies]` table. A
//! version-only, git, or registry requirement is a finding.
//!
//! Line-oriented on purpose: manifests are small, the repo uses inline
//! dependency tables exclusively, and line granularity is exactly what
//! the baseline keys on. Suppression uses the TOML comment form
//! `# audit: allow(A006, reason)` trailing the dependency line.

use crate::codes;
use crate::passes::Finding;

/// Audits one manifest. `path` is repo-relative and `/`-separated.
pub fn audit_manifest(path: &str, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut in_deps = false;
    let mut offset = 0usize;
    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_toml_comment(raw).trim_end();
        let trimmed = line.trim_start();
        if let Some(section) = trimmed
            .strip_prefix('[')
            .and_then(|l| l.strip_suffix(']'))
        {
            // `[dependencies]`, `[dev-dependencies]`, `[build-dependencies]`,
            // `[workspace.dependencies]`, `[target.….dependencies]`.
            in_deps = section.trim().trim_matches('[').ends_with("dependencies");
        } else if in_deps {
            if let Some((name, value)) = trimmed.split_once('=') {
                let name = name.trim();
                let value = value.trim();
                let hermetic = value.contains("workspace = true") || value.contains("path =");
                if !name.is_empty() && !hermetic && !allows_a006(raw) {
                    let col = raw.len() - raw.trim_start().len() + 1;
                    let start = offset + col - 1;
                    findings.push(Finding {
                        code: codes::NON_HERMETIC_DEPENDENCY,
                        path: path.to_string(),
                        message: format!(
                            "dependency `{name}` is not an in-tree path/workspace dependency; the build must work with `cargo build --offline` from a cold cache"
                        ),
                        start,
                        end: start + name.len(),
                        line: line_no,
                        col,
                        line_text: trimmed.to_string(),
                    });
                }
            }
        }
        offset += raw.len() + 1;
    }
    findings
}

/// A trailing `# audit: allow(A006, reason)` with a non-empty reason.
fn allows_a006(raw: &str) -> bool {
    let Some(at) = raw.find("audit: allow(") else {
        return false;
    };
    let args = &raw[at + "audit: allow(".len()..];
    let Some(close) = args.find(')') else {
        return false;
    };
    match args[..close].split_once(',') {
        Some((code, reason)) => {
            code.trim() == codes::NON_HERMETIC_DEPENDENCY && !reason.trim().is_empty()
        }
        None => false,
    }
}

/// Strips a `#` comment, respecting double-quoted strings — but keeps
/// the comment visible to [`allows_a006`], which sees the raw line.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, b) in line.bytes().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_and_path_deps_are_hermetic() {
        let src = r#"
[package]
name = "demo"
version = "0.1.0"

[dependencies]
aa-core = { workspace = true }
aa-util = { path = "../util" }

[workspace.dependencies]
aa-core = { path = "crates/core" }
"#;
        assert!(audit_manifest("crates/demo/Cargo.toml", src).is_empty());
    }

    #[test]
    fn version_git_and_registry_deps_are_flagged() {
        let src = r#"
[dependencies]
serde = "1.0"
rand = { version = "0.8", features = ["small_rng"] }
left-pad = { git = "https://example.invalid/left-pad" }

[dev-dependencies]
proptest = "1"
"#;
        let findings = audit_manifest("crates/demo/Cargo.toml", src);
        let names: Vec<&str> = findings
            .iter()
            .map(|f| f.line_text.split('=').next().unwrap().trim())
            .collect();
        assert_eq!(names, vec!["serde", "rand", "left-pad", "proptest"]);
        assert!(findings.iter().all(|f| f.code == "A006"));
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn non_dependency_sections_are_ignored_and_allow_works() {
        let src = r#"
[package]
version = "0.1.0"

[dependencies]
vendored = "1.0" # audit: allow(A006, vendored into /third_party before build)
flagged = "1.0" # audit: allow(A006)
"#;
        let findings = audit_manifest("crates/demo/Cargo.toml", src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].line_text.starts_with("flagged"));
    }
}

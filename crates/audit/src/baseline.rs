//! The baseline ratchet: `audit_baseline.json`.
//!
//! Legacy findings are frozen at adoption time and burned down over
//! later PRs; *new* findings fail CI immediately. Entries are keyed by
//! `(file, code, trimmed line text)` with a count — line numbers are
//! deliberately absent so edits elsewhere in a file do not unfreeze its
//! legacy findings, while any *new* occurrence (same code on a line of
//! different text, or one more occurrence of identical text) is caught
//! by the multiset comparison.

use crate::passes::Finding;
use aa_util::Json;
use std::collections::BTreeMap;

/// Baselined finding multiset.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `(file, code, line_text) -> count`, ordered for stable output.
    entries: BTreeMap<(String, String, String), usize>,
}

/// The result of comparing a run against the baseline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BaselineDiff {
    /// Findings not covered by the baseline — these fail the audit.
    pub fresh: Vec<Finding>,
    /// Baselined entries the run no longer produces (burn-down), as
    /// `(file, code, line_text, missing_count)`.
    pub fixed: Vec<(String, String, String, usize)>,
    /// How many findings the baseline absorbed.
    pub baselined: usize,
}

fn key(f: &Finding) -> (String, String, String) {
    (f.path.clone(), f.code.to_string(), f.line_text.clone())
}

impl Baseline {
    /// Freezes the given findings as the new baseline.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut entries: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        for f in findings {
            *entries.entry(key(f)).or_insert(0) += 1;
        }
        Baseline { entries }
    }

    pub fn len(&self) -> usize {
        self.entries.values().sum()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Splits `findings` into baselined and fresh, and reports burn-down.
    pub fn diff(&self, findings: &[Finding]) -> BaselineDiff {
        let mut remaining = self.entries.clone();
        let mut diff = BaselineDiff::default();
        for f in findings {
            match remaining.get_mut(&key(f)) {
                Some(count) if *count > 0 => {
                    *count -= 1;
                    diff.baselined += 1;
                }
                _ => diff.fresh.push(f.clone()),
            }
        }
        for ((file, code, text), count) in remaining {
            if count > 0 {
                diff.fixed.push((file, code, text, count));
            }
        }
        diff
    }

    /// Renders as the checked-in JSON artifact (aa-util writer, ordered,
    /// byte-stable).
    pub fn to_json_string(&self) -> String {
        let entries: Vec<Json> = self
            .entries
            .iter()
            .map(|((file, code, text), count)| {
                Json::obj([
                    ("file".to_string(), Json::Str(file.clone())),
                    ("code".to_string(), Json::Str(code.clone())),
                    ("line_text".to_string(), Json::Str(text.clone())),
                    ("count".to_string(), Json::Num(*count as f64)),
                ])
            })
            .collect();
        let doc = Json::obj([
            ("version".to_string(), Json::Num(1.0)),
            ("entries".to_string(), Json::Arr(entries)),
        ]);
        let mut out = doc.to_string_pretty();
        out.push('\n');
        out
    }

    /// Parses the checked-in artifact.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        let version = doc.get("version").and_then(Json::as_f64);
        if version != Some(1.0) {
            return Err("unsupported baseline version (expected 1)".to_string());
        }
        let Some(items) = doc.get("entries").and_then(Json::as_arr) else {
            return Err("baseline is missing the `entries` array".to_string());
        };
        let mut entries = BTreeMap::new();
        for (i, item) in items.iter().enumerate() {
            let field = |name: &str| {
                item.get(name)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("entry {i}: missing string field `{name}`"))
            };
            let count = item
                .get("count")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("entry {i}: missing numeric field `count`"))?;
            entries.insert((field("file")?, field("code")?, field("line_text")?), count as usize);
        }
        Ok(Baseline { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(path: &str, code: &'static str, text: &str) -> Finding {
        Finding {
            code,
            path: path.to_string(),
            message: String::new(),
            start: 0,
            end: 1,
            line: 1,
            col: 1,
            line_text: text.to_string(),
        }
    }

    #[test]
    fn roundtrip_and_diff_semantics() {
        let old = vec![
            finding("a.rs", "A001", "x.unwrap()"),
            finding("a.rs", "A001", "x.unwrap()"),
            finding("b.rs", "A003", "Instant::now()"),
        ];
        let baseline = Baseline::from_findings(&old);
        let text = baseline.to_json_string();
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed, baseline);
        assert_eq!(parsed.len(), 3);

        // Same findings at different line numbers still match (the key is
        // line text, not position).
        let mut moved = old.clone();
        moved[0].line = 40;
        let diff = parsed.diff(&moved);
        assert!(diff.fresh.is_empty());
        assert_eq!(diff.baselined, 3);
        assert!(diff.fixed.is_empty());

        // One fixed, one new: the count drops and the newcomer fails.
        let current = vec![
            finding("a.rs", "A001", "x.unwrap()"),
            finding("b.rs", "A003", "Instant::now()"),
            finding("c.rs", "A004", "x == 0.0"),
        ];
        let diff = parsed.diff(&current);
        assert_eq!(diff.fresh.len(), 1);
        assert_eq!(diff.fresh[0].path, "c.rs");
        assert_eq!(diff.baselined, 2);
        assert_eq!(
            diff.fixed,
            vec![("a.rs".to_string(), "A001".to_string(), "x.unwrap()".to_string(), 1)]
        );
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse("{\"version\": 2, \"entries\": []}").is_err());
        assert!(Baseline::parse("{\"version\": 1}").is_err());
        assert!(Baseline::parse("not json").is_err());
    }
}

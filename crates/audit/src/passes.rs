//! The per-file invariant passes (`A001`–`A005`) and the shared file
//! context they run against: the token stream, `#[cfg(test)]` / `#[test]`
//! regions, and `// audit: allow(...)` annotations.
//!
//! Passes are token-level and deliberately conservative: they
//! under-approximate rather than guess through types. Every rule each
//! pass applies is written next to its implementation; DESIGN.md §11 is
//! the user-facing description.

use crate::codes;
use crate::config::AuditConfig;
use crate::lexer::{lex, Tok, TokKind};
use aa_core::analysis::{line_col, Diagnostic};
use aa_sql::Span;
use std::collections::BTreeSet;

/// One audit finding, anchored to a byte span in its file.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Registered code (`codes::REGISTRY`).
    pub code: &'static str,
    /// Repo-relative `/`-separated path.
    pub path: String,
    pub message: String,
    /// Byte span in the file.
    pub start: usize,
    pub end: usize,
    /// 1-based position (same convention as aa-analyze diagnostics).
    pub line: usize,
    pub col: usize,
    /// Trimmed text of the finding's line — the line-number-independent
    /// key the baseline matches on, so unrelated edits above a legacy
    /// finding do not unfreeze it.
    pub line_text: String,
}

impl Finding {
    /// Renders as `path:line:col:` plus the aa-core caret diagnostic.
    pub fn render(&self, src: &str) -> String {
        let d = Diagnostic::error(
            self.code,
            self.message.clone(),
            Some(Span::new(self.start, self.end)),
        );
        format!("{}:{}:{}: {}", self.path, self.line, self.col, d.render(src))
    }
}

/// An `// audit: allow(A00x, reason)` annotation. The reason is
/// mandatory: an allow without one does not suppress anything.
#[derive(Debug, Clone)]
struct Allow {
    code: &'static str,
    /// 1-based line the annotation ends on.
    line: usize,
    /// Whether the comment stands alone on its line — a standalone allow
    /// covers the *next* line, a trailing one its own.
    standalone: bool,
}

/// Everything the passes need about one source file.
pub struct FileCx<'a> {
    /// Repo-relative `/`-separated path.
    pub path: &'a str,
    pub src: &'a str,
    /// All tokens, comments included.
    pub toks: Vec<Tok>,
    /// Code tokens only (comments stripped) — passes match adjacency here.
    pub code: Vec<Tok>,
    /// Byte ranges covered by `#[cfg(test)]` items and `#[test]` fns.
    test_regions: Vec<(usize, usize)>,
    allows: Vec<Allow>,
    /// Whether the whole file is test-context (tests/, benches/,
    /// examples/, src/bin/, main.rs): panic-safety and clock rules are
    /// CLI/test policy there, not library policy.
    pub test_context: bool,
}

impl<'a> FileCx<'a> {
    pub fn new(path: &'a str, src: &'a str) -> Self {
        let toks = lex(src);
        let code: Vec<Tok> = toks
            .iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .copied()
            .collect();
        let test_regions = find_test_regions(src, &code);
        let allows = find_allows(src, &toks);
        FileCx {
            path,
            src,
            toks,
            code,
            test_regions,
            allows,
            test_context: is_test_context(path),
        }
    }

    /// The text of a token.
    pub fn txt(&self, tok: &Tok) -> &'a str {
        &self.src[tok.start..tok.end]
    }

    pub(crate) fn ident_at(&self, i: usize) -> Option<&'a str> {
        let t = self.code.get(i)?;
        (t.kind == TokKind::Ident).then(|| self.txt(t))
    }

    pub(crate) fn punct_at(&self, i: usize, ch: u8) -> bool {
        self.code
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Punct && self.src.as_bytes()[t.start] == ch)
    }

    /// Whether byte `offset` lies inside a `#[cfg(test)]` / `#[test]`
    /// region.
    pub fn in_test_region(&self, offset: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(start, end)| offset >= start && offset < end)
    }

    /// Whether a finding of `code` at `offset` is suppressed by an allow
    /// annotation on the same line or standing alone on the line above.
    pub fn allowed(&self, code: &str, offset: usize) -> bool {
        let (line, _) = line_col(self.src, offset);
        self.allows
            .iter()
            .any(|a| a.code == code && (a.line == line || (a.standalone && a.line + 1 == line)))
    }

    /// Builds a finding anchored at `tok`.
    pub fn finding(&self, code: &'static str, tok: &Tok, message: String) -> Finding {
        let (line, col) = line_col(self.src, tok.start);
        let line_start = self.src[..tok.start].rfind('\n').map_or(0, |i| i + 1);
        let line_end = self.src[tok.start..]
            .find('\n')
            .map_or(self.src.len(), |i| tok.start + i);
        Finding {
            code,
            path: self.path.to_string(),
            message,
            start: tok.start,
            end: tok.end,
            line,
            col,
            line_text: self.src[line_start..line_end].trim().to_string(),
        }
    }
}

/// Test-context paths: integration tests, benches, examples, binaries.
pub fn is_test_context(path: &str) -> bool {
    let in_dir = |dir: &str| {
        path.starts_with(&format!("{dir}/")) || path.contains(&format!("/{dir}/"))
    };
    in_dir("tests")
        || in_dir("benches")
        || in_dir("examples")
        || path.contains("/src/bin/")
        || path.ends_with("/main.rs")
}

/// Runs the per-file token passes. `A007` (locks) lives in [`crate::locks`].
pub fn run_file_passes(cx: &FileCx<'_>, config: &AuditConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    pass_unwrap(cx, &mut findings);
    pass_hash_iteration(cx, &mut findings);
    pass_wall_clock(cx, config, &mut findings);
    pass_float_eq(cx, &mut findings);
    pass_forbid_unsafe(cx, &mut findings);
    findings
}

// ---- test-region and allow discovery ---------------------------------------

/// Finds byte ranges of items under a test-shaped attribute: the brace
/// block following `#[cfg(test)]`, `#[test]`, or `#[bench]` — any
/// attribute whose tokens mention `test` or `bench` and not `not` (so
/// `#[cfg(not(test))]` code stays audited). Conservative in the
/// exempting direction: a matching attribute exempts the whole following
/// item body.
fn find_test_regions(src: &str, code: &[Tok]) -> Vec<(usize, usize)> {
    let bytes = src.as_bytes();
    let punct = |i: usize, ch: u8| {
        code.get(i)
            .is_some_and(|t: &Tok| t.kind == TokKind::Punct && bytes[t.start] == ch)
    };
    let mut regions: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !(punct(i, b'#') && punct(i + 1, b'[')) {
            i += 1;
            continue;
        }
        // Collect the attribute's tokens up to the matching `]`.
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut is_test_attr = false;
        while j < code.len() && depth > 0 {
            let t = &code[j];
            match t.kind {
                TokKind::Punct => match bytes[t.start] {
                    b'[' => depth += 1,
                    b']' => depth -= 1,
                    _ => {}
                },
                TokKind::Ident => match &src[t.start..t.end] {
                    "test" | "bench" => is_test_attr = true,
                    "not" => {
                        is_test_attr = false;
                        // Skip the rest of the attribute: a `not` makes
                        // it a non-exempting cfg regardless of `test`.
                        while j < code.len() && depth > 0 {
                            let t = &code[j];
                            if t.kind == TokKind::Punct {
                                match bytes[t.start] {
                                    b'[' => depth += 1,
                                    b']' => depth -= 1,
                                    _ => {}
                                }
                            }
                            j += 1;
                        }
                        break;
                    }
                    _ => {}
                },
                _ => {}
            }
            j += 1;
        }
        if !is_test_attr {
            i = j;
            continue;
        }
        // Skip any further attributes, then find the item's brace block.
        let mut k = j;
        while punct(k, b'#') && punct(k + 1, b'[') {
            let mut depth = 1usize;
            k += 2;
            while k < code.len() && depth > 0 {
                if code[k].kind == TokKind::Punct {
                    match bytes[code[k].start] {
                        b'[' => depth += 1,
                        b']' => depth -= 1,
                        _ => {}
                    }
                }
                k += 1;
            }
        }
        while k < code.len() && !(code[k].kind == TokKind::Punct && bytes[code[k].start] == b'{') {
            // A `;`-terminated item (e.g. `#[cfg(test)] use …;`) has no
            // body to exempt.
            if code[k].kind == TokKind::Punct && bytes[code[k].start] == b';' {
                break;
            }
            k += 1;
        }
        if k < code.len() && code[k].kind == TokKind::Punct && bytes[code[k].start] == b'{' {
            let open = k;
            let mut depth = 0usize;
            while k < code.len() {
                if code[k].kind == TokKind::Punct {
                    match bytes[code[k].start] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                k += 1;
            }
            let end = code.get(k).map_or(src.len(), |t| t.end);
            regions.push((code[open].start, end));
        }
        i = k.max(j);
    }
    regions
}

/// Parses `audit: allow(A00x, reason)` out of comment tokens. Malformed
/// annotations (unknown code, missing reason) are ignored — they do not
/// suppress, which the corpus pins.
fn find_allows(src: &str, toks: &[Tok]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for t in toks {
        if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        let text = &src[t.start..t.end];
        let Some(at) = text.find("audit: allow(") else {
            continue;
        };
        let args = &text[at + "audit: allow(".len()..];
        let Some(close) = args.find(')') else {
            continue;
        };
        let Some((code, reason)) = args[..close].split_once(',') else {
            continue; // no reason — does not suppress
        };
        if reason.trim().is_empty() {
            continue;
        }
        let Some(code) = codes::intern(code.trim()) else {
            continue;
        };
        let (line, _) = line_col(src, t.end.saturating_sub(1));
        let line_start = src[..t.start].rfind('\n').map_or(0, |i| i + 1);
        let standalone = src[line_start..t.start].trim().is_empty();
        allows.push(Allow {
            code,
            line,
            standalone,
        });
    }
    allows
}

// ---- A001: unwrap/expect outside test code ---------------------------------

/// Rule: an identifier `unwrap` or `expect` preceded by `.` and followed
/// by `(` in non-test library code. Exempt: test-context files, test
/// regions, annotated lines.
fn pass_unwrap(cx: &FileCx<'_>, findings: &mut Vec<Finding>) {
    if cx.test_context {
        return;
    }
    for i in 0..cx.code.len() {
        let Some(name @ ("unwrap" | "expect")) = cx.ident_at(i) else {
            continue;
        };
        if !(cx.punct_at(i.wrapping_sub(1), b'.') && cx.punct_at(i + 1, b'(')) {
            continue;
        }
        let tok = cx.code[i];
        if cx.in_test_region(tok.start) || cx.allowed(codes::UNWRAP_IN_LIB, tok.start) {
            continue;
        }
        findings.push(cx.finding(
            codes::UNWRAP_IN_LIB,
            &tok,
            format!("`{name}()` in non-test code is a panic path; return the error or annotate `// audit: allow(A001, reason)`"),
        ));
    }
}

// ---- A002: hash-order iteration in a serialising module --------------------

/// Markers that a module renders JSON or canonical text.
const SERIALISE_MARKERS: &[&str] = &[
    "to_json",
    "ToJson",
    "to_canonical_text",
    "to_string_compact",
    "to_string_pretty",
    "write_json",
];

/// Order-sensitive iteration methods on hash collections.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
];

/// Rule: in a module that also serialises (any [`SERIALISE_MARKERS`]
/// identifier appears), iterating an identifier bound to a
/// `HashMap`/`HashSet` — via `.iter()`-family calls or a `for … in`
/// loop — is flagged. Bindings are recognised from `name: HashMap<…>`
/// (fields, params) and `let name = HashMap::new()`-style initialisers
/// in the same file; membership-only use (`get`/`insert`/`contains`)
/// stays clean, which is why `aa-core`'s CNF dedup sets pass.
fn pass_hash_iteration(cx: &FileCx<'_>, findings: &mut Vec<Finding>) {
    let serialises = cx
        .code
        .iter()
        .any(|t| t.kind == TokKind::Ident && SERIALISE_MARKERS.contains(&cx.txt(t)));
    if !serialises {
        return;
    }
    // Collect identifiers bound to hash collections.
    let mut bound: BTreeSet<&str> = BTreeSet::new();
    for i in 0..cx.code.len() {
        let Some("HashMap" | "HashSet") = cx.ident_at(i) else {
            continue;
        };
        // Walk back over path and reference syntax (`: &'a std ::
        // collections ::`) to the binder: `name :` (field, param, typed
        // let) or `=` (initialiser).
        let mut j = i;
        while j > 0 {
            j -= 1;
            let t = &cx.code[j];
            match t.kind {
                TokKind::Ident => match cx.txt(t) {
                    "std" | "collections" | "mut" => continue,
                    _ => break,
                },
                TokKind::Lifetime => continue,
                TokKind::Punct => match cx.src.as_bytes()[t.start] {
                    b':' | b'&' => continue,
                    _ => break,
                },
                _ => break,
            }
        }
        if let Some(name) = cx.ident_at(j) {
            // `name : … HashMap` — a field, param, or typed let. Keywords
            // reached through `use`/`for`/`impl` items are not binders.
            if !matches!(
                name,
                "let" | "use" | "pub" | "for" | "in" | "fn" | "impl" | "where" | "as" | "return"
            ) {
                bound.insert(name);
            }
        } else if cx.punct_at(j, b'=') {
            // `let [mut] name = HashMap::new()` / `= HashMap::from(…)`.
            let mut k = j;
            while k > 0 {
                k -= 1;
                if let Some(name) = cx.ident_at(k) {
                    if name != "mut" {
                        bound.insert(name);
                        break;
                    }
                } else {
                    break;
                }
            }
        }
    }
    if bound.is_empty() {
        return;
    }
    for i in 0..cx.code.len() {
        let Some(name) = cx.ident_at(i) else { continue };
        if !bound.contains(name) {
            continue;
        }
        let tok = cx.code[i];
        // `name.iter()` family.
        let method_call = cx.punct_at(i + 1, b'.')
            && cx
                .ident_at(i + 2)
                .is_some_and(|m| HASH_ITER_METHODS.contains(&m))
            && cx.punct_at(i + 3, b'(');
        // `for x in [&][mut] name {` — the loop desugars to iteration.
        let for_loop = (cx.punct_at(i + 1, b'{'))
            && (0..=3).any(|back| {
                let j = i.wrapping_sub(back + 1);
                cx.ident_at(j) == Some("in")
            });
        if !(method_call || for_loop) {
            continue;
        }
        if cx.allowed(codes::HASH_ITERATION, tok.start) {
            continue;
        }
        findings.push(cx.finding(
            codes::HASH_ITERATION,
            &tok,
            format!("iteration over hash collection `{name}` in a serialising module has nondeterministic order; use BTreeMap/BTreeSet or sort first"),
        ));
    }
}

// ---- A003: wall-clock reads outside allowlisted clock modules --------------

/// Rule: `Instant::now` / `SystemTime::now` in non-test library code
/// whose path is not under `[clock] allow` in audit.toml.
fn pass_wall_clock(cx: &FileCx<'_>, config: &AuditConfig, findings: &mut Vec<Finding>) {
    if cx.test_context || config.clock_allowed(cx.path) {
        return;
    }
    for i in 0..cx.code.len() {
        let Some(clock @ ("Instant" | "SystemTime")) = cx.ident_at(i) else {
            continue;
        };
        if !(cx.punct_at(i + 1, b':') && cx.punct_at(i + 2, b':') && cx.ident_at(i + 3) == Some("now"))
        {
            continue;
        }
        let tok = cx.code[i];
        if cx.in_test_region(tok.start) || cx.allowed(codes::WALL_CLOCK, tok.start) {
            continue;
        }
        findings.push(cx.finding(
            codes::WALL_CLOCK,
            &tok,
            format!("`{clock}::now` outside the allowlisted clock modules breaks replay determinism; route through an allowlisted module or annotate"),
        ));
    }
}

// ---- A004: semantic float equality -----------------------------------------

/// Rule: `==` / `!=` with a float-literal operand in non-test library
/// code. The kernel contract (PR 6) is `to_bits` equality; semantic
/// float comparison hides `-0.0`/`NaN` divergence. Zero-width guards
/// (`width == 0.0`) are legitimate but must say so with an annotation —
/// legacy ones live in the baseline.
fn pass_float_eq(cx: &FileCx<'_>, findings: &mut Vec<Finding>) {
    if cx.test_context {
        return;
    }
    for i in 0..cx.code.len() {
        // Recognise `==` / `!=` from adjacent single-byte puncts.
        let (first, second) = (cx.code[i], cx.code.get(i + 1).copied());
        let Some(second) = second else { continue };
        if first.kind != TokKind::Punct || second.kind != TokKind::Punct {
            continue;
        }
        let b0 = cx.src.as_bytes()[first.start];
        let b1 = cx.src.as_bytes()[second.start];
        if !((b0 == b'=' || b0 == b'!') && b1 == b'=' && first.end == second.start) {
            continue;
        }
        // Not `<=`, `>=`, `==` tails: previous punct glued to `=` means a
        // different operator.
        if i > 0 {
            let prev = cx.code[i - 1];
            if prev.kind == TokKind::Punct
                && prev.end == first.start
                && matches!(cx.src.as_bytes()[prev.start], b'=' | b'!' | b'<' | b'>')
            {
                continue;
            }
        }
        // Operands: token before the operator, token after (skipping a
        // unary minus).
        let lhs_float = i > 0 && cx.code[i - 1].is_float_literal(cx.src);
        let mut rhs = i + 2;
        if cx.punct_at(rhs, b'-') {
            rhs += 1;
        }
        let rhs_float = cx.code.get(rhs).is_some_and(|t| t.is_float_literal(cx.src));
        if !(lhs_float || rhs_float) {
            continue;
        }
        if cx.in_test_region(first.start) || cx.allowed(codes::FLOAT_EQ, first.start) {
            continue;
        }
        let op = if b0 == b'!' { "!=" } else { "==" };
        findings.push(cx.finding(
            codes::FLOAT_EQ,
            &first,
            format!("float `{op}` against a literal; the workspace contract is bit-exactness (`to_bits`) — compare bits, restructure, or annotate"),
        ));
    }
}

// ---- A005: crate roots must forbid unsafe code -----------------------------

/// Paths that are crate roots: `src/lib.rs`, `src/main.rs`, `src/bin/*.rs`,
/// `benches/*.rs`, and workspace `examples/*.rs`.
pub fn is_crate_root(path: &str) -> bool {
    path.ends_with("/src/lib.rs")
        || path.ends_with("/src/main.rs")
        || (path.contains("/src/bin/") && path.ends_with(".rs"))
        || (path.contains("/benches/") && path.ends_with(".rs"))
        || (path.starts_with("examples/") && path.ends_with(".rs"))
}

/// Rule: a crate root must carry the inner attribute
/// `#![forbid(unsafe_code)]`.
fn pass_forbid_unsafe(cx: &FileCx<'_>, findings: &mut Vec<Finding>) {
    if !is_crate_root(cx.path) {
        return;
    }
    for i in 0..cx.code.len() {
        if cx.punct_at(i, b'#')
            && cx.punct_at(i + 1, b'!')
            && cx.punct_at(i + 2, b'[')
            && cx.ident_at(i + 3) == Some("forbid")
            && cx.punct_at(i + 4, b'(')
            && cx.ident_at(i + 5) == Some("unsafe_code")
        {
            return;
        }
    }
    let anchor = Tok {
        kind: TokKind::Punct,
        start: 0,
        end: 1.min(cx.src.len()),
    };
    findings.push(cx.finding(
        codes::MISSING_FORBID_UNSAFE,
        &anchor,
        "crate root is missing `#![forbid(unsafe_code)]` (hermetic-build policy: the workspace is fully safe)".to_string(),
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let cx = FileCx::new(path, src);
        run_file_passes(&cx, &AuditConfig::default())
    }

    #[test]
    fn unwrap_flagged_in_lib_not_in_tests_or_strings() {
        let src = r#"
fn f(x: Option<u32>) -> u32 { x.unwrap() }
fn g() { let s = "x.unwrap()"; let _ = s; } // inside a string: clean
#[cfg(test)]
mod tests {
    fn h(x: Option<u32>) -> u32 { x.unwrap() }
}
"#;
        let findings = run("crates/demo/src/lib.rs", src);
        let unwraps: Vec<_> = findings.iter().filter(|f| f.code == "A001").collect();
        assert_eq!(unwraps.len(), 1, "{findings:?}");
        assert_eq!((unwraps[0].line, unwraps[0].col), (2, 33));
        // Same file under tests/ is exempt wholesale.
        assert!(run("crates/demo/tests/t.rs", src).iter().all(|f| f.code != "A001"));
    }

    #[test]
    fn allow_annotation_requires_reason_and_known_code() {
        let base = "fn f(x: Option<u32>) -> u32 {\n";
        let with = |line: &str| format!("{base}    {line}\n}}\n");
        // Trailing allow with reason suppresses.
        let ok = with("x.unwrap() // audit: allow(A001, poisoned lock is unrecoverable)");
        assert!(run("crates/d/src/inner.rs", &ok).is_empty());
        // Standalone allow above the line suppresses.
        let above = format!(
            "{base}    // audit: allow(A001, startup-only path)\n    x.unwrap()\n}}\n"
        );
        assert!(run("crates/d/src/inner.rs", &above).is_empty());
        // Missing reason does not.
        let bad = with("x.unwrap() // audit: allow(A001)");
        assert_eq!(run("crates/d/src/inner.rs", &bad).len(), 1);
        // Unknown code does not.
        let bad = with("x.unwrap() // audit: allow(A999, whatever)");
        assert_eq!(run("crates/d/src/inner.rs", &bad).len(), 1);
    }

    #[test]
    fn hash_iteration_only_fires_in_serialising_modules() {
        let iterating = r#"
use std::collections::HashMap;
struct S { map: HashMap<String, u32> }
impl S {
    fn to_json(&self) -> String {
        let mut out = String::new();
        for (k, v) in self.map.iter() { out.push_str(k); let _ = v; }
        out
    }
}
"#;
        let findings = run("crates/d/src/inner.rs", iterating);
        assert_eq!(findings.iter().filter(|f| f.code == "A002").count(), 1);
        // Without a serialise marker the same iteration is clean.
        let plain = iterating.replace("to_json", "render");
        assert!(run("crates/d/src/inner.rs", &plain).is_empty());
        // Membership-only use is clean even in a serialising module.
        let membership = r#"
use std::collections::HashSet;
fn to_json(seen: &HashSet<u32>) -> bool { seen.contains(&1) }
"#;
        assert!(run("crates/d/src/inner.rs", membership).is_empty());
    }

    #[test]
    fn for_loop_over_hash_map_fires() {
        let src = r#"
use std::collections::HashMap;
fn to_json(map: &HashMap<String, u32>) -> u32 {
    let mut sum = 0;
    for (_k, v) in map { sum += v; }
    sum
}
"#;
        let findings = run("crates/d/src/inner.rs", src);
        assert_eq!(findings.iter().filter(|f| f.code == "A002").count(), 1);
    }

    #[test]
    fn wall_clock_respects_allowlist_and_test_regions() {
        let src = "fn f() -> std::time::Instant { std::time::Instant::now() }";
        let mut config = AuditConfig::default();
        let cx = FileCx::new("crates/d/src/inner.rs", src);
        let findings = run_file_passes(&cx, &config);
        assert_eq!(findings.iter().filter(|f| f.code == "A003").count(), 1);
        config.clock_allow = vec!["crates/d/".to_string()];
        assert!(run_file_passes(&cx, &config).is_empty());
    }

    #[test]
    fn float_eq_flags_literal_comparisons_only() {
        let flagged = "fn f(x: f64) -> bool { x == 0.0 }";
        assert_eq!(run("crates/d/src/inner.rs", flagged).len(), 1);
        let neq = "fn f(x: f64) -> bool { x != 1.5 }";
        assert_eq!(run("crates/d/src/inner.rs", neq).len(), 1);
        let negative = "fn f(x: f64) -> bool { x == -2.5 }";
        assert_eq!(run("crates/d/src/inner.rs", negative).len(), 1);
        // Ordering comparisons and int literals are clean.
        for clean in [
            "fn f(x: f64) -> bool { x <= 0.5 }",
            "fn f(x: f64) -> bool { x >= 0.5 }",
            "fn f(x: u32) -> bool { x == 0 }",
            "fn f(a: f64, b: f64) -> bool { a.to_bits() == b.to_bits() }",
        ] {
            assert!(run("crates/d/src/inner.rs", clean).is_empty(), "{clean}");
        }
    }

    #[test]
    fn forbid_unsafe_checked_on_crate_roots_only() {
        let bare = "//! docs\nfn main() {}\n";
        let findings = run("crates/d/src/bin/tool.rs", bare);
        assert_eq!(findings.iter().filter(|f| f.code == "A005").count(), 1);
        assert_eq!(findings[0].line, 1);
        let good = "//! docs\n#![forbid(unsafe_code)]\nfn main() {}\n";
        assert!(run("crates/d/src/bin/tool.rs", good).is_empty());
        // Non-root modules are not checked.
        assert!(run("crates/d/src/util.rs", bare).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = r#"
#[cfg(not(test))]
fn f(x: Option<u32>) -> u32 { x.unwrap() }
"#;
        let findings = run("crates/d/src/inner.rs", src);
        assert_eq!(findings.iter().filter(|f| f.code == "A001").count(), 1);
    }
}

#![forbid(unsafe_code)]
//! `audit` — run the workspace invariant checker.
//!
//! ```text
//! audit [--root DIR] [--config FILE] [--baseline FILE]
//!       [--write-baseline] [--locks]
//! ```
//!
//! Exit codes: `0` clean (all findings baselined), `1` new findings,
//! `2` usage or configuration error.

use aa_audit::{baseline::Baseline, codes, config::AuditConfig, run_audit};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    config: PathBuf,
    baseline: PathBuf,
    write_baseline: bool,
    locks: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut root = PathBuf::from(".");
    let mut config: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut write_baseline = false;
    let mut locks = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut path_value = |name: &str| {
            it.next()
                .map(PathBuf::from)
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--root" => root = path_value("--root")?,
            "--config" => config = Some(path_value("--config")?),
            "--baseline" => baseline = Some(path_value("--baseline")?),
            "--write-baseline" => write_baseline = true,
            "--locks" => locks = true,
            "--help" | "-h" => {
                return Err("usage: audit [--root DIR] [--config FILE] [--baseline FILE] [--write-baseline] [--locks]".to_string())
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(Args {
        config: config.unwrap_or_else(|| root.join("audit.toml")),
        baseline: baseline.unwrap_or_else(|| root.join("audit_baseline.json")),
        root,
        write_baseline,
        locks,
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("audit: {message}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    let config_text = std::fs::read_to_string(&args.config)
        .map_err(|e| format!("cannot read policy {}: {e}", args.config.display()))?;
    let config = AuditConfig::parse(&config_text).map_err(|e| e.to_string())?;
    let outcome = run_audit(&args.root, &config)?;

    if args.locks {
        println!("lock acquisition sites ({}):", outcome.lock_sites.len());
        for site in &outcome.lock_sites {
            let rank = match site.rank {
                Some(r) => format!("rank {r}"),
                None => "UNDECLARED".to_string(),
            };
            println!(
                "  {}:{}:{}  {}.{}()  [{rank}]",
                site.path, site.line, site.col, site.lock, site.method
            );
        }
        return Ok(ExitCode::SUCCESS);
    }

    if args.write_baseline {
        let frozen = Baseline::from_findings(&outcome.findings);
        std::fs::write(&args.baseline, frozen.to_json_string())
            .map_err(|e| format!("cannot write {}: {e}", args.baseline.display()))?;
        println!(
            "audit: froze {} finding(s) into {}",
            frozen.len(),
            args.baseline.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let baseline = match std::fs::read_to_string(&args.baseline) {
        Ok(text) => Baseline::parse(&text)
            .map_err(|e| format!("{}: {e}", args.baseline.display()))?,
        Err(_) => Baseline::default(),
    };
    let diff = baseline.diff(&outcome.findings);

    for f in &diff.fresh {
        println!("{}", outcome.render(f));
        if let Some(desc) = codes::describe(f.code) {
            println!("  = {}: {desc}", f.code);
        }
        println!();
    }
    for (file, code, text, count) in &diff.fixed {
        println!("fixed (remove from baseline): {file} {code} x{count}  `{text}`");
    }
    println!(
        "audit: {} file(s), {} finding(s): {} baselined, {} new, {} fixed",
        outcome.files_scanned,
        outcome.findings.len(),
        diff.baselined,
        diff.fresh.len(),
        diff.fixed.len()
    );
    if diff.fresh.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::from(1))
    }
}

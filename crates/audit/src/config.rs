//! `audit.toml`: the checked-in policy the passes consult.
//!
//! The parser handles the TOML subset the policy file actually needs —
//! `[section]` headers, `key = "string"`, `key = true/false`, and
//! (possibly multi-line) `key = ["a", "b"]` string arrays, with `#`
//! comments — in the same spirit as the in-tree JSON module: no external
//! dependency, deterministic errors with line numbers.

use std::fmt;

/// Parse failure with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "audit.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// The audit policy.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditConfig {
    /// Directories (repo-relative) whose `.rs` files are scanned.
    pub scan_roots: Vec<String>,
    /// Path prefixes excluded from scanning (the self-test corpus of
    /// intentionally broken snippets lives here).
    pub scan_exclude: Vec<String>,
    /// Path prefixes allowed to read wall clocks (A003): bench harnesses,
    /// deadline enforcement, socket timeouts.
    pub clock_allow: Vec<String>,
    /// Declared lock acquisition order (A007): when two locks nest, the
    /// one earlier in this list must be acquired first. Also the universe
    /// of declared locks — acquiring a lock-shaped receiver not listed
    /// here is itself a finding.
    pub lock_order: Vec<String>,
    /// Method names treated as blocking while a guard is held (A007).
    pub lock_blocking: Vec<String>,
}

impl AuditConfig {
    /// The rank of a lock in the declared order.
    pub fn lock_rank(&self, name: &str) -> Option<usize> {
        self.lock_order.iter().position(|l| l == name)
    }

    /// Whether `path` (repo-relative, `/`-separated) may read wall clocks.
    pub fn clock_allowed(&self, path: &str) -> bool {
        self.clock_allow.iter().any(|p| path.starts_with(p.as_str()))
    }

    /// Whether `path` is excluded from scanning.
    pub fn excluded(&self, path: &str) -> bool {
        self.scan_exclude.iter().any(|p| path.starts_with(p.as_str()))
    }

    /// Parses the policy file.
    pub fn parse(text: &str) -> Result<AuditConfig, ConfigError> {
        let mut config = AuditConfig::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((i, raw)) = lines.next() {
            let line_no = i + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError {
                    line: line_no,
                    message: format!("expected `key = value`, got `{line}`"),
                });
            };
            let key = key.trim();
            let mut value = value.trim().to_string();
            // A multi-line array keeps consuming lines until the `]`.
            if value.starts_with('[') && !value.ends_with(']') {
                for (_, cont) in lines.by_ref() {
                    value.push(' ');
                    value.push_str(strip_comment(cont).trim());
                    if value.ends_with(']') {
                        break;
                    }
                }
            }
            let target = match (section.as_str(), key) {
                ("scan", "roots") => &mut config.scan_roots,
                ("scan", "exclude") => &mut config.scan_exclude,
                ("clock", "allow") => &mut config.clock_allow,
                ("locks", "order") => &mut config.lock_order,
                ("locks", "blocking") => &mut config.lock_blocking,
                _ => {
                    return Err(ConfigError {
                        line: line_no,
                        message: format!("unknown key `[{section}] {key}`"),
                    })
                }
            };
            *target = parse_string_array(&value).map_err(|message| ConfigError {
                line: line_no,
                message,
            })?;
        }
        Ok(config)
    }
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, b) in line.bytes().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string_array(value: &str) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("expected a string array, got `{value}`"))?;
    let mut items = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue; // trailing comma
        }
        let item = part
            .strip_prefix('"')
            .and_then(|p| p.strip_suffix('"'))
            .ok_or_else(|| format!("expected a quoted string, got `{part}`"))?;
        items.push(item.to_string());
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_policy_shape() {
        let text = r#"
# policy
[scan]
roots = ["crates", "examples"]
exclude = ["crates/audit/tests/corpus/"]

[clock]
allow = [
    "crates/bench/",   # harness timing
    "crates/core/src/runner.rs",
]

[locks]
order = ["state", "stats"]
blocking = ["send", "recv"]
"#;
        let config = AuditConfig::parse(text).unwrap();
        assert_eq!(config.scan_roots, vec!["crates", "examples"]);
        assert_eq!(config.lock_rank("state"), Some(0));
        assert_eq!(config.lock_rank("stats"), Some(1));
        assert_eq!(config.lock_rank("inner"), None);
        assert!(config.clock_allowed("crates/bench/src/perf.rs"));
        assert!(config.clock_allowed("crates/core/src/runner.rs"));
        assert!(!config.clock_allowed("crates/core/src/pipeline.rs"));
        assert!(config.excluded("crates/audit/tests/corpus/bad.rs"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = AuditConfig::parse("[scan]\nroots = oops").unwrap_err();
        assert_eq!(err.line, 2);
        let err = AuditConfig::parse("[nope]\nkey = [\"x\"]").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown key"));
    }
}

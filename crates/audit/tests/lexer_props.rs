//! aa-prop properties of the audit tokenizer and passes.
//!
//! The lexer's contract (see `aa_audit::lexer`) is boundary exactness:
//! tokens tile the input, and string/char/comment content is opaque to
//! every pass. Both properties are checked on randomly assembled
//! programs built from self-contained fragments — each fragment lexes to
//! a known token sequence on its own, so the assembled program's token
//! stream must be exactly the concatenation of the fragments' streams.

use aa_audit::config::AuditConfig;
use aa_audit::lexer::{lex, TokKind};
use aa_audit::locks;
use aa_audit::passes::{self, FileCx};
use aa_prop::{check, Config, Source};

/// Self-contained fragments: every entry lexes to complete tokens in
/// isolation. The hostile ones hide pass-trigger text (`.unwrap()`,
/// `Instant::now()`, `== 0.0`, `.lock()`) inside literals and comments
/// where no pass may see it.
const FRAGMENTS: &[&str] = &[
    "fn",
    "let",
    "widget",
    "x",
    "1.5",
    "42",
    "0x1f",
    "1e-3",
    "7f64",
    "'a'",
    r"'\''",
    "'static",
    "b'x'",
    "r#type",
    "{",
    "}",
    "(",
    ")",
    ";",
    ",",
    "+",
    "\"plain string\"",
    "\"x.unwrap() inside a string\"",
    "\"Instant::now() == 0.0\"",
    r#"r"raw .expect( text""#,
    r##"r#"hash raw "quoted" .lock().recv()"#"##,
    "b\"SystemTime::now() bytes\"",
    "// line comment with x.unwrap() and y.lock().recv()\n",
    "/* block comment: Instant::now() == 0.0 */",
    "/* nested /* x.expect( */ still comment */",
];

fn assemble(s: &mut Source) -> String {
    let parts = s.vec_of(1, 40, |s| *s.choice(FRAGMENTS));
    let mut program = String::new();
    for part in parts {
        program.push_str(part);
        // Line comments already end in a newline; everything else gets a
        // random whitespace separator so fragments can never merge.
        if !part.ends_with('\n') {
            program.push(*s.choice(&[' ', '\n', '\t']));
        }
    }
    program
}

#[test]
fn assembled_programs_tokenize_as_the_concatenation_of_their_fragments() {
    check(Config::cases(512), |s| {
        let parts = s.vec_of(1, 40, |s| *s.choice(FRAGMENTS));
        let mut program = String::new();
        let mut expected: Vec<(TokKind, String)> = Vec::new();
        for part in parts {
            for t in lex(part) {
                expected.push((t.kind, t.text(part).to_string()));
            }
            program.push_str(part);
            if !part.ends_with('\n') {
                program.push(*s.choice(&[' ', '\n', '\t']));
            }
        }
        let got: Vec<(TokKind, String)> = lex(&program)
            .iter()
            .map(|t| (t.kind, t.text(&program).to_string()))
            .collect();
        assert_eq!(got, expected, "program: {program:?}");
    });
}

#[test]
fn tokens_always_tile_the_input() {
    check(Config::cases(512), |s| {
        let program = assemble(s);
        let toks = lex(&program);
        let mut prev_end = 0;
        for t in &toks {
            assert!(t.start >= prev_end, "overlap at {} in {program:?}", t.start);
            assert!(t.end > t.start, "empty token at {} in {program:?}", t.start);
            assert!(
                program[prev_end..t.start]
                    .bytes()
                    .all(|b| b.is_ascii_whitespace()),
                "gap {}..{} not whitespace in {program:?}",
                prev_end,
                t.start
            );
            prev_end = t.end;
        }
        assert!(
            program[prev_end..].bytes().all(|b| b.is_ascii_whitespace()),
            "trailing garbage in {program:?}"
        );
    });
}

#[test]
fn no_pass_fires_inside_strings_or_comments() {
    let config = AuditConfig {
        lock_order: vec!["alpha".to_string()],
        lock_blocking: vec!["send".to_string(), "recv".to_string()],
        ..AuditConfig::default()
    };
    check(Config::cases(512), |s| {
        let program = assemble(s);
        let cx = FileCx::new("crates/fuzzed/src/inner.rs", &program);
        let mut findings = passes::run_file_passes(&cx, &config);
        let mut sites = Vec::new();
        locks::pass_locks(&cx, &config, &mut sites, &mut findings);
        // Every trigger spelling lives inside a literal or comment, so no
        // pass may produce a finding and no lock site may be extracted.
        assert!(
            findings.is_empty() && sites.is_empty(),
            "pass fired inside literal/comment content: {findings:?} {sites:?}\nprogram: {program:?}"
        );
    });
}

//! Pins aa-serve's lock architecture against the declared order.
//!
//! The A007 pass extracts every `Mutex`/`RwLock` acquisition site in the
//! workspace; this test freezes the aa-serve inventory — which locks
//! exist, by which method, how often per file — so a new acquisition
//! site (or a renamed lock) shows up as an explicit diff here *and* must
//! be ranked in audit.toml before the audit gate passes. Line numbers
//! are deliberately not pinned; the shape of the lock graph is.

use aa_audit::{config::AuditConfig, run_audit};
use std::collections::BTreeMap;
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn aa_serve_lock_sites_match_the_declared_order() {
    let root = repo_root();
    let policy = std::fs::read_to_string(root.join("audit.toml")).expect("audit.toml exists");
    let config = AuditConfig::parse(&policy).expect("audit.toml parses");
    let outcome = run_audit(&root, &config).expect("audit runs");

    // Every acquisition site in the workspace resolves to a declared rank.
    let undeclared: Vec<_> = outcome
        .lock_sites
        .iter()
        .filter(|s| s.rank.is_none())
        .collect();
    assert!(undeclared.is_empty(), "undeclared locks: {undeclared:?}");

    // The aa-serve inventory, as (file, lock, method) -> site count.
    let mut counts: BTreeMap<(String, String, String), usize> = BTreeMap::new();
    for site in outcome
        .lock_sites
        .iter()
        .filter(|s| s.path.starts_with("crates/serve/"))
    {
        *counts
            .entry((site.path.clone(), site.lock.clone(), site.method.clone()))
            .or_insert(0) += 1;
    }
    let expected: BTreeMap<(String, String, String), usize> = [
        (("crates/serve/src/cache.rs", "inner", "lock"), 6),
        (("crates/serve/src/engine.rs", "breakers", "lock"), 3),
        (("crates/serve/src/engine.rs", "evolve", "lock"), 2),
        (("crates/serve/src/engine.rs", "state", "read"), 1),
        (("crates/serve/src/engine.rs", "state", "write"), 1),
        (("crates/serve/src/engine.rs", "stats", "lock"), 21),
        (("crates/serve/src/router.rs", "fleet", "lock"), 9),
        (("crates/serve/src/router.rs", "handoff", "lock"), 8),
        (("crates/serve/src/router.rs", "health", "lock"), 6),
        (("crates/serve/src/router.rs", "link", "lock"), 2),
        (("crates/serve/src/server.rs", "rx", "lock"), 1),
        (("crates/serve/src/tenant.rs", "ledger", "lock"), 3),
    ]
    .into_iter()
    .map(|((p, l, m), n)| ((p.to_string(), l.to_string(), m.to_string()), n))
    .collect();
    assert_eq!(counts, expected, "aa-serve lock inventory changed: update this pin AND rank any new lock in audit.toml");

    // The declared order is total over every lock the workspace uses, and
    // the one deliberate guard-across-recv site (server.rs worker pull)
    // is annotated, so the pass reports no A007 findings at all.
    assert!(
        outcome.findings.iter().all(|f| f.code != "A007"),
        "unexpected A007 findings: {:?}",
        outcome
            .findings
            .iter()
            .filter(|f| f.code == "A007")
            .collect::<Vec<_>>()
    );
}

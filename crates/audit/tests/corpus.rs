//! The self-test corpus: every `A0xx` pass pinned bit-exactly.
//!
//! Each file under `tests/corpus/` carries directives in comments:
//!
//! * `//~PATH: <virtual path>` (or `#~PATH:` in TOML) — the repo-relative
//!   path the file pretends to live at, because pass behaviour depends on
//!   it (test-context exemptions, crate-root checks, clock allowlists);
//! * `//~EXPECT: <code> <line> <col>` — one expected finding. The full
//!   multiset of findings must match the directives exactly: a missing
//!   finding, an extra finding, or a shifted position all fail.
//!
//! The corpus directory is excluded from the workspace audit scan
//! (`[scan] exclude` in audit.toml) precisely because these files violate
//! invariants on purpose.

use aa_audit::config::AuditConfig;
use aa_audit::locks;
use aa_audit::manifest;
use aa_audit::passes::{self, FileCx};
use std::path::Path;

/// The fixed policy corpus files are audited under (documented in each
/// file's header where it matters): clock reads are allowed under
/// `crates/clockok/`, the declared lock order is `alpha` before `beta`,
/// and `send`/`recv`/`join` block.
fn corpus_config() -> AuditConfig {
    AuditConfig::parse(
        r#"
[scan]
roots = []

[clock]
allow = ["crates/clockok/"]

[locks]
order = ["alpha", "beta"]
blocking = ["send", "recv", "join"]
"#,
    )
    .expect("corpus policy parses")
}

/// Parses `~PATH` / `~EXPECT` directives out of a corpus file.
fn directives(text: &str, file: &Path) -> (String, Vec<(String, usize, usize)>) {
    let mut virtual_path = None;
    let mut expects = Vec::new();
    for line in text.lines() {
        let trimmed = line.trim();
        let body = trimmed
            .strip_prefix("//~")
            .or_else(|| trimmed.strip_prefix("#~"));
        let Some(body) = body else { continue };
        if let Some(p) = body.strip_prefix("PATH:") {
            virtual_path = Some(p.trim().to_string());
        } else if let Some(e) = body.strip_prefix("EXPECT:") {
            let parts: Vec<&str> = e.split_whitespace().collect();
            assert_eq!(parts.len(), 3, "{}: bad EXPECT `{e}`", file.display());
            expects.push((
                parts[0].to_string(),
                parts[1].parse().expect("line"),
                parts[2].parse().expect("col"),
            ));
        }
    }
    let virtual_path =
        virtual_path.unwrap_or_else(|| panic!("{}: missing ~PATH directive", file.display()));
    (virtual_path, expects)
}

#[test]
fn corpus_findings_are_pinned_exactly() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let config = corpus_config();
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("corpus dir exists")
        .map(|e| e.expect("dir entry").path())
        .collect();
    entries.sort();
    assert!(entries.len() >= 10, "corpus unexpectedly small: {entries:?}");

    for file in entries {
        let text = std::fs::read_to_string(&file).expect("corpus file reads");
        let (virtual_path, mut expects) = directives(&text, &file);
        let mut got: Vec<(String, usize, usize)> = Vec::new();
        if file.extension().is_some_and(|e| e == "toml") {
            for f in manifest::audit_manifest(&virtual_path, &text) {
                got.push((f.code.to_string(), f.line, f.col));
            }
        } else {
            let cx = FileCx::new(&virtual_path, &text);
            let mut findings = passes::run_file_passes(&cx, &config);
            let mut sites = Vec::new();
            locks::pass_locks(&cx, &config, &mut sites, &mut findings);
            for f in findings {
                got.push((f.code.to_string(), f.line, f.col));
            }
        }
        got.sort();
        expects.sort();
        assert_eq!(
            got,
            expects,
            "{} (as {virtual_path}): findings diverged from ~EXPECT directives",
            file.display()
        );
    }
}

/// The allow-annotation grammar round-trips through real pass output:
/// taking a corpus finding, planting the annotation the finding's own
/// message suggests, and re-running must suppress exactly that finding.
#[test]
fn allow_roundtrip_suppresses_exactly_the_annotated_finding() {
    let config = corpus_config();
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n\
               pub fn g(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    let cx = FileCx::new("crates/demo/src/inner.rs", src);
    let before = passes::run_file_passes(&cx, &config);
    assert_eq!(before.len(), 2);

    // Annotate the first finding's line, leave the second alone.
    let annotated = src.replacen(
        "    x.unwrap()\n",
        "    x.unwrap() // audit: allow(A001, roundtrip test)\n",
        1,
    );
    let cx = FileCx::new("crates/demo/src/inner.rs", &annotated);
    let after = passes::run_file_passes(&cx, &config);
    assert_eq!(after.len(), 1, "{after:?}");
    assert_eq!(after[0].line, 5);
}

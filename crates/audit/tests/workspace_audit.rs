//! The workspace audit gate, as a test: `cargo test` fails on any new
//! finding, not just `scripts/ci.sh`.
//!
//! Runs the full audit over the repo with the checked-in policy and
//! baseline. Fresh findings (not frozen in `audit_baseline.json`) fail
//! with their rendered diagnostics; stale baseline entries (violations
//! that were fixed but not removed from the baseline) also fail, so the
//! ratchet only ever tightens.

use aa_audit::{baseline::Baseline, config::AuditConfig, run_audit};
use std::path::PathBuf;

#[test]
fn workspace_has_no_findings_beyond_the_baseline() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let policy = std::fs::read_to_string(root.join("audit.toml")).expect("audit.toml exists");
    let config = AuditConfig::parse(&policy).expect("audit.toml parses");
    let outcome = run_audit(&root, &config).expect("audit runs");
    let baseline_text = std::fs::read_to_string(root.join("audit_baseline.json"))
        .expect("audit_baseline.json exists");
    let baseline = Baseline::parse(&baseline_text).expect("baseline parses");

    let diff = baseline.diff(&outcome.findings);
    if !diff.fresh.is_empty() {
        let rendered: Vec<String> = diff.fresh.iter().map(|f| outcome.render(f)).collect();
        panic!(
            "{} new audit finding(s):\n{}",
            diff.fresh.len(),
            rendered.join("\n")
        );
    }
    assert!(
        diff.fixed.is_empty(),
        "baseline is stale — these entries no longer occur, regenerate with \
         `cargo run -p aa-audit --bin audit -- --root . --write-baseline`: {:?}",
        diff.fixed
    );
}

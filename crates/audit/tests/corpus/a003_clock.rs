//~PATH: crates/demo/src/inner.rs
//! A003 corpus: wall-clock reads outside allowlisted modules.

use std::time::{Duration, Instant, SystemTime};

pub fn naive_timing() -> Duration {
    let start = Instant::now();
    start.elapsed()
}

pub fn naive_stamp() -> SystemTime {
    SystemTime::now()
}

pub fn allowed_probe() -> Instant {
    // audit: allow(A003, corpus: deliberate probe)
    Instant::now()
}

//~EXPECT: A003 7 17
//~EXPECT: A003 12 5

//~PATH: crates/demo/src/lib.rs
//! A005 corpus: crate root without the forbid attribute.

pub fn noop() {}

//~EXPECT: A005 1 1

//~PATH: crates/clockok/src/inner.rs
//! A003 corpus: the same clock reads under an allowlisted path are clean.

use std::time::{Duration, Instant};

pub fn sanctioned_timing() -> Duration {
    let start = Instant::now();
    start.elapsed()
}

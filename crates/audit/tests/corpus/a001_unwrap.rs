//~PATH: crates/demo/src/inner.rs
//! A001 corpus: unwrap/expect outside test code.

pub fn lib_code(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn lib_expect(x: Option<u32>) -> u32 {
    x.expect("present")
}

pub fn in_string() -> &'static str {
    "x.unwrap() is just text"
}

pub fn allowed(x: Option<u32>) -> u32 {
    // audit: allow(A001, corpus: reason provided)
    x.unwrap()
}

pub fn allowed_trailing(x: Option<u32>) -> u32 {
    x.unwrap() // audit: allow(A001, trailing form)
}

pub fn reasonless(x: Option<u32>) -> u32 {
    x.unwrap() // audit: allow(A001)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}

//~EXPECT: A001 5 7
//~EXPECT: A001 9 7
//~EXPECT: A001 26 7

//~PATH: crates/demo/src/inner.rs
//! A007 corpus: lock-order inversions, re-entry, undeclared locks, and
//! blocking calls under a guard. Corpus declared order: alpha, beta.

pub fn inversion(s: &S) {
    let b = s.beta.lock();
    let a = s.alpha.lock();
    let _ = (a, b);
}

pub fn reentry(s: &S) {
    let first = s.alpha.lock();
    let second = s.alpha.lock();
    let _ = (first, second);
}

pub fn undeclared(s: &S) {
    let g = s.gamma.lock();
    let _ = g;
}

pub fn blocking(s: &S) {
    let item = s.alpha.lock().recv();
    let _ = item;
}

pub fn allowed(s: &S) {
    // audit: allow(A007, corpus: guard must span the recv)
    let item = s.alpha.lock().recv();
    let _ = item;
}

pub fn clean_nesting(s: &S) {
    let a = s.alpha.lock();
    let b = s.beta.lock();
    drop(b);
    drop(a);
}

pub fn temporary_does_not_overlap(s: &S) -> u32 {
    let snapshot = s.beta.lock().clone();
    let a = s.alpha.lock();
    let _ = a;
    snapshot
}

//~EXPECT: A007 7 15
//~EXPECT: A007 13 20
//~EXPECT: A007 18 15
//~EXPECT: A007 23 31

//~PATH: crates/demo/src/inner.rs
//! A002 corpus: hash iteration in a serialising module.

use std::collections::{HashMap, HashSet};

pub struct Catalog {
    columns: HashMap<String, u32>,
}

impl Catalog {
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        for (name, width) in self.columns.iter() {
            out.push_str(name);
            let _ = width;
        }
        out
    }
}

pub fn to_canonical_text(seen: &HashSet<u32>, rows: &HashMap<u32, u32>) -> usize {
    let mut n = 0;
    if seen.contains(&7) {
        n += 1;
    }
    for value in rows.values() {
        n += *value as usize;
    }
    n
}

//~EXPECT: A002 13 35
//~EXPECT: A002 26 18

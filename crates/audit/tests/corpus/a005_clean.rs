//~PATH: crates/demo/src/lib.rs
//! A005 corpus: crate root with the attribute is clean.

#![forbid(unsafe_code)]

pub fn noop() {}

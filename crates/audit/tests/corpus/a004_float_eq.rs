//~PATH: crates/demo/src/inner.rs
//! A004 corpus: semantic float equality against literals.

pub fn zero_guard(width: f64) -> bool {
    width == 0.0
}

pub fn not_one(x: f32) -> bool {
    x != 1.5
}

pub fn negative(x: f64) -> bool {
    x == -2.5
}

pub fn bitwise(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

pub fn ordered(x: f64) -> bool {
    x <= 0.5
}

pub fn integral(x: u32) -> bool {
    x == 0
}

pub fn annotated(width: f64) -> bool {
    width == 0.0 // audit: allow(A004, corpus: zero-width guard)
}

//~EXPECT: A004 5 11
//~EXPECT: A004 9 7
//~EXPECT: A004 13 7

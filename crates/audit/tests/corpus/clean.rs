//~PATH: crates/demo/src/inner.rs
//! Clean corpus file: realistic library code, zero findings expected.

use std::collections::BTreeMap;

pub fn to_json(counts: &BTreeMap<String, u64>) -> String {
    let mut out = String::from("{");
    for (i, (key, value)) in counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{key}\":{value}"));
    }
    out.push('}');
    out
}

pub fn widest(samples: &[f64]) -> Option<f64> {
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    match (sorted.first(), sorted.last()) {
        (Some(lo), Some(hi)) => Some(hi - lo),
        _ => None,
    }
}

pub fn bits_equal(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

pub fn tricky_text() -> &'static str {
    // The pass must not fire inside literals: "x.unwrap()" below is text,
    // and so is the raw Instant::now() in the raw string.
    concat!("x.unwrap()", r#"Instant::now() == 0.0"#)
}
